//! Interactive cluster use — the usage model STORM's gang scheduler exists
//! to enable (§1, Table 1: a cluster should feel like a timeshared
//! workstation, not a batch queue).
//!
//! A long-running SWEEP3D production job owns the machine; a developer
//! repeatedly launches a short interactive job beside it. With a 2 ms
//! quantum the gang scheduler timeshares both: the interactive job gets a
//! sub-second turnaround while the production job loses (almost) nothing —
//! something a batch-queued cluster cannot do at all.
//!
//! Run with: `cargo run --release --example interactive_cluster`

use storm::core::prelude::*;

fn main() {
    // 32 nodes / 64 PEs, 2 ms quantum — the paper's "workstation-class"
    // gang-scheduling regime (Fig. 4's annotated point).
    let config = ClusterConfig::gang_cluster().with_timeslice(SimSpan::from_millis(2));
    let mut cluster = Cluster::new(config);

    // The production job: SWEEP3D across the whole machine.
    let production = cluster.submit(
        JobSpec::new(AppSpec::sweep3d_default(), 64)
            .with_ranks_per_node(2)
            .named("sweep3d-prod"),
    );

    // A developer's interactive probe: 3 seconds of computation on the
    // same 64 PEs, submitted 10 s into the production run.
    let interactive = cluster.submit_at(
        SimTime::from_secs(10),
        JobSpec::new(
            AppSpec::Synthetic {
                compute: SimSpan::from_secs(3),
            },
            64,
        )
        .with_ranks_per_node(2)
        .named("dev-probe"),
    );

    cluster.run_until_idle();

    println!("=== Interactive use under gang scheduling (2 ms quantum) ===");
    let p = cluster.job(production);
    let i = cluster.job(interactive);
    println!(
        "production job: state {:?}, runtime {}",
        p.state,
        p.metrics.turnaround().expect("prod turnaround")
    );
    println!(
        "interactive job: state {:?}, turnaround {} (3 s of work)",
        i.state,
        i.metrics.turnaround().expect("probe turnaround")
    );
    let wait = i.metrics.wait_span().expect("wait");
    println!("interactive job started running after {wait} (launch, not queueing!)");

    // What the production job would have taken alone.
    let mut solo =
        Cluster::new(ClusterConfig::gang_cluster().with_timeslice(SimSpan::from_millis(2)));
    let alone = solo.submit(
        JobSpec::new(AppSpec::sweep3d_default(), 64)
            .with_ranks_per_node(2)
            .named("sweep3d-solo"),
    );
    solo.run_until_idle();
    let t_alone = solo.job(alone).metrics.turnaround().unwrap().as_secs_f64();
    let t_shared = p.metrics.turnaround().unwrap().as_secs_f64();
    println!(
        "\nproduction job: {t_alone:.1} s alone vs {t_shared:.1} s while timesharing \
         with a 6 s interactive session ({:.1}% overhead beyond the borrowed CPU time)",
        ((t_shared - t_alone) / t_alone * 100.0) - 0.0
    );
    println!(
        "\nOn a batch-scheduled cluster the probe would have waited {t_alone:.0} s in the \
         queue; under STORM's gang scheduler it turned around in {:.1} s.",
        i.metrics.turnaround().unwrap().as_secs_f64()
    );
}
