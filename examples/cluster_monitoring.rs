//! Cluster monitoring through the telemetry registry (§4):
//!
//! "Another possible use of the STORM mechanisms is to implement a
//! graphical interface for cluster monitoring. As before, the master can
//! multicast a request for status information and gather the results from
//! all of the slaves."
//!
//! Where the paper polls the mechanisms by hand, this example runs a full
//! instrumented cluster — telemetry and tracing enabled — and renders what
//! a monitoring GUI would: a live per-interval health table sampled while
//! the simulation advances (queue depth, alive/quarantined nodes, matrix
//! utilization, pending simulator messages), the end-of-run metrics
//! snapshot with histogram percentiles, the per-job lifecycle spans, and a
//! Chrome trace-event timeline (`TRACE_monitoring.json`) loadable in
//! `chrome://tracing` or <https://ui.perfetto.dev>.
//!
//! Run with: `cargo run --release --example cluster_monitoring`

use storm::core::prelude::*;

fn main() {
    let cfg = ClusterConfig::paper_cluster()
        .with_seed(7)
        .with_failure_policy(FailurePolicy::requeue())
        .with_fault_detection(4)
        .with_telemetry(true);
    let mut c = Cluster::new(cfg);
    c.enable_tracing_with_capacity(100_000);

    // The workload: a 12 MB binary launched on 256 PEs, two gang-scheduled
    // synthetic jobs, and a node crash + revival for the health panel to
    // catch.
    c.submit(JobSpec::new(AppSpec::do_nothing_mb(12), 256));
    c.submit_at(
        SimTime::from_millis(10),
        JobSpec::new(
            AppSpec::Synthetic {
                compute: SimSpan::from_millis(120),
            },
            64,
        ),
    );
    c.submit_at(
        SimTime::from_millis(20),
        JobSpec::new(
            AppSpec::Synthetic {
                compute: SimSpan::from_millis(120),
            },
            128,
        ),
    );
    c.fail_node_at(SimTime::from_millis(40), 9);
    c.rejoin_node_at(SimTime::from_millis(120), 9);

    // ------------------------------------------------- live health table —
    // Advance the simulation in 25 ms display frames and read the gauges
    // the MM refreshes every timeslice — exactly what a GUI would poll.
    println!("live cluster health (25 ms refresh):");
    println!(
        "  {:>6}  {:>5}  {:>5}  {:>6}  {:>6}  {:>7}  {:>8}",
        "time", "queue", "alive", "quar", "util%", "pending", "done"
    );
    for frame in 1..=16u64 {
        let deadline = SimTime::from_millis(25 * frame);
        c.run_until(deadline);
        let snap = c.metrics_snapshot();
        let util = snap
            .histogram("sched.matrix_utilization_pct")
            .map(|h| h.max())
            .unwrap_or(0);
        println!(
            "  {:>6}  {:>5}  {:>5}  {:>6}  {:>6}  {:>7}  {:>8}",
            format!("{}ms", 25 * frame),
            snap.gauge("sched.queue_depth").unwrap_or(0),
            snap.gauge("nodes.alive").unwrap_or(0),
            snap.gauge("nodes.quarantined").unwrap_or(0),
            util,
            snap.gauge("engine.pending_messages").unwrap_or(0),
            snap.counter("jobs.completed").unwrap_or(0),
        );
    }

    // -------------------------------------------------- end-of-run panel —
    let snap = c.metrics_snapshot();
    println!("\n{}", snap.render());

    println!("job lifecycle spans:");
    for span in c.job_spans() {
        println!("{}", span.render());
    }

    if let Some(h) = snap.histogram("fault.detection_latency_us") {
        println!(
            "fault detection latency: p50 ≈ {} µs, max ≈ {} µs over {} detections",
            h.percentile(50.0),
            h.max(),
            h.count()
        );
    }

    // -------------------------------------------------- timeline export —
    let trace = c.chrome_trace();
    let path = "TRACE_monitoring.json";
    std::fs::write(path, &trace).expect("write chrome trace");
    println!(
        "\nwrote {path} ({} KiB) — open in chrome://tracing or https://ui.perfetto.dev",
        trace.len() / 1024
    );
}
