//! Cluster monitoring with the raw STORM mechanisms (§4):
//!
//! "Another possible use of the STORM mechanisms is to implement a
//! graphical interface for cluster monitoring. As before, the master can
//! multicast a request for status information and gather the results from
//! all of the slaves."
//!
//! This example drives the mechanism layer directly — no dæmons — to show
//! the three-operation vocabulary: XFER-AND-SIGNAL a request to all nodes,
//! the nodes post their load into a global variable, COMPARE-AND-WRITE
//! checks a cluster-wide condition, and a gather pulls per-node data.
//!
//! Run with: `cargo run --release --example cluster_monitoring`

use storm::mech::{CmpOp, EventId, Mechanisms, NodeId, NodeSet, VarId};
use storm::net::{BackgroundLoad, BufferPlacement};
use storm::sim::{DeterministicRng, SimTime};

const NODES: u32 = 64;

fn main() {
    let mut mech = Mechanisms::qsnet(NODES);
    let mut rng = DeterministicRng::new(7);
    let all = NodeSet::All(NODES);

    // Global allocations — same id valid on every node (§2.2 "global data").
    let request_ev: EventId = mech.memory.alloc_event();
    let load_var: VarId = mech.memory.alloc_var(0);

    // 1. Master multicasts a status request and signals an event on every
    //    node (one XFER-AND-SIGNAL).
    let t0 = SimTime::ZERO;
    let timing = mech
        .xfer_and_signal(
            t0,
            NodeId(0),
            &all,
            256,
            BufferPlacement::MainMemory,
            None,
            Some(request_ev),
            BackgroundLoad::NONE,
            &mut rng,
        )
        .expect("multicast");
    let delivered = timing.all_arrived();
    println!(
        "status request on all {NODES} nodes after {}",
        delivered.since(t0)
    );

    // 2. Each node polls TEST-EVENT, sees the request, and posts its
    //    one-minute load average (scaled ×100) into the global variable.
    for n in 0..NODES {
        let node = NodeId(n);
        assert!(mech.test_event(node, request_ev, delivered));
        let load = 50 + (rng.below(300) as i64); // 0.50 .. 3.50
        mech.memory.write(node, load_var, load);
        mech.memory.clear_event(node, request_ev);
    }

    // 3. One COMPARE-AND-WRITE answers "is every node's load ≥ 0.5?"
    //    (i.e. all alive and reporting).
    let caw = mech.compare_and_write(
        delivered,
        &all,
        load_var,
        CmpOp::Ge,
        50,
        None,
        BackgroundLoad::NONE,
    );
    println!(
        "cluster-wide health check: {} (answered in {})",
        if caw.satisfied {
            "all reporting"
        } else {
            "nodes missing"
        },
        caw.complete.since(delivered)
    );

    // 4. Gather and render the per-node loads.
    let loads = mech.memory.gather(&all, load_var);
    let max = loads.iter().max().copied().unwrap_or(0);
    println!("\nper-node load (1-min average):");
    for (n, l) in loads.iter().enumerate() {
        if n % 8 == 0 {
            print!("  nodes {n:>2}..{:<2} ", n + 7);
        }
        let bars = (l * 8 / max.max(1)) as usize;
        print!("{:>5.2}{:<9}", *l as f64 / 100.0, "#".repeat(bars.max(1)));
        if n % 8 == 7 {
            println!();
        }
    }
    println!(
        "\nwhole round trip: request multicast {} + check {} — fast enough to \
         refresh a GUI at kHz rates.",
        delivered.since(t0),
        caw.complete.since(delivered)
    );
}
