//! Cluster monitoring through queryable state (§4):
//!
//! "Another possible use of the STORM mechanisms is to implement a
//! graphical interface for cluster monitoring. As before, the master can
//! multicast a request for status information and gather the results from
//! all of the slaves."
//!
//! Where the paper polls the mechanisms by hand, this example runs a full
//! instrumented cluster and drives the `storm-query` surface against it —
//! everything a monitoring GUI would show, as relational queries over live
//! state:
//!
//! * a live per-interval health table sampled while the simulation runs,
//! * continuous queries ("alert when more than 2 nodes are quarantined",
//!   "alert when the queue keeps growing") evaluated at every timeslice
//!   boundary, with the resulting alert log,
//! * "top 5 jobs by queue wait" via sort + limit on the jobs view,
//! * job counts per state via group-by, and the allocation map as a
//!   join of the allocs and jobs views,
//! * the end-of-run metrics snapshot and a Chrome trace-event timeline
//!   (`TRACE_monitoring.json`) loadable in `chrome://tracing` or
//!   <https://ui.perfetto.dev>.
//!
//! Run with: `cargo run --release --example cluster_monitoring`

use storm::core::prelude::*;
use storm::query::{allocs, jobs, nodes, Agg, Datum};

fn main() {
    let cfg = ClusterConfig::paper_cluster()
        .with_seed(7)
        .with_failure_policy(FailurePolicy::requeue())
        .with_fault_detection(4)
        .with_telemetry(true);
    let mut c = Cluster::new(cfg);
    c.enable_tracing_with_capacity(100_000);

    // Standing queries, registered before anything runs. Evaluation is
    // pure observation: registering them does not perturb the schedule.
    c.register_query("quarantine-storm", Condition::QuarantinedAbove(2));
    c.register_query("backlog-growing", Condition::QueueDepthGrowingFor(2));

    // The workload: a 12 MB binary on 256 PEs, a stream of gang-scheduled
    // synthetic jobs, and three node crashes (later revived) so the
    // quarantine alert has something to fire on.
    c.submit(JobSpec::new(AppSpec::do_nothing_mb(12), 256).named("ppm-render"));
    for (i, (ms, ranks)) in [(10u64, 64u32), (20, 128), (30, 32), (45, 64), (55, 16)]
        .iter()
        .enumerate()
    {
        c.submit_at(
            SimTime::from_millis(*ms),
            JobSpec::new(
                AppSpec::Synthetic {
                    compute: SimSpan::from_millis(120),
                },
                *ranks,
            )
            .named(format!("synth-{i}")),
        );
    }
    for (ms, node) in [(40u64, 9u32), (48, 21), (56, 33)] {
        c.fail_node_at(SimTime::from_millis(ms), node);
        c.rejoin_node_at(SimTime::from_millis(ms + 200), node);
    }

    // ------------------------------------------------- live health table —
    // Advance the simulation in 25 ms display frames and read the gauges
    // the MM refreshes every timeslice — exactly what a GUI would poll.
    println!("live cluster health (25 ms refresh):");
    println!(
        "  {:>6}  {:>5}  {:>5}  {:>6}  {:>7}  {:>8}  {:>6}",
        "time", "queue", "alive", "quar", "pending", "done", "alerts"
    );
    for frame in 1..=16u64 {
        let deadline = SimTime::from_millis(25 * frame);
        c.run_until(deadline);
        let snap = c.metrics_snapshot();
        println!(
            "  {:>6}  {:>5}  {:>5}  {:>6}  {:>7}  {:>8}  {:>6}",
            format!("{}ms", 25 * frame),
            snap.gauge("sched.queue_depth").unwrap_or(0),
            snap.gauge("nodes.alive").unwrap_or(0),
            snap.gauge("nodes.quarantined").unwrap_or(0),
            snap.gauge("engine.pending_messages").unwrap_or(0),
            snap.counter("jobs.completed").unwrap_or(0),
            c.alerts().len(),
        );
    }
    // ------------------------------------------------------ allocation map —
    // Queried mid-run, while jobs still hold their buddy blocks: the
    // allocs view joined with the jobs view on job id.
    println!("\nallocation map at {} (allocs ⋈ jobs on job id):", c.now());
    let live = allocs(&c);
    if live.is_empty() {
        println!("  (no live allocations — cluster drained)");
    } else {
        let map = live
            .join(&jobs(&c), "job", "job")
            .unwrap()
            .select(&[
                "allocs.slot",
                "allocs.job",
                "jobs.name",
                "allocs.node_start",
                "allocs.node_end",
                "allocs.width",
            ])
            .unwrap();
        println!("{}", map.render());
    }

    c.run_until(SimTime::from_millis(600));

    // ---------------------------------------------------- standing alerts —
    // Conditions are level-triggered: one alert per slice while true.
    // A GUI would coalesce the steady state, and so does this panel.
    println!("\ncontinuous-query alert log:");
    if c.alerts().is_empty() {
        println!("  (no alerts raised)");
    }
    for a in c.alerts().iter().take(4) {
        println!(
            "  slice {:>4} at {:>10}  {:<17} observed {}",
            a.slice, a.at, a.query, a.observed
        );
    }
    if c.alerts().len() > 4 {
        let last = c.alerts().last().unwrap();
        println!(
            "  … {} more, last at {} (slice {})",
            c.alerts().len() - 4,
            last.at,
            last.slice
        );
    }
    for q in c.continuous_queries().queries() {
        println!("  query {:<17} fired {} time(s)", q.name, q.firings);
    }

    // ------------------------------------------------------- query panels —
    let j = jobs(&c);
    println!("\ntop 5 jobs by queue wait:");
    let top = j
        .select(&["job", "name", "state", "ranks", "wait_us"])
        .unwrap()
        .sort_by("wait_us", true)
        .unwrap()
        .limit(5);
    println!("{}", top.render());

    println!("jobs per state:");
    let per_state = j.group_by("state", &[(Agg::Count, "job")]).unwrap();
    println!("{}", per_state.render());

    let failed = nodes(&c).filter(|r| r.get("failed") == &Datum::Bool(true));
    println!("nodes still failed at end of run: {}", failed.len());

    // -------------------------------------------------- end-of-run panel —
    let snap = c.metrics_snapshot();
    println!("\n{}", snap.render());

    println!("job lifecycle spans:");
    for span in c.job_spans() {
        println!("{}", span.render());
    }

    if let Some(h) = snap.histogram("fault.detection_latency_us") {
        println!(
            "fault detection latency: p50 ≈ {} µs, max ≈ {} µs over {} detections",
            h.percentile(50.0),
            h.max(),
            h.count()
        );
    }

    // -------------------------------------------------- timeline export —
    let trace = c.chrome_trace();
    let path = "TRACE_monitoring.json";
    std::fs::write(path, &trace).expect("write chrome trace");
    println!(
        "\nwrote {path} ({} KiB) — open in chrome://tracing or https://ui.perfetto.dev",
        trace.len() / 1024
    );
}
