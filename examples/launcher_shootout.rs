//! Launcher shootout — §5.1's comparison, live.
//!
//! Launches the same 12 MB binary with four mechanisms at growing cluster
//! sizes: STORM's broadcast protocol (simulated end-to-end, dæmons and
//! all), a serial `rsh` script, NFS demand paging, and a Cplant/BProc-style
//! binary-distribution tree.
//!
//! Run with: `cargo run --release --example launcher_shootout`

use storm::baselines::SimulatedLauncher;
use storm::core::prelude::*;
use storm::sim::DeterministicRng;

fn storm_launch(nodes: u32) -> f64 {
    let cfg = ClusterConfig::paper_cluster().with_nodes(nodes);
    let mut c = Cluster::new(cfg);
    let j = c.submit(JobSpec::new(AppSpec::do_nothing_mb(12), nodes * 4));
    c.run_until_idle();
    c.job(j)
        .metrics
        .total_launch_span()
        .expect("launch")
        .as_secs_f64()
}

fn main() {
    println!("=== Launcher shootout: 12 MB binary, seconds ===");
    println!(
        "{:>6}  {:>10}  {:>12}  {:>12}  {:>12}",
        "nodes", "STORM", "serial rsh", "NFS paging", "tree (f=4)"
    );
    let mut rng = DeterministicRng::new(2002);
    for nodes in [4u32, 16, 64, 256, 1024] {
        let storm = storm_launch(nodes.min(64)); // sim up to the paper's 64;
        let storm_txt = if nodes <= 64 {
            format!("{storm:.3}")
        } else {
            // beyond the testbed, Eq. 3's model (Fig. 10)
            format!("{:.3}*", storm::model::t_launch_es40(nodes).as_secs_f64())
        };
        let rsh = SimulatedLauncher::SerialRsh
            .launch_time(nodes, 0, &mut rng)
            .unwrap()
            .as_secs_f64();
        let nfs = SimulatedLauncher::NfsDemandPaging
            .launch_time(nodes, 12_000_000, &mut rng)
            .map(|t| format!("{:.1}", t.as_secs_f64()))
            .unwrap_or_else(|| "TIMEOUT".into());
        let tree = SimulatedLauncher::DistributionTree { fanout: 4 }
            .launch_time(nodes, 12_000_000, &mut rng)
            .unwrap()
            .as_secs_f64();
        println!("{nodes:>6}  {storm_txt:>10}  {rsh:>12.1}  {nfs:>12}  {tree:>12.2}");
    }
    println!("(*) modelled with Eq. 3 beyond the 64-node testbed");
    println!(
        "\nShapes to notice: rsh is linear (a minute at 64 nodes), NFS collapses \n\
         super-linearly and eventually times out, trees are logarithmic but pay \n\
         a full store-and-forward of the image per level — STORM's hardware \n\
         multicast launches in ~0.1 s at every scale."
    );
}
