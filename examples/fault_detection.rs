//! Fault detection with the STORM mechanisms (§4).
//!
//! "A master process periodically multicasts a heartbeat message (with
//! XFER-AND-SIGNAL) and queries the slaves for receipt (with
//! COMPARE-AND-WRITE). If the query returns FALSE, indicating that a slave
//! missed a heartbeat, the master can gather status information to isolate
//! the failed slave."
//!
//! This example runs a 64-node cluster with heartbeat fault detection,
//! kills three nodes at different instants, and reports how quickly each
//! was detected and which jobs were failed over.
//!
//! Run with: `cargo run --release --example fault_detection`

use storm::core::prelude::*;

fn main() {
    let mut config = ClusterConfig::paper_cluster();
    config.fault_detection = true;
    config.heartbeat_every = 8; // one fault round every 8 heartbeats (8 ms)
    let mut cluster = Cluster::new(config);

    // A long-running job spanning half the machine (nodes 0..32).
    let victim_job = cluster.submit(
        JobSpec::new(
            AppSpec::Synthetic {
                compute: SimSpan::from_secs(30),
            },
            128,
        )
        .named("long-running"),
    );

    // Inject three failures: one under the job, two elsewhere.
    let failures = [
        (SimTime::from_millis(500), 17u32),
        (SimTime::from_millis(900), 55),
        (SimTime::from_millis(1300), 56),
    ];
    for &(at, node) in &failures {
        cluster.fail_node_at(at, node);
    }

    cluster.run_until(SimTime::from_secs(3));

    println!("=== Heartbeat fault detection ===");
    println!("fault round every 8 ms; failures injected at 500/900/1300 ms\n");
    let detected = &cluster.world().stats.failures_detected;
    for &(injected_at, node) in &failures {
        match detected.iter().find(|&&(n, _)| n == node) {
            Some(&(_, at)) => {
                println!(
                    "node {node:>2}: failed at {injected_at}, detected at {at} \
                     (latency {})",
                    at.since(injected_at)
                );
            }
            None => println!("node {node:>2}: NOT detected (!)"),
        }
    }

    let job = cluster.job(victim_job);
    println!(
        "\njob '{}' on nodes 0..32: state {:?}",
        job.spec.name, job.state
    );
    assert_eq!(
        job.state,
        JobState::Failed,
        "the job touching node 17 must be failed over"
    );
    assert_eq!(detected.len(), 3, "all three failures detected");
    println!(
        "\nAll {} failures detected; the COMPARE-AND-WRITE query pinpointed each \
         lagging node in one gather.",
        detected.len()
    );

    // ---------------------------------------------------------------------
    // Part two: the same crash under FailurePolicy::Requeue. The victim is
    // evicted, the dead node quarantined, the job retried on surviving
    // capacity — and when the node rejoins 500 ms later it is re-admitted
    // and can host new work.
    println!("\n=== Failure recovery: requeue + rejoin ===");
    let cfg = ClusterConfig::paper_cluster()
        .with_fault_detection(8)
        .with_failure_policy(FailurePolicy::requeue())
        .with_faults(
            FaultSchedule::new()
                .crash(SimTime::from_millis(500), 17)
                .rejoin(SimTime::from_millis(1_000), 17),
        );
    let mut cluster = Cluster::new(cfg);
    let phoenix = cluster.submit(
        JobSpec::new(
            AppSpec::Synthetic {
                compute: SimSpan::from_millis(800),
            },
            128,
        )
        .named("phoenix"),
    );
    cluster.run_until(SimTime::from_millis(1_200));
    // By now node 17 crashed, the job was requeued elsewhere, and the node
    // rejoined; a full-width job proves the machine is whole again.
    let full = cluster.submit(JobSpec::new(AppSpec::do_nothing_mb(4), 256).named("full-width"));
    cluster.run_until(SimTime::from_secs(4));

    let w = cluster.world();
    let job = cluster.job(phoenix);
    println!(
        "job 'phoenix': state {:?} after {} retr{} (requeues: {})",
        job.state,
        job.retries,
        if job.retries == 1 { "y" } else { "ies" },
        w.stats.requeues
    );
    println!(
        "node 17: detected at {:?}, re-admitted at {:?}",
        w.stats.failures_detected.first().map(|&(_, t)| t),
        w.stats.rejoins.first().map(|&(_, t)| t),
    );
    println!("job 'full-width': state {:?}", cluster.job(full).state);
    assert_eq!(
        job.state,
        JobState::Completed,
        "requeued job survived the crash"
    );
    assert_eq!(job.retries, 1, "one retry was enough");
    assert_eq!(w.stats.rejoins.len(), 1, "node 17 was re-admitted");
    assert_eq!(
        cluster.job(full).state,
        JobState::Completed,
        "all 64 nodes usable after the rejoin"
    );
    println!("\nSame crash, no job lost: requeue + quarantine + rejoin.");
}
