//! Scheduling-policy comparison: batch FCFS vs EASY backfilling vs gang
//! scheduling on the same job stream.
//!
//! §4: "Currently, STORM supports batch scheduling with and without
//! backfilling, gang scheduling, and implicit coscheduling" — the policies
//! plug into the same MM, matrix and mechanisms. This example submits a
//! queue with a classic backfilling opportunity (a wide job blocked behind
//! a long one, with short narrow jobs behind it) and compares turnaround.
//!
//! Run with: `cargo run --release --example batch_vs_backfill`

use storm::core::prelude::*;

fn workload(cluster: &mut Cluster) -> Vec<(JobId, &'static str)> {
    let mut jobs = Vec::new();
    // A long job holding half the machine.
    jobs.push((
        cluster.submit(
            JobSpec::new(
                AppSpec::Synthetic {
                    compute: SimSpan::from_secs(60),
                },
                32 * 4,
            )
            .named("long-half")
            .with_estimate(SimSpan::from_secs(62)),
        ),
        "long-half",
    ));
    // A full-machine job that must wait for it.
    jobs.push((
        cluster.submit(
            JobSpec::new(
                AppSpec::Synthetic {
                    compute: SimSpan::from_secs(20),
                },
                64 * 4,
            )
            .named("wide")
            .with_estimate(SimSpan::from_secs(22)),
        ),
        "wide",
    ));
    // Four short narrow jobs that *could* run in the spare half right now.
    for i in 0..4 {
        jobs.push((
            cluster.submit(
                JobSpec::new(
                    AppSpec::Synthetic {
                        compute: SimSpan::from_secs(10),
                    },
                    8 * 4,
                )
                .named("short")
                .with_estimate(SimSpan::from_secs(12)),
            ),
            ["short-a", "short-b", "short-c", "short-d"][i],
        ));
    }
    jobs
}

fn run(policy: SchedulerKind) -> (f64, Vec<(String, f64)>) {
    let mut cfg = ClusterConfig::paper_cluster().with_scheduler(policy);
    cfg.mpl_max = if policy == SchedulerKind::Gang { 2 } else { 1 };
    cfg.timeslice = SimSpan::from_millis(50);
    let mut cluster = Cluster::new(cfg);
    let jobs = workload(&mut cluster);
    cluster.run_until_idle();
    let mut turnarounds = Vec::new();
    let mut makespan: f64 = 0.0;
    for (id, name) in jobs {
        let m = &cluster.job(id).metrics;
        let t = m.turnaround().expect("turnaround").as_secs_f64();
        makespan = makespan.max(m.completed.unwrap().as_secs_f64());
        turnarounds.push((name.to_string(), t));
    }
    (makespan, turnarounds)
}

fn main() {
    println!("=== One job stream, three scheduling policies ===\n");
    println!(
        "queue: long-half(60 s, 32 nodes) -> wide(20 s, 64 nodes) -> 4x short(10 s, 8 nodes)\n"
    );
    let mut summary = Vec::new();
    for policy in [
        SchedulerKind::Batch,
        SchedulerKind::Backfill,
        SchedulerKind::Gang,
    ] {
        let (makespan, turnarounds) = run(policy);
        println!("--- {policy:?} (makespan {makespan:.1} s)");
        for (name, t) in &turnarounds {
            println!("    {name:<10} turnaround {t:>7.1} s");
        }
        let mean: f64 = turnarounds.iter().map(|(_, t)| t).sum::<f64>() / turnarounds.len() as f64;
        println!("    mean turnaround {mean:.1} s\n");
        summary.push((policy, makespan, mean));
    }

    println!("=== Summary ===");
    println!(
        "{:<10} {:>10} {:>18}",
        "policy", "makespan", "mean turnaround"
    );
    for (p, mk, mean) in &summary {
        println!("{:<10} {:>8.1} s {:>16.1} s", format!("{p:?}"), mk, mean);
    }
    let batch_mean = summary[0].2;
    let backfill_mean = summary[1].2;
    let gang_mean = summary[2].2;
    assert!(
        backfill_mean < batch_mean,
        "backfilling lets the short jobs jump the blocked wide job"
    );
    assert!(
        gang_mean < batch_mean,
        "gang scheduling timeshares everything immediately"
    );
    println!(
        "\nBackfilling cuts mean turnaround {:.0}% vs strict FCFS; gang scheduling \
         (MPL 2) cuts it {:.0}% by timesharing instead of queueing.",
        (1.0 - backfill_mean / batch_mean) * 100.0,
        (1.0 - gang_mean / batch_mean) * 100.0
    );
}
