//! Quickstart: bring up the paper's 64-node / 256-PE cluster, launch a
//! 12 MB do-nothing job, and print the launch-time breakdown — the
//! experiment behind the paper's headline "0.11 seconds to launch a 12 MB
//! job on 64 nodes".
//!
//! Run with: `cargo run --release --example quickstart`

use storm::core::prelude::*;

fn main() {
    // The paper's evaluation machine: 64 AlphaServer ES40 nodes (4 CPUs
    // each), QsNET, binaries on a RAM disk, 512 KB × 4-slot transfer
    // protocol, 1 ms timeslice.
    let config = ClusterConfig::paper_cluster();
    let mut cluster = Cluster::new(config);
    cluster.enable_tracing();

    let job = cluster.submit(JobSpec::new(AppSpec::do_nothing_mb(12), 256).named("hello-storm"));
    cluster.run_until_idle();

    let record = cluster.job(job);
    let m = &record.metrics;
    println!("=== STORM quickstart: 12 MB binary on 256 PEs / 64 nodes ===");
    println!("job state:        {:?}", record.state);
    println!(
        "send   (read + broadcast + write + notify): {}",
        m.send_span().expect("send")
    );
    println!(
        "execute (launch cmd + fork + exit + report): {}",
        m.execute_span().expect("execute")
    );
    println!(
        "total launch:                                {}",
        m.total_launch_span().expect("total")
    );
    println!(
        "fragments broadcast: {}   strobes: {}   NM reports: {}",
        cluster.world().stats.fragments,
        cluster.world().stats.strobes,
        cluster.world().stats.reports
    );

    println!("\n--- protocol trace (MM events) ---");
    for line in cluster.trace().lines().filter(|l| l.contains("mm.")) {
        println!("{line}");
    }

    println!("\nPaper anchor: 110 ms total, 96 ms send (§3.1.1, Fig. 2).");
}
