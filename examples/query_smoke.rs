//! CI smoke for the queryable-state surface (DESIGN.md §17): runs an
//! instrumented cluster with standing queries, freezes it mid-run to a
//! checkpoint artifact, proves restore→resume is byte-identical to the
//! uninterrupted run, and writes the sample `CKPT_*.json` plus the alert
//! log CI uploads. Honours `STORM_QUEUE_BACKEND`, so the same binary
//! smokes both queue backends.
//!
//! Output paths override with `CKPT_OUT` / `ALERTS_OUT`.
//!
//! Run with: `cargo run --release --example query_smoke`

use storm::core::prelude::*;

fn build() -> Cluster {
    let cfg = ClusterConfig::paper_cluster()
        .with_seed(71)
        .with_failure_policy(FailurePolicy::requeue())
        .with_fault_detection(4)
        .with_telemetry(true);
    let mut c = Cluster::new(cfg);
    c.enable_tracing();
    c.register_query("quarantine", Condition::QuarantinedAbove(0));
    c.register_query("backlog", Condition::QueueDepthGrowingFor(2));
    c.submit(JobSpec::new(AppSpec::do_nothing_mb(8), 128).named("headline"));
    c.submit_at(
        SimTime::from_millis(15),
        JobSpec::new(
            AppSpec::Synthetic {
                compute: SimSpan::from_millis(100),
            },
            64,
        )
        .named("gang"),
    );
    c.fail_node_at(SimTime::from_millis(35), 11);
    c.rejoin_node_at(SimTime::from_millis(160), 11);
    c
}

fn main() {
    let ckpt_path = std::env::var("CKPT_OUT").unwrap_or_else(|_| "CKPT_sample.json".into());
    let alerts_path = std::env::var("ALERTS_OUT").unwrap_or_else(|_| "ALERTS_sample.jsonl".into());
    let horizon = SimTime::from_millis(400);

    // The uninterrupted run is the reference.
    let mut reference = build();
    reference.run_until(horizon);

    // Same build, frozen mid-run — while a job is in flight and the
    // injected fault is still pending — then thawed and resumed.
    let mut half = build();
    half.run_until(SimTime::from_millis(30));
    let artifact = half.checkpoint();
    std::fs::write(&ckpt_path, &artifact).expect("write checkpoint");
    let mut resumed = Cluster::restore(&artifact).expect("restore sample checkpoint");
    resumed.run_until(horizon);

    assert_eq!(
        reference.interleaving_digest(),
        resumed.interleaving_digest(),
        "resume must replay the reference interleaving"
    );
    assert_eq!(reference.trace(), resumed.trace(), "trace");
    assert_eq!(
        reference.metrics_snapshot().to_json(),
        resumed.metrics_snapshot().to_json(),
        "metrics snapshot"
    );
    assert_eq!(reference.alerts(), resumed.alerts(), "alert log");
    assert_eq!(
        reference.checkpoint(),
        resumed.checkpoint(),
        "final checkpoints byte-identical"
    );

    // Publish the alert log the standing queries produced.
    let mut log = String::new();
    for a in reference.alerts() {
        log.push_str(&format!(
            "{{\"slice\": {}, \"at_ns\": {}, \"query\": \"{}\", \"observed\": {}}}\n",
            a.slice,
            a.at.as_nanos(),
            a.query,
            a.observed
        ));
    }
    std::fs::write(&alerts_path, &log).expect("write alert log");
    assert!(
        !reference.alerts().is_empty(),
        "the injected fault must raise quarantine alerts"
    );

    println!(
        "query smoke ok: {} alerts, checkpoint {} KiB at 30ms resumed to {} \
         byte-identically\nwrote {ckpt_path} and {alerts_path}",
        reference.alerts().len(),
        artifact.len() / 1024,
        horizon
    );
}
