//! Fault injection and failure recovery policy.
//!
//! The paper's §4 shows fault *detection* built from the mechanisms
//! (heartbeat multicast + COMPARE-AND-WRITE receipt query + gather to
//! isolate the lagging slave). This module adds the surrounding machinery a
//! production resource manager needs and the paper leaves implicit:
//!
//! * [`FaultSchedule`] — a deterministic, seed-independent *schedule* of
//!   faults to inject into a run: node crashes and rejoins, dæmon stalls
//!   (a slow node that delays its NM's replies without dying), and
//!   transient network-error bursts. Installed declaratively via
//!   [`crate::ClusterConfig::with_faults`]; the cluster posts the events at
//!   build time, so two runs with the same config and seed replay the same
//!   fault sequence exactly.
//! * [`FailurePolicy`] — what the MM does with the jobs of a node whose
//!   failure the heartbeat protocol detected: fail them, requeue them on
//!   surviving capacity with a bounded retry budget and linear backoff, or
//!   shrink them to fit what is left.
//!
//! Either way the dead node is *quarantined*: carved out of every buddy
//! allocator slot and excluded from launch/strobe/heartbeat multicast sets,
//! until the heartbeat protocol observes it answering again (a rejoined or
//! merely-stalled node catches up on the round counter) and re-admits it.

use storm_sim::{DeterministicRng, SimSpan, SimTime};

pub use storm_mech::ErrorBurst;

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// The node's NM dies at `at`: it stops answering everything
    /// (fragments, strobes, heartbeats) until an explicit [`FaultEvent::Rejoin`].
    Crash {
        /// Injection instant.
        at: SimTime,
        /// Victim node.
        node: u32,
    },
    /// The node's NM comes back at `at` with empty local state (a reboot).
    /// The MM re-admits it once the heartbeat protocol sees it answering.
    Rejoin {
        /// Revival instant.
        at: SimTime,
        /// Rejoining node.
        node: u32,
    },
    /// The node's NM stalls between `from` and `until`: messages are not
    /// lost but their processing is deferred to `until` (a dæmon descheduled
    /// by a runaway local process). A stall longer than the detection window
    /// is indistinguishable from a crash until it ends — the MM quarantines
    /// the node, then re-admits it when the backlog drains.
    Stall {
        /// Stalled node.
        node: u32,
        /// Stall start.
        from: SimTime,
        /// Stall end (processing resumes).
        until: SimTime,
    },
    /// An MM replica dies at `at`. Killing the active replica triggers the
    /// regroup protocol: standbys detect the missing beats and the lowest
    /// surviving rank promotes itself in a new epoch.
    MmCrash {
        /// Injection instant.
        at: SimTime,
        /// Victim MM replica rank (0 = primary).
        rank: u32,
    },
}

impl FaultEvent {
    /// The node this event targets. For [`FaultEvent::MmCrash`] this is the
    /// MM replica *rank*, not a cluster node.
    pub fn node(&self) -> u32 {
        match *self {
            FaultEvent::Crash { node, .. }
            | FaultEvent::Rejoin { node, .. }
            | FaultEvent::Stall { node, .. } => node,
            FaultEvent::MmCrash { rank, .. } => rank,
        }
    }
}

/// A deterministic fault schedule for one run.
///
/// Built with the fluent methods below and installed with
/// [`crate::ClusterConfig::with_faults`]. An empty (default) schedule
/// injects nothing and leaves the run bit-identical to one with no
/// schedule at all — probabilities of zero never consume RNG.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    /// Timed crash/rejoin/stall events.
    pub events: Vec<FaultEvent>,
    /// Steady-state XFER-AND-SIGNAL error probability (atomic abort +
    /// retry; §2.2's error semantics).
    pub xfer_error_prob: f64,
    /// Probability that a COMPARE-AND-WRITE query is lost (no write applied
    /// anywhere, initiator re-polls).
    pub caw_drop_prob: f64,
    /// Probability that a heartbeat multicast delivery is dropped at an NM
    /// (models a lossy control path; can cause false-positive detections
    /// that the rejoin path must then heal).
    pub heartbeat_drop_prob: f64,
    /// Transient XFER-AND-SIGNAL error-burst windows.
    pub bursts: Vec<ErrorBurst>,
}

impl FaultSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    /// Schedule a node crash.
    pub fn crash(mut self, at: SimTime, node: u32) -> Self {
        self.events.push(FaultEvent::Crash { at, node });
        self
    }

    /// Schedule a node rejoin.
    pub fn rejoin(mut self, at: SimTime, node: u32) -> Self {
        self.events.push(FaultEvent::Rejoin { at, node });
        self
    }

    /// Schedule a dæmon stall on `node` over `[from, until)`.
    pub fn stall(mut self, node: u32, from: SimTime, until: SimTime) -> Self {
        self.events.push(FaultEvent::Stall { node, from, until });
        self
    }

    /// Schedule an MM replica crash (rank 0 kills the active primary).
    pub fn mm_crash(mut self, at: SimTime, rank: u32) -> Self {
        self.events.push(FaultEvent::MmCrash { at, rank });
        self
    }

    /// Steady-state XFER-AND-SIGNAL error probability.
    pub fn with_xfer_errors(mut self, prob: f64) -> Self {
        self.xfer_error_prob = prob;
        self
    }

    /// COMPARE-AND-WRITE drop probability.
    pub fn with_caw_drops(mut self, prob: f64) -> Self {
        self.caw_drop_prob = prob;
        self
    }

    /// Heartbeat-delivery drop probability.
    pub fn with_heartbeat_drops(mut self, prob: f64) -> Self {
        self.heartbeat_drop_prob = prob;
        self
    }

    /// Add a transient error-burst window.
    pub fn with_burst(mut self, from: SimTime, until: SimTime, prob: f64) -> Self {
        self.bursts.push(ErrorBurst { from, until, prob });
        self
    }

    /// True when the schedule injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
            && self.bursts.is_empty()
            && self.xfer_error_prob == 0.0
            && self.caw_drop_prob == 0.0
            && self.heartbeat_drop_prob == 0.0
    }

    /// Validate against a cluster of `nodes` nodes running `mm_replicas`
    /// MM replicas (standbys + 1).
    pub fn validate(&self, nodes: u32, mm_replicas: u32) -> Result<(), String> {
        let prob_ok = |p: f64| (0.0..=1.0).contains(&p);
        if !prob_ok(self.xfer_error_prob) {
            return Err(format!(
                "xfer_error_prob {} outside [0,1]",
                self.xfer_error_prob
            ));
        }
        if !prob_ok(self.caw_drop_prob) {
            return Err(format!(
                "caw_drop_prob {} outside [0,1]",
                self.caw_drop_prob
            ));
        }
        if !prob_ok(self.heartbeat_drop_prob) {
            return Err(format!(
                "heartbeat_drop_prob {} outside [0,1]",
                self.heartbeat_drop_prob
            ));
        }
        for b in &self.bursts {
            if !prob_ok(b.prob) {
                return Err(format!("burst prob {} outside [0,1]", b.prob));
            }
            if b.from >= b.until {
                return Err(format!("burst window [{}, {}) is empty", b.from, b.until));
            }
        }
        for ev in &self.events {
            match *ev {
                FaultEvent::MmCrash { rank, .. } => {
                    if rank >= mm_replicas {
                        return Err(format!(
                            "MM crash targets rank {rank} of {mm_replicas} replicas"
                        ));
                    }
                }
                _ => {
                    if ev.node() >= nodes {
                        return Err(format!("fault event targets node {} of {nodes}", ev.node()));
                    }
                }
            }
            if let FaultEvent::Stall { from, until, .. } = ev {
                if from >= until {
                    return Err(format!("stall window [{from}, {until}) is empty"));
                }
            }
        }
        Ok(())
    }

    /// A randomized-but-reproducible schedule for chaos testing: the same
    /// `(seed, nodes, horizon)` always yields the same schedule. Crashes a
    /// few nodes in the first 60 % of the horizon, rejoins most of them
    /// 100–500 ms later, sometimes stalls another node, and sometimes adds
    /// a transient network-error burst.
    pub fn randomized(seed: u64, nodes: u32, horizon: SimSpan) -> Self {
        let mut rng = DeterministicRng::new(seed ^ 0xC44A_05FA_57A6_11E5);
        let mut s = FaultSchedule::new();
        let h_ms = horizon.as_millis_f64();
        let mut used = std::collections::BTreeSet::new();
        let crashes = 1 + rng.below(3);
        for _ in 0..crashes {
            let node = rng.below(u64::from(nodes)) as u32;
            if !used.insert(node) {
                continue;
            }
            let at_ms = h_ms * (0.10 + 0.50 * rng.uniform());
            s = s.crash(SimTime::from_millis(at_ms as u64), node);
            if rng.uniform() < 0.75 {
                let back_ms = at_ms + 100.0 + 400.0 * rng.uniform();
                if back_ms < h_ms * 0.85 {
                    s = s.rejoin(SimTime::from_millis(back_ms as u64), node);
                }
            }
        }
        if rng.uniform() < 0.5 {
            let node = rng.below(u64::from(nodes)) as u32;
            if used.insert(node) {
                let from_ms = h_ms * (0.10 + 0.40 * rng.uniform());
                let len_ms = 20.0 + 80.0 * rng.uniform();
                s = s.stall(
                    node,
                    SimTime::from_millis(from_ms as u64),
                    SimTime::from_millis((from_ms + len_ms) as u64),
                );
            }
        }
        if rng.uniform() < 0.5 {
            let from_ms = h_ms * 0.2 * rng.uniform();
            s = s.with_burst(
                SimTime::from_millis(from_ms as u64),
                SimTime::from_millis((from_ms + 30.0) as u64),
                0.05 + 0.15 * rng.uniform(),
            );
        }
        s
    }
}

/// What the MM does with the jobs of a node whose failure was detected.
///
/// Under every policy the victim job's buddy allocation is freed and the
/// dead node quarantined; the policies differ in what happens to the job.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum FailurePolicy {
    /// Mark victims [`crate::JobState::Failed`]. The seed behavior.
    #[default]
    Fail,
    /// Requeue victims on surviving capacity with a bounded retry budget
    /// and linear backoff (`backoff × retry_number` before re-admission to
    /// the queue). A job exceeding `max_retries` is failed.
    Requeue {
        /// Retries allowed per job before it is failed for good.
        max_retries: u32,
        /// Base backoff before a retry re-enters the queue.
        backoff: SimSpan,
    },
    /// Shrink the victim's rank count to what the surviving capacity can
    /// place, then requeue it (unbounded retries — a shrinking job cannot
    /// be lost, only diminished).
    Shrink,
}

impl FailurePolicy {
    /// A requeue policy with a sensible default budget: 3 retries, 5 ms
    /// base backoff.
    pub fn requeue() -> Self {
        FailurePolicy::Requeue {
            max_retries: 3,
            backoff: SimSpan::from_millis(5),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_events() {
        let s = FaultSchedule::new()
            .crash(SimTime::from_millis(20), 3)
            .rejoin(SimTime::from_millis(500), 3)
            .stall(5, SimTime::from_millis(10), SimTime::from_millis(40))
            .with_xfer_errors(0.1)
            .with_burst(SimTime::from_millis(1), SimTime::from_millis(2), 0.5);
        assert_eq!(s.events.len(), 3);
        assert_eq!(s.bursts.len(), 1);
        assert!(!s.is_empty());
        assert!(s.validate(64, 1).is_ok());
    }

    #[test]
    fn empty_schedule_is_empty() {
        assert!(FaultSchedule::new().is_empty());
        assert!(FaultSchedule::default().validate(1, 1).is_ok());
    }

    #[test]
    fn validation_catches_bad_probabilities_and_windows() {
        assert!(FaultSchedule::new()
            .with_xfer_errors(1.5)
            .validate(4, 1)
            .is_err());
        assert!(FaultSchedule::new()
            .with_caw_drops(-0.1)
            .validate(4, 1)
            .is_err());
        assert!(FaultSchedule::new()
            .with_heartbeat_drops(2.0)
            .validate(4, 1)
            .is_err());
        assert!(FaultSchedule::new()
            .with_burst(SimTime::from_millis(5), SimTime::from_millis(5), 0.1)
            .validate(4, 1)
            .is_err());
        assert!(FaultSchedule::new()
            .stall(0, SimTime::from_millis(9), SimTime::from_millis(3))
            .validate(4, 1)
            .is_err());
        assert!(FaultSchedule::new()
            .crash(SimTime::ZERO, 9)
            .validate(4, 1)
            .is_err());
    }

    #[test]
    fn randomized_is_reproducible_and_valid() {
        let a = FaultSchedule::randomized(7, 64, SimSpan::from_secs(1));
        let b = FaultSchedule::randomized(7, 64, SimSpan::from_secs(1));
        assert_eq!(a, b, "same seed, same schedule");
        assert!(a.validate(64, 1).is_ok());
        assert!(!a.events.is_empty(), "always at least one crash");
        let c = FaultSchedule::randomized(8, 64, SimSpan::from_secs(1));
        assert_ne!(a, c, "different seeds diverge");
    }

    #[test]
    fn policy_defaults() {
        assert_eq!(FailurePolicy::default(), FailurePolicy::Fail);
        let FailurePolicy::Requeue {
            max_retries,
            backoff,
        } = FailurePolicy::requeue()
        else {
            panic!("requeue() must build Requeue");
        };
        assert_eq!(max_retries, 3);
        assert_eq!(backoff, SimSpan::from_millis(5));
    }
}
