//! Cluster assembly and the user-facing API.
//!
//! [`Cluster`] wires a complete simulated machine — one Machine Manager,
//! one Node Manager per node, and `cpus × mpl` Program Launchers per node —
//! around a [`World`], then exposes submit/run/inspect operations. This is
//! the entry point all examples, integration tests and benches use.

use crate::config::ClusterConfig;
use crate::fault::FaultEvent;
use crate::job::{JobId, JobRecord, JobSpec, JobState};
use crate::mm::MachineManager;
use crate::msg::Msg;
use crate::nm::NodeManager;
use crate::pl::ProgramLauncher;
use crate::world::World;
use storm_sim::{ComponentId, QueueStats, SimSpan, SimTime, Simulation};

/// A fully-wired simulated STORM cluster.
pub struct Cluster {
    sim: Simulation<World, Msg>,
    next_job: u32,
}

impl Cluster {
    /// Build a cluster for `cfg` (validated).
    pub fn new(cfg: ClusterConfig) -> Self {
        let seed = cfg.seed;
        let world = World::new(cfg);
        let cfg = world.cfg.clone();
        // Wheel buckets sized to a fraction of the strobe/collect period,
        // so a periodic tick advances the cursor a handful of buckets.
        let mut sim = Simulation::new_with_backend(
            world,
            seed,
            cfg.resolved_queue_backend(),
            SimSpan::from_nanos(cfg.collect_period().as_nanos() / 64),
        );
        // The DST delivery-order hook must be live before the first event
        // is posted so every insertion of the run is keyed (which is what
        // makes a seeded run regenerable as an explicit tie script).
        sim.set_delivery_order(cfg.delivery_order.clone());
        sim.set_event_batching(cfg.resolved_event_batching());
        // Parallel window execution is byte-identical to serial, so the
        // thread count never perturbs a run — the engine auto-suspends it
        // while a delivery-order hook is installed.
        sim.set_threads(cfg.resolved_threads() as usize);
        let mm = sim.add_component(MachineManager::new());
        let mut nms = Vec::with_capacity(cfg.nodes as usize);
        let mut pls = Vec::with_capacity(cfg.nodes as usize);
        for node in 0..cfg.nodes {
            nms.push(sim.add_component(NodeManager::new(node)));
            let per_node = cfg.cpus_per_node * u32::try_from(cfg.mpl_max).expect("mpl");
            let mut node_pls = Vec::with_capacity(per_node as usize);
            for i in 0..per_node {
                node_pls.push(sim.add_component(ProgramLauncher::new(node, i)));
            }
            pls.push(node_pls);
        }
        // Standby MM replicas are appended *after* every NM and PL so that a
        // standby-free cluster's component ids are untouched — one of the two
        // levers behind the byte-identity guarantee for fault-free runs.
        let mut mms = vec![mm];
        for rank in 1..=cfg.mm_standbys {
            mms.push(sim.add_component(MachineManager::standby(rank)));
        }
        {
            let w = sim.world_mut();
            w.wiring.mm = Some(mm);
            w.wiring.mms = mms.clone();
            w.wiring.nms = nms;
            w.wiring.pls = pls;
            if cfg.mm_standbys > 0 {
                // Allocate the epoch fence variable eagerly so the promotion
                // path never has to mutate the memory layout mid-run.
                w.mm_epoch_var = Some(w.mech.memory.alloc_var(0));
            }
        }
        // Fault detection needs the MM heartbeat loop running from t = 0,
        // and every standby's watchdog armed alongside it.
        if cfg.fault_detection {
            sim.post(SimTime::ZERO, mm, Msg::Tick);
            for &standby in &mms[1..] {
                sim.post(SimTime::ZERO, standby, Msg::MmWatchdog);
            }
        }
        // Post the fault schedule's timed events (the probabilistic faults
        // were installed in the mechanism layer by `World::new`).
        for ev in &cfg.faults.events {
            match *ev {
                FaultEvent::Crash { at, node } => {
                    let nm = sim.world().wiring.nms[node as usize];
                    sim.post(at, nm, Msg::FailNode);
                }
                FaultEvent::Rejoin { at, node } => {
                    let nm = sim.world().wiring.nms[node as usize];
                    sim.post(at, nm, Msg::RejoinNode);
                }
                FaultEvent::Stall { from, until, node } => {
                    let nm = sim.world().wiring.nms[node as usize];
                    sim.post(from, nm, Msg::StallNode { until });
                }
                FaultEvent::MmCrash { at, rank } => {
                    let target = sim.world().wiring.mms[rank as usize];
                    sim.post(at, target, Msg::MmFail);
                }
            }
        }
        Cluster { sim, next_job: 0 }
    }

    /// Enable trace recording (renderable via [`Cluster::trace`]).
    pub fn enable_tracing(&mut self) {
        self.sim.enable_tracing();
    }

    /// Enable trace recording with a record cap: once `capacity` records
    /// are held, further ones are counted as dropped instead of stored —
    /// bounding memory on long instrumented runs.
    pub fn enable_tracing_with_capacity(&mut self, capacity: usize) {
        self.sim.enable_tracing_with_capacity(capacity);
    }

    /// The rendered event trace (empty unless tracing was enabled).
    pub fn trace(&self) -> String {
        self.sim.tracer().render()
    }

    /// The telemetry sink (metrics registry + job spans). Disabled — and
    /// empty — unless the config set
    /// [`with_telemetry(true)`](ClusterConfig::with_telemetry).
    pub fn telemetry(&self) -> &storm_telemetry::Telemetry {
        &self.sim.world().telemetry
    }

    /// A deterministic snapshot of every registered metric.
    pub fn metrics_snapshot(&self) -> storm_telemetry::MetricsSnapshot {
        self.telemetry().metrics.snapshot()
    }

    /// The per-job lifecycle spans collected so far (completed jobs only).
    pub fn job_spans(&self) -> &[storm_telemetry::JobSpan] {
        self.telemetry().spans.spans()
    }

    /// Register a named continuous query, evaluated at every timeslice
    /// boundary from the next MM tick on (see [`crate::cq`]). Firings
    /// append to the bounded alert log ([`Cluster::alerts`]) and bump the
    /// labelled `cq.alerts` telemetry counter.
    pub fn register_query(&mut self, name: impl Into<String>, cond: crate::cq::Condition) {
        self.sim.world_mut().cq.register(name, cond);
    }

    /// The continuous-query alert log, oldest first.
    pub fn alerts(&self) -> &[crate::cq::Alert] {
        self.sim.world().cq.alerts()
    }

    /// The continuous-query registry (queries, firing counts, log bound).
    pub fn continuous_queries(&self) -> &crate::cq::ContinuousQueries {
        &self.sim.world().cq
    }

    /// A Chrome trace-event JSON document combining the simulator trace
    /// (instant events per dæmon) with the job lifecycle spans (complete
    /// events per job) — loadable in `chrome://tracing` or Perfetto.
    /// Enable both tracing and telemetry to populate both track families.
    pub fn chrome_trace(&self) -> String {
        storm_telemetry::chrome_trace(self.sim.tracer().records(), self.job_spans())
    }

    fn mm(&self) -> storm_sim::ComponentId {
        self.sim.world().wiring.mm.expect("MM wired at build")
    }

    /// The underlying simulation (checkpoint codec access).
    pub(crate) fn sim(&self) -> &Simulation<World, Msg> {
        &self.sim
    }

    /// Mutable simulation access (checkpoint codec access).
    pub(crate) fn sim_mut(&mut self) -> &mut Simulation<World, Msg> {
        &mut self.sim
    }

    /// The next job id to hand out (checkpoint codec access).
    pub(crate) fn next_job_counter(&self) -> u32 {
        self.next_job
    }

    /// Overwrite the job-id counter (checkpoint codec access).
    pub(crate) fn set_next_job_counter(&mut self, n: u32) {
        self.next_job = n;
    }

    /// Submit a job at the current simulated time.
    pub fn submit(&mut self, spec: JobSpec) -> JobId {
        let now = self.sim.now();
        self.submit_at(now, spec)
    }

    /// Submit a job at a future instant.
    pub fn submit_at(&mut self, at: SimTime, spec: JobSpec) -> JobId {
        assert!(
            spec.nodes_needed(self.sim.world().cfg.cpus_per_node) <= self.sim.world().cfg.nodes,
            "job needs more nodes than the cluster has"
        );
        let id = JobId(self.next_job);
        self.next_job += 1;
        self.sim.world_mut().register_job(JobRecord::new(id, spec));
        let mm = self.mm();
        self.sim.post(at, mm, Msg::Submit(id));
        id
    }

    /// Kill a job at `at` (how the endless hog programs are stopped).
    pub fn kill_at(&mut self, at: SimTime, job: JobId) {
        let mm = self.mm();
        self.sim.post(at, mm, Msg::Kill(job));
    }

    fn nm_of(&self, node: u32) -> ComponentId {
        let nodes = self.sim.world().cfg.nodes;
        assert!(
            node < nodes,
            "node {node} out of range (cluster has {nodes} nodes)"
        );
        self.sim.world().wiring.nms[node as usize]
    }

    /// Inject a node failure at `at`: the node's NM stops responding to
    /// everything (fragments, strobes, heartbeats).
    pub fn fail_node_at(&mut self, at: SimTime, node: u32) {
        let nm = self.nm_of(node);
        self.sim.post(at, nm, Msg::FailNode);
    }

    /// Revive a previously-failed node at `at`. The NM comes back with
    /// empty local state; the MM re-admits the node to the allocator once
    /// its heartbeats catch up.
    pub fn rejoin_node_at(&mut self, at: SimTime, node: u32) {
        let nm = self.nm_of(node);
        self.sim.post(at, nm, Msg::RejoinNode);
    }

    /// Stall a node's dæmon over `[from, until)`: messages are deferred
    /// (not lost) until the stall ends — the node looks dead to the
    /// heartbeat protocol but recovers by itself.
    pub fn stall_node(&mut self, node: u32, from: SimTime, until: SimTime) {
        let nm = self.nm_of(node);
        self.sim.post(from, nm, Msg::StallNode { until });
    }

    /// Kill an MM replica at `at`. Rank 0 is the primary; killing the
    /// currently active replica triggers the regroup protocol (standby
    /// watchdogs detect the silence, the lowest surviving rank promotes
    /// itself and fences the old epoch off the cluster).
    pub fn fail_mm_at(&mut self, at: SimTime, rank: u32) {
        let mms = &self.sim.world().wiring.mms;
        assert!(
            (rank as usize) < mms.len(),
            "MM rank {rank} out of range ({} replicas)",
            mms.len()
        );
        let target = mms[rank as usize];
        self.sim.post(at, target, Msg::MmFail);
    }

    /// Run until all submitted jobs are terminal and the event queue
    /// drains. Panics if the cluster cannot go idle (e.g. endless hog jobs
    /// that were never killed, or fault detection enabled — use
    /// [`Cluster::run_until`] for those).
    pub fn run_until_idle(&mut self) -> SimTime {
        assert!(
            !self.sim.world().cfg.fault_detection,
            "fault-detection clusters tick forever; use run_until"
        );
        let t = self.sim.run_to_completion();
        assert!(
            self.sim.world().is_idle(),
            "simulation drained but jobs are not terminal (endless job without a kill?)"
        );
        t
    }

    /// Run until `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        let t = self.sim.run_until(deadline);
        // If the run ended inside an armed idle leap, replay the skipped
        // ticks up to the deadline so snapshots taken now match an
        // un-leaped run tick for tick.
        self.sim.world_mut().settle_leap_through(deadline);
        t
    }

    /// Run until `job` reaches a terminal state (or the queue drains).
    /// Returns the completion instant.
    pub fn run_until_done(&mut self, job: JobId) -> SimTime {
        while !self.sim.world().job(job).state.is_terminal() {
            if !self.sim.step() {
                panic!("simulation drained before {job} completed");
            }
        }
        self.sim.now()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// A job's record.
    pub fn job(&self, id: JobId) -> &JobRecord {
        self.sim.world().job(id)
    }

    /// The shared world (configuration, stats, matrix, mechanisms).
    pub fn world(&self) -> &World {
        self.sim.world()
    }

    /// Mutable world access between runs — an escape hatch for experiments
    /// that tweak device state mid-run.
    ///
    /// For fault injection, prefer
    /// [`ClusterConfig::with_faults`](crate::config::ClusterConfig::with_faults):
    /// a declarative [`FaultSchedule`](crate::fault::FaultSchedule) is
    /// validated, reproducible from the config alone, and installs both the
    /// probabilistic mechanism-layer faults and the timed crash/rejoin/stall
    /// events — none of which this raw hook guarantees.
    pub fn with_world_mut<R>(&mut self, f: impl FnOnce(&mut World) -> R) -> R {
        f(self.sim.world_mut())
    }

    /// Total simulation events delivered (simulator-performance metric).
    /// A group delivery counts once however many components it reaches;
    /// this is the queue-pressure number that used to grow O(nodes).
    pub fn events_delivered(&self) -> u64 {
        self.sim.events_delivered()
    }

    /// Total component handler invocations. Unlike [`events_delivered`],
    /// this counts every member of a group delivery, so it is identical
    /// with and without `group_delivery` — which the determinism tests
    /// exploit.
    ///
    /// [`events_delivered`]: Cluster::events_delivered
    pub fn messages_handled(&self) -> u64 {
        self.sim.messages_handled()
    }

    /// Raw event-queue accounting (push/pop totals, current and peak
    /// depth) straight from the backend — no cloning. Depth counts a
    /// group-delivery entry once, so it is backend-identical but differs
    /// across delivery modes.
    pub fn queue_stats(&self) -> QueueStats {
        self.sim.queue_stats()
    }

    /// Payload-arena accounting (live/peak interned payloads, capacity,
    /// resident bytes) merged across the unicast and group arenas.
    pub fn arena_stats(&self) -> storm_sim::ArenaStats {
        self.sim.arena_stats()
    }

    /// Whether the engine is batching same-timeslice events (the resolved
    /// [`ClusterConfig::event_batching`] / `STORM_BATCH` setting).
    pub fn event_batching(&self) -> bool {
        self.sim.event_batching()
    }

    /// Worker threads for parallel window execution (the resolved
    /// [`ClusterConfig::threads`] / `STORM_THREADS` setting; 1 = serial).
    pub fn threads(&self) -> usize {
        self.sim.threads()
    }

    /// Windows executed on the parallel path so far (see
    /// [`Simulation::parallel_windows`]).
    ///
    /// [`Simulation::parallel_windows`]: storm_sim::Simulation::parallel_windows
    pub fn parallel_windows(&self) -> u64 {
        self.sim.parallel_windows()
    }

    /// Lower the minimum window size for parallel execution (test/bench
    /// hook — small clusters can't form the default 128-event windows, and
    /// the lock-step identity suites need the parallel path to actually
    /// run, not vacuously fall back to serial).
    pub fn set_parallel_window_min(&mut self, min: usize) {
        self.sim.set_parallel_window_min(min);
    }

    /// The engine's interleaving digest (see
    /// [`Simulation::interleaving_digest`]): identifies which delivery
    /// interleaving this run executed. Only accumulated when the config
    /// installed a [`DeliveryOrder`](storm_sim::DeliveryOrder) hook.
    ///
    /// [`Simulation::interleaving_digest`]: storm_sim::Simulation::interleaving_digest
    pub fn interleaving_digest(&self) -> u64 {
        self.sim.interleaving_digest()
    }

    /// Idle fast-forward accounting: `(leaps, slices)` — how many times
    /// the clock leaped over quiescent timeslices, and how many ticks were
    /// skipped in total.
    pub fn leap_stats(&self) -> (u64, u64) {
        let w = self.sim.world();
        (w.sim_leaps, w.sim_leaped_slices)
    }

    /// Summarise all jobs.
    pub fn report(&self) -> Report {
        let w = self.sim.world();
        Report {
            jobs: w
                .jobs
                .iter()
                .map(|r| JobSummary {
                    id: r.id,
                    name: r.spec.name.clone(),
                    ranks: r.spec.ranks,
                    state: r.state,
                    metrics: r.metrics.clone(),
                })
                .collect(),
            strobes: w.stats.strobes,
            fragments: w.stats.fragments,
            reports: w.stats.reports,
            completed_jobs: w.stats.completed_jobs,
        }
    }
}

/// One job's summary in a [`Report`].
#[derive(Debug, Clone)]
pub struct JobSummary {
    /// Job id.
    pub id: JobId,
    /// Job name.
    pub name: String,
    /// Rank count.
    pub ranks: u32,
    /// Final (or current) state.
    pub state: JobState,
    /// Timestamps.
    pub metrics: crate::job::JobMetrics,
}

/// End-of-run summary.
#[derive(Debug, Clone)]
pub struct Report {
    /// All jobs, in submission order.
    pub jobs: Vec<JobSummary>,
    /// Strobe multicasts issued.
    pub strobes: u64,
    /// Fragments broadcast.
    pub fragments: u64,
    /// NM reports collected.
    pub reports: u64,
    /// Jobs completed.
    pub completed_jobs: u64,
}

impl Report {
    /// Render a human-readable table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<6} {:<12} {:>6} {:<12} {:>12} {:>12} {:>12}",
            "id", "name", "ranks", "state", "send", "execute", "total"
        );
        for j in &self.jobs {
            let fmt_span = |s: Option<storm_sim::SimSpan>| match s {
                Some(s) => format!("{s}"),
                None => "-".to_string(),
            };
            let _ = writeln!(
                out,
                "{:<6} {:<12} {:>6} {:<12} {:>12} {:>12} {:>12}",
                format!("{}", j.id),
                j.name,
                j.ranks,
                format!("{:?}", j.state),
                fmt_span(j.metrics.send_span()),
                fmt_span(j.metrics.execute_span()),
                fmt_span(j.metrics.total_launch_span()),
            );
        }
        let _ = writeln!(
            out,
            "strobes={} fragments={} reports={} completed={}",
            self.strobes, self.fragments, self.reports, self.completed_jobs
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storm_apps::AppSpec;
    use storm_sim::SimSpan;

    #[test]
    fn do_nothing_job_launches_and_completes() {
        let mut cluster = Cluster::new(ClusterConfig::paper_cluster());
        let job = cluster.submit(JobSpec::new(AppSpec::do_nothing_mb(12), 256));
        cluster.run_until_idle();
        let rec = cluster.job(job);
        assert_eq!(rec.state, JobState::Completed);
        let m = &rec.metrics;
        assert!(m.send_span().is_some());
        assert!(m.execute_span().is_some());
        // Fig. 2 headline: ≈110 ms to launch 12 MB on 256 PEs; send ≈96 ms.
        let send = m.send_span().unwrap().as_millis_f64();
        let total = m.total_launch_span().unwrap().as_millis_f64();
        assert!((send - 96.0).abs() < 8.0, "send = {send:.1} ms");
        assert!((total - 110.0).abs() < 15.0, "total = {total:.1} ms");
    }

    #[test]
    fn launch_scales_with_binary_size() {
        let mut sends = Vec::new();
        for mb in [4u64, 8, 12] {
            let mut cluster = Cluster::new(ClusterConfig::paper_cluster());
            let job = cluster.submit(JobSpec::new(AppSpec::do_nothing_mb(mb), 256));
            cluster.run_until_idle();
            sends.push(
                cluster
                    .job(job)
                    .metrics
                    .send_span()
                    .unwrap()
                    .as_millis_f64(),
            );
        }
        // Send time proportional to binary size (Fig. 2).
        assert!(sends[0] < sends[1] && sends[1] < sends[2]);
        let ratio = sends[2] / sends[0];
        assert!(
            ratio > 2.3 && ratio < 3.7,
            "12 MB ≈ 3× the 4 MB send, got {ratio:.2}"
        );
    }

    #[test]
    fn execute_grows_with_pe_count() {
        let exec_at = |pes: u32| {
            let mut c = Cluster::new(ClusterConfig::paper_cluster().with_seed(42));
            let j = c.submit(JobSpec::new(AppSpec::do_nothing_mb(4), pes));
            c.run_until_idle();
            c.job(j).metrics.execute_span().unwrap().as_millis_f64()
        };
        let small = exec_at(1);
        let large = exec_at(256);
        assert!(
            large > small,
            "execute skew grows with PEs: {small:.2} vs {large:.2}"
        );
        assert!(large < 30.0, "execute stays in the ms range: {large:.2}");
    }

    #[test]
    fn sweep3d_runs_under_gang_scheduling() {
        let cfg = ClusterConfig::gang_cluster().with_timeslice(SimSpan::from_millis(50));
        let mut cluster = Cluster::new(cfg);
        let job =
            cluster.submit(JobSpec::new(AppSpec::sweep3d_default(), 64).with_ranks_per_node(2));
        cluster.run_until_idle();
        let rec = cluster.job(job);
        assert_eq!(rec.state, JobState::Completed);
        let runtime = rec.metrics.turnaround().unwrap().as_secs_f64();
        assert!(
            (runtime - 49.0).abs() < 3.0,
            "SWEEP3D runtime {runtime:.1} s"
        );
    }

    #[test]
    fn mpl2_normalised_runtime_matches_mpl1() {
        // Two SWEEP3D instances gang-scheduled with a 50 ms quantum finish
        // in ≈ 2× the single-instance time (Fig. 4's key claim at 2 ms;
        // 50 ms is the paper's default production quantum).
        let cfg = ClusterConfig::gang_cluster();
        let mut c1 = Cluster::new(cfg.clone());
        let j = c1.submit(JobSpec::new(AppSpec::sweep3d_default(), 64).with_ranks_per_node(2));
        c1.run_until_idle();
        let t1 = c1.job(j).metrics.turnaround().unwrap().as_secs_f64();

        let mut c2 = Cluster::new(cfg);
        let a = c2.submit(JobSpec::new(AppSpec::sweep3d_default(), 64).with_ranks_per_node(2));
        let b = c2.submit(JobSpec::new(AppSpec::sweep3d_default(), 64).with_ranks_per_node(2));
        c2.run_until_idle();
        let done_a = c2.job(a).metrics.completed.unwrap();
        let done_b = c2.job(b).metrics.completed.unwrap();
        let t2 = done_a.max(done_b).as_secs_f64() / 2.0;
        assert!(
            (t2 - t1).abs() / t1 < 0.05,
            "MPL=2 normalised {t2:.1} s vs MPL=1 {t1:.1} s"
        );
    }

    #[test]
    fn hog_jobs_run_until_killed() {
        let mut cluster = Cluster::new(ClusterConfig::paper_cluster());
        let hog = cluster.submit(JobSpec::new(AppSpec::SpinLoop, 256));
        cluster.kill_at(SimTime::from_secs(2), hog);
        cluster.run_until_idle();
        assert_eq!(cluster.job(hog).state, JobState::Killed);
    }

    #[test]
    fn report_renders() {
        let mut cluster = Cluster::new(ClusterConfig::paper_cluster());
        cluster.submit(JobSpec::new(AppSpec::do_nothing_mb(4), 16).named("probe"));
        cluster.run_until_idle();
        let report = cluster.report();
        assert_eq!(report.completed_jobs, 1);
        let text = report.render();
        assert!(text.contains("probe"));
        assert!(report.fragments >= 8, "4 MB / 512 KB ≥ 8 fragments");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut c = Cluster::new(ClusterConfig::paper_cluster().with_seed(777));
            let j = c.submit(JobSpec::new(AppSpec::do_nothing_mb(8), 64));
            c.run_until_idle();
            (
                c.job(j).metrics.clone(),
                c.events_delivered(),
                c.world().stats.fragments,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fault_detection_isolates_a_dead_node() {
        let mut cfg = ClusterConfig::paper_cluster();
        cfg.fault_detection = true;
        cfg.heartbeat_every = 4; // fault round every 4 ms
        let mut cluster = Cluster::new(cfg);
        cluster.fail_node_at(SimTime::from_millis(20), 13);
        cluster.run_until(SimTime::from_millis(80));
        let detected = &cluster.world().stats.failures_detected;
        assert_eq!(detected.len(), 1, "exactly one failure: {detected:?}");
        let (node, at) = detected[0];
        assert_eq!(node, 13);
        // Detected within two fault rounds (≤ ~2 × 4 ms) of the failure.
        let latency = at.since(SimTime::from_millis(20));
        assert!(
            latency <= SimSpan::from_millis(10),
            "detection took {latency}"
        );
    }

    #[test]
    #[should_panic(expected = "more nodes than the cluster")]
    fn oversized_job_rejected_at_submit() {
        let mut cluster = Cluster::new(ClusterConfig::paper_cluster());
        cluster.submit(JobSpec::new(AppSpec::do_nothing_mb(4), 10_000));
    }
}
