//! Cluster configuration, with defaults matching the paper's testbed
//! (Table 3: 64 × AlphaServer ES40, 4 CPUs/node, QsNET with QM-400 Elan3
//! NICs, RAM-disk filesystem) and the protocol parameters found optimal in
//! §3.3.1 (512 KB chunks × 4 receive-queue slots, 1 ms timeslice for the
//! launch experiments).

use crate::fault::{FailurePolicy, FaultSchedule};
use storm_fs::FsKind;
use storm_net::{BackgroundLoad, BufferPlacement, NetworkKind};
use storm_sim::{DeliveryOrder, QueueBackend, SimSpan};

/// Which queueing/scheduling policy the MM runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedulerKind {
    /// Gang scheduling with the Ousterhout matrix (the paper's focus).
    #[default]
    Gang,
    /// FCFS batch: one job at a time per node set, no time sharing.
    Batch,
    /// EASY backfilling: FCFS plus a reservation for the queue head;
    /// later jobs may jump only if they cannot delay the head.
    Backfill,
    /// Implicit coscheduling (Arpaci-Dusseau): no coordinated context
    /// switch — each node's local scheduler timeshares its resident ranks
    /// independently and communication uses spin-block, so ranks *drift
    /// into* coscheduling through message arrivals. Cheap (no global
    /// switches) but fine-grained communication pays a descheduled-peer
    /// penalty; see [`DaemonCosts::ics_local_quantum`].
    ImplicitCosched,
}

/// Calibrated dæmon/OS cost constants. All provenance is the paper unless
/// stated; see DESIGN.md §5 for the calibration table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DaemonCosts {
    /// NM processing time per timeslice strobe (runs on a spare CPU of the
    /// 4-way SMP, so it does not steal application time — but it bounds the
    /// usable quantum: §3.2.1 reports the scheduler melts down below
    /// ≈ 300 µs because "the NM cannot process the incoming control messages
    /// at the rate they arrive").
    pub nm_strobe_service: SimSpan,
    /// Application-visible cost of one coordinated context switch (preempt
    /// plus resume of resident processes; caches are largely unaffected
    /// for SWEEP3D, per the paper's footnote 4).
    pub switch_overhead: SimSpan,
    /// NM service time per ordinary control message (fragment header,
    /// launch command).
    pub nm_msg_service: SimSpan,
    /// Mean `fork()+exec` time for one rank.
    pub fork_base: SimSpan,
    /// Log-normal sigma of per-rank fork/OS noise (drives the execute-time
    /// growth with PE count in Fig. 2).
    pub fork_sigma: f64,
    /// Host "lightweight helper process" bandwidth: it services NIC TLB
    /// misses and file accesses, serialising with the broadcast and
    /// accounting for the gap between the 175 MB/s pipeline bound and the
    /// observed 131 MB/s protocol bandwidth (§3.3.1).
    pub helper_bw: f64,
    /// Fixed per-chunk protocol cost (interrupt, event signalling,
    /// flow-control check).
    pub chunk_fixed: SimSpan,
    /// Extra per-chunk cost per receive-queue slot beyond 4 (NIC virtual-
    /// memory TLB misses; §3.3.1: "increasing the number of slots …
    /// generates more TLB misses").
    pub tlb_per_extra_slot: SimSpan,
    /// Interval between COMPARE-AND-WRITE flow-control polls when the MM is
    /// blocked waiting for a free remote slot.
    pub caw_poll: SimSpan,
    /// Log-normal sigma of per-node, per-chunk write-time noise (what the
    /// multi-buffering absorbs).
    pub write_sigma: f64,
    /// Service time for a PL to notice its child exited and notify the NM.
    pub exit_detect: SimSpan,
    /// Mean of the exponential per-node OS scheduling delay incurred each
    /// time a dæmon must wake up to act (launch command, report flush).
    /// The max over nodes of this noise is what makes execute time grow
    /// with the PE count in Fig. 2 ("skew caused by local operating system
    /// scheduling effects").
    pub os_delay_mean: SimSpan,
    /// MM service time per received NM report.
    pub mm_report_service: SimSpan,
    /// Local OS scheduler quantum used by the implicit-coscheduling model:
    /// when a rank reaches an exchange whose peer is descheduled, it
    /// spin-blocks and waits on average a fraction of this quantum for the
    /// peer to be scheduled again.
    pub ics_local_quantum: SimSpan,
}

impl Default for DaemonCosts {
    fn default() -> Self {
        DaemonCosts {
            nm_strobe_service: SimSpan::from_micros(280),
            switch_overhead: SimSpan::from_micros(5),
            nm_msg_service: SimSpan::from_micros(30),
            fork_base: SimSpan::from_micros(900),
            fork_sigma: 0.35,
            helper_bw: 560.0e6,
            chunk_fixed: SimSpan::from_micros(20),
            tlb_per_extra_slot: SimSpan::from_micros(8),
            caw_poll: SimSpan::from_micros(50),
            write_sigma: 0.10,
            exit_detect: SimSpan::from_micros(60),
            os_delay_mean: SimSpan::from_micros(1200),
            mm_report_service: SimSpan::from_micros(20),
            ics_local_quantum: SimSpan::from_millis(10),
        }
    }
}

/// Full configuration of a simulated STORM cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Compute nodes.
    pub nodes: u32,
    /// CPUs (PEs) per node — 4 on the ES40.
    pub cpus_per_node: u32,
    /// Timeslice quantum: the MM issues commands, strobes context switches
    /// and collects events at this granularity.
    pub timeslice: SimSpan,
    /// Upper bound on the event-collection interval: with multi-second
    /// quanta the MM still collects reports at this cadence so launch /
    /// termination latency stays bounded (§3.2.1's "slight increase …
    /// toward the higher values").
    pub max_event_collect: SimSpan,
    /// Maximum multiprogramming level (matrix time slots).
    pub mpl_max: usize,
    /// Transfer chunk ("fragment") size in bytes.
    pub chunk_bytes: u64,
    /// Remote receive-queue depth (multi-buffering slots).
    pub queue_slots: u32,
    /// Filesystem holding binaries on the management node.
    pub fs: FsKind,
    /// Buffer placement for the read/broadcast pipeline.
    pub placement: BufferPlacement,
    /// Interconnect.
    pub network: NetworkKind,
    /// Background load (Fig. 3 scenarios).
    pub load: BackgroundLoad,
    /// Scheduling policy.
    pub scheduler: SchedulerKind,
    /// Enable periodic heartbeat fault detection (keeps the MM ticking
    /// forever; run such clusters with a deadline, not `run_until_idle`).
    pub fault_detection: bool,
    /// Heartbeat period multiplier: fault round every `k` ticks.
    pub heartbeat_every: u32,
    /// Deterministic fault schedule to inject into the run (crashes,
    /// rejoins, stalls, error bursts). Empty by default.
    pub faults: FaultSchedule,
    /// What the MM does with jobs lost to a detected node failure.
    pub failure_policy: FailurePolicy,
    /// Number of standby MM replicas (0 = the classic single-MM cluster).
    /// Standbys mirror the active MM's scheduling state via a decision log
    /// plus periodic checkpoints, and the lowest surviving rank promotes
    /// itself when the active MM's beats stop. A fault-free run with
    /// standbys configured is byte-identical (trace, stats, jobs) to a
    /// standby-free run.
    pub mm_standbys: u32,
    /// Deliver MM fan-outs (strobes, heartbeats, launch commands, fragment
    /// notifications) as single group-delivery events expanded lazily by
    /// the engine, instead of one queue entry per destination NM. Both
    /// modes produce byte-identical traces and statistics; group delivery
    /// keeps the event queue O(jobs) per timeslice instead of O(nodes),
    /// which is what makes 4096-node runs tractable. `false` exists to
    /// prove the equivalence in tests and to measure the win.
    pub group_delivery: bool,
    /// Record telemetry (metrics registry + per-job lifecycle spans).
    /// Off by default: recording is synchronous bookkeeping inside
    /// existing handlers, so enabling it never changes event counts, the
    /// trace, or the RNG stream — but the zero-cost default keeps the
    /// hot paths at a single branch.
    pub telemetry: bool,
    /// Event-queue backend. `None` (the default) resolves to the
    /// `STORM_QUEUE_BACKEND` environment variable (`heap` or `wheel`) if
    /// set, otherwise the timing wheel; `Some(_)` pins a backend
    /// explicitly (what the determinism tests use to compare the two).
    /// Pop order — and so traces, stats, and telemetry — is byte-identical
    /// either way.
    pub queue_backend: Option<QueueBackend>,
    /// Same-timeslice event batching in the engine. `None` (the default)
    /// resolves to the `STORM_BATCH` environment variable (`off`/`0`/
    /// `false` disables it) if set, otherwise on; `Some(_)` pins the
    /// choice explicitly. Batching is byte-identical to per-message
    /// delivery — the off switch exists to prove that in tests and to
    /// measure the win, mirroring `queue_backend`.
    pub event_batching: Option<bool>,
    /// Deterministic-simulation-testing hook: permute same-timestamp event
    /// delivery (and optionally add bounded delivery delay) under the
    /// hook's own seeded stream. `None` — the default — keeps the engine's
    /// classic `(time, seq)` order bit-identical; the hook is installed on
    /// the event queue before the first event is posted, so a `Some(_)`
    /// run keys every insertion of the simulation's lifetime. See
    /// DESIGN.md §14.
    pub delivery_order: Option<DeliveryOrder>,
    /// Worker threads for parallel intra-timeslice window execution
    /// (DESIGN.md §18). `None` (the default) resolves to the
    /// `STORM_THREADS` environment variable if set, otherwise 1 (serial);
    /// `Some(n)` pins the count explicitly. Any value is byte-identical
    /// to serial execution — the engine merges worker outputs back in
    /// canonical pop order — so this is purely a wall-clock knob.
    pub threads: Option<u32>,
    /// Idle fast-forward: when fault detection keeps the MM ticking but
    /// the cluster is quiescent (no queued or running jobs) and no event
    /// is due before the next heartbeat round, leap the clock straight to
    /// that round instead of strobing empty timeslices, replaying the
    /// skipped ticks' counters arithmetically. Observationally identical
    /// to the un-leaped run (see DESIGN.md §12); on by default.
    pub fast_forward: bool,
    /// Dæmon cost constants.
    pub daemon: DaemonCosts,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig::paper_cluster()
    }
}

impl ClusterConfig {
    /// The paper's evaluation cluster: 64 ES40 nodes × 4 CPUs, QsNET,
    /// RAM disk, main-memory buffers, 512 KB × 4-slot transfer protocol,
    /// 1 ms timeslice (the launch-experiment setting), gang scheduling,
    /// MPL ≤ 2.
    pub fn paper_cluster() -> Self {
        ClusterConfig {
            nodes: 64,
            cpus_per_node: 4,
            timeslice: SimSpan::from_millis(1),
            max_event_collect: SimSpan::from_millis(100),
            mpl_max: 2,
            chunk_bytes: 512 * 1024,
            queue_slots: 4,
            fs: FsKind::RamDisk,
            placement: BufferPlacement::MainMemory,
            network: NetworkKind::QsNet,
            load: BackgroundLoad::NONE,
            scheduler: SchedulerKind::Gang,
            fault_detection: false,
            heartbeat_every: 8,
            faults: FaultSchedule::default(),
            failure_policy: FailurePolicy::default(),
            mm_standbys: 0,
            group_delivery: true,
            telemetry: false,
            queue_backend: None,
            event_batching: None,
            delivery_order: None,
            threads: None,
            fast_forward: true,
            daemon: DaemonCosts::default(),
            seed: 0x5702_2002,
        }
    }

    /// The §3.2 gang-scheduling configuration: 32 nodes / 64 PEs
    /// (2 ranks per node), 50 ms quantum.
    pub fn gang_cluster() -> Self {
        ClusterConfig {
            nodes: 32,
            timeslice: SimSpan::from_millis(50),
            ..ClusterConfig::paper_cluster()
        }
    }

    /// Builder: node count.
    pub fn with_nodes(mut self, nodes: u32) -> Self {
        self.nodes = nodes;
        self
    }

    /// Builder: timeslice quantum.
    pub fn with_timeslice(mut self, q: SimSpan) -> Self {
        self.timeslice = q;
        self
    }

    /// Builder: background load.
    pub fn with_load(mut self, load: BackgroundLoad) -> Self {
        self.load = load;
        self
    }

    /// Builder: chunk size and slot count (the Fig. 8 sweep).
    pub fn with_transfer_protocol(mut self, chunk_bytes: u64, slots: u32) -> Self {
        self.chunk_bytes = chunk_bytes;
        self.queue_slots = slots;
        self
    }

    /// Builder: RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: scheduling policy.
    pub fn with_scheduler(mut self, s: SchedulerKind) -> Self {
        self.scheduler = s;
        self
    }

    /// Builder: install a deterministic fault schedule. When the schedule
    /// contains crash/rejoin/stall events, heartbeat fault detection is
    /// enabled automatically (it is what notices and heals them); pure
    /// error-probability schedules leave it as configured.
    pub fn with_faults(mut self, faults: FaultSchedule) -> Self {
        if !faults.events.is_empty() {
            self.fault_detection = true;
        }
        self.faults = faults;
        self
    }

    /// Builder: failure-recovery policy.
    pub fn with_failure_policy(mut self, policy: FailurePolicy) -> Self {
        self.failure_policy = policy;
        self
    }

    /// Builder: configure `n` standby MM replicas.
    pub fn with_mm_standbys(mut self, n: u32) -> Self {
        self.mm_standbys = n;
        self
    }

    /// Builder: toggle engine-level group delivery of MM fan-outs.
    pub fn with_group_delivery(mut self, on: bool) -> Self {
        self.group_delivery = on;
        self
    }

    /// Builder: toggle telemetry recording (metrics + lifecycle spans).
    pub fn with_telemetry(mut self, on: bool) -> Self {
        self.telemetry = on;
        self
    }

    /// Builder: pin the event-queue backend (overrides the
    /// `STORM_QUEUE_BACKEND` environment default).
    pub fn with_queue_backend(mut self, backend: QueueBackend) -> Self {
        self.queue_backend = Some(backend);
        self
    }

    /// Builder: toggle idle fast-forward.
    pub fn with_fast_forward(mut self, on: bool) -> Self {
        self.fast_forward = on;
        self
    }

    /// Builder: install a DST delivery-order hook (same-timestamp
    /// permutation under the hook's own seed). The default `None` keeps
    /// the classic `(time, seq)` order bit-identical.
    pub fn with_delivery_order(mut self, order: DeliveryOrder) -> Self {
        self.delivery_order = Some(order);
        self
    }

    /// The backend a [`crate::Cluster`] built from this config will use:
    /// the pinned choice, else the `STORM_QUEUE_BACKEND` environment
    /// variable (`heap`/`wheel`), else the timing wheel.
    pub fn resolved_queue_backend(&self) -> QueueBackend {
        if let Some(b) = self.queue_backend {
            return b;
        }
        match std::env::var("STORM_QUEUE_BACKEND").as_deref() {
            Ok("heap") => QueueBackend::Heap,
            Ok("wheel") => QueueBackend::Wheel,
            _ => QueueBackend::default(),
        }
    }

    /// Builder: pin same-timeslice event batching on or off (overrides
    /// the `STORM_BATCH` environment default).
    pub fn with_event_batching(mut self, on: bool) -> Self {
        self.event_batching = Some(on);
        self
    }

    /// Whether a [`crate::Cluster`] built from this config batches
    /// same-timeslice events: the pinned choice, else the `STORM_BATCH`
    /// environment variable (`off`, `0`, or `false` disables), else on.
    pub fn resolved_event_batching(&self) -> bool {
        if let Some(on) = self.event_batching {
            return on;
        }
        !matches!(
            std::env::var("STORM_BATCH").as_deref(),
            Ok("off") | Ok("0") | Ok("false")
        )
    }

    /// Builder: pin the worker-thread count for parallel window execution
    /// (overrides the `STORM_THREADS` environment default). Clamped to a
    /// minimum of 1 at resolution time.
    pub fn with_threads(mut self, threads: u32) -> Self {
        self.threads = Some(threads);
        self
    }

    /// The worker-thread count a [`crate::Cluster`] built from this config
    /// will use: the pinned choice, else the `STORM_THREADS` environment
    /// variable, else 1 (serial). Never less than 1.
    pub fn resolved_threads(&self) -> u32 {
        let raw = match self.threads {
            Some(t) => t,
            None => std::env::var("STORM_THREADS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(1),
        };
        raw.max(1)
    }

    /// Builder: enable heartbeat fault detection with a fault round every
    /// `every` ticks.
    pub fn with_fault_detection(mut self, every: u32) -> Self {
        assert!(every > 0, "heartbeat_every must be ≥ 1");
        self.fault_detection = true;
        self.heartbeat_every = every;
        self
    }

    /// Total PEs.
    pub fn total_pes(&self) -> u32 {
        self.nodes * self.cpus_per_node
    }

    /// The event-collection period: `min(timeslice, max_event_collect)`.
    pub fn collect_period(&self) -> SimSpan {
        self.timeslice.min(self.max_event_collect)
    }

    /// Whether the configured quantum is below the NM's strobe-processing
    /// floor (the §3.2.1 meltdown regime, ≈ 300 µs on the paper's cluster).
    pub fn quantum_infeasible(&self) -> bool {
        self.timeslice < self.daemon.nm_strobe_service
    }

    /// Validate ranges and cross-field constraints.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("nodes must be ≥ 1".into());
        }
        if self.cpus_per_node == 0 {
            return Err("cpus_per_node must be ≥ 1".into());
        }
        if self.timeslice.is_zero() {
            return Err("timeslice must be positive".into());
        }
        if self.chunk_bytes == 0 {
            return Err("chunk_bytes must be positive".into());
        }
        if self.queue_slots < 2 {
            return Err("queue_slots must be ≥ 2 (double buffering)".into());
        }
        if self.mpl_max == 0 {
            return Err("mpl_max must be ≥ 1".into());
        }
        if self.heartbeat_every == 0 {
            return Err("heartbeat_every must be ≥ 1".into());
        }
        self.faults.validate(self.nodes, self.mm_standbys + 1)?;
        self.load.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_matches_table3() {
        let c = ClusterConfig::paper_cluster();
        assert_eq!(c.nodes, 64);
        assert_eq!(c.cpus_per_node, 4);
        assert_eq!(c.total_pes(), 256);
        assert_eq!(c.chunk_bytes, 512 * 1024);
        assert_eq!(c.queue_slots, 4);
        assert_eq!(c.fs, FsKind::RamDisk);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn gang_cluster_matches_section_32() {
        let c = ClusterConfig::gang_cluster();
        assert_eq!(c.nodes, 32);
        assert_eq!(c.timeslice, SimSpan::from_millis(50));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builders_compose() {
        let c = ClusterConfig::paper_cluster()
            .with_nodes(16)
            .with_timeslice(SimSpan::from_millis(2))
            .with_transfer_protocol(64 * 1024, 8)
            .with_seed(7)
            .with_scheduler(SchedulerKind::Backfill);
        assert_eq!(c.nodes, 16);
        assert_eq!(c.chunk_bytes, 64 * 1024);
        assert_eq!(c.queue_slots, 8);
        assert_eq!(c.seed, 7);
        assert_eq!(c.scheduler, SchedulerKind::Backfill);
    }

    #[test]
    fn collect_period_is_capped() {
        let mut c = ClusterConfig::paper_cluster();
        c.timeslice = SimSpan::from_secs(8);
        assert_eq!(c.collect_period(), SimSpan::from_millis(100));
        c.timeslice = SimSpan::from_millis(2);
        assert_eq!(c.collect_period(), SimSpan::from_millis(2));
    }

    #[test]
    fn quantum_feasibility_floor() {
        let mut c = ClusterConfig::paper_cluster();
        c.timeslice = SimSpan::from_micros(100);
        assert!(c.quantum_infeasible());
        c.timeslice = SimSpan::from_micros(300);
        assert!(!c.quantum_infeasible());
    }

    #[test]
    fn with_faults_enables_detection_for_event_schedules() {
        use storm_sim::SimTime;
        let c = ClusterConfig::paper_cluster()
            .with_faults(FaultSchedule::new().crash(SimTime::from_millis(20), 3));
        assert!(c.fault_detection, "crash schedules need the heartbeat loop");
        assert!(c.validate().is_ok());
        let c =
            ClusterConfig::paper_cluster().with_faults(FaultSchedule::new().with_xfer_errors(0.1));
        assert!(!c.fault_detection, "pure error probabilities do not");
        let c = ClusterConfig::paper_cluster()
            .with_failure_policy(FailurePolicy::requeue())
            .with_fault_detection(4);
        assert!(c.fault_detection);
        assert_eq!(c.heartbeat_every, 4);
        assert_eq!(c.failure_policy, FailurePolicy::requeue());
    }

    #[test]
    fn validation_rejects_bad_fault_schedules() {
        let mut c = ClusterConfig::paper_cluster();
        c.faults = FaultSchedule::new().crash(storm_sim::SimTime::ZERO, 99);
        assert!(c.validate().is_err(), "crash beyond the node range");
        let mut c = ClusterConfig::paper_cluster();
        c.faults = FaultSchedule::new().with_xfer_errors(1.5);
        assert!(c.validate().is_err());
        let mut c = ClusterConfig::paper_cluster();
        c.heartbeat_every = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_catches_nonsense() {
        let base = ClusterConfig::paper_cluster();
        assert!(base.clone().with_nodes(0).validate().is_err());
        let mut c = base.clone();
        c.queue_slots = 1;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.chunk_bytes = 0;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.timeslice = SimSpan::ZERO;
        assert!(c.validate().is_err());
        let mut c = base;
        c.load = BackgroundLoad {
            cpu: 2.0,
            network: 0.0,
        };
        assert!(c.validate().is_err());
    }
}
