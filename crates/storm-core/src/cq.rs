//! Continuous queries: registerable predicates over cluster state,
//! evaluated at every timeslice boundary by the active Machine Manager.
//!
//! A continuous query is a named [`Condition`] — "quarantined nodes above
//! N", "queue depth growing for K consecutive slices" — checked against a
//! [`ClusterSample`] taken at each MM tick. When a condition holds, the
//! query fires a deterministic [`Alert`] record into a bounded in-world
//! log and bumps a labelled `cq.alerts` counter in the telemetry
//! registry.
//!
//! # Determinism and the zero-cost contract
//!
//! Evaluation is plain integer bookkeeping over the sample: it posts no
//! simulation events, draws no randomness, and never touches the trace,
//! so a run with queries registered has the same interleaving digest,
//! trace, and scheduling behaviour as the same run without them — alerts
//! are an observation, not an intervention. With **no** queries
//! registered the boundary hook is a single `is_empty()` branch: the run
//! is byte-identical to a build that never heard of continuous queries
//! (asserted in `tests/determinism.rs`).
//!
//! The full registry state (query definitions, growth streaks, the alert
//! log) is plain data and rides along in [`crate::checkpoint`] artifacts,
//! so a restored run raises exactly the alerts the uninterrupted run
//! would have.

use storm_sim::SimTime;
use storm_telemetry::MetricsRegistry;

/// Default bound on the in-world alert log.
pub const DEFAULT_ALERT_CAP: usize = 1024;

/// A predicate over a [`ClusterSample`], checked at each timeslice
/// boundary. All thresholds are strict ("above" means `>`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Condition {
    /// More than this many nodes quarantined.
    QuarantinedAbove(u32),
    /// More than this many jobs waiting in the MM queue.
    QueueDepthAbove(u64),
    /// Queue depth strictly grew at each of the last K boundaries.
    QueueDepthGrowingFor(u32),
    /// More than this many nodes currently failed.
    FailedNodesAbove(u32),
    /// More than this many jobs in the `Running` state.
    RunningJobsAbove(u32),
    /// Fewer than this many nodes alive (not failed, not quarantined).
    AliveNodesBelow(u32),
}

/// A point-in-time summary of cluster state, taken at a timeslice
/// boundary and fed to every registered query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterSample {
    /// Timeslice (MM tick) counter at the boundary.
    pub slice: u64,
    /// Simulated instant of the boundary.
    pub now: SimTime,
    /// Jobs waiting in the MM queue.
    pub queue_depth: u64,
    /// Nodes currently quarantined.
    pub quarantined: u32,
    /// Nodes currently failed.
    pub failed_nodes: u32,
    /// Nodes neither failed nor quarantined.
    pub alive_nodes: u32,
    /// Jobs in the `Running` state.
    pub running_jobs: u32,
}

/// A single firing of a continuous query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alert {
    /// Timeslice at which the query fired.
    pub slice: u64,
    /// Simulated instant of the firing boundary.
    pub at: SimTime,
    /// Name the query was registered under.
    pub query: String,
    /// The observed value that satisfied the condition (e.g. the
    /// quarantined count, the queue depth).
    pub observed: u64,
}

/// A registered query plus its evaluation state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContinuousQuery {
    /// Registration name; labels the alert records and the telemetry
    /// counter.
    pub name: String,
    /// The predicate.
    pub cond: Condition,
    /// Queue depth seen at the previous boundary (growth tracking).
    pub(crate) last_depth: Option<u64>,
    /// Consecutive boundaries with strictly growing queue depth.
    pub(crate) streak: u32,
    /// Total boundaries at which this query fired.
    pub firings: u64,
}

impl ContinuousQuery {
    pub(crate) fn from_parts(
        name: String,
        cond: Condition,
        last_depth: Option<u64>,
        streak: u32,
        firings: u64,
    ) -> Self {
        Self {
            name,
            cond,
            last_depth,
            streak,
            firings,
        }
    }

    pub(crate) fn eval_state(&self) -> (Option<u64>, u32) {
        (self.last_depth, self.streak)
    }

    /// Returns `(fired, observed)` and updates growth-tracking state.
    fn check(&mut self, s: &ClusterSample) -> (bool, u64) {
        match self.cond {
            Condition::QuarantinedAbove(n) => (s.quarantined > n, u64::from(s.quarantined)),
            Condition::QueueDepthAbove(n) => (s.queue_depth > n, s.queue_depth),
            Condition::QueueDepthGrowingFor(k) => {
                let grew = self.last_depth.is_some_and(|prev| s.queue_depth > prev);
                self.streak = if grew { self.streak + 1 } else { 0 };
                self.last_depth = Some(s.queue_depth);
                (k > 0 && self.streak >= k, s.queue_depth)
            }
            Condition::FailedNodesAbove(n) => (s.failed_nodes > n, u64::from(s.failed_nodes)),
            Condition::RunningJobsAbove(n) => (s.running_jobs > n, u64::from(s.running_jobs)),
            Condition::AliveNodesBelow(n) => (s.alive_nodes < n, u64::from(s.alive_nodes)),
        }
    }
}

/// The in-world continuous-query registry: the queries plus the bounded
/// alert log they fire into.
#[derive(Debug)]
pub struct ContinuousQueries {
    queries: Vec<ContinuousQuery>,
    alerts: Vec<Alert>,
    cap: usize,
    dropped: u64,
}

impl Default for ContinuousQueries {
    fn default() -> Self {
        Self::new()
    }
}

impl ContinuousQueries {
    /// An empty registry with the default alert-log bound.
    pub fn new() -> Self {
        Self {
            queries: Vec::new(),
            alerts: Vec::new(),
            cap: DEFAULT_ALERT_CAP,
            dropped: 0,
        }
    }

    /// Register a named query. Evaluation starts at the next timeslice
    /// boundary; names need not be unique (each registration fires its
    /// own alerts).
    pub fn register(&mut self, name: impl Into<String>, cond: Condition) {
        self.queries.push(ContinuousQuery {
            name: name.into(),
            cond,
            last_depth: None,
            streak: 0,
            firings: 0,
        });
    }

    /// True when no queries are registered — the boundary hook's fast
    /// path.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The registered queries, in registration order.
    pub fn queries(&self) -> &[ContinuousQuery] {
        &self.queries
    }

    /// The alert log, oldest first, capped at [`Self::capacity`].
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Alert-log bound; alerts past it are counted, not stored.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Change the alert-log bound (existing entries are kept even if
    /// over the new bound; only future alerts are gated).
    pub fn set_capacity(&mut self, cap: usize) {
        self.cap = cap;
    }

    /// Alerts dropped because the log was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Evaluate every query against one boundary sample, appending alert
    /// records and bumping the labelled `cq.alerts` telemetry counter
    /// for each firing.
    pub fn evaluate(&mut self, s: &ClusterSample, metrics: &mut MetricsRegistry) {
        for q in &mut self.queries {
            let (fired, observed) = q.check(s);
            if fired {
                q.firings += 1;
                metrics.inc_with("cq.alerts", vec![("query", q.name.clone())], 1);
                if self.alerts.len() < self.cap {
                    self.alerts.push(Alert {
                        slice: s.slice,
                        at: s.now,
                        query: q.name.clone(),
                        observed,
                    });
                } else {
                    self.dropped += 1;
                }
            }
        }
    }

    /// Rebuild a registry from checkpointed parts.
    pub(crate) fn from_parts(
        queries: Vec<ContinuousQuery>,
        alerts: Vec<Alert>,
        cap: usize,
        dropped: u64,
    ) -> Self {
        Self {
            queries,
            alerts,
            cap,
            dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(slice: u64, depth: u64, quarantined: u32) -> ClusterSample {
        ClusterSample {
            slice,
            now: SimTime::from_nanos(slice * 1_000),
            queue_depth: depth,
            quarantined,
            failed_nodes: 0,
            alive_nodes: 32 - quarantined,
            running_jobs: 0,
        }
    }

    #[test]
    fn threshold_queries_fire_and_log() {
        let mut cq = ContinuousQueries::new();
        let mut m = MetricsRegistry::new(true);
        cq.register("quarantine-watch", Condition::QuarantinedAbove(2));
        cq.evaluate(&sample(1, 0, 2), &mut m); // not strict-above
        cq.evaluate(&sample(2, 0, 3), &mut m);
        assert_eq!(cq.alerts().len(), 1);
        assert_eq!(cq.alerts()[0].query, "quarantine-watch");
        assert_eq!(cq.alerts()[0].observed, 3);
        assert_eq!(cq.alerts()[0].slice, 2);
        assert_eq!(cq.queries()[0].firings, 1);
    }

    #[test]
    fn growth_query_needs_consecutive_growth() {
        let mut cq = ContinuousQueries::new();
        let mut m = MetricsRegistry::new(false);
        cq.register("backlog", Condition::QueueDepthGrowingFor(2));
        for (slice, depth) in [(1, 5), (2, 6), (3, 7), (4, 7), (5, 8), (6, 9)] {
            cq.evaluate(&sample(slice, depth, 0), &mut m);
        }
        // Streak reaches 2 at slice 3, breaks at slice 4 (flat), and
        // reaches 2 again at slice 6.
        let slices: Vec<u64> = cq.alerts().iter().map(|a| a.slice).collect();
        assert_eq!(slices, vec![3, 6]);
    }

    #[test]
    fn alert_log_is_bounded() {
        let mut cq = ContinuousQueries::new();
        let mut m = MetricsRegistry::new(false);
        cq.set_capacity(3);
        cq.register("always", Condition::QueueDepthAbove(0));
        for slice in 1..=10 {
            cq.evaluate(&sample(slice, 1, 0), &mut m);
        }
        assert_eq!(cq.alerts().len(), 3);
        assert_eq!(cq.dropped(), 7);
        assert_eq!(cq.queries()[0].firings, 10);
    }
}
