//! Queueing/scheduling policies.
//!
//! The paper (§4 "Generality of Mechanisms"): "Currently, STORM supports
//! batch scheduling with and without backfilling, gang scheduling, and
//! implicit coscheduling." The policies here decide *which queued jobs to
//! start at a timeslice boundary*; the matrix and the strobe machinery are
//! shared. They are pure functions over a snapshot of the queue and matrix,
//! which keeps them unit-testable in isolation from the simulation.

use crate::config::SchedulerKind;
use crate::job::JobId;
use crate::matrix::GangMatrix;
use storm_sim::{SimSpan, SimTime};

/// A queued job as the policies see it.
#[derive(Debug, Clone, Copy)]
pub struct QueuedJob {
    /// Job id.
    pub id: JobId,
    /// Nodes the job needs (already rounded from ranks).
    pub nodes_needed: u32,
    /// User runtime estimate, if provided (backfilling needs it).
    pub estimate: Option<SimSpan>,
}

/// A running job as the policies see it.
#[derive(Debug, Clone, Copy)]
pub struct RunningJob {
    /// Nodes the job holds.
    pub nodes_held: u32,
    /// Estimated completion instant (start + estimate), if an estimate was
    /// given.
    pub est_end: Option<SimTime>,
}

/// Decide which queued jobs to start now. Returned ids are in start order
/// and are guaranteed to fit in the matrix if placed in that order.
pub fn select_starts(
    kind: SchedulerKind,
    now: SimTime,
    queued: &[QueuedJob],
    running: &[RunningJob],
    matrix: &GangMatrix,
) -> Vec<JobId> {
    match kind {
        // Implicit coscheduling admits jobs exactly like gang scheduling —
        // the difference is in how (or rather, whether) switches are
        // coordinated once they run.
        SchedulerKind::Gang | SchedulerKind::ImplicitCosched => {
            first_fit(queued, matrix, /*skip_blocked=*/ true)
        }
        SchedulerKind::Batch => first_fit(queued, matrix, /*skip_blocked=*/ false),
        SchedulerKind::Backfill => easy_backfill(now, queued, running, matrix),
    }
}

/// Greedy FCFS placement against a scratch copy of the matrix. With
/// `skip_blocked` (gang scheduling) jobs that do not fit are skipped;
/// without it (strict batch FCFS) selection stops at the first blocked job.
fn first_fit(queued: &[QueuedJob], matrix: &GangMatrix, skip_blocked: bool) -> Vec<JobId> {
    let mut scratch = matrix.clone();
    let mut starts = Vec::new();
    for q in queued {
        if scratch.place(q.id, q.nodes_needed).is_some() {
            starts.push(q.id);
        } else if !skip_blocked {
            break;
        }
    }
    starts
}

/// EASY backfilling: the queue head gets a *reservation* at the earliest
/// instant enough nodes will be free (by the running jobs' estimates);
/// later jobs may start out of order only if they cannot delay that
/// reservation — either they finish (by their own estimate) before the
/// shadow time, or they fit in the nodes left over even after the head's
/// reservation.
///
/// Jobs without estimates are conservatively never backfilled (and block
/// reservations pessimistically by assuming they never end).
fn easy_backfill(
    now: SimTime,
    queued: &[QueuedJob],
    running: &[RunningJob],
    matrix: &GangMatrix,
) -> Vec<JobId> {
    let Some(head) = queued.first() else {
        return Vec::new();
    };
    let mut scratch = matrix.clone();
    let mut starts = Vec::new();

    // If the head fits right now, start it (and continue FCFS greedily).
    if scratch.place(head.id, head.nodes_needed).is_some() {
        starts.push(head.id);
        for q in &queued[1..] {
            if scratch.place(q.id, q.nodes_needed).is_some() {
                starts.push(q.id);
            } else {
                break; // next blocked job becomes the new reservation holder
            }
        }
        return starts;
    }

    // Head is blocked: compute its shadow time and the extra nodes.
    let total: u32 = matrix.nodes();
    let held_now: u32 = running.iter().map(|r| r.nodes_held).sum();
    let mut free = total.saturating_sub(held_now);
    let mut ends: Vec<(SimTime, u32)> = running
        .iter()
        .map(|r| (r.est_end.unwrap_or(SimTime::MAX), r.nodes_held))
        .collect();
    ends.sort_by_key(|&(t, _)| t);
    let want = head.nodes_needed.next_power_of_two();
    let mut shadow = SimTime::MAX;
    let mut freed_at_shadow = free;
    for (t, n) in ends {
        if free >= want {
            break;
        }
        free += n;
        shadow = t;
        freed_at_shadow = free;
    }
    if free < want {
        shadow = SimTime::MAX; // cannot ever run by estimates; no reservation bound
    }
    // Nodes spare at shadow time beyond the head's claim.
    let spare_at_shadow = freed_at_shadow.saturating_sub(want);

    // With no computable shadow time (a running job without an estimate)
    // nothing may safely jump the head: any backfill could delay it.
    if shadow == SimTime::MAX {
        return starts;
    }
    // Try to backfill the rest.
    for q in &queued[1..] {
        let Some(est) = q.estimate else { continue };
        let fits_now = scratch.clone().place(q.id, q.nodes_needed).is_some();
        if !fits_now {
            continue;
        }
        let ends_before_shadow = now + est <= shadow;
        let within_spare = q.nodes_needed.next_power_of_two() <= spare_at_shadow;
        if ends_before_shadow || within_spare {
            scratch.place(q.id, q.nodes_needed);
            starts.push(q.id);
        }
    }
    starts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(id: u32, nodes: u32, est_s: Option<u64>) -> QueuedJob {
        QueuedJob {
            id: JobId(id),
            nodes_needed: nodes,
            estimate: est_s.map(SimSpan::from_secs),
        }
    }

    fn r(nodes: u32, end_s: Option<u64>) -> RunningJob {
        RunningJob {
            nodes_held: nodes,
            est_end: end_s.map(SimTime::from_secs),
        }
    }

    #[test]
    fn gang_skips_blocked_jobs() {
        let matrix = GangMatrix::new(8, 1);
        let queued = [q(0, 8, None), q(1, 16, None), q(2, 4, None)];
        let starts = select_starts(SchedulerKind::Gang, SimTime::ZERO, &queued, &[], &matrix);
        // Job 1 never fits (16 > 8); 0 fills the machine; 2 cannot fit after 0.
        assert_eq!(starts, vec![JobId(0)]);
        // With MPL 2, job 2 lands in a second slot.
        let matrix2 = GangMatrix::new(8, 2);
        let starts2 = select_starts(SchedulerKind::Gang, SimTime::ZERO, &queued, &[], &matrix2);
        assert_eq!(starts2, vec![JobId(0), JobId(2)]);
    }

    #[test]
    fn batch_is_strict_fcfs() {
        let matrix = GangMatrix::new(8, 1);
        let queued = [q(0, 8, None), q(1, 4, None)];
        // Head fills machine; strict FCFS must NOT start job 1 ahead of later
        // capacity.
        let mut m = matrix.clone();
        m.place(JobId(99), 8).unwrap();
        let starts = select_starts(SchedulerKind::Batch, SimTime::ZERO, &queued, &[], &m);
        assert!(starts.is_empty(), "blocked head blocks everything");
        let starts2 = select_starts(SchedulerKind::Batch, SimTime::ZERO, &queued, &[], &matrix);
        assert_eq!(starts2, vec![JobId(0)], "8-node head fills the machine");
    }

    #[test]
    fn backfill_starts_head_when_it_fits() {
        let matrix = GangMatrix::new(8, 1);
        let queued = [q(0, 4, Some(100)), q(1, 4, Some(100)), q(2, 4, Some(1))];
        let starts = select_starts(
            SchedulerKind::Backfill,
            SimTime::ZERO,
            &queued,
            &[],
            &matrix,
        );
        assert_eq!(starts, vec![JobId(0), JobId(1)]);
    }

    #[test]
    fn backfill_lets_short_job_jump_without_delaying_head() {
        // Machine: 8 nodes, all held by a running job ending at t=100.
        // Head wants 8 nodes → reservation at t=100.
        // A 2-node 50 s job CANNOT backfill (no free nodes at all right now).
        let mut matrix = GangMatrix::new(8, 1);
        matrix.place(JobId(90), 8).unwrap();
        let running = [r(8, Some(100))];
        let queued = [q(0, 8, Some(100)), q(1, 2, Some(50))];
        let starts = select_starts(
            SchedulerKind::Backfill,
            SimTime::from_secs(0),
            &queued,
            &running,
            &matrix,
        );
        assert!(starts.is_empty());

        // Now: 4 of 8 nodes held until t=100; head wants 8 → shadow = 100.
        // A 2-node job with a 50 s estimate ends at t=50 ≤ 100: backfills.
        // A 2-node job with a 200 s estimate would delay the head: must not.
        let mut matrix = GangMatrix::new(8, 1);
        matrix.place(JobId(90), 4).unwrap();
        let running = [r(4, Some(100))];
        let queued = [q(0, 8, Some(100)), q(1, 2, Some(50)), q(2, 2, Some(200))];
        let starts = select_starts(
            SchedulerKind::Backfill,
            SimTime::from_secs(0),
            &queued,
            &running,
            &matrix,
        );
        assert_eq!(starts, vec![JobId(1)], "only the short job may jump");
    }

    #[test]
    fn backfill_never_delays_the_reservation() {
        // The EASY property: after backfilling, the head can still start at
        // its shadow time. 16 nodes; 8 held to t=100, head wants 16 (shadow
        // 100, spare 0). A long 4-node job must not backfill even though 8
        // nodes are free right now.
        let mut matrix = GangMatrix::new(16, 1);
        matrix.place(JobId(90), 8).unwrap();
        let running = [r(8, Some(100))];
        let queued = [q(0, 16, Some(10)), q(1, 4, Some(1_000))];
        let starts = select_starts(
            SchedulerKind::Backfill,
            SimTime::from_secs(0),
            &queued,
            &running,
            &matrix,
        );
        assert!(starts.is_empty());
        // But a 4-node job that *ends* by t=100 may.
        let queued = [q(0, 16, Some(10)), q(1, 4, Some(99))];
        let starts = select_starts(
            SchedulerKind::Backfill,
            SimTime::from_secs(0),
            &queued,
            &running,
            &matrix,
        );
        assert_eq!(starts, vec![JobId(1)]);
    }

    #[test]
    fn backfill_without_estimate_never_jumps() {
        let mut matrix = GangMatrix::new(8, 1);
        matrix.place(JobId(90), 4).unwrap();
        let running = [r(4, Some(100))];
        let queued = [q(0, 8, Some(100)), q(1, 2, None)];
        let starts = select_starts(
            SchedulerKind::Backfill,
            SimTime::ZERO,
            &queued,
            &running,
            &matrix,
        );
        assert!(starts.is_empty());
    }

    #[test]
    fn empty_queue_is_fine() {
        let matrix = GangMatrix::new(8, 2);
        for kind in [
            SchedulerKind::Gang,
            SchedulerKind::Batch,
            SchedulerKind::Backfill,
        ] {
            assert!(select_starts(kind, SimTime::ZERO, &[], &[], &matrix).is_empty());
        }
    }
}
