//! The shared world: everything the dæmons can observe and mutate besides
//! their own private state — job records, the gang matrix, the mechanism
//! layer (global memory), the network/filesystem devices, and counters.

use crate::config::ClusterConfig;
use crate::job::{JobId, JobRecord};
use crate::matrix::GangMatrix;
use crate::replica::{MmCoreState, MmRole, ReplStats, ReplicaState};
use std::collections::VecDeque;
use std::sync::Arc;
use storm_mech::{Mechanisms, NodeId, NodeSet, VarId};
use storm_net::{Nic, QsNetModel};
use storm_sim::{ComponentId, GroupTargets, ShardWorld, SimSpan, SimTime};
use storm_telemetry::Telemetry;

/// Component wiring: where each dæmon lives in the simulation.
#[derive(Debug, Clone, Default)]
pub struct Wiring {
    /// The *currently active* Machine Manager (repointed on failover).
    pub mm: Option<ComponentId>,
    /// Every MM replica, indexed by rank; `mms[0]` is the primary.
    pub mms: Vec<ComponentId>,
    /// One Node Manager per node.
    pub nms: Vec<ComponentId>,
    /// Program Launchers per node (`cpus_per_node × mpl_max` each).
    pub pls: Vec<Vec<ComponentId>>,
}

impl Wiring {
    /// The [`GroupTargets`] addressing the NMs of a node set, in ascending
    /// node order. `Cluster::new` lays NMs out at a fixed component-id
    /// stride, so `All`/`Range` sets need no per-member allocation at all;
    /// `List` sets (fault-detection survivors) materialise a shared slice.
    pub fn nm_targets(&self, set: &NodeSet) -> GroupTargets {
        let stride = if self.nms.len() >= 2 {
            u32::try_from(self.nms[1].index() - self.nms[0].index()).expect("nm stride")
        } else {
            1
        };
        match *set {
            NodeSet::All(n) => {
                debug_assert_eq!(n as usize, self.nms.len());
                GroupTargets::Strided {
                    first: self.nms[0],
                    stride,
                    len: n,
                }
            }
            NodeSet::Range { start, len } => GroupTargets::Strided {
                first: self.nms[start as usize],
                stride,
                len,
            },
            NodeSet::List(ref v) => {
                let ids: Arc<[ComponentId]> = v.iter().map(|n| self.nms[n.index()]).collect();
                GroupTargets::List(ids)
            }
        }
    }
}

/// Struct-of-arrays per-node health state: failure flags, failure
/// instants, and quarantine flags live in parallel dense arrays keyed by
/// node index, so the sweeps the MM runs every timeslice (quarantine
/// census at each health sample, promotion-time quarantine adoption) are
/// linear scans — and the quarantine count itself is maintained
/// incrementally, making the per-tick census O(1). This is also the
/// layout the planned sharded MM partitions by node range.
#[derive(Debug, Clone)]
pub struct NodeTable {
    failed: Vec<bool>,
    failed_at: Vec<Option<SimTime>>,
    quarantined: Vec<bool>,
    quarantined_count: u32,
}

impl NodeTable {
    /// A table of `nodes` healthy nodes.
    pub fn new(nodes: u32) -> Self {
        NodeTable {
            failed: vec![false; nodes as usize],
            failed_at: vec![None; nodes as usize],
            quarantined: vec![false; nodes as usize],
            quarantined_count: 0,
        }
    }

    /// Number of nodes in the table.
    pub fn len(&self) -> usize {
        self.failed.len()
    }

    /// True when the table is empty (zero-node clusters are rejected by
    /// config validation, but the type stands alone).
    pub fn is_empty(&self) -> bool {
        self.failed.is_empty()
    }

    /// Is `node` currently failed (fault injected, not yet rejoined)?
    pub fn is_failed(&self, node: u32) -> bool {
        self.failed[node as usize]
    }

    /// When `node`'s current failure was injected (`None` while healthy).
    /// The base instant for the fault-detection latency metric;
    /// stall-based detections have no injection instant and record no
    /// latency.
    pub fn failed_since(&self, node: u32) -> Option<SimTime> {
        self.failed_at[node as usize]
    }

    /// Record an injected failure of `node` at `at`.
    pub fn mark_failed(&mut self, node: u32, at: SimTime) {
        self.failed[node as usize] = true;
        self.failed_at[node as usize] = Some(at);
    }

    /// Clear `node`'s failure record (the node rejoined).
    pub fn clear_failed(&mut self, node: u32) {
        self.failed[node as usize] = false;
        self.failed_at[node as usize] = None;
    }

    /// Is `node` quarantined out of the allocator?
    pub fn is_quarantined(&self, node: u32) -> bool {
        self.quarantined[node as usize]
    }

    /// Set or clear `node`'s quarantine flag, keeping the census current.
    pub fn set_quarantined(&mut self, node: u32, on: bool) {
        let flag = &mut self.quarantined[node as usize];
        if *flag != on {
            *flag = on;
            if on {
                self.quarantined_count += 1;
            } else {
                self.quarantined_count -= 1;
            }
        }
    }

    /// Flip `node`'s quarantine flag (DST desync injection), returning the
    /// new value.
    pub fn toggle_quarantined(&mut self, node: u32) -> bool {
        let on = !self.quarantined[node as usize];
        self.set_quarantined(node, on);
        on
    }

    /// Nodes currently quarantined — maintained incrementally, so the
    /// per-tick health sample pays one load instead of a full scan.
    pub fn quarantined_count(&self) -> u32 {
        self.quarantined_count
    }

    /// Quarantined node indices, ascending.
    pub fn quarantined_nodes(&self) -> impl Iterator<Item = u32> + '_ {
        self.quarantined
            .iter()
            .enumerate()
            .filter(|&(_, &q)| q)
            .map(|(n, _)| n as u32)
    }
}

/// Cluster-wide counters, for tests, reports and the benches.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClusterStats {
    /// Strobe multicasts issued by the MM.
    pub strobes: u64,
    /// Fragments broadcast (per chunk, not per destination).
    pub fragments: u64,
    /// Flow-control COMPARE-AND-WRITE polls that found the queue full.
    pub flow_stalls: u64,
    /// NM reports collected by the MM.
    pub reports: u64,
    /// Jobs completed.
    pub completed_jobs: u64,
    /// Node failures detected, with detection instant.
    pub failures_detected: Vec<(u32, SimTime)>,
    /// Quarantined nodes re-admitted after catching up on heartbeats, with
    /// re-admission instant.
    pub rejoins: Vec<(u32, SimTime)>,
    /// Jobs requeued by the failure-recovery policy (one count per retry).
    pub requeues: u64,
    /// COMPARE-AND-WRITE queries lost to the injected drop probability.
    pub caw_drops: u64,
    /// Heartbeat deliveries dropped at NMs by the injected drop
    /// probability.
    pub hb_drops: u64,
    /// Transfers that suffered (and retried after) an injected network
    /// error.
    pub xfer_retries: u64,
    /// Strobes whose NM-side processing backlog exceeded 4 quanta — the
    /// §3.2.1 meltdown indicator.
    pub nm_overruns: u64,
}

/// The shared world type for the STORM simulation.
#[derive(Debug)]
pub struct World {
    /// Configuration (immutable during a run).
    pub cfg: ClusterConfig,
    /// QsNET timing model for this cluster size.
    pub qsnet: QsNetModel,
    /// The STORM mechanisms (global memory, fault plan, counters).
    pub mech: Mechanisms,
    /// All jobs ever submitted, indexed by `JobId`.
    pub jobs: Vec<JobRecord>,
    /// Queued job ids awaiting allocation, FCFS order.
    pub queue: VecDeque<JobId>,
    /// The gang matrix.
    pub matrix: GangMatrix,
    /// Jobs per slot (mirror of the matrix, cheap for NMs to scan).
    pub slot_jobs: Vec<Vec<JobId>>,
    /// Currently active time slot.
    pub active_slot: usize,
    /// Per-node health state (failure flags/instants, quarantine census)
    /// in struct-of-arrays layout — see [`NodeTable`].
    pub nodes: NodeTable,
    /// The management node's filesystem read device (serialises reads).
    pub read_dev: Nic,
    /// The source NIC + helper process (serialises broadcasts).
    pub bcast_dev: Nic,
    /// Fault-detection heartbeat counter variable, when enabled.
    pub hb_var: Option<storm_mech::VarId>,
    /// Current heartbeat round.
    pub hb_round: i64,
    /// The active MM's authoritative mirror of its replicated private
    /// state. Maintained only when standbys are configured.
    pub mm_core: MmCoreState,
    /// Per-rank standby replica state (entry 0, the primary, is unused).
    pub mm_replicas: Vec<ReplicaState>,
    /// Per-rank MM roles. Always length `mm_standbys + 1`.
    pub mm_roles: Vec<MmRole>,
    /// Per-rank MM failure flags (injected `MmFail`).
    pub mm_failed: Vec<bool>,
    /// When each MM replica's failure was injected.
    pub mm_failed_at: Vec<Option<SimTime>>,
    /// Rank of the currently active MM.
    pub mm_active_rank: u32,
    /// Current MM epoch; bumped (and CAW-fenced into every node's memory)
    /// on each promotion.
    pub mm_epoch: u64,
    /// Global-memory variable holding the fenced epoch, when standbys are
    /// configured.
    pub mm_epoch_var: Option<storm_mech::VarId>,
    /// Outstanding requeue timers `(job, fire_at)` — armed backoffs whose
    /// `RequeueJob` has not yet been admitted. A promoted MM re-posts
    /// these, because the dead MM's self-timers die with it.
    pub requeue_pending: Vec<(JobId, SimTime)>,
    /// Replication-plane counters (separate from [`ClusterStats`] so the
    /// standby-free byte-identity contract holds).
    pub repl: ReplStats,
    /// Component wiring.
    pub wiring: Wiring,
    /// Counters.
    pub stats: ClusterStats,
    /// Telemetry sink (metrics registry + job lifecycle spans); disabled
    /// unless [`ClusterConfig::telemetry`] is set.
    pub telemetry: Telemetry,
    /// Continuous queries evaluated at each timeslice boundary, plus
    /// their bounded alert log (see [`crate::cq`]). Empty by default.
    pub cq: crate::cq::ContinuousQueries,
    /// Armed idle fast-forward, if any (see [`IdleLeap`]).
    pub(crate) leap: Option<IdleLeap>,
    /// Number of idle fast-forward leaps taken.
    pub sim_leaps: u64,
    /// Total quiescent collect-period ticks skipped by fast-forward.
    pub sim_leaped_slices: u64,
}

/// An armed idle fast-forward: the MM tick chain has leaped over a run of
/// quiescent collect-period boundaries, parking its next `Tick` just
/// before the upcoming heartbeat round, and the arithmetic effects of the
/// skipped ticks are replayed lazily — when the next tick actually fires,
/// or at a `run_until` deadline that lands mid-gap (see DESIGN.md §12).
#[derive(Debug, Clone, Copy)]
pub(crate) struct IdleLeap {
    /// The real tick (a collect-period boundary) that armed the leap.
    pub from: SimTime,
    /// When the parked `Tick` event fires. Lowered when a mid-gap message
    /// (e.g. a submit) re-densifies the chain; the superseded far tick is
    /// deduplicated by the MM when it eventually pops.
    pub parked: SimTime,
    /// Boundary through which skipped-tick effects have been replayed.
    pub settled: SimTime,
    /// Logical pending-message count each skipped tick would observe.
    pub pending: u64,
    /// Matrix-utilisation sample each skipped tick would record.
    pub pct: Option<u64>,
}

impl World {
    /// Build the world for a validated configuration.
    pub fn new(cfg: ClusterConfig) -> Self {
        cfg.validate().expect("invalid cluster configuration");
        let qsnet = QsNetModel::for_nodes(cfg.nodes);
        let mut mech = match cfg.network {
            storm_net::NetworkKind::QsNet => Mechanisms::qsnet(cfg.nodes),
            other => Mechanisms::new(storm_mech::MechanismImpl::emulated(other), cfg.nodes),
        };
        // Install the schedule's probabilistic faults at the mechanism
        // layer; the timed events are posted by `Cluster::new`.
        mech.fault.xfer_error_prob = cfg.faults.xfer_error_prob;
        mech.fault.caw_drop_prob = cfg.faults.caw_drop_prob;
        mech.fault.bursts = cfg.faults.bursts.clone();
        let matrix = GangMatrix::new(cfg.nodes, cfg.mpl_max);
        World {
            qsnet,
            mech,
            jobs: Vec::new(),
            queue: VecDeque::new(),
            slot_jobs: Vec::new(),
            matrix,
            active_slot: 0,
            nodes: NodeTable::new(cfg.nodes),
            read_dev: Nic::new(),
            bcast_dev: Nic::new(),
            hb_var: None,
            hb_round: 0,
            mm_core: MmCoreState::default(),
            mm_replicas: (0..=cfg.mm_standbys)
                .map(|_| ReplicaState::default())
                .collect(),
            mm_roles: {
                let mut r = vec![MmRole::Active];
                r.extend((0..cfg.mm_standbys).map(|_| MmRole::Standby));
                r
            },
            mm_failed: vec![false; cfg.mm_standbys as usize + 1],
            mm_failed_at: vec![None; cfg.mm_standbys as usize + 1],
            mm_active_rank: 0,
            mm_epoch: 0,
            mm_epoch_var: None,
            requeue_pending: Vec::new(),
            repl: ReplStats::default(),
            wiring: Wiring::default(),
            stats: ClusterStats::default(),
            telemetry: Telemetry::new(cfg.telemetry),
            cq: crate::cq::ContinuousQueries::new(),
            leap: None,
            sim_leaps: 0,
            sim_leaped_slices: 0,
            cfg,
        }
    }

    /// Bump the telemetry counter `name` by one (single branch when
    /// telemetry is off).
    pub fn metric_inc(&mut self, name: &'static str) {
        self.telemetry.metrics.inc(name, 1);
    }

    /// Register a new job record; returns its id.
    pub fn register_job(&mut self, rec: JobRecord) -> JobId {
        let id = rec.id;
        assert_eq!(id.index(), self.jobs.len(), "job ids must be dense");
        self.jobs.push(rec);
        id
    }

    /// Job by id.
    pub fn job(&self, id: JobId) -> &JobRecord {
        &self.jobs[id.index()]
    }

    /// Mutable job by id.
    pub fn job_mut(&mut self, id: JobId) -> &mut JobRecord {
        &mut self.jobs[id.index()]
    }

    /// The point-to-point span an application message of `bytes` takes,
    /// including background-load stretching — used to cost the workloads'
    /// exchange phases.
    pub fn comm_span(&self, bytes: u64) -> SimSpan {
        if bytes == 0 {
            return SimSpan::ZERO;
        }
        let base = self.qsnet.ptp_span(bytes);
        if self.cfg.load.network > 0.0 {
            // Stretch only the bandwidth-proportional part.
            let data = SimSpan::for_bytes(bytes, self.qsnet.params.link_bw);
            let fixed = base.saturating_sub(data);
            fixed
                + SimSpan::for_bytes(
                    bytes,
                    self.cfg
                        .load
                        .effective_bw(self.qsnet.params.link_bw)
                        .max(1.0),
                )
        } else {
            base
        }
    }

    /// Evaluate every registered continuous query against the cluster
    /// state at a timeslice boundary (`slice` = MM tick counter). Called
    /// by the active MM's tick handler; a no-op single branch when no
    /// queries are registered, preserving the zero-cost contract.
    pub fn evaluate_continuous_queries(&mut self, slice: u64, now: SimTime) {
        if self.cq.is_empty() {
            return;
        }
        let failed_nodes = (0..self.cfg.nodes)
            .filter(|&n| self.nodes.is_failed(n))
            .count() as u32;
        let quarantined = self.nodes.quarantined_count();
        let sample = crate::cq::ClusterSample {
            slice,
            now,
            queue_depth: self.queue.len() as u64,
            quarantined,
            failed_nodes,
            alive_nodes: self.cfg.nodes.saturating_sub(failed_nodes + quarantined),
            running_jobs: self
                .jobs
                .iter()
                .filter(|j| j.state == crate::job::JobState::Running)
                .count() as u32,
        };
        self.cq.evaluate(&sample, &mut self.telemetry.metrics);
    }

    /// Is MM replication configured (any standby replicas)?
    pub fn repl_enabled(&self) -> bool {
        self.cfg.mm_standbys > 0
    }

    /// Are all jobs terminal and the queue empty (cluster idle)?
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.jobs.iter().all(|j| j.state.is_terminal())
    }

    /// Idle in the strong sense fast-forward requires: nothing queued,
    /// every job terminal, and the gang matrix empty — a tick over this
    /// state draws no randomness, records no trace, and changes no stats.
    pub fn is_quiescent(&self) -> bool {
        self.is_idle() && self.matrix.job_count() == 0
    }

    /// Replay the per-tick arithmetic of skipped quiescent boundaries in
    /// `(leap.settled, upto]`, advancing the settled watermark. Counters
    /// and histogram observations accumulate; gauges need no replay (the
    /// skipped ticks would re-set the values they already hold). Keeps the
    /// leap armed — the caller decides when to disarm.
    pub(crate) fn settle_leap_through(&mut self, upto: SimTime) {
        let Some(l) = self.leap else { return };
        let period = self.cfg.collect_period();
        let upto = upto.prev_boundary(period);
        if upto <= l.settled {
            return;
        }
        let k = upto.boundaries_since(l.settled, period);
        self.leap.as_mut().expect("armed").settled = upto;
        self.sim_leaps += 1;
        self.sim_leaped_slices += k;
        let m = &mut self.telemetry.metrics;
        m.inc("mm.ticks", k);
        m.inc("sim.time.leaps", 1);
        m.inc("sim.time.leaped_slices", k);
        for _ in 0..k {
            m.observe("engine.pending_messages_per_tick", l.pending);
            if let Some(p) = l.pct {
                m.observe("sched.matrix_utilization_pct", p);
            }
        }
    }

    /// Resolve an armed leap at a real tick firing at `fire`: replay every
    /// boundary strictly before `fire`, disarm, and return how many MM
    /// tick numbers the leap skipped (the MM adds them to its counter so
    /// heartbeat-round and quantum cadence stay aligned with an un-leaped
    /// run).
    pub(crate) fn take_leap(&mut self, fire: SimTime) -> u64 {
        let Some(l) = self.leap else { return 0 };
        let period = self.cfg.collect_period();
        self.settle_leap_through(fire - period);
        self.leap = None;
        fire.boundaries_since(l.from, period).saturating_sub(1)
    }

    /// Add a job to a slot's scan list.
    pub fn slot_jobs_add(&mut self, slot: usize, job: JobId) {
        if self.slot_jobs.len() <= slot {
            self.slot_jobs.resize(slot + 1, Vec::new());
        }
        self.slot_jobs[slot].push(job);
    }

    /// Remove a job from a slot's scan list.
    pub fn slot_jobs_remove(&mut self, slot: usize, job: JobId) {
        if let Some(v) = self.slot_jobs.get_mut(slot) {
            v.retain(|&j| j != job);
        }
    }

    /// Jobs currently assigned to a slot (empty for out-of-range slots).
    pub fn jobs_in_slot(&self, slot: usize) -> &[JobId] {
        self.slot_jobs.get(slot).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// The slice of shared world state a Node Manager's shardable handlers may
/// mutate, detached for parallel window execution (DESIGN.md §18): the
/// node's global-memory variable/event rows plus buffered stat and metric
/// deltas that [`ShardWorld::restore_shard`] folds back into the shared
/// counters at merge time.
#[derive(Debug)]
pub struct NodeShard {
    node: NodeId,
    vars: Vec<i64>,
    events: Vec<Option<SimTime>>,
    nm_overruns: u64,
    hb_drops: u64,
}

impl NodeShard {
    /// Read this node's copy of `var`.
    pub fn var(&self, var: VarId) -> i64 {
        self.vars[var.0 as usize]
    }

    /// Write this node's copy of `var` (audit retirement is moot: shard
    /// extraction refuses while CAW auditing is enabled).
    pub fn set_var(&mut self, var: VarId, value: i64) {
        self.vars[var.0 as usize] = value;
    }

    /// Add `delta` to this node's copy of `var`.
    pub fn add_var(&mut self, var: VarId, delta: i64) {
        self.vars[var.0 as usize] += delta;
    }

    /// Buffer one `stats.nm_overruns` / `nm.overruns` bump.
    pub fn count_nm_overrun(&mut self) {
        self.nm_overruns += 1;
    }

    /// Buffer one `stats.hb_drops` / `fault.hb_drops` bump.
    pub fn count_hb_drop(&mut self) {
        self.hb_drops += 1;
    }
}

impl ShardWorld for World {
    type Shard = NodeShard;

    /// Only Node Managers shard (they are the only components declaring
    /// shardable messages), and only while the CAW audit trail is off —
    /// a shard-local `write`/`add` could not retire the global audit
    /// entry. Refusal leaves the world untouched; the engine falls back
    /// to serial delivery for the whole window.
    fn extract_shard(&mut self, component: ComponentId) -> Option<NodeShard> {
        if self.mech.memory.caw_audit_enabled() {
            return None;
        }
        // NMs are registered in ascending node order, so the wiring list
        // is sorted and the reverse map is a binary search.
        let node = self.wiring.nms.binary_search(&component).ok()?;
        let node = NodeId(u32::try_from(node).expect("node index"));
        let (vars, events) = self.mech.memory.take_node_rows(node);
        Some(NodeShard {
            node,
            vars,
            events,
            nm_overruns: 0,
            hb_drops: 0,
        })
    }

    fn restore_shard(&mut self, _component: ComponentId, shard: NodeShard) {
        self.mech
            .memory
            .restore_node_rows(shard.node, shard.vars, shard.events);
        self.stats.nm_overruns += shard.nm_overruns;
        for _ in 0..shard.nm_overruns {
            self.metric_inc("nm.overruns");
        }
        self.stats.hb_drops += shard.hb_drops;
        for _ in 0..shard.hb_drops {
            self.metric_inc("fault.hb_drops");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;
    use storm_apps::AppSpec;

    #[test]
    fn world_builds_for_paper_cluster() {
        let w = World::new(ClusterConfig::paper_cluster());
        assert_eq!(w.nodes.len(), 64);
        assert_eq!(w.nodes.quarantined_count(), 0);
        assert_eq!(w.mech.memory.nodes(), 64);
        assert!(w.is_idle());
    }

    #[test]
    #[should_panic(expected = "invalid cluster configuration")]
    fn invalid_config_rejected() {
        World::new(ClusterConfig::paper_cluster().with_nodes(0));
    }

    #[test]
    fn job_registration_is_dense() {
        let mut w = World::new(ClusterConfig::paper_cluster());
        let a = w.register_job(JobRecord::new(
            JobId(0),
            JobSpec::new(AppSpec::do_nothing_mb(4), 4),
        ));
        let b = w.register_job(JobRecord::new(
            JobId(1),
            JobSpec::new(AppSpec::do_nothing_mb(8), 8),
        ));
        assert_eq!(a, JobId(0));
        assert_eq!(b, JobId(1));
        assert_eq!(w.job(b).spec.ranks, 8);
        w.job_mut(a).start_reports = 3;
        assert_eq!(w.job(a).start_reports, 3);
        assert!(!w.is_idle());
    }

    #[test]
    fn comm_span_stretches_under_network_load() {
        let quiet = World::new(ClusterConfig::paper_cluster());
        let loaded = World::new(
            ClusterConfig::paper_cluster().with_load(storm_net::BackgroundLoad::network_loaded()),
        );
        let b = 1_000_000;
        assert!(loaded.comm_span(b) > quiet.comm_span(b).mul_f64(5.0));
        assert_eq!(quiet.comm_span(0), SimSpan::ZERO);
    }

    #[test]
    fn slot_job_lists() {
        let mut w = World::new(ClusterConfig::paper_cluster());
        assert!(w.jobs_in_slot(0).is_empty());
        w.slot_jobs_add(1, JobId(4));
        w.slot_jobs_add(1, JobId(5));
        assert_eq!(w.jobs_in_slot(1), &[JobId(4), JobId(5)]);
        w.slot_jobs_remove(1, JobId(4));
        assert_eq!(w.jobs_in_slot(1), &[JobId(5)]);
        assert!(w.jobs_in_slot(7).is_empty());
        w.slot_jobs_remove(7, JobId(1)); // no-op, no panic
    }
}
