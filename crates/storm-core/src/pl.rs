//! The Program Launcher (PL).
//!
//! "A PL has the relatively simple task of launching an individual
//! application process. When its application process terminates, the PL
//! notifies its NM" (§2.1). There is one PL per *potential* process —
//! nodes × CPUs per node × multiprogramming level (Table 2) — so a fork
//! never waits for a launcher to become available.

use crate::msg::Msg;
use crate::world::World;
use storm_sim::{Component, Context};

/// One Program Launcher dæmon.
#[derive(Debug)]
pub struct ProgramLauncher {
    node: u32,
    pl_index: u32,
    forks: u64,
}

impl ProgramLauncher {
    /// The `pl_index`-th launcher on `node`.
    pub fn new(node: u32, pl_index: u32) -> Self {
        ProgramLauncher {
            node,
            pl_index,
            forks: 0,
        }
    }

    /// How many ranks this PL has forked over its lifetime.
    pub fn fork_count(&self) -> u64 {
        self.forks
    }

    /// Restore the lifetime fork counter from a checkpoint.
    pub fn restore_forks(&mut self, forks: u64) {
        self.forks = forks;
    }
}

impl Component<World, Msg> for ProgramLauncher {
    fn handle(&mut self, msg: Msg, ctx: &mut Context<'_, World, Msg>) {
        match msg {
            Msg::Fork { job, attempt } => {
                self.forks += 1;
                ctx.world().metric_inc("pl.forks");
                let (costs, load) = {
                    let w = ctx.world_ref();
                    (w.cfg.daemon, w.cfg.load)
                };
                // fork()+exec() with log-normal OS noise, stretched when a
                // CPU hog is resident.
                let noise = ctx.rng().lognormal_jitter(costs.fork_sigma);
                let fork_span = load.inflate(costs.fork_base.mul_f64(noise));
                let nm = ctx.world_ref().wiring.nms[self.node as usize];
                ctx.send(
                    nm,
                    fork_span,
                    Msg::ForkDone {
                        job,
                        pl: self.pl_index,
                        attempt,
                    },
                );
                // A do-nothing binary exits as soon as it starts; the PL
                // notices after `exit_detect` and notifies its NM. Jobs with
                // real work terminate through the NM's scheduling path
                // instead.
                let empty = ctx.world_ref().job(job).workload.steps().is_empty()
                    && !ctx.world_ref().job(job).workload.is_endless();
                if empty {
                    let detect = load.inflate(costs.exit_detect);
                    ctx.send(
                        nm,
                        fork_span + detect,
                        Msg::PlExited {
                            job,
                            pl: self.pl_index,
                            attempt,
                        },
                    );
                }
            }
            other => panic!("PL received unexpected message {other:?}"),
        }
    }

    fn name(&self) -> &str {
        "PL"
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}
