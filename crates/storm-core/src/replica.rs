//! MM replication: the state machine that standby Machine Managers mirror.
//!
//! The active MM drives the cluster through two kinds of state:
//!
//! * **Shared state** — the Ousterhout matrix, buddy tree, and global-memory
//!   variables all live in the simulated *global memory* (the paper's
//!   replicated-memory substrate), so any MM replica can read them the
//!   instant it is promoted. They need no explicit shipping.
//! * **Private state** — the job queue, heartbeat round, quarantine set,
//!   active slot, and tick counter live inside the MM process. These are
//!   captured here as [`MmCoreState`] and replicated to standbys as a
//!   decision log ([`Decision`]) plus periodic full checkpoints.
//!
//! A standby applies log records strictly in sequence (`seq == applied`);
//! anything else is a gap or a duplicate and is counted, not applied. A
//! checkpoint replaces the standby's state wholesale when it is at least as
//! new as what the standby has applied. The rolling FNV-1a digest over the
//! encoded decision stream lets the `repl_consistency` oracle compare an
//! up-to-date standby against the active mirror in O(1).

use crate::job::JobId;
use storm_sim::SimTime;

/// Which role an MM replica currently plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MmRole {
    /// The single MM that schedules, strobes, and heartbeats.
    #[default]
    Active,
    /// A warm replica: applies the decision log, watches for beats.
    Standby,
    /// A dead replica: drops everything except submit trampolining.
    Failed,
}

/// One replicated scheduling decision, shipped from the active MM to every
/// live standby in sequence order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// A job entered the queue for the first time.
    Submit {
        /// The submitted job.
        job: JobId,
    },
    /// A job left the queue and was placed into a matrix slot.
    Place {
        /// The placed job.
        job: JobId,
        /// The timeslice slot it landed in.
        slot: u32,
    },
    /// A previously requeued job was re-admitted to the queue.
    Admit {
        /// The re-admitted job.
        job: JobId,
    },
    /// A launch broadcast went out for this attempt of the job.
    Launch {
        /// The launched job.
        job: JobId,
        /// The attempt (incarnation) number broadcast.
        attempt: u32,
    },
    /// The job reached a terminal Completed state.
    Complete {
        /// The completed job.
        job: JobId,
    },
    /// A retry timer was armed for the job.
    Requeue {
        /// The requeued job.
        job: JobId,
        /// Which retry this is (1-based).
        retry: u32,
    },
    /// A node was declared failed and quarantined.
    Quarantine {
        /// The quarantined node.
        node: u32,
    },
    /// A quarantined node rejoined the membership.
    Rejoin {
        /// The rejoined node.
        node: u32,
    },
    /// The heartbeat round advanced.
    Round {
        /// The new round number.
        round: i64,
    },
    /// The active timeslice slot rotated.
    Slot {
        /// The new active slot.
        slot: u32,
    },
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv_step(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The MM-private scheduling state that replication must preserve across a
/// failover. `PartialEq` + the rolling digest make divergence detection
/// cheap for the DST oracles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MmCoreState {
    /// Scheduler ticks executed so far (mirrors `MachineManager::ticks`).
    pub ticks: u64,
    /// Last completed heartbeat round.
    pub hb_round: i64,
    /// Quarantined nodes, kept sorted for canonical comparison.
    pub detected_failed: Vec<u32>,
    /// Mirror of the job queue (pending, unplaced jobs) in order.
    pub queue: Vec<JobId>,
    /// Currently active timeslice slot.
    pub active_slot: u32,
    /// Number of decisions applied to this state.
    pub log_len: u64,
    /// Rolling FNV-1a digest over the encoded decision stream.
    pub digest: u64,
}

impl Default for MmCoreState {
    fn default() -> Self {
        MmCoreState {
            ticks: 0,
            hb_round: 0,
            detected_failed: Vec::new(),
            queue: Vec::new(),
            active_slot: 0,
            log_len: 0,
            digest: FNV_OFFSET,
        }
    }
}

impl MmCoreState {
    /// Apply one decision, updating the mirrored state, the log length, and
    /// the rolling digest. Deterministic and side-effect free: the active MM
    /// and every standby run the exact same function over the exact same
    /// sequence, so equal `log_len` must imply equal `digest` and state.
    pub fn apply(&mut self, d: &Decision) {
        let (tag, a, b): (u8, u64, u64) = match *d {
            Decision::Submit { job } => {
                self.queue.push(job);
                (1, u64::from(job.0), 0)
            }
            Decision::Place { job, slot } => {
                self.queue.retain(|&j| j != job);
                (2, u64::from(job.0), u64::from(slot))
            }
            Decision::Admit { job } => {
                self.queue.push(job);
                (3, u64::from(job.0), 0)
            }
            Decision::Launch { job, attempt } => (4, u64::from(job.0), u64::from(attempt)),
            Decision::Complete { job } => {
                // A killed job can be completed straight out of the queue.
                self.queue.retain(|&j| j != job);
                (5, u64::from(job.0), 0)
            }
            Decision::Requeue { job, retry } => {
                self.queue.retain(|&j| j != job);
                (6, u64::from(job.0), u64::from(retry))
            }
            Decision::Quarantine { node } => {
                if let Err(pos) = self.detected_failed.binary_search(&node) {
                    self.detected_failed.insert(pos, node);
                }
                (7, u64::from(node), 0)
            }
            Decision::Rejoin { node } => {
                self.detected_failed.retain(|&n| n != node);
                (8, u64::from(node), 0)
            }
            Decision::Round { round } => {
                self.hb_round = round;
                (9, round as u64, 0)
            }
            Decision::Slot { slot } => {
                self.active_slot = slot;
                (10, u64::from(slot), 0)
            }
        };
        self.digest = fnv_step(self.digest, &[tag]);
        self.digest = fnv_step(self.digest, &a.to_le_bytes());
        self.digest = fnv_step(self.digest, &b.to_le_bytes());
        self.log_len += 1;
    }
}

/// A standby's view of the replicated state: how far through the decision
/// log it has applied, and the resulting mirrored state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReplicaState {
    /// Next log sequence number this replica expects (== records applied).
    pub applied: u64,
    /// The mirrored MM-private state.
    pub state: MmCoreState,
}

/// Replication-plane counters. Kept separate from [`crate::ClusterStats`] so
/// that a standbys-configured, fault-free run stays *byte-identical* to a
/// standby-free run in everything the determinism tests compare.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReplStats {
    /// Decision-log records shipped by active MMs.
    pub log_records: u64,
    /// Full checkpoints shipped.
    pub checkpoints: u64,
    /// MM-to-standby liveness beats sent.
    pub beats: u64,
    /// Log records dropped by standbys because a gap preceded them.
    pub log_gaps: u64,
    /// Standby promotions performed.
    pub promotions: u64,
    /// `(rank, at)` for every promotion, in order.
    pub failovers: Vec<(u32, SimTime)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_mirrors_queue_and_membership() {
        let mut s = MmCoreState::default();
        s.apply(&Decision::Submit { job: JobId(1) });
        s.apply(&Decision::Submit { job: JobId(2) });
        assert_eq!(s.queue, vec![JobId(1), JobId(2)]);
        s.apply(&Decision::Place {
            job: JobId(1),
            slot: 0,
        });
        assert_eq!(s.queue, vec![JobId(2)]);
        s.apply(&Decision::Quarantine { node: 7 });
        s.apply(&Decision::Quarantine { node: 3 });
        s.apply(&Decision::Quarantine { node: 7 });
        assert_eq!(s.detected_failed, vec![3, 7]);
        s.apply(&Decision::Rejoin { node: 3 });
        assert_eq!(s.detected_failed, vec![7]);
        s.apply(&Decision::Round { round: 5 });
        assert_eq!(s.hb_round, 5);
        assert_eq!(s.log_len, 8);
    }

    #[test]
    fn digest_is_order_sensitive_and_deterministic() {
        let seq = [
            Decision::Submit { job: JobId(1) },
            Decision::Place {
                job: JobId(1),
                slot: 2,
            },
        ];
        let mut a = MmCoreState::default();
        let mut b = MmCoreState::default();
        for d in &seq {
            a.apply(d);
            b.apply(d);
        }
        assert_eq!(a, b);
        assert_eq!(a.digest, b.digest);
        let mut c = MmCoreState::default();
        for d in seq.iter().rev() {
            c.apply(d);
        }
        assert_ne!(a.digest, c.digest, "digest must see ordering");
    }
}
