//! Jobs: specifications, lifecycle state, allocations and metrics.

use std::fmt;
use std::ops::Range;
use storm_apps::{AppSpec, Workload, WorkloadCursor};
use storm_sim::{SimSpan, SimTime};

/// Identifies a job within one cluster (dense index).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u32);

impl JobId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// What a user submits.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Human-readable name (defaults to the application name).
    pub name: String,
    /// The application to run.
    pub app: AppSpec,
    /// Total processes (one per PE, one-to-one mapping).
    pub ranks: u32,
    /// Cap on ranks per node (defaults to the node's CPU count). The §3.2
    /// experiments place 2 ranks per 4-CPU node (32 nodes / 64 PEs).
    pub max_ranks_per_node: Option<u32>,
    /// User-supplied runtime estimate — required by the EASY-backfill
    /// policy, ignored by the others.
    pub runtime_estimate: Option<SimSpan>,
}

impl JobSpec {
    /// A job running `app` with `ranks` processes.
    pub fn new(app: AppSpec, ranks: u32) -> Self {
        assert!(ranks > 0, "a job needs at least one rank");
        JobSpec {
            name: app.name().to_string(),
            app,
            ranks,
            max_ranks_per_node: None,
            runtime_estimate: None,
        }
    }

    /// Builder: cap ranks per node (e.g. 2 for the paper's 32-node / 64-PE
    /// gang-scheduling runs).
    pub fn with_ranks_per_node(mut self, rpn: u32) -> Self {
        assert!(rpn > 0);
        self.max_ranks_per_node = Some(rpn);
        self
    }

    /// Builder: set a name.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Builder: set a runtime estimate (for backfilling).
    pub fn with_estimate(mut self, est: SimSpan) -> Self {
        self.runtime_estimate = Some(est);
        self
    }

    /// Ranks placed per node given a node CPU count.
    pub fn ranks_per_node(&self, cpus_per_node: u32) -> u32 {
        self.max_ranks_per_node
            .unwrap_or(cpus_per_node)
            .min(cpus_per_node)
            .max(1)
    }

    /// Nodes this job needs given a node CPU count.
    pub fn nodes_needed(&self, cpus_per_node: u32) -> u32 {
        self.ranks.div_ceil(self.ranks_per_node(cpus_per_node))
    }
}

/// Lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Submitted, waiting for processors.
    Queued,
    /// Allocated; binary image being transferred.
    Transferring,
    /// Transfer done; launch command sent, ranks forking.
    Launching,
    /// All ranks running (being gang-scheduled).
    Running,
    /// All ranks exited and the MM has collected every node's report.
    Completed,
    /// Killed by request (hog programs are stopped this way).
    Killed,
    /// Lost to a node failure.
    Failed,
}

impl JobState {
    /// Terminal states.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Killed | JobState::Failed
        )
    }
}

/// Where a job was placed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allocation {
    /// Matrix time slot.
    pub slot: usize,
    /// Contiguous node range (buddy block).
    pub nodes: Range<u32>,
    /// Ranks per node, final node may have fewer (`ranks_on`).
    pub ranks_per_node: u32,
    /// Total ranks.
    pub ranks: u32,
}

impl Allocation {
    /// How many ranks land on `node` (0 if outside the range).
    pub fn ranks_on(&self, node: u32) -> u32 {
        if !self.nodes.contains(&node) {
            return 0;
        }
        let offset = node - self.nodes.start;
        let before = offset * self.ranks_per_node;
        self.ranks.saturating_sub(before).min(self.ranks_per_node)
    }

    /// Number of allocated nodes (the full buddy block, which may exceed
    /// the nodes that actually host ranks — buddy allocation rounds up to
    /// powers of two).
    pub fn node_count(&self) -> u32 {
        self.nodes.end - self.nodes.start
    }

    /// Number of nodes that actually host at least one rank. Launch/
    /// termination reports are counted against this — the block's rounding
    /// tail has nothing to fork and nothing to report.
    pub fn active_node_count(&self) -> u32 {
        self.ranks
            .div_ceil(self.ranks_per_node.max(1))
            .min(self.node_count())
    }
}

/// Timestamps the paper's launch-time breakdown uses (§3.1, §3.3.1).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JobMetrics {
    /// Submission instant.
    pub submitted: Option<SimTime>,
    /// The MM tick at which the binary transfer began (chunk 0 read issued).
    pub transfer_start: Option<SimTime>,
    /// The MM tick at which the MM learned every node had written every
    /// fragment ("… + notifying the MM").
    pub transfer_done: Option<SimTime>,
    /// When the launch command was broadcast.
    pub launch_cmd: Option<SimTime>,
    /// When the MM learned all ranks were running.
    pub started: Option<SimTime>,
    /// When the last rank actually exited (application-level completion).
    pub app_done: Option<SimTime>,
    /// The MM tick at which every node's termination report was collected.
    pub completed: Option<SimTime>,
}

impl JobMetrics {
    /// The paper's "send" time: read + broadcast + write + notify-MM.
    pub fn send_span(&self) -> Option<SimSpan> {
        Some(self.transfer_done?.since(self.transfer_start?))
    }

    /// The paper's "execute" time: launch command + fork + termination wait
    /// + report back to the MM.
    pub fn execute_span(&self) -> Option<SimSpan> {
        Some(self.completed?.since(self.launch_cmd?))
    }

    /// Total launch time: send + execute.
    pub fn total_launch_span(&self) -> Option<SimSpan> {
        Some(self.completed?.since(self.transfer_start?))
    }

    /// Queued-to-completed turnaround.
    pub fn turnaround(&self) -> Option<SimSpan> {
        Some(self.completed?.since(self.submitted?))
    }

    /// Submission-to-start wait (queueing + transfer + fork).
    pub fn wait_span(&self) -> Option<SimSpan> {
        Some(self.started?.since(self.submitted?))
    }

    /// The lifecycle phases this record can attest to, in pipeline order:
    /// `queue_wait` (submit → allocation + transfer start), `send_pipeline`
    /// (the §3.1 read/broadcast/write fill + drain), `launch_sync`
    /// (transfer confirmed → launch command), `fork` (launch command →
    /// all ranks running), `execute` (running → last rank exit), and
    /// `collect` (exit → all termination reports gathered). Phases whose
    /// boundary timestamps were never recorded (e.g. a job failed before
    /// launch) are omitted.
    pub fn phase_breakdown(&self) -> Vec<(&'static str, SimTime, SimTime)> {
        let boundaries = [
            ("queue_wait", self.submitted, self.transfer_start),
            ("send_pipeline", self.transfer_start, self.transfer_done),
            ("launch_sync", self.transfer_done, self.launch_cmd),
            ("fork", self.launch_cmd, self.started),
            ("execute", self.started, self.app_done),
            ("collect", self.app_done, self.completed),
        ];
        boundaries
            .iter()
            .filter_map(|&(name, start, end)| match (start, end) {
                (Some(s), Some(e)) if e >= s => Some((name, s, e)),
                _ => None,
            })
            .collect()
    }
}

/// Everything the cluster tracks about one job (lives in the shared world).
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// The job's id.
    pub id: JobId,
    /// The submitted specification.
    pub spec: JobSpec,
    /// Current state.
    pub state: JobState,
    /// Placement, once allocated.
    pub allocation: Option<Allocation>,
    /// The instantiated workload (filled at allocation).
    pub workload: Workload,
    /// The shared BSP progress cursor (all NMs advance their ranks in
    /// lock-step under gang scheduling; see `nm` module docs).
    pub cursor: WorkloadCursor,
    /// Timestamps.
    pub metrics: JobMetrics,
    /// Transfer bookkeeping (see `mm`).
    pub transfer: TransferState,
    /// Nodes whose "all local ranks forked" report has arrived.
    pub start_reports: u32,
    /// Nodes whose "all local ranks exited" report has arrived.
    pub done_reports: u32,
    /// Nodes that already contributed a Started report this attempt
    /// (exactly-once counting: after an MM failover the resync protocol
    /// makes nodes re-announce, and duplicates must not double-count).
    pub reported_started: Vec<u32>,
    /// Nodes that already contributed a Done report this attempt.
    pub reported_done: Vec<u32>,
    /// When the final flow-control COMPARE-AND-WRITE confirmed all
    /// fragments written everywhere (the MM records `transfer_done` at the
    /// following collection boundary).
    pub transfer_confirmed: Option<SimTime>,
    /// Latest application-exit instant reported by any node.
    pub app_done_max: Option<SimTime>,
    /// Launch attempt counter: bumped each time the failure-recovery policy
    /// requeues the job. Job-scoped messages carry the attempt they belong
    /// to; mismatches are stale in-flight traffic and are dropped.
    pub attempt: u32,
    /// Times this job has been requeued after losing a node.
    pub retries: u32,
}

impl JobRecord {
    /// A fresh queued record.
    pub fn new(id: JobId, spec: JobSpec) -> Self {
        JobRecord {
            id,
            spec,
            state: JobState::Queued,
            allocation: None,
            workload: Workload::empty(),
            cursor: Workload::empty().cursor(),
            metrics: JobMetrics::default(),
            transfer: TransferState::default(),
            start_reports: 0,
            done_reports: 0,
            reported_started: Vec::new(),
            reported_done: Vec::new(),
            transfer_confirmed: None,
            app_done_max: None,
            attempt: 0,
            retries: 0,
        }
    }

    /// The allocation, panicking if not yet placed (internal invariant).
    pub fn alloc(&self) -> &Allocation {
        self.allocation.as_ref().expect("job not allocated")
    }

    /// Reset the record back to a clean queued state for a retry after a
    /// node failure: the allocation, workload, transfer and report state
    /// are discarded, the attempt counter is bumped (so in-flight messages
    /// from the lost incarnation are dropped on arrival), and only the
    /// original submission timestamp is kept — the completion metrics then
    /// describe the attempt that finally succeeded.
    pub fn reset_for_retry(&mut self) {
        self.state = JobState::Queued;
        self.allocation = None;
        self.workload = Workload::empty();
        self.cursor = Workload::empty().cursor();
        self.transfer = TransferState::default();
        self.start_reports = 0;
        self.done_reports = 0;
        self.reported_started.clear();
        self.reported_done.clear();
        self.transfer_confirmed = None;
        self.app_done_max = None;
        self.attempt += 1;
        self.retries += 1;
        self.metrics = JobMetrics {
            submitted: self.metrics.submitted,
            ..JobMetrics::default()
        };
    }
}

/// State of the chunked broadcast transfer for one job.
#[derive(Debug, Clone, Default)]
pub struct TransferState {
    /// Total chunks.
    pub total_chunks: u32,
    /// Size of the final (possibly short) chunk in bytes.
    pub last_chunk_bytes: u64,
    /// Next chunk index to read.
    pub next_read: u32,
    /// Chunks fully read, ready (or already gone) to broadcast.
    pub chunks_read: u32,
    /// Next chunk index to broadcast.
    pub next_bcast: u32,
    /// Whether a read is currently in flight.
    pub read_busy: bool,
    /// Whether the source NIC/helper is currently broadcasting this job's
    /// chunk.
    pub bcast_busy: bool,
    /// Whether a flow-control re-poll is already scheduled (avoids poll
    /// storms).
    pub poll_pending: bool,
    /// COMPARE-AND-WRITE flow-control var: per-node count of fragments
    /// written (allocated at transfer start).
    pub written_var: Option<storm_mech::VarId>,
}

impl TransferState {
    /// Bytes of chunk `idx` (the last chunk may be short).
    pub fn chunk_bytes(&self, idx: u32, chunk_size: u64) -> u64 {
        if idx + 1 == self.total_chunks && self.last_chunk_bytes > 0 {
            self.last_chunk_bytes
        } else {
            chunk_size
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_rank_distribution() {
        // 10 ranks on nodes 4..8 with up to 4 per node: 4,4,2,0.
        let a = Allocation {
            slot: 0,
            nodes: 4..8,
            ranks_per_node: 4,
            ranks: 10,
        };
        assert_eq!(a.ranks_on(4), 4);
        assert_eq!(a.ranks_on(5), 4);
        assert_eq!(a.ranks_on(6), 2);
        assert_eq!(a.ranks_on(7), 0);
        assert_eq!(a.ranks_on(3), 0);
        assert_eq!(a.ranks_on(8), 0);
        assert_eq!(a.node_count(), 4);
        let total: u32 = (0..12).map(|n| a.ranks_on(n)).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn metrics_spans() {
        let mut m = JobMetrics::default();
        assert_eq!(m.send_span(), None);
        m.submitted = Some(SimTime::ZERO);
        m.transfer_start = Some(SimTime::from_millis(1));
        m.transfer_done = Some(SimTime::from_millis(97));
        m.launch_cmd = Some(SimTime::from_millis(98));
        m.started = Some(SimTime::from_millis(100));
        m.completed = Some(SimTime::from_millis(110));
        assert_eq!(m.send_span().unwrap(), SimSpan::from_millis(96));
        assert_eq!(m.execute_span().unwrap(), SimSpan::from_millis(12));
        assert_eq!(m.total_launch_span().unwrap(), SimSpan::from_millis(109));
        assert_eq!(m.turnaround().unwrap(), SimSpan::from_millis(110));
        assert_eq!(m.wait_span().unwrap(), SimSpan::from_millis(100));
    }

    #[test]
    fn phase_breakdown_skips_unknown_boundaries() {
        let mut m = JobMetrics::default();
        assert!(m.phase_breakdown().is_empty());
        m.submitted = Some(SimTime::ZERO);
        m.transfer_start = Some(SimTime::from_millis(1));
        m.transfer_done = Some(SimTime::from_millis(97));
        // launch_cmd/started never recorded: launch_sync and fork are
        // omitted; so are execute and collect.
        m.app_done = Some(SimTime::from_millis(105));
        m.completed = Some(SimTime::from_millis(110));
        let phases = m.phase_breakdown();
        let names: Vec<_> = phases.iter().map(|p| p.0).collect();
        assert_eq!(names, ["queue_wait", "send_pipeline", "collect"]);
        assert_eq!(
            phases[1],
            (
                "send_pipeline",
                SimTime::from_millis(1),
                SimTime::from_millis(97)
            )
        );
    }

    #[test]
    fn chunking_math() {
        let t = TransferState {
            total_chunks: 24,
            last_chunk_bytes: 0, // 12 MB divides evenly by 512 KB? 12e6/524288 = 22.9 — no; see mm tests
            ..Default::default()
        };
        assert_eq!(t.chunk_bytes(0, 524_288), 524_288);
        assert_eq!(t.chunk_bytes(23, 524_288), 524_288);
        let t2 = TransferState {
            total_chunks: 3,
            last_chunk_bytes: 100,
            ..Default::default()
        };
        assert_eq!(t2.chunk_bytes(2, 1000), 100);
        assert_eq!(t2.chunk_bytes(1, 1000), 1000);
    }

    #[test]
    fn job_state_terminality() {
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert!(JobState::Completed.is_terminal());
        assert!(JobState::Killed.is_terminal());
        assert!(JobState::Failed.is_terminal());
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_rank_job_rejected() {
        JobSpec::new(AppSpec::do_nothing_mb(4), 0);
    }

    #[test]
    fn reset_for_retry_keeps_only_submission() {
        let mut rec = JobRecord::new(JobId(0), JobSpec::new(AppSpec::do_nothing_mb(4), 8));
        rec.state = JobState::Transferring;
        rec.metrics.submitted = Some(SimTime::from_millis(1));
        rec.metrics.transfer_start = Some(SimTime::from_millis(2));
        rec.allocation = Some(Allocation {
            slot: 0,
            nodes: 0..2,
            ranks_per_node: 4,
            ranks: 8,
        });
        rec.start_reports = 2;
        rec.transfer.total_chunks = 8;
        rec.reset_for_retry();
        assert_eq!(rec.state, JobState::Queued);
        assert!(rec.allocation.is_none());
        assert_eq!(rec.start_reports, 0);
        assert_eq!(rec.transfer.total_chunks, 0);
        assert_eq!(rec.metrics.submitted, Some(SimTime::from_millis(1)));
        assert_eq!(rec.metrics.transfer_start, None);
        assert_eq!((rec.attempt, rec.retries), (1, 1));
        rec.reset_for_retry();
        assert_eq!((rec.attempt, rec.retries), (2, 2));
    }

    #[test]
    fn spec_builders() {
        let s = JobSpec::new(AppSpec::do_nothing_mb(4), 8)
            .named("probe")
            .with_estimate(SimSpan::from_secs(10));
        assert_eq!(s.name, "probe");
        assert_eq!(s.runtime_estimate, Some(SimSpan::from_secs(10)));
        assert_eq!(s.ranks, 8);
    }
}
