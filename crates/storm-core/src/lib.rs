//! # storm-core — the STORM resource manager
//!
//! This crate implements the paper's contribution: a resource-management
//! framework whose every function — job launching, gang scheduling,
//! heartbeat issuance, termination detection, fault detection — is built on
//! the three mechanisms of `storm-mech`.
//!
//! ## Process structure (§2.1, Table 2)
//!
//! * [`mm::MachineManager`] — one per cluster, on the management node:
//!   enqueues arriving jobs, allocates processors with a buddy-tree
//!   algorithm, makes global scheduling decisions, and drives the chunked
//!   broadcast file-transfer protocol. It issues commands and collects event
//!   notifications **only at timeslice boundaries**.
//! * [`nm::NodeManager`] — one per compute node: receives broadcast file
//!   fragments and writes them to the local (RAM-disk) filesystem, enacts
//!   coordinated context switches when the MM's strobe arrives, schedules
//!   the local ranks, and detects process termination.
//! * [`pl::ProgramLauncher`] — one per potential process
//!   (nodes × CPUs × MPL): forks a single application process and reports
//!   its exit to the NM.
//!
//! ## Launch protocol (§2.3, §3.3.1)
//!
//! The binary is pipelined *read → broadcast → write* in fixed-size chunks
//! through a bounded remote receive queue (multi-buffering), with global
//! flow control by COMPARE-AND-WRITE on a per-job fragment counter. The
//! execute phase broadcasts a launch command, forks on every node, and
//! collects termination reports at heartbeat intervals.
//!
//! ## Scheduling (§3.2)
//!
//! [`matrix::GangMatrix`] is an Ousterhout time-slot matrix; the MM rotates
//! the active slot every timeslice quantum and enacts the global context
//! switch with a single hardware multicast. Batch (FCFS) and EASY-backfill
//! policies are also provided ([`policy`]), as the paper's STORM supports
//! "batch scheduling with and without backfilling, gang scheduling, and
//! implicit coscheduling".
//!
//! ## Entry point
//!
//! [`cluster::Cluster`] wires a complete simulated machine:
//!
//! ```
//! use storm_core::prelude::*;
//!
//! let cfg = ClusterConfig::paper_cluster(); // 64 ES40 nodes, QsNET, RAM disk
//! let mut cluster = Cluster::new(cfg);
//! let job = cluster.submit(JobSpec::new(AppSpec::do_nothing_mb(12), 256));
//! cluster.run_until_idle();
//! let m = cluster.job(job).metrics.clone();
//! println!("12 MB on 256 PEs: send {} execute {}",
//!          m.send_span().unwrap(), m.execute_span().unwrap());
//! assert!(m.total_launch_span().unwrap().as_millis_f64() < 200.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buddy;
pub mod checkpoint;
pub mod cluster;
pub mod config;
pub mod cq;
pub mod fault;
pub mod job;
pub mod matrix;
pub mod mm;
pub mod msg;
pub mod nm;
pub mod pl;
pub mod policy;
pub mod replica;
pub mod world;

pub use buddy::BuddyAllocator;
pub use cluster::{Cluster, Report};
pub use config::{ClusterConfig, DaemonCosts, SchedulerKind};
pub use fault::{FailurePolicy, FaultEvent, FaultSchedule};
pub use job::{JobId, JobMetrics, JobSpec, JobState};
pub use matrix::GangMatrix;
pub use replica::{Decision, MmCoreState, MmRole, ReplStats, ReplicaState};
pub use world::{ClusterStats, World};

/// The telemetry crate, re-exported so consumers need no direct dependency.
pub use storm_telemetry as telemetry;

/// Convenient glob import for examples and benches.
pub mod prelude {
    pub use crate::cluster::{Cluster, Report};
    pub use crate::config::{ClusterConfig, DaemonCosts, SchedulerKind};
    pub use crate::cq::{Alert, Condition};
    pub use crate::fault::{FailurePolicy, FaultEvent, FaultSchedule};
    pub use crate::job::{JobId, JobMetrics, JobSpec, JobState};
    pub use crate::replica::{Decision, MmCoreState, MmRole, ReplStats, ReplicaState};
    pub use crate::world::ClusterStats;
    pub use storm_apps::AppSpec;
    pub use storm_fs::FsKind;
    pub use storm_net::{BackgroundLoad, BufferPlacement, NetworkKind};
    pub use storm_sim::{QueueBackend, QueueStats, SimSpan, SimTime};
    pub use storm_telemetry::{
        chrome_trace, spans_jsonl, validate_json, Histogram, JobSpan, MetricsSnapshot, Telemetry,
    };
}
