//! The Node Manager (NM).
//!
//! One per compute node (§2.1): receives the broadcast binary fragments and
//! writes them to the local RAM disk (incrementing the per-node
//! flow-control counter the MM's COMPARE-AND-WRITE checks), forks ranks via
//! the node's Program Launchers when a launch command arrives, enacts the
//! coordinated context switch when the MM's strobe lands, advances its
//! local ranks through their workload, detects termination, and reports
//! events back to the MM — buffered, and flushed only at event-collection
//! boundaries ("the MM can … receive the notification of events only at the
//! beginning of a timeslice").
//!
//! ## Scheduling model
//!
//! Under gang scheduling every rank of a job is co-scheduled, so all of a
//! job's ranks march through the same BSP step sequence in lock-step. Each
//! NM keeps a *local cursor* per hosted job and advances it by the CPU time
//! the job's slot received between strobes; since strobes arrive at all
//! nodes simultaneously (hardware multicast) and the step timeline is
//! shared, the per-node cursors stay mutually consistent — exactly the
//! lock-step the real gang scheduler enforces. Per-node skew enters through
//! the report path (OS noise), which is where the paper locates it too.

use crate::msg::{Msg, ReportKind};
use crate::world::{NodeShard, World};
use storm_apps::WorkloadCursor;
use storm_mech::{NodeId, VarId};
use storm_sim::{
    Component, ComponentId, Context, DeterministicRng, ShardContext, SimSpan, SimTime,
};

/// The world-access surface the shardable NM arms need, implemented by
/// both the serial [`Context`] path and the parallel [`ShardContext`]
/// path so a single handler body serves both byte-identically: same
/// reads, same RNG draws, same sends — only the mutation sinks differ
/// (shared world vs detached [`NodeShard`]).
trait NmCtx {
    fn now(&self) -> SimTime;
    fn world(&self) -> &World;
    fn rng(&mut self) -> &mut DeterministicRng;
    fn send_at(&mut self, to: ComponentId, at: SimTime, msg: Msg);
    fn send(&mut self, to: ComponentId, delay: SimSpan, msg: Msg);
    fn send_self_at(&mut self, at: SimTime, msg: Msg);
    /// Read this node's copy of `var`.
    fn mem_read(&self, var: VarId) -> i64;
    /// Write this node's copy of `var`.
    fn mem_write(&mut self, var: VarId, value: i64);
    /// Add `delta` to this node's copy of `var`.
    fn mem_add(&mut self, var: VarId, delta: i64);
    /// Count one strobe-processing overrun (§3.2.1 meltdown indicator).
    fn count_nm_overrun(&mut self);
    /// Count one injected heartbeat drop.
    fn count_hb_drop(&mut self);
}

/// Serial delivery: world mutations apply directly.
struct SerialNmCtx<'a, 'w> {
    node: NodeId,
    ctx: &'a mut Context<'w, World, Msg>,
}

impl NmCtx for SerialNmCtx<'_, '_> {
    fn now(&self) -> SimTime {
        self.ctx.now()
    }
    fn world(&self) -> &World {
        self.ctx.world_ref()
    }
    fn rng(&mut self) -> &mut DeterministicRng {
        self.ctx.rng()
    }
    fn send_at(&mut self, to: ComponentId, at: SimTime, msg: Msg) {
        self.ctx.send_at(to, at, msg);
    }
    fn send(&mut self, to: ComponentId, delay: SimSpan, msg: Msg) {
        self.ctx.send(to, delay, msg);
    }
    fn send_self_at(&mut self, at: SimTime, msg: Msg) {
        self.ctx.send_self_at(at, msg);
    }
    fn mem_read(&self, var: VarId) -> i64 {
        self.ctx.world_ref().mech.memory.read(self.node, var)
    }
    fn mem_write(&mut self, var: VarId, value: i64) {
        let node = self.node;
        self.ctx.world().mech.memory.write(node, var, value);
    }
    fn mem_add(&mut self, var: VarId, delta: i64) {
        let node = self.node;
        self.ctx.world().mech.memory.add(node, var, delta);
    }
    fn count_nm_overrun(&mut self) {
        let w = self.ctx.world();
        w.stats.nm_overruns += 1;
        w.metric_inc("nm.overruns");
    }
    fn count_hb_drop(&mut self) {
        let w = self.ctx.world();
        w.stats.hb_drops += 1;
        w.metric_inc("fault.hb_drops");
    }
}

/// Parallel window delivery: world mutations land in the detached
/// [`NodeShard`]; sends are buffered and replayed at merge time.
struct ShardNmCtx<'a, 'w> {
    ctx: &'a mut ShardContext<'w, World, Msg>,
}

impl NmCtx for ShardNmCtx<'_, '_> {
    fn now(&self) -> SimTime {
        self.ctx.now()
    }
    fn world(&self) -> &World {
        self.ctx.world()
    }
    fn rng(&mut self) -> &mut DeterministicRng {
        self.ctx.rng()
    }
    fn send_at(&mut self, to: ComponentId, at: SimTime, msg: Msg) {
        self.ctx.send_at(to, at, msg);
    }
    fn send(&mut self, to: ComponentId, delay: SimSpan, msg: Msg) {
        self.ctx.send(to, delay, msg);
    }
    fn send_self_at(&mut self, at: SimTime, msg: Msg) {
        self.ctx.send_self_at(at, msg);
    }
    fn mem_read(&self, var: VarId) -> i64 {
        self.ctx.shard::<NodeShard>().var(var)
    }
    fn mem_write(&mut self, var: VarId, value: i64) {
        self.ctx.shard_mut::<NodeShard>().set_var(var, value);
    }
    fn mem_add(&mut self, var: VarId, delta: i64) {
        self.ctx.shard_mut::<NodeShard>().add_var(var, delta);
    }
    fn count_nm_overrun(&mut self) {
        self.ctx.shard_mut::<NodeShard>().count_nm_overrun();
    }
    fn count_hb_drop(&mut self) {
        self.ctx.shard_mut::<NodeShard>().count_hb_drop();
    }
}

/// Per-job local state on one node.
#[derive(Debug)]
struct LocalJob {
    ranks: u32,
    forked: u32,
    exited: u32,
    started_at: Option<SimTime>,
    cursor: WorkloadCursor,
    done: bool,
    /// When the job finished locally; lets a post-failover resync re-report
    /// the original completion time instead of the resync instant.
    done_at: Option<SimTime>,
    /// Launch attempt this local state belongs to; stale entries (from an
    /// incarnation lost to a node failure) are ignored everywhere.
    attempt: u32,
}

/// One Node Manager dæmon.
#[derive(Debug)]
pub struct NodeManager {
    node: u32,
    failed: bool,
    /// Management-CPU queue (strobe/command processing).
    busy_until: SimTime,
    /// Local filesystem write device.
    write_free: SimTime,
    current_slot: usize,
    last_strobe: SimTime,
    /// True when the interval beginning at `last_strobe` started with a
    /// context switch (its overhead is charged to that interval).
    switch_pending: bool,
    /// Resident jobs, sorted by id. A node hosts at most `mpl_max` jobs,
    /// so a sorted vector beats a hash map: lookups are a binary search
    /// over a handful of entries and the per-strobe scan walks it in job
    /// order with no collect-and-sort allocation.
    local: Vec<(crate::job::JobId, LocalJob)>,
    pending_reports: Vec<(crate::job::JobId, u32, ReportKind)>,
    flush_scheduled: bool,
    /// Injected dæmon stall: until this instant, message processing is
    /// deferred (messages are re-posted at the stall's end, not lost).
    stalled_until: Option<SimTime>,
}

impl NodeManager {
    /// The NM for `node`.
    pub fn new(node: u32) -> Self {
        NodeManager {
            node,
            failed: false,
            busy_until: SimTime::ZERO,
            write_free: SimTime::ZERO,
            current_slot: 0,
            last_strobe: SimTime::ZERO,
            switch_pending: false,
            local: Vec::new(),
            pending_reports: Vec::new(),
            flush_scheduled: false,
            stalled_until: None,
        }
    }

    fn node_id(&self) -> NodeId {
        NodeId(self.node)
    }

    fn local_mut(&mut self, job: crate::job::JobId) -> Option<&mut LocalJob> {
        match self.local.binary_search_by_key(&job, |&(j, _)| j) {
            Ok(pos) => Some(&mut self.local[pos].1),
            Err(_) => None,
        }
    }

    fn local_insert(&mut self, job: crate::job::JobId, state: LocalJob) {
        match self.local.binary_search_by_key(&job, |&(j, _)| j) {
            Ok(pos) => self.local[pos].1 = state,
            Err(pos) => self.local.insert(pos, (job, state)),
        }
    }

    /// True when a control message carries an epoch older than the one the
    /// promoted MM fenced into this node's global memory. Without standbys
    /// there is no fence variable and nothing is ever stale.
    fn epoch_stale<C: NmCtx>(&self, epoch: u64, ctx: &C) -> bool {
        match ctx.world().mm_epoch_var {
            Some(var) => {
                let fenced = ctx.mem_read(var);
                (epoch as i64) < fenced
            }
            None => false,
        }
    }

    fn buffer_report<C: NmCtx>(
        &mut self,
        job: crate::job::JobId,
        attempt: u32,
        kind: ReportKind,
        ctx: &mut C,
    ) {
        self.pending_reports.push((job, attempt, kind));
        if !self.flush_scheduled {
            let period = ctx.world().cfg.collect_period();
            let at = ctx.now().next_boundary(period);
            ctx.send_self_at(at, Msg::FlushReports);
            self.flush_scheduled = true;
        }
    }

    /// Advance every started local job under the *implicit coscheduling*
    /// model: the local OS timeshares the `m` resident ranks without any
    /// global coordination, so each job receives `elapsed / m` of CPU, and
    /// every exchange whose peer may be descheduled pays a spin-block
    /// penalty of `(m-1)/m × q_local/2` — the miss probability times the
    /// expected wait for the peer's next local quantum. Coarse-grained applications barely
    /// notice; fine-grained ones crawl, which is exactly the trade-off that
    /// motivates gang scheduling (§5.2).
    fn advance_ics<C: NmCtx>(&mut self, now: SimTime, ctx: &mut C) {
        let interval = now.saturating_since(self.last_strobe);
        if interval.is_zero() {
            return;
        }
        let m = self
            .local
            .iter()
            .filter(|&&(j, ref l)| {
                l.started_at.is_some() && !l.done && !ctx.world().job(j).state.is_terminal()
            })
            .count() as u64;
        if m == 0 {
            return;
        }
        let qsnet = ctx.world().qsnet;
        let load = ctx.world().cfg.load;
        let q_local = ctx.world().cfg.daemon.ics_local_quantum;
        let miss = (m as f64 - 1.0) / m as f64;
        let penalty = q_local.mul_f64(0.5 * miss);
        let comm = move |bytes: u64| -> SimSpan {
            if bytes == 0 {
                SimSpan::ZERO
            } else {
                let base = qsnet.ptp_span(bytes);
                let stretched = if load.network > 0.0 {
                    let data = SimSpan::for_bytes(bytes, qsnet.params.link_bw);
                    base.saturating_sub(data)
                        + SimSpan::for_bytes(
                            bytes,
                            load.effective_bw(qsnet.params.link_bw).max(1.0),
                        )
                } else {
                    base
                };
                stretched + penalty
            }
        };
        // `local` is sorted by job id, so this walks the same order the
        // old collect-and-sort did; nothing in the loop body adds or
        // removes entries, so plain indexing is safe.
        for idx in 0..self.local.len() {
            let job = self.local[idx].0;
            if ctx.world().job(job).state.is_terminal() {
                continue;
            }
            let attempt = ctx.world().job(job).attempt;
            let finished_at = {
                let local = &mut self.local[idx].1;
                if local.attempt != attempt {
                    continue; // stale incarnation, job was requeued
                }
                let Some(started) = local.started_at else {
                    continue;
                };
                if local.done {
                    continue;
                }
                let from = self.last_strobe.max(started);
                // Fair local share of the interval.
                let grant = now.saturating_since(from) / m;
                if grant.is_zero() {
                    continue;
                }
                let workload = &ctx.world().job(job).workload;
                if workload.steps().is_empty() && !workload.is_endless() {
                    continue;
                }
                let used = local.cursor.advance(workload, grant, comm);
                if local.cursor.finished(workload) {
                    local.done = true;
                    // The fair-share grant maps back onto wall time ×m.
                    let exit_at = from + used * m;
                    local.done_at = Some(exit_at.min(now));
                    Some(exit_at)
                } else {
                    None
                }
            };
            if let Some(exit_at) = finished_at {
                self.buffer_report(
                    job,
                    attempt,
                    ReportKind::Done {
                        app_done: exit_at.min(now),
                    },
                    ctx,
                );
            }
        }
    }

    /// Advance the cursors of every started job in `slot` over the interval
    /// `[self.last_strobe, now]`, detecting completions.
    fn advance_slot<C: NmCtx>(&mut self, slot: usize, now: SimTime, ctx: &mut C) {
        let interval = now.saturating_since(self.last_strobe);
        if interval.is_zero() {
            return;
        }
        let overhead = if self.switch_pending {
            ctx.world().cfg.daemon.switch_overhead
        } else {
            SimSpan::ZERO
        };
        // Copy what the comm closure needs before borrowing jobs mutably.
        let qsnet = ctx.world().qsnet;
        let load = ctx.world().cfg.load;
        let comm = move |bytes: u64| -> SimSpan {
            if bytes == 0 {
                SimSpan::ZERO
            } else {
                let base = qsnet.ptp_span(bytes);
                if load.network > 0.0 {
                    let data = SimSpan::for_bytes(bytes, qsnet.params.link_bw);
                    base.saturating_sub(data)
                        + SimSpan::for_bytes(
                            bytes,
                            load.effective_bw(qsnet.params.link_bw).max(1.0),
                        )
                } else {
                    base
                }
            }
        };
        let last_strobe = self.last_strobe;
        // Index into the world's slot list instead of copying it: the loop
        // body never edits slot membership, so the indices stay stable and
        // the per-strobe `to_vec` this used to do is gone.
        for i in 0..ctx.world().jobs_in_slot(slot).len() {
            let job = ctx.world().jobs_in_slot(slot)[i];
            if ctx.world().job(job).state.is_terminal() {
                continue;
            }
            let attempt = ctx.world().job(job).attempt;
            let finished_at = {
                let Some(local) = self.local_mut(job) else {
                    continue;
                };
                if local.attempt != attempt {
                    continue; // stale incarnation, job was requeued
                }
                let Some(started) = local.started_at else {
                    continue;
                };
                if local.done {
                    continue;
                }
                let from = last_strobe.max(started);
                let grant = now.saturating_since(from).saturating_sub(overhead);
                if grant.is_zero() {
                    continue;
                }
                let workload = &ctx.world().job(job).workload;
                if workload.steps().is_empty() && !workload.is_endless() {
                    continue; // do-nothing jobs terminate through the PL path
                }
                let used = local.cursor.advance(workload, grant, comm);
                if local.cursor.finished(workload) {
                    local.done = true;
                    let exit_at = from + overhead + used;
                    local.done_at = Some(exit_at);
                    Some(exit_at)
                } else {
                    None
                }
            };
            if let Some(exit_at) = finished_at {
                self.buffer_report(job, attempt, ReportKind::Done { app_done: exit_at }, ctx);
            }
        }
    }
}

impl NodeManager {
    /// The main dispatch, entered only after the dead/stalled preamble in
    /// [`Component::handle`] (or once per batch/window in `handle_batch` /
    /// `handle_shard`). Serial-only control messages that mutate the
    /// shared world (fail/rejoin/stall injections) are peeled off here;
    /// everything else goes through the [`NmCtx`]-generic dispatch shared
    /// with the parallel window path.
    fn handle_body(&mut self, msg: Msg, ctx: &mut Context<'_, World, Msg>) {
        match msg {
            Msg::FailNode => {
                self.failed = true;
                // Everything resident on the node dies with it.
                self.local.clear();
                self.pending_reports.clear();
                self.flush_scheduled = false;
                self.stalled_until = None;
                let now = ctx.now();
                ctx.world().nodes.mark_failed(self.node, now);
            }
            Msg::RejoinNode => {
                if !self.failed {
                    return; // spurious revival of a live node
                }
                let now = ctx.now();
                self.failed = false;
                self.local.clear();
                self.pending_reports.clear();
                self.flush_scheduled = false;
                self.stalled_until = None;
                self.busy_until = now;
                self.write_free = now;
                self.last_strobe = now;
                self.switch_pending = false;
                self.current_slot = ctx.world_ref().active_slot;
                ctx.world().nodes.clear_failed(self.node);
                // The node stays quarantined in the allocator until its
                // heartbeats catch up and the MM's rejoin scan re-admits it.
            }
            Msg::StallNode { until } => {
                if until > ctx.now() {
                    self.stalled_until = Some(until);
                }
            }
            other => {
                let mut c = SerialNmCtx {
                    node: self.node_id(),
                    ctx,
                };
                self.handle_shardable(other, &mut c);
            }
        }
    }

    /// Every data-path and control arm that touches the world only
    /// through [`NmCtx`] — runnable serially or on a parallel window
    /// worker with byte-identical effects.
    fn handle_shardable<C: NmCtx>(&mut self, msg: Msg, ctx: &mut C) {
        match msg {
            Msg::Fragment {
                job,
                chunk,
                attempt,
            } => {
                if ctx.world().job(job).attempt != attempt {
                    return; // fragment of a lost incarnation
                }
                let now = ctx.now();
                let (fs, placement, load, write_sigma) = {
                    let w = ctx.world();
                    (
                        w.cfg.fs,
                        w.cfg.placement,
                        w.cfg.load,
                        w.cfg.daemon.write_sigma,
                    )
                };
                let bytes = {
                    let w = ctx.world();
                    let t = &w.job(job).transfer;
                    t.chunk_bytes(chunk, w.cfg.chunk_bytes)
                };
                // Write to the local (RAM-disk) filesystem, serialised on the
                // node's write device, with per-node log-normal noise — the
                // variability the multi-buffering exists to absorb (§2.3).
                let noise = ctx.rng().lognormal_jitter(write_sigma);
                let span = load.inflate(fs.write_span(bytes, placement).mul_f64(noise));
                let start = now.max(self.write_free);
                let done = start + span;
                self.write_free = done;
                ctx.send_self_at(
                    done,
                    Msg::WriteDone {
                        job,
                        chunk,
                        attempt,
                    },
                );
            }
            Msg::WriteDone { job, attempt, .. } => {
                if ctx.world().job(job).attempt != attempt {
                    return; // write for a lost incarnation
                }
                // Bump the per-node fragment counter the MM's
                // COMPARE-AND-WRITE flow control watches.
                let var = ctx
                    .world()
                    .job(job)
                    .transfer
                    .written_var
                    .expect("transfer without flow-control var");
                ctx.mem_add(var, 1);
            }
            Msg::LaunchCmd { job, attempt } => {
                if ctx.world().job(job).attempt != attempt {
                    return; // launch of a lost incarnation
                }
                let now = ctx.now();
                let (costs, load) = {
                    let w = ctx.world();
                    (w.cfg.daemon, w.cfg.load)
                };
                let ranks_here = ctx.world().job(job).alloc().ranks_on(self.node);
                if ranks_here == 0 {
                    return;
                }
                self.local_insert(
                    job,
                    LocalJob {
                        ranks: ranks_here,
                        forked: 0,
                        exited: 0,
                        started_at: None,
                        cursor: ctx.world().job(job).workload.cursor(),
                        done: false,
                        done_at: None,
                        attempt,
                    },
                );
                // Command processing on the management CPU, plus the
                // exponential OS wake-up delay that drives Fig. 2's
                // execute-time growth with PE count.
                let os = SimSpan::from_secs_f64(
                    ctx.rng().exponential(costs.os_delay_mean.as_secs_f64()),
                );
                let service = load.inflate(costs.nm_msg_service + os);
                let start = now.max(self.busy_until);
                self.busy_until = start + service;
                let ready = self.busy_until;
                // Fork each rank through its own Program Launcher, staggered
                // by the sequential dispatch loop.
                for r in 0..ranks_here {
                    let pl = ctx.world().wiring.pls[self.node as usize][r as usize];
                    let dispatch = SimSpan::from_micros(30) * u64::from(r);
                    ctx.send_at(pl, ready + dispatch, Msg::Fork { job, attempt });
                }
            }
            Msg::ForkDone { job, attempt, .. } => {
                let Some(local) = self.local_mut(job) else {
                    return;
                };
                if local.attempt != attempt {
                    return; // fork of a lost incarnation
                }
                local.forked += 1;
                if local.forked == local.ranks {
                    local.started_at = Some(ctx.now());
                    self.buffer_report(job, attempt, ReportKind::Started, ctx);
                }
            }
            Msg::PlExited { job, attempt, .. } => {
                let now = ctx.now();
                let Some(local) = self.local_mut(job) else {
                    return;
                };
                if local.attempt != attempt {
                    return; // exit of a lost incarnation
                }
                local.exited += 1;
                if local.exited == local.ranks && !local.done {
                    local.done = true;
                    local.done_at = Some(now);
                    self.buffer_report(job, attempt, ReportKind::Done { app_done: now }, ctx);
                }
            }
            Msg::Strobe { slot, epoch } => {
                if self.epoch_stale(epoch, ctx) {
                    return; // strobe from a deposed MM, fenced off
                }
                let now = ctx.now();
                // NM strobe processing occupies the management CPU; quanta
                // shorter than the service time melt the NM down (§3.2.1's
                // ≈ 300 µs floor). We track overruns for the stats.
                let (service, timeslice) = {
                    let w = ctx.world();
                    (
                        w.cfg.load.inflate(w.cfg.daemon.nm_strobe_service),
                        w.cfg.timeslice,
                    )
                };
                let start = now.max(self.busy_until);
                self.busy_until = start + service;
                if self.busy_until.saturating_since(now) > timeslice * 4 {
                    ctx.count_nm_overrun();
                }
                // Close the interval that ran under the previous slot (or,
                // under implicit coscheduling, the locally-timeshared mix).
                if ctx.world().cfg.scheduler == crate::config::SchedulerKind::ImplicitCosched {
                    self.advance_ics(now, ctx);
                    self.current_slot = slot as usize;
                    self.last_strobe = now;
                    self.switch_pending = false;
                } else {
                    self.advance_slot(self.current_slot, now, ctx);
                    let switched = self.current_slot != slot as usize;
                    self.current_slot = slot as usize;
                    self.last_strobe = now;
                    self.switch_pending = switched;
                }
            }
            Msg::Heartbeat { round, epoch } => {
                if self.epoch_stale(epoch, ctx) {
                    return; // heartbeat from a deposed MM, fenced off
                }
                let drop_prob = ctx.world().cfg.faults.heartbeat_drop_prob;
                if drop_prob > 0.0 && ctx.rng().uniform() < drop_prob {
                    ctx.count_hb_drop();
                    return;
                }
                if let Some(var) = ctx.world().hb_var {
                    // Write the round number (not +1): for a healthy node this
                    // is identical to incrementing once per round, but a node
                    // that comes back after missing rounds catches up in a
                    // single beat — which is what the MM's rejoin scan polls
                    // for.
                    ctx.mem_write(var, round);
                }
            }
            Msg::FlushReports => {
                self.flush_scheduled = false;
                if self.pending_reports.is_empty() {
                    return;
                }
                let (mm, qsnet, load, os_mean) = {
                    let w = ctx.world();
                    (
                        w.wiring.mm.expect("MM not wired"),
                        w.qsnet,
                        w.cfg.load,
                        w.cfg.daemon.os_delay_mean,
                    )
                };
                // Take-drain-restore keeps the buffer's capacity across
                // flushes instead of reallocating it each boundary.
                let mut reports = std::mem::take(&mut self.pending_reports);
                for (job, attempt, kind) in reports.drain(..) {
                    // Small point-to-point message to the MM plus OS noise.
                    let os =
                        SimSpan::from_secs_f64(ctx.rng().exponential(os_mean.as_secs_f64() / 4.0));
                    let span = qsnet.ptp_span(128) + load.inflate(os);
                    ctx.send(
                        mm,
                        span,
                        Msg::NmReport {
                            node: self.node,
                            job,
                            kind,
                            attempt,
                        },
                    );
                }
                reports.append(&mut self.pending_reports);
                self.pending_reports = reports;
            }
            Msg::Resync { epoch } => {
                if self.epoch_stale(epoch, ctx) {
                    return;
                }
                let now = ctx.now();
                // In-flight and buffered reports addressed to the dead MM may
                // be lost; drop the buffer and re-announce the status of every
                // live incarnation so the promoted MM's per-node exactly-once
                // counters converge.
                self.pending_reports.clear();
                let mut announce = Vec::new();
                for &(job, ref local) in &self.local {
                    let rec = ctx.world().job(job);
                    if rec.state.is_terminal() || rec.attempt != local.attempt {
                        continue;
                    }
                    if local.done {
                        let app_done = local.done_at.unwrap_or(now);
                        announce.push((job, local.attempt, ReportKind::Done { app_done }));
                    } else if local.forked == local.ranks && local.started_at.is_some() {
                        announce.push((job, local.attempt, ReportKind::Started));
                    }
                }
                for (job, attempt, kind) in announce {
                    self.buffer_report(job, attempt, kind, ctx);
                }
            }
            other => panic!("NM received unexpected message {other:?}"),
        }
    }
}

impl Component<World, Msg> for NodeManager {
    fn handle(&mut self, msg: Msg, ctx: &mut Context<'_, World, Msg>) {
        if self.failed && !matches!(msg, Msg::FailNode | Msg::RejoinNode) {
            return; // a dead node answers nothing
        }
        if let Some(until) = self.stalled_until {
            if ctx.now() >= until {
                self.stalled_until = None;
            } else if !matches!(msg, Msg::FailNode | Msg::RejoinNode | Msg::StallNode { .. }) {
                // A stalled dæmon processes nothing until the stall ends;
                // messages are deferred, not lost, so heartbeat replies
                // arrive late — exactly what lets the MM tell a slow node
                // from a dead one.
                ctx.send_self_at(until, msg);
                return;
            }
        }
        self.handle_body(msg, ctx);
    }

    /// The data-path messages — fragment writes, write completions, fork
    /// acks, rank exits — dominate event volume during a launch and touch
    /// only local tables, so they batch. Control messages (strobes, fail /
    /// stall injections, flushes) stay per-message: several mutate the
    /// dead/stalled flags the batch preamble hoists.
    fn batchable(&self, msg: &Msg) -> bool {
        matches!(
            msg,
            Msg::Fragment { .. }
                | Msg::WriteDone { .. }
                | Msg::ForkDone { .. }
                | Msg::PlExited { .. }
        )
    }

    fn handle_batch(&mut self, msgs: &mut Vec<Msg>, ctx: &mut Context<'_, World, Msg>) {
        // The dead/stalled checks run once for the whole batch instead of
        // per message. Sound because no batchable message mutates either
        // flag (FailNode/RejoinNode/StallNode are never batchable), so the
        // per-message outcome is identical for every message in the run.
        if self.failed {
            msgs.clear(); // a dead node answers nothing
            return;
        }
        if let Some(until) = self.stalled_until {
            if ctx.now() >= until {
                self.stalled_until = None;
            } else {
                // Defer the whole batch to the stall's end, in order.
                for msg in msgs.drain(..) {
                    ctx.next_batch_message();
                    ctx.send_self_at(until, msg);
                }
                return;
            }
        }
        for msg in msgs.drain(..) {
            ctx.next_batch_message();
            self.handle_body(msg, ctx);
        }
    }

    /// Everything whose world writes fit in a [`NodeShard`]: the batchable
    /// data path (a superset, as the contract requires) plus the per-node
    /// control messages — strobes, heartbeats, launch commands, report
    /// flushes. Fault/replication injections (fail/rejoin/stall, resync)
    /// mutate shared tables and stay serial.
    fn shardable(&self, msg: &Msg) -> bool {
        matches!(
            msg,
            Msg::Fragment { .. }
                | Msg::WriteDone { .. }
                | Msg::LaunchCmd { .. }
                | Msg::ForkDone { .. }
                | Msg::PlExited { .. }
                | Msg::Strobe { .. }
                | Msg::Heartbeat { .. }
                | Msg::FlushReports
        )
    }

    fn handle_shard(&mut self, msgs: &mut Vec<Msg>, sctx: &mut ShardContext<'_, World, Msg>) {
        // Same preamble hoisting as `handle_batch`, and sound for the same
        // reason: no shardable message mutates the dead/stalled flags, so
        // the per-message outcome is identical across the window slice.
        if self.failed {
            for _ in msgs.drain(..) {
                sctx.next_message(); // a dead node answers nothing
            }
            return;
        }
        if let Some(until) = self.stalled_until {
            if sctx.now() >= until {
                self.stalled_until = None;
            } else {
                // Defer each message to the stall's end, in order.
                for msg in msgs.drain(..) {
                    sctx.next_message();
                    sctx.send_self_at(until, msg);
                }
                return;
            }
        }
        for msg in msgs.drain(..) {
            sctx.next_message();
            let mut c = ShardNmCtx { ctx: sctx };
            self.handle_shardable(msg, &mut c);
        }
    }

    fn name(&self) -> &str {
        "NM"
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// One resident job's local state, exported for checkpointing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NmLocalJobState {
    /// Job id.
    pub job: crate::job::JobId,
    /// Ranks hosted on this node.
    pub ranks: u32,
    /// Ranks forked so far.
    pub forked: u32,
    /// Ranks exited so far.
    pub exited: u32,
    /// When all local ranks were running.
    pub started_at: Option<SimTime>,
    /// Workload cursor position: `(step, consumed_in_step, total_consumed)`.
    pub cursor: (usize, SimSpan, SimSpan),
    /// Whether the job has finished locally.
    pub done: bool,
    /// When the job finished locally.
    pub done_at: Option<SimTime>,
    /// Launch attempt this local state belongs to.
    pub attempt: u32,
}

/// A node manager's private state, exported for checkpointing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NmState {
    /// Node index.
    pub node: u32,
    /// Whether the node is dead.
    pub failed: bool,
    /// Management-CPU busy horizon.
    pub busy_until: SimTime,
    /// Local filesystem write device horizon.
    pub write_free: SimTime,
    /// Slot currently running on this node.
    pub current_slot: usize,
    /// Instant of the last strobe.
    pub last_strobe: SimTime,
    /// Whether the current interval opened with a context switch.
    pub switch_pending: bool,
    /// Resident jobs, sorted by id.
    pub local: Vec<NmLocalJobState>,
    /// Buffered `(job, attempt, kind)` reports.
    pub pending_reports: Vec<(crate::job::JobId, u32, ReportKind)>,
    /// Whether a `FlushReports` is in flight.
    pub flush_scheduled: bool,
    /// End of an injected dæmon stall, if one is active.
    pub stalled_until: Option<SimTime>,
}

impl NodeManager {
    /// Snapshot the dæmon's private state for a checkpoint.
    pub fn export_state(&self) -> NmState {
        NmState {
            node: self.node,
            failed: self.failed,
            busy_until: self.busy_until,
            write_free: self.write_free,
            current_slot: self.current_slot,
            last_strobe: self.last_strobe,
            switch_pending: self.switch_pending,
            local: self
                .local
                .iter()
                .map(|&(job, ref l)| NmLocalJobState {
                    job,
                    ranks: l.ranks,
                    forked: l.forked,
                    exited: l.exited,
                    started_at: l.started_at,
                    cursor: (
                        l.cursor.steps_done(),
                        l.cursor.consumed_in_step(),
                        l.cursor.total_consumed(),
                    ),
                    done: l.done,
                    done_at: l.done_at,
                    attempt: l.attempt,
                })
                .collect(),
            pending_reports: self.pending_reports.clone(),
            flush_scheduled: self.flush_scheduled,
            stalled_until: self.stalled_until,
        }
    }

    /// Rebuild a dæmon from a checkpointed [`NmState`].
    pub fn import_state(state: NmState) -> Self {
        NodeManager {
            node: state.node,
            failed: state.failed,
            busy_until: state.busy_until,
            write_free: state.write_free,
            current_slot: state.current_slot,
            last_strobe: state.last_strobe,
            switch_pending: state.switch_pending,
            local: state
                .local
                .into_iter()
                .map(|l| {
                    (
                        l.job,
                        LocalJob {
                            ranks: l.ranks,
                            forked: l.forked,
                            exited: l.exited,
                            started_at: l.started_at,
                            cursor: WorkloadCursor::from_parts(l.cursor.0, l.cursor.1, l.cursor.2),
                            done: l.done,
                            done_at: l.done_at,
                            attempt: l.attempt,
                        },
                    )
                })
                .collect(),
            pending_reports: state.pending_reports,
            flush_scheduled: state.flush_scheduled,
            stalled_until: state.stalled_until,
        }
    }
}
