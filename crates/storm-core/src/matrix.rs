//! The Ousterhout gang-scheduling matrix.
//!
//! Gang scheduling (§3.2) assigns each job's processes to distinct PEs with
//! a one-to-one mapping, groups jobs into *time slots*, and time-slices
//! whole slots with a coordinated multi-context-switch each quantum. We
//! model the matrix at node granularity: each slot owns a [`BuddyAllocator`]
//! over the cluster's nodes, and a job occupies a contiguous node range
//! within exactly one slot. The multiprogramming level (MPL) is the number
//! of occupied slots.

use crate::buddy::BuddyAllocator;
use crate::job::JobId;
use std::collections::BTreeSet;
use std::ops::Range;

/// One time slot of the matrix.
#[derive(Debug, Clone)]
struct Slot {
    buddy: BuddyAllocator,
    /// Jobs in the slot, sorted by id. A slot holds few jobs, so a sorted
    /// vector makes lookups cheap, keeps iteration deterministic without
    /// collect-and-sort, and lets `jobs_in_slot` hand out a borrowed slice
    /// instead of building a fresh `Vec` on every call.
    jobs: Vec<(JobId, Range<u32>)>,
}

impl Slot {
    fn new(nodes: u32, quarantined: &BTreeSet<u32>) -> Self {
        let mut buddy = BuddyAllocator::new(nodes);
        for &node in quarantined {
            assert!(buddy.quarantine(node), "fresh buddy must accept quarantine");
        }
        Slot {
            buddy,
            jobs: Vec::new(),
        }
    }

    fn insert(&mut self, job: JobId, range: Range<u32>) {
        match self.jobs.binary_search_by_key(&job, |(j, _)| *j) {
            Ok(pos) => self.jobs[pos].1 = range,
            Err(pos) => self.jobs.insert(pos, (job, range)),
        }
    }

    fn remove(&mut self, job: JobId) -> Option<Range<u32>> {
        match self.jobs.binary_search_by_key(&job, |(j, _)| *j) {
            Ok(pos) => Some(self.jobs.remove(pos).1),
            Err(_) => None,
        }
    }

    fn get(&self, job: JobId) -> Option<&Range<u32>> {
        match self.jobs.binary_search_by_key(&job, |(j, _)| *j) {
            Ok(pos) => Some(&self.jobs[pos].1),
            Err(_) => None,
        }
    }
}

/// The gang matrix: `mpl_max` time slots × `nodes` nodes.
#[derive(Debug, Clone)]
pub struct GangMatrix {
    nodes: u32,
    mpl_max: usize,
    slots: Vec<Slot>,
    /// Nodes quarantined out of every slot (and out of any slot opened
    /// while the quarantine lasts).
    quarantined: BTreeSet<u32>,
}

impl GangMatrix {
    /// An empty matrix over `nodes` nodes with at most `mpl_max` slots.
    pub fn new(nodes: u32, mpl_max: usize) -> Self {
        assert!(nodes > 0 && mpl_max > 0);
        GangMatrix {
            nodes,
            mpl_max,
            slots: Vec::new(),
            quarantined: BTreeSet::new(),
        }
    }

    /// Cluster width.
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// Maximum multiprogramming level.
    pub fn mpl_max(&self) -> usize {
        self.mpl_max
    }

    /// Current number of slots (occupied or created).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Current multiprogramming level (number of non-empty slots).
    pub fn mpl(&self) -> usize {
        self.slots.iter().filter(|s| !s.jobs.is_empty()).count()
    }

    /// Total jobs placed.
    pub fn job_count(&self) -> usize {
        self.slots.iter().map(|s| s.jobs.len()).sum()
    }

    /// Try to place a job needing `nodes_needed` nodes: first slot with a
    /// free aligned block wins; a new slot is opened if all existing slots
    /// are full and fewer than `mpl_max` exist. Returns `(slot, node range)`.
    pub fn place(&mut self, job: JobId, nodes_needed: u32) -> Option<(usize, Range<u32>)> {
        if nodes_needed == 0 || nodes_needed > self.nodes {
            return None;
        }
        for (idx, slot) in self.slots.iter_mut().enumerate() {
            if let Some(range) = slot.buddy.alloc(nodes_needed) {
                slot.insert(job, range.clone());
                return Some((idx, range));
            }
        }
        if self.slots.len() < self.mpl_max {
            let mut slot = Slot::new(self.nodes, &self.quarantined);
            // With healthy nodes a feasible job always fits a fresh slot;
            // under quarantine even an empty slot may be too fragmented.
            let range = slot.buddy.alloc(nodes_needed)?;
            slot.insert(job, range.clone());
            self.slots.push(slot);
            return Some((self.slots.len() - 1, range));
        }
        None
    }

    /// Quarantine `node` out of every slot (current and future). Returns
    /// `false` (and changes nothing) if any slot still has `node` inside a
    /// live allocation — the MM must evict those jobs first.
    pub fn quarantine_node(&mut self, node: u32) -> bool {
        if node >= self.nodes || self.quarantined.contains(&node) {
            return false;
        }
        if self
            .slots
            .iter()
            .any(|s| s.jobs.iter().any(|(_, r)| r.contains(&node)))
        {
            return false;
        }
        for slot in &mut self.slots {
            assert!(
                slot.buddy.quarantine(node),
                "node {node} free in every slot after eviction"
            );
        }
        self.quarantined.insert(node);
        true
    }

    /// Re-admit a quarantined node to every slot. Returns `false` if the
    /// node was not quarantined.
    pub fn rejoin_node(&mut self, node: u32) -> bool {
        if !self.quarantined.remove(&node) {
            return false;
        }
        for slot in &mut self.slots {
            assert!(slot.buddy.rejoin(node), "quarantined in every slot");
        }
        true
    }

    /// Nodes currently quarantined.
    pub fn quarantined_nodes(&self) -> impl Iterator<Item = u32> + '_ {
        self.quarantined.iter().copied()
    }

    /// Is `node` quarantined?
    pub fn is_quarantined(&self, node: u32) -> bool {
        self.quarantined.contains(&node)
    }

    /// Remove a job, freeing its block. Returns its former `(slot, range)`.
    pub fn remove(&mut self, job: JobId) -> Option<(usize, Range<u32>)> {
        for (idx, slot) in self.slots.iter_mut().enumerate() {
            if let Some(range) = slot.remove(job) {
                slot.buddy.free(range.start);
                return Some((idx, range));
            }
        }
        None
    }

    /// Jobs in a slot, sorted by id (borrowed — no per-call allocation).
    pub fn jobs_in_slot(&self, slot: usize) -> &[(JobId, Range<u32>)] {
        &self.slots[slot].jobs
    }

    /// Read-only view of the `slot`-th row's buddy allocator, or `None`
    /// past the open slots — what external invariant checkers (the DST
    /// conservation oracle) audit against the row's job list.
    pub fn slot_buddy(&self, slot: usize) -> Option<&BuddyAllocator> {
        self.slots.get(slot).map(|s| &s.buddy)
    }

    /// The slot a job lives in, if placed.
    pub fn slot_of(&self, job: JobId) -> Option<usize> {
        self.slots.iter().position(|s| s.get(job).is_some())
    }

    /// The node range of a placed job.
    pub fn range_of(&self, job: JobId) -> Option<Range<u32>> {
        self.slots.iter().find_map(|s| s.get(job).cloned())
    }

    /// The next non-empty slot after `current` in round-robin order — the
    /// slot the MM activates at the next quantum boundary. `None` when the
    /// matrix is empty.
    pub fn next_active_slot(&self, current: usize) -> Option<usize> {
        let n = self.slots.len();
        if n == 0 {
            return None;
        }
        for step in 1..=n {
            let idx = (current + step) % n;
            if !self.slots[idx].jobs.is_empty() {
                return Some(idx);
            }
        }
        None
    }

    /// Largest free aligned block available in any slot — used by
    /// schedulers to decide whether a queued job could start now.
    pub fn can_place(&self, nodes_needed: u32) -> bool {
        if nodes_needed == 0 || nodes_needed > self.nodes {
            return false;
        }
        let want = nodes_needed.next_power_of_two();
        if self
            .slots
            .iter()
            .any(|s| s.buddy.free_nodes() >= want && s.buddy.clone().alloc(nodes_needed).is_some())
        {
            return true;
        }
        // A fresh slot starts with the quarantine applied, so probe one.
        self.slots.len() < self.mpl_max
            && Slot::new(self.nodes, &self.quarantined)
                .buddy
                .alloc(nodes_needed)
                .is_some()
    }

    /// Checkpoint image: cluster width, MPL cap, per-slot buddy + job
    /// rows, and the matrix-level quarantine set.
    pub fn export_state(&self) -> MatrixState {
        MatrixState {
            nodes: self.nodes,
            mpl_max: self.mpl_max,
            slots: self
                .slots
                .iter()
                .map(|s| SlotState {
                    buddy: s.buddy.export_state(),
                    jobs: s.jobs.clone(),
                })
                .collect(),
            quarantined: self.quarantined.iter().copied().collect(),
        }
    }

    /// Rebuild a matrix from an exported image. See
    /// [`GangMatrix::export_state`].
    pub fn import_state(state: MatrixState) -> Self {
        GangMatrix {
            nodes: state.nodes,
            mpl_max: state.mpl_max,
            slots: state
                .slots
                .into_iter()
                .map(|s| Slot {
                    buddy: BuddyAllocator::import_state(s.buddy),
                    jobs: s.jobs,
                })
                .collect(),
            quarantined: state.quarantined.into_iter().collect(),
        }
    }

    /// Check the one-to-one mapping invariant: within every slot, no two
    /// jobs overlap. (Debug/testing aid.)
    pub fn check_invariants(&self) {
        for slot in &self.slots {
            let mut ranges: Vec<&Range<u32>> = slot.jobs.iter().map(|(_, r)| r).collect();
            ranges.sort_by_key(|r| r.start);
            for w in ranges.windows(2) {
                assert!(
                    w[0].end <= w[1].start,
                    "overlapping placements: {:?} vs {:?}",
                    w[0],
                    w[1]
                );
            }
        }
    }
}

/// Serializable image of a [`GangMatrix`], produced by
/// [`GangMatrix::export_state`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatrixState {
    /// Cluster width.
    pub nodes: u32,
    /// Maximum multiprogramming level.
    pub mpl_max: usize,
    /// Open slots in slot order.
    pub slots: Vec<SlotState>,
    /// Nodes quarantined out of every slot, ascending.
    pub quarantined: Vec<u32>,
}

/// One checkpointed matrix slot: its allocator image plus the job rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotState {
    /// The slot's buddy-allocator image.
    pub buddy: crate::buddy::BuddyState,
    /// Jobs in the slot, sorted by id.
    pub jobs: Vec<(JobId, Range<u32>)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn j(n: u64) -> JobId {
        JobId(n as u32)
    }

    #[test]
    fn fills_one_slot_before_opening_another() {
        let mut m = GangMatrix::new(8, 2);
        let (s1, _) = m.place(j(1), 8).unwrap();
        assert_eq!(s1, 0);
        assert_eq!(m.mpl(), 1);
        // Second full-machine job opens slot 1 (MPL 2).
        let (s2, _) = m.place(j(2), 8).unwrap();
        assert_eq!(s2, 1);
        assert_eq!(m.mpl(), 2);
        // Third cannot be placed (MPL cap).
        assert!(m.place(j(3), 1).is_none());
    }

    #[test]
    fn space_shares_within_a_slot() {
        let mut m = GangMatrix::new(8, 1);
        let (s1, r1) = m.place(j(1), 4).unwrap();
        let (s2, r2) = m.place(j(2), 4).unwrap();
        assert_eq!((s1, s2), (0, 0));
        assert!(r1.end <= r2.start || r2.end <= r1.start);
        m.check_invariants();
        assert_eq!(m.mpl(), 1);
        assert_eq!(m.job_count(), 2);
    }

    #[test]
    fn remove_frees_space() {
        let mut m = GangMatrix::new(4, 1);
        m.place(j(1), 4).unwrap();
        assert!(m.place(j(2), 1).is_none());
        let (slot, range) = m.remove(j(1)).unwrap();
        assert_eq!((slot, range), (0, 0..4));
        assert!(m.place(j(2), 4).is_some());
        assert!(m.remove(j(99)).is_none());
    }

    #[test]
    fn round_robin_skips_empty_slots() {
        let mut m = GangMatrix::new(4, 3);
        m.place(j(1), 4).unwrap(); // slot 0
        m.place(j(2), 4).unwrap(); // slot 1
        m.place(j(3), 4).unwrap(); // slot 2
        assert_eq!(m.next_active_slot(0), Some(1));
        assert_eq!(m.next_active_slot(2), Some(0));
        m.remove(j(2)).unwrap();
        assert_eq!(m.next_active_slot(0), Some(2), "skips now-empty slot 1");
        m.remove(j(1)).unwrap();
        m.remove(j(3)).unwrap();
        assert_eq!(m.next_active_slot(0), None);
    }

    #[test]
    fn lookups() {
        let mut m = GangMatrix::new(8, 2);
        m.place(j(5), 2).unwrap();
        assert_eq!(m.slot_of(j(5)), Some(0));
        assert_eq!(m.range_of(j(5)).unwrap().len(), 2);
        assert_eq!(m.slot_of(j(6)), None);
        let in_slot = m.jobs_in_slot(0);
        assert_eq!(in_slot.len(), 1);
        assert_eq!(in_slot[0].0, j(5));
    }

    #[test]
    fn can_place_is_consistent_with_place() {
        let mut m = GangMatrix::new(8, 1);
        assert!(m.can_place(8));
        m.place(j(1), 5).unwrap(); // rounds to 8
        assert!(!m.can_place(1));
        assert!(!m.can_place(9), "larger than machine");
        assert!(!m.can_place(0));
    }

    #[test]
    fn quarantine_spans_existing_and_future_slots() {
        let mut m = GangMatrix::new(8, 2);
        m.place(j(1), 2).unwrap(); // opens slot 0 at 0..2
        assert!(m.quarantine_node(7));
        assert!(m.is_quarantined(7));
        // Slot 0's upper half is fragmented by the carve, so a 4-node job
        // must open slot 1 — which starts with the quarantine applied.
        let (slot, r) = m.place(j(2), 4).unwrap();
        assert_eq!(slot, 1);
        assert!(!r.contains(&7));
        // No slot, existing or fresh, can host the full machine now.
        assert!(!m.can_place(8));
        // Small jobs still fit around the quarantined node.
        let (_, r2) = m.place(j(3), 2).unwrap();
        assert!(!r2.contains(&7));
        m.check_invariants();
    }

    #[test]
    fn quarantine_requires_eviction_first() {
        let mut m = GangMatrix::new(8, 1);
        m.place(j(1), 8).unwrap();
        assert!(!m.quarantine_node(3), "node 3 is inside job 1's block");
        m.remove(j(1)).unwrap();
        assert!(m.quarantine_node(3));
        assert!(!m.quarantine_node(3), "idempotence guard");
        assert!(!m.quarantine_node(99), "out of range");
    }

    #[test]
    fn rejoin_restores_placement() {
        let mut m = GangMatrix::new(8, 1);
        assert!(m.quarantine_node(0));
        assert!(!m.can_place(8));
        assert!(m.rejoin_node(0));
        assert!(!m.rejoin_node(0), "second rejoin is a no-op");
        assert!(m.can_place(8));
        let (_, r) = m.place(j(1), 8).unwrap();
        assert_eq!(r, 0..8);
        assert_eq!(m.quarantined_nodes().count(), 0);
    }

    #[test]
    fn random_place_remove_maintains_invariants() {
        use storm_sim::DeterministicRng;
        let mut rng = DeterministicRng::new(3);
        let mut m = GangMatrix::new(32, 3);
        let mut live: Vec<JobId> = Vec::new();
        let mut next = 0u64;
        for _ in 0..1500 {
            if rng.uniform() < 0.6 || live.is_empty() {
                let want = 1 << rng.below(5);
                let id = j(next);
                next += 1;
                if m.place(id, want).is_some() {
                    live.push(id);
                }
            } else {
                let idx = rng.below(live.len() as u64) as usize;
                let id = live.swap_remove(idx);
                assert!(m.remove(id).is_some());
            }
            m.check_invariants();
            assert!(m.mpl() <= 3);
            assert_eq!(m.job_count(), live.len());
        }
    }
}
