//! The Machine Manager (MM).
//!
//! One per cluster, on the management node (§2.1): it owns the job queue,
//! allocates processors through the buddy-tree matrix, drives the chunked
//! broadcast file-transfer protocol (§2.3/§3.3.1), rotates the gang matrix
//! and enacts coordinated context switches with a single XFER-AND-SIGNAL
//! multicast, collects NM event reports, and runs the heartbeat
//! fault-detection protocol of §4.
//!
//! In keeping with the paper, the MM "can issue commands and receive the
//! notification of events only at the beginning of a timeslice": scheduling
//! decisions and launch commands happen on `Tick` (every timeslice), report
//! processing on `Collect` boundaries (every `min(timeslice,
//! max_event_collect)`). The transfer pipeline's intermediate events
//! (`ReadDone`, `BcastFreed`, `FlowPoll`) are serviced immediately — they
//! are handled by the NIC and its lightweight helper process, not by the
//! MM host process.

use crate::fault::FailurePolicy;
use crate::job::{Allocation, JobId, JobState};
use crate::msg::{Msg, ReportKind};
use crate::policy::{self, QueuedJob, RunningJob};
use crate::replica::{Decision, MmRole};
use crate::world::{IdleLeap, World};
use storm_mech::{CmpOp, NodeId, NodeSet};
use storm_sim::{Component, Context, GroupSchedule, SimSpan, SimTime};
use storm_telemetry::{JobSpan, Phase};

/// Size of a control multicast (strobe, launch command, heartbeat) in
/// bytes.
const CONTROL_MSG_BYTES: u64 = 64;

/// Size of a shipped decision-log record in bytes.
const REPL_MSG_BYTES: u64 = 128;

/// Size of a shipped full checkpoint in bytes.
const REPL_CKPT_BYTES: u64 = 4096;

/// Hard cap on a single requeue backoff delay: extreme
/// `max_retries × backoff` configurations saturate here instead of
/// overflowing or parking a retry past any plausible horizon.
const MAX_REQUEUE_DELAY: SimSpan = SimSpan::from_secs(60);

/// Detected-failed nodes as a dense flag array with a live count: the
/// per-round membership tests and the ascending-order candidate scan are
/// cache-linear, and — unlike a hash set — iteration order is the node
/// order itself, no collect-and-sort.
#[derive(Debug, Default)]
struct DetectedSet {
    flags: Vec<bool>,
    count: u32,
}

impl DetectedSet {
    fn is_empty(&self) -> bool {
        self.count == 0
    }

    fn contains(&self, node: u32) -> bool {
        self.flags.get(node as usize).copied().unwrap_or(false)
    }

    /// Mark `node` detected; `true` when newly inserted.
    fn insert(&mut self, node: u32) -> bool {
        let ix = node as usize;
        if self.flags.len() <= ix {
            self.flags.resize(ix + 1, false);
        }
        if self.flags[ix] {
            return false;
        }
        self.flags[ix] = true;
        self.count += 1;
        true
    }

    fn remove(&mut self, node: u32) {
        let ix = node as usize;
        if ix < self.flags.len() && self.flags[ix] {
            self.flags[ix] = false;
            self.count -= 1;
        }
    }

    fn clear(&mut self) {
        self.flags.clear();
        self.count = 0;
    }

    /// Detected nodes in ascending node order.
    fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.flags
            .iter()
            .enumerate()
            .filter(|&(_, &f)| f)
            .map(|(n, _)| n as u32)
    }
}

/// The Machine Manager dæmon.
#[derive(Debug, Default)]
pub struct MachineManager {
    tick_scheduled: bool,
    collect_scheduled: bool,
    pending_reports: Vec<(u32, JobId, u32, ReportKind)>,
    ticks: u64,
    /// Instant of the last executed tick — deduplicates the superseded
    /// far tick left in the queue when a mid-gap message re-densifies an
    /// idle fast-forward leap.
    last_tick_at: Option<SimTime>,
    /// Nodes whose failure has been detected by the heartbeat protocol.
    detected_failed: DetectedSet,
    /// This replica's rank (0 = the primary).
    rank: u32,
    /// Current role: the primary starts Active, the rest Standby.
    role: MmRole,
    /// The epoch this replica believes is current. Bumped on promotion and
    /// fenced into every node's global memory so stale-epoch multicasts
    /// are rejected.
    epoch: u64,
    /// When this standby last heard a liveness beat from the active MM.
    last_beat_seen: Option<SimTime>,
    /// Liveness beats this replica has sent while active.
    beats_sent: u64,
}

impl MachineManager {
    /// A fresh (primary, active) MM.
    pub fn new() -> Self {
        MachineManager::default()
    }

    /// A standby replica with the given rank (≥ 1).
    pub fn standby(rank: u32) -> Self {
        MachineManager {
            rank,
            role: MmRole::Standby,
            ..MachineManager::default()
        }
    }

    /// Ticks issued so far.
    pub fn tick_count(&self) -> u64 {
        self.ticks
    }

    /// Ticks are the MM's *heartbeat*: they fire every
    /// `collect_period = min(timeslice, max_event_collect)`. Commands and
    /// event collection happen on every heartbeat; the gang matrix rotates
    /// to the next slot only on *timeslice* boundaries (every
    /// `ticks_per_quantum` heartbeats). With the launch experiments' 1 ms
    /// timeslice the two cadences coincide, exactly as in §3.1.
    fn ensure_tick(&mut self, ctx: &mut Context<'_, World, Msg>) {
        let period = ctx.world_ref().cfg.collect_period();
        let at = ctx.now().next_boundary(period);
        if self.tick_scheduled {
            // An armed idle leap parks the next tick up to a heartbeat
            // round away. A message landing mid-gap (a submit, a kill, a
            // requeue) needs the dense chain back *now*: schedule the
            // earlier tick and lower `parked`; the superseded far tick is
            // deduplicated by `last_tick_at` when it eventually pops.
            let densify = ctx.world_ref().leap.as_ref().is_some_and(|l| at < l.parked);
            if densify {
                ctx.world().leap.as_mut().expect("armed").parked = at;
                ctx.send_self_at(at, Msg::Tick);
            }
        } else {
            ctx.send_self_at(at, Msg::Tick);
            self.tick_scheduled = true;
        }
    }

    fn ensure_collect(&mut self, ctx: &mut Context<'_, World, Msg>) {
        self.ensure_tick(ctx);
    }

    /// Heartbeats per scheduling quantum (≥ 1).
    fn ticks_per_quantum(cfg: &crate::config::ClusterConfig) -> u64 {
        let q = cfg.timeslice.as_nanos();
        let c = cfg.collect_period().as_nanos().max(1);
        q.div_ceil(c).max(1)
    }

    /// Idle fast-forward (DESIGN.md §12): when fault detection keeps the
    /// tick chain alive over a quiescent cluster, park the next tick at
    /// the upcoming heartbeat round instead of strobing the empty slices
    /// in between. Arms only when no pending event lands before the
    /// target, which proves every skipped tick would have been a no-op —
    /// no randomness, no trace, no stats — whose counter arithmetic the
    /// world replays exactly (`World::settle_leap_through`). Heartbeat
    /// rounds themselves always execute for real.
    fn try_leap(&mut self, ctx: &mut Context<'_, World, Msg>) -> bool {
        let (h, period) = {
            let w = ctx.world_ref();
            if !w.cfg.fast_forward
                || !w.cfg.fault_detection
                || w.leap.is_some()
                || !w.is_quiescent()
            {
                return false;
            }
            (u64::from(w.cfg.heartbeat_every), w.cfg.collect_period())
        };
        debug_assert!(self.pending_reports.is_empty());
        // Rounds fire at tick numbers n with (n - 1) % h == 0; skip the
        // intermediate ticks between this one (already counted) and the
        // next round.
        let next_round = self.ticks + (h - (self.ticks - 1) % h);
        let skipped = next_round - self.ticks - 1;
        if skipped == 0 {
            return false;
        }
        let now = ctx.now();
        let target = now + period * (skipped + 1);
        if ctx.peek_next_event().is_some_and(|t| t < target) {
            return false;
        }
        // What each skipped tick's health sample would observe: the
        // pending count cannot change mid-gap (no handler runs before the
        // target), and the matrix is empty, so utilisation samples are 0
        // over however many cells exist.
        let pending = ctx.pending_messages();
        let pct = {
            let w = ctx.world_ref();
            let cells = (w.matrix.slot_count() as u64) * u64::from(w.matrix.nodes());
            if cells == 0 {
                None
            } else {
                Some(0)
            }
        };
        ctx.world().leap = Some(IdleLeap {
            from: now,
            parked: target,
            settled: now,
            pending,
            pct,
        });
        ctx.send_self_at(target, Msg::Tick);
        self.tick_scheduled = true;
        true
    }

    /// The destination set of a job's allocation.
    fn alloc_set(alloc: &Allocation) -> NodeSet {
        NodeSet::Range {
            start: alloc.nodes.start,
            len: alloc.nodes.end - alloc.nodes.start,
        }
    }

    /// Deliver `msg` to the NMs of `set`, member `rank` arriving at
    /// `schedule.arrival(base, rank)`. With `cfg.group_delivery` this is a
    /// single group event the engine expands lazily in node order; without
    /// it, one queue entry per NM (the legacy shape). Both consume the same
    /// sequence-number width, so traces are byte-identical either way.
    fn fan_out(
        &self,
        ctx: &mut Context<'_, World, Msg>,
        set: &NodeSet,
        base: SimTime,
        schedule: GroupSchedule,
        msg: Msg,
    ) {
        if ctx.world_ref().cfg.group_delivery {
            let targets = ctx.world_ref().wiring.nm_targets(set);
            ctx.multicast(&targets, base, schedule, msg);
        } else {
            for rank in 0..set.len() {
                let nm = ctx.world_ref().wiring.nms[set.get(rank).index()];
                ctx.send_at(nm, schedule.arrival(base, rank), msg.clone());
            }
        }
    }

    // ------------------------------------------------------- replication —

    /// The component ids of every *live* standby other than this replica.
    fn live_standbys(&self, ctx: &Context<'_, World, Msg>) -> Vec<storm_sim::ComponentId> {
        let w = ctx.world_ref();
        (0..w.mm_roles.len())
            .filter(|&r| {
                r as u32 != self.rank && w.mm_roles[r] == MmRole::Standby && !w.mm_failed[r]
            })
            .map(|r| w.wiring.mms[r])
            .collect()
    }

    /// Record one scheduling decision in the active MM's replicated state
    /// and ship it (in sequence order, at a fixed point-to-point latency,
    /// so standbys receive the log in the order it was written) to every
    /// live standby. A no-op without standbys: replication draws no RNG,
    /// writes no trace, and touches no `ClusterStats`, which is what keeps
    /// a fault-free standby run byte-identical to a standby-free run.
    fn log_decision(&mut self, ctx: &mut Context<'_, World, Msg>, d: Decision) {
        if !ctx.world_ref().repl_enabled() {
            return;
        }
        let now = ctx.now();
        let seq = ctx.world_ref().mm_core.log_len;
        ctx.world().mm_core.apply(&d);
        ctx.world().repl.log_records += 1;
        let lat = ctx.world_ref().qsnet.ptp_span(REPL_MSG_BYTES);
        for target in self.live_standbys(ctx) {
            ctx.send_at(
                target,
                now + lat,
                Msg::ReplLog {
                    epoch: self.epoch,
                    seq,
                    decision: d.clone(),
                },
            );
        }
    }

    /// Ship a liveness beat — and, every fourth round, a full checkpoint —
    /// to every live standby. Runs at the end of each heartbeat round, so
    /// beats share the round cadence the standby watchdogs are armed on.
    fn ship_beats(&mut self, ctx: &mut Context<'_, World, Msg>) {
        if !ctx.world_ref().repl_enabled() {
            return;
        }
        let now = ctx.now();
        ctx.world().mm_core.ticks = self.ticks;
        self.beats_sent += 1;
        let ship_ckpt = self.beats_sent % 4 == 1;
        let beat_lat = ctx.world_ref().qsnet.ptp_span(CONTROL_MSG_BYTES);
        let ckpt_lat = ctx.world_ref().qsnet.ptp_span(REPL_CKPT_BYTES);
        let (epoch, ticks, log_len) = (self.epoch, self.ticks, ctx.world_ref().mm_core.log_len);
        let targets = self.live_standbys(ctx);
        if targets.is_empty() {
            return;
        }
        ctx.world().repl.beats += 1;
        if ship_ckpt {
            ctx.world().repl.checkpoints += 1;
        }
        for target in targets {
            ctx.send_at(
                target,
                now + beat_lat,
                Msg::MmBeat {
                    epoch,
                    ticks,
                    log_len,
                },
            );
            if ship_ckpt {
                let state = Box::new(ctx.world_ref().mm_core.clone());
                ctx.send_at(target, now + ckpt_lat, Msg::ReplCheckpoint { epoch, state });
            }
        }
    }

    /// This replica dies: mark it failed in the shared membership record
    /// and stop participating (see `handle_failed` for what a dead MM
    /// still trampolines).
    fn die(&mut self, ctx: &mut Context<'_, World, Msg>) {
        let now = ctx.now();
        self.role = MmRole::Failed;
        let r = self.rank as usize;
        let w = ctx.world();
        w.mm_failed[r] = true;
        w.mm_failed_at[r] = Some(now);
        if r < w.mm_roles.len() {
            w.mm_roles[r] = MmRole::Failed;
        }
        w.metric_inc("mm.replica_failures");
        ctx.trace("mm.replica_failed", || format!("rank {}", self.rank));
    }

    /// Standby watchdog: fires every heartbeat period. If the active MM's
    /// beats have been silent for more than one full period, the active is
    /// presumed dead; the deterministic successor — the lowest surviving
    /// rank — promotes itself. Every other standby keeps watching.
    fn watchdog(&mut self, ctx: &mut Context<'_, World, Msg>) {
        let (beat_period, detection) = {
            let w = ctx.world_ref();
            (
                w.cfg.collect_period() * u64::from(w.cfg.heartbeat_every),
                w.cfg.fault_detection,
            )
        };
        if !detection {
            return;
        }
        let now = ctx.now();
        let last = self.last_beat_seen.unwrap_or(SimTime::ZERO);
        let silent = now.since(last) > beat_period;
        let successor = {
            let w = ctx.world_ref();
            (0..w.mm_failed.len())
                .find(|&r| !w.mm_failed[r])
                .map(|r| r as u32)
        };
        if silent && successor == Some(self.rank) {
            self.promote(ctx);
            return; // the active MM runs no watchdog
        }
        ctx.send_self(beat_period, Msg::MmWatchdog);
    }

    /// Regroup: this standby becomes the active MM in a new epoch. The
    /// epoch is fenced into every node's global memory with a single
    /// COMPARE-AND-WRITE, so multicasts from the dead epoch are rejected;
    /// jobs mid-transfer are requeued (their pipeline events died with the
    /// old MM), armed requeue timers are re-posted, a Resync multicast
    /// makes every node re-announce its local job status, and the tick
    /// chain is realigned to the collect-period boundaries so the
    /// heartbeat-round cadence continues exactly where the old MM left it.
    fn promote(&mut self, ctx: &mut Context<'_, World, Msg>) {
        let now = ctx.now();
        let self_id = ctx.self_id();
        let old_active = ctx.world_ref().mm_active_rank as usize;
        let epoch = ctx.world_ref().mm_epoch + 1;
        self.epoch = epoch;
        self.role = MmRole::Active;
        self.beats_sent = 0;
        let adopted = ctx.world_ref().mm_replicas[self.rank as usize]
            .state
            .clone();
        {
            let w = ctx.world();
            w.mm_epoch = epoch;
            w.mm_active_rank = self.rank;
            w.mm_roles[self.rank as usize] = MmRole::Active;
            w.wiring.mm = Some(self_id);
            w.mm_core = adopted;
            w.repl.promotions += 1;
            w.repl.failovers.push((self.rank, now));
        }
        // The quarantine set in shared memory is ground truth for the
        // allocator; adopt it (the repl_consistency oracle separately
        // verifies the replicated mirror agrees).
        self.detected_failed.clear();
        {
            let w = ctx.world_ref();
            for n in (0..w.cfg.nodes).filter(|&n| w.nodes.is_quarantined(n)) {
                self.detected_failed.insert(n);
            }
        }
        // Epoch fence: one CAW writes the new epoch into every node's
        // memory (condition `old ≥ 0` always holds — the write is the
        // point). Deterministic: the non-faulty primitive draws no RNG.
        let (nodes, load) = {
            let w = ctx.world_ref();
            (w.cfg.nodes, w.cfg.load)
        };
        let var = ctx
            .world_ref()
            .mm_epoch_var
            .expect("epoch var allocated when standbys are configured");
        let fence = ctx.world().mech.compare_and_write(
            now,
            &NodeSet::All(nodes),
            var,
            CmpOp::Ge,
            0,
            Some((var, i64::try_from(epoch).expect("epoch fits"))),
            load,
        );
        {
            let w = ctx.world();
            if let Some(at) = w.mm_failed_at[old_active] {
                w.telemetry
                    .metrics
                    .observe_span("failover.detection_latency_us", now.since(at));
                w.telemetry
                    .metrics
                    .observe_span("failover.promotion_latency_us", fence.complete.since(at));
            }
            w.telemetry
                .metrics
                .set_gauge("mm.epoch", i64::try_from(epoch).expect("epoch fits"));
            w.metric_inc("mm.promotions");
        }
        ctx.trace("mm.promoted", || {
            format!("rank {} epoch {epoch}", self.rank)
        });
        // The old MM's parked fast-forward tick died with it: replay any
        // settled arithmetic and disarm.
        ctx.world().settle_leap_through(now);
        ctx.world().leap = None;
        // Jobs mid-transfer lost their pipeline (ReadDone/BcastFreed/
        // FlowPoll targeted the dead component): requeue them. The attempt
        // bump kills the ghost pipeline; a failover burns one retry.
        let backoff = match ctx.world_ref().cfg.failure_policy {
            FailurePolicy::Requeue { backoff, .. } => backoff,
            _ => SimSpan::from_millis(5),
        };
        let transferring: Vec<JobId> = ctx
            .world_ref()
            .jobs
            .iter()
            .filter(|r| r.state == JobState::Transferring)
            .map(|r| r.id)
            .collect();
        for job in transferring {
            self.requeue_job(job, now, backoff, ctx);
        }
        // Armed requeue timers were self-messages on the dead MM: re-post
        // them here (the admission handler deduplicates).
        let pending: Vec<(JobId, SimTime)> = ctx.world_ref().requeue_pending.clone();
        for (job, at) in pending {
            ctx.send_self_at(at.max(now), Msg::RequeueJob(job));
        }
        // Resync: every node clears its buffered reports and re-announces
        // the status of each live local job incarnation — reports that
        // died buffered in (or in flight to) the old MM are thereby
        // re-collected; per-node exactly-once counting absorbs duplicates.
        let lat = ctx.world_ref().qsnet.ptp_span(CONTROL_MSG_BYTES);
        self.fan_out(
            ctx,
            &NodeSet::All(nodes),
            now + lat,
            GroupSchedule::Simultaneous,
            Msg::Resync { epoch },
        );
        // Bring the surviving standbys up to this replica's state at once.
        let ckpt_lat = ctx.world_ref().qsnet.ptp_span(REPL_CKPT_BYTES);
        for target in self.live_standbys(ctx) {
            let state = Box::new(ctx.world_ref().mm_core.clone());
            ctx.send_at(target, now + ckpt_lat, Msg::ReplCheckpoint { epoch, state });
        }
        // Realign the tick chain: the next tick fires at the next
        // collect-period boundary with the tick number an unbroken chain
        // would have there, so quantum rotation and heartbeat rounds keep
        // their absolute cadence across the failover.
        let period = ctx.world_ref().cfg.collect_period();
        let next = now.next_boundary(period);
        self.ticks = next.boundaries_since(SimTime::ZERO, period);
        self.last_tick_at = None;
        self.tick_scheduled = false;
        self.collect_scheduled = false;
        ctx.send_self_at(next, Msg::Tick);
        self.tick_scheduled = true;
    }

    /// Standby-role message handling: apply the replication stream, watch
    /// for the active MM's death. Anything else is stale traffic from a
    /// previous role and is dropped.
    fn handle_standby(&mut self, msg: Msg, ctx: &mut Context<'_, World, Msg>) {
        match msg {
            Msg::MmBeat { epoch, ticks, .. } => {
                if epoch < self.epoch {
                    return;
                }
                self.epoch = epoch;
                self.last_beat_seen = Some(ctx.now());
                let r = &mut ctx.world().mm_replicas[self.rank as usize];
                r.state.ticks = r.state.ticks.max(ticks);
            }
            Msg::ReplLog { seq, decision, .. } => {
                // Sequence contiguity, not epoch, is the apply criterion:
                // a promoted successor continues the same log.
                let w = ctx.world();
                let r = &mut w.mm_replicas[self.rank as usize];
                match seq.cmp(&r.applied) {
                    std::cmp::Ordering::Equal => {
                        r.state.apply(&decision);
                        r.applied += 1;
                    }
                    std::cmp::Ordering::Greater => w.repl.log_gaps += 1,
                    std::cmp::Ordering::Less => {} // duplicate
                }
            }
            Msg::ReplCheckpoint { epoch, state } => {
                if epoch < self.epoch {
                    return;
                }
                self.epoch = epoch;
                let r = &mut ctx.world().mm_replicas[self.rank as usize];
                if state.log_len >= r.applied {
                    r.applied = state.log_len;
                    r.state = *state;
                }
            }
            Msg::MmWatchdog => self.watchdog(ctx),
            Msg::MmFail => self.die(ctx),
            // Submissions landing on a standby are trampolined to the
            // active MM (a client may address any replica).
            Msg::Submit(_) | Msg::Kill(_) => {
                let target = ctx.world_ref().wiring.mm.expect("MM wired");
                if target != ctx.self_id() {
                    let now = ctx.now();
                    ctx.send_at(target, now, msg);
                }
            }
            _ => {} // stale traffic from a previous role; drop
        }
    }

    /// Failed-role message handling: a dead MM drops everything, except
    /// that client-facing submissions are trampolined to the current
    /// active MM (or re-posted until a successor exists).
    fn handle_failed(&mut self, msg: Msg, ctx: &mut Context<'_, World, Msg>) {
        match msg {
            Msg::Submit(_) | Msg::Kill(_) => {
                let target = ctx.world_ref().wiring.mm;
                match target {
                    Some(mm) if mm != ctx.self_id() => {
                        let now = ctx.now();
                        ctx.send_at(mm, now, msg);
                    }
                    _ => {
                        // Still the registered active (no successor yet):
                        // hold the message unless every replica is dead.
                        if ctx.world_ref().mm_failed.iter().all(|&f| f) {
                            return;
                        }
                        let period = ctx.world_ref().cfg.collect_period();
                        ctx.send_self(period, msg);
                    }
                }
            }
            _ => {} // dead: drop ticks, reports, timers, replication
        }
    }

    /// Linear backoff with saturating arithmetic, capped at
    /// [`MAX_REQUEUE_DELAY`]: extreme `max_retries`/`backoff`
    /// configurations can neither overflow `u64` nanoseconds nor stall
    /// the queue behind an astronomically distant timer.
    fn requeue_delay(backoff: SimSpan, retry_no: u32) -> SimSpan {
        backoff
            .saturating_mul(u64::from(retry_no))
            .min(MAX_REQUEUE_DELAY)
    }

    // ------------------------------------------------------------ policy —

    fn run_policy(&mut self, ctx: &mut Context<'_, World, Msg>) {
        let now = ctx.now();
        let (kind, cpus) = {
            let w = ctx.world_ref();
            (w.cfg.scheduler, w.cfg.cpus_per_node)
        };
        let starts = {
            let w = ctx.world_ref();
            if w.queue.is_empty() {
                Vec::new()
            } else {
                let queued: Vec<QueuedJob> = w
                    .queue
                    .iter()
                    .map(|&id| {
                        let rec = w.job(id);
                        QueuedJob {
                            id,
                            nodes_needed: rec.spec.nodes_needed(cpus),
                            estimate: rec.spec.runtime_estimate,
                        }
                    })
                    .collect();
                let running: Vec<RunningJob> = w
                    .jobs
                    .iter()
                    .filter(|r| !r.state.is_terminal() && r.allocation.is_some())
                    .map(|r| RunningJob {
                        nodes_held: r.alloc().node_count(),
                        // A job still transferring/launching is treated as
                        // starting "now" — slightly conservative, and it
                        // keeps reservations computable during the ~100 ms
                        // launch window.
                        est_end: r
                            .spec
                            .runtime_estimate
                            .map(|e| r.metrics.started.unwrap_or(now) + e),
                    })
                    .collect();
                policy::select_starts(kind, now, &queued, &running, &w.matrix)
            }
        };
        for id in starts {
            let w = ctx.world();
            w.queue.retain(|&q| q != id);
            self.start_transfer(id, ctx);
        }
    }

    // ---------------------------------------------------------- transfer —

    fn start_transfer(&mut self, job: JobId, ctx: &mut Context<'_, World, Msg>) {
        let now = ctx.now();
        let cpus = ctx.world_ref().cfg.cpus_per_node;
        let chunk = ctx.world_ref().cfg.chunk_bytes;
        // Place in the matrix.
        let (nodes_needed, rpn, ranks, binary) = {
            let rec = ctx.world_ref().job(job);
            (
                rec.spec.nodes_needed(cpus),
                rec.spec.ranks_per_node(cpus),
                rec.spec.ranks,
                rec.spec.app.binary_bytes(),
            )
        };
        let placed = ctx.world().matrix.place(job, nodes_needed);
        let Some((slot, range)) = placed else {
            // Raced with another placement this tick; requeue at the front.
            ctx.world().queue.push_front(job);
            return;
        };
        ctx.world().slot_jobs_add(slot, job);
        let node_count = range.end - range.start;
        // Instantiate the workload and the flow-control counter.
        let (world, rng) = ctx.world_and_rng();
        let workload = world.job(job).spec.app.workload(node_count, ranks, rng);
        let written_var = world.mech.memory.alloc_var(0);
        let rec = world.job_mut(job);
        rec.allocation = Some(Allocation {
            slot,
            nodes: range,
            ranks_per_node: rpn,
            ranks,
        });
        rec.cursor = workload.cursor();
        rec.workload = workload;
        rec.state = JobState::Transferring;
        rec.metrics.transfer_start = Some(now);
        let total_chunks = u32::try_from(binary.div_ceil(chunk)).expect("binary too large");
        rec.transfer.total_chunks = total_chunks;
        rec.transfer.last_chunk_bytes = binary % chunk;
        rec.transfer.written_var = Some(written_var);
        ctx.trace("mm.transfer_start", || {
            format!("{job}: {binary} B in {total_chunks} chunks")
        });
        self.log_decision(
            ctx,
            Decision::Place {
                job,
                slot: u32::try_from(slot).expect("slot index"),
            },
        );
        self.try_start_read(job, ctx);
    }

    fn try_start_read(&mut self, job: JobId, ctx: &mut Context<'_, World, Msg>) {
        let now = ctx.now();
        let (fs, placement, load, slots, chunk_size) = {
            let w = ctx.world_ref();
            (
                w.cfg.fs,
                w.cfg.placement,
                w.cfg.load,
                w.cfg.queue_slots,
                w.cfg.chunk_bytes,
            )
        };
        let (idx, bytes) = {
            let t = &ctx.world_ref().job(job).transfer;
            if t.read_busy || t.next_read >= t.total_chunks || t.next_read >= t.next_bcast + slots {
                return;
            }
            (t.next_read, t.chunk_bytes(t.next_read, chunk_size))
        };
        let span = load.inflate(fs.read_span(bytes, placement));
        let (_, done) = ctx.world().read_dev.transmit(now, span);
        let attempt = {
            let rec = ctx.world().job_mut(job);
            rec.transfer.read_busy = true;
            rec.transfer.next_read += 1;
            rec.attempt
        };
        let mm = ctx.self_id();
        ctx.send_at(
            mm,
            done,
            Msg::ReadDone {
                job,
                chunk: idx,
                attempt,
            },
        );
    }

    fn try_broadcast(&mut self, job: JobId, ctx: &mut Context<'_, World, Msg>) {
        let now = ctx.now();
        if ctx.world_ref().job(job).state.is_terminal() {
            return;
        }
        let (load, slots, chunk_size, costs, placement) = {
            let w = ctx.world_ref();
            (
                w.cfg.load,
                w.cfg.queue_slots,
                w.cfg.chunk_bytes,
                w.cfg.daemon,
                w.cfg.placement,
            )
        };
        let (k, total, bytes, written_var, set, attempt) = {
            let rec = ctx.world_ref().job(job);
            let t = &rec.transfer;
            if t.bcast_busy {
                return;
            }
            if t.next_bcast >= t.total_chunks {
                self.check_final(job, ctx);
                return;
            }
            if t.next_bcast >= t.chunks_read {
                return; // waiting on the read stage
            }
            (
                t.next_bcast,
                t.total_chunks,
                t.chunk_bytes(t.next_bcast, chunk_size),
                t.written_var.expect("flow-control var"),
                Self::alloc_set(rec.alloc()),
                rec.attempt,
            )
        };
        let _ = total;
        // Flow control: at most `slots` fragments may be in the remote
        // receive queue (broadcast but not yet written everywhere).
        let mut ready_at = now;
        if k >= slots {
            let threshold = i64::from(k - slots + 1);
            let caw = {
                let (world, rng) = ctx.world_and_rng();
                world.mech.compare_and_write_faulty(
                    now,
                    &set,
                    written_var,
                    CmpOp::Ge,
                    threshold,
                    None,
                    load,
                    rng,
                )
            };
            let Some(caw) = caw else {
                // The query itself was lost; poll again after the usual
                // backoff.
                let w = ctx.world();
                w.stats.caw_drops += 1;
                w.metric_inc("fault.caw_drops");
                self.schedule_poll(job, ctx);
                return;
            };
            if !caw.satisfied {
                let w = ctx.world();
                w.stats.flow_stalls += 1;
                w.metric_inc("mm.flow_stalls");
                self.schedule_poll(job, ctx);
                return;
            }
            ready_at = caw.complete;
        }
        // Source-side cost: the lightweight helper process services NIC TLB
        // misses and file accesses (serialising with the broadcast — the
        // 131 vs 175 MB/s gap of §3.3.1), plus fixed per-fragment protocol
        // cost and the NIC-TLB penalty of deep receive queues.
        let helper = load.inflate(SimSpan::for_bytes(bytes, costs.helper_bw))
            + costs.chunk_fixed
            + costs.tlb_per_extra_slot * u64::from(slots.saturating_sub(4));
        let start = ready_at.max(ctx.world_ref().bcast_dev.next_free());
        let issue_at = start + helper;
        let src_node = NodeId(0); // management node doubles as node 0's host
        let result = {
            let (world, rng) = ctx.world_and_rng();
            world.mech.xfer_fanout(
                issue_at, src_node, &set, bytes, placement, None, None, load, rng,
            )
        };
        match result {
            Ok(fan) => {
                let arrival = fan.all_arrived();
                let w = ctx.world();
                w.bcast_dev.transmit(start, arrival.since(start));
                w.stats.fragments += 1;
                w.metric_inc("mm.fragments");
                {
                    let t = &mut ctx.world().job_mut(job).transfer;
                    t.next_bcast += 1;
                    t.bcast_busy = true;
                }
                // Every NM sees the fragment once the whole broadcast has
                // landed (the protocol signals completion, not per-node
                // receipt), so the group delivers simultaneously.
                self.fan_out(
                    ctx,
                    &set,
                    arrival,
                    GroupSchedule::Simultaneous,
                    Msg::Fragment {
                        job,
                        chunk: k,
                        attempt,
                    },
                );
                let mm = ctx.self_id();
                ctx.send_at(
                    mm,
                    arrival,
                    Msg::BcastFreed {
                        job,
                        chunk: k,
                        attempt,
                    },
                );
            }
            Err(_) => {
                // Atomic abort: nothing was delivered; retry the same chunk.
                let w = ctx.world();
                w.stats.xfer_retries += 1;
                w.metric_inc("fault.xfer_retries");
                self.schedule_poll(job, ctx);
            }
        }
    }

    fn schedule_poll(&mut self, job: JobId, ctx: &mut Context<'_, World, Msg>) {
        let poll = ctx.world_ref().cfg.daemon.caw_poll;
        let (pending, attempt) = {
            let rec = ctx.world().job_mut(job);
            (
                std::mem::replace(&mut rec.transfer.poll_pending, true),
                rec.attempt,
            )
        };
        if !pending {
            ctx.send_self(poll, Msg::FlowPoll { job, attempt });
        }
    }

    /// All fragments broadcast: confirm (via COMPARE-AND-WRITE) that every
    /// node has written every fragment, then notify the MM host process at
    /// the next collection boundary.
    fn check_final(&mut self, job: JobId, ctx: &mut Context<'_, World, Msg>) {
        let now = ctx.now();
        let load = ctx.world_ref().cfg.load;
        let (total, written_var, set, already) = {
            let rec = ctx.world_ref().job(job);
            (
                i64::from(rec.transfer.total_chunks),
                rec.transfer.written_var.expect("flow-control var"),
                Self::alloc_set(rec.alloc()),
                rec.transfer_confirmed.is_some(),
            )
        };
        if already {
            return;
        }
        let caw = {
            let (world, rng) = ctx.world_and_rng();
            world.mech.compare_and_write_faulty(
                now,
                &set,
                written_var,
                CmpOp::Ge,
                total,
                None,
                load,
                rng,
            )
        };
        let Some(caw) = caw else {
            let w = ctx.world();
            w.stats.caw_drops += 1;
            w.metric_inc("fault.caw_drops");
            self.schedule_poll(job, ctx);
            return;
        };
        if caw.satisfied {
            ctx.world().job_mut(job).transfer_confirmed = Some(caw.complete);
            ctx.trace("mm.transfer_confirmed", || format!("{job}"));
            self.ensure_collect(ctx);
        } else {
            self.schedule_poll(job, ctx);
        }
    }

    // ------------------------------------------------------------ launch —

    fn launch_ready_jobs(&mut self, ctx: &mut Context<'_, World, Msg>) {
        let now = ctx.now();
        let ready: Vec<JobId> = ctx
            .world_ref()
            .jobs
            .iter()
            .filter(|r| r.state == JobState::Transferring && r.metrics.transfer_done.is_some())
            .map(|r| r.id)
            .collect();
        for job in ready {
            let (set, load, placement) = {
                let w = ctx.world_ref();
                (
                    Self::alloc_set(w.job(job).alloc()),
                    w.cfg.load,
                    w.cfg.placement,
                )
            };
            let result = {
                let (world, rng) = ctx.world_and_rng();
                world.mech.xfer_fanout(
                    now,
                    NodeId(0),
                    &set,
                    CONTROL_MSG_BYTES,
                    placement,
                    None,
                    None,
                    load,
                    rng,
                )
            };
            let Ok(fan) = result else {
                let w = ctx.world();
                w.stats.xfer_retries += 1;
                w.metric_inc("fault.xfer_retries");
                continue; // retried at the next tick
            };
            {
                let rec = ctx.world().job_mut(job);
                rec.state = JobState::Launching;
                rec.metrics.launch_cmd = Some(now);
            }
            ctx.trace("mm.launch_cmd", || format!("{job}"));
            let attempt = ctx.world_ref().job(job).attempt;
            self.log_decision(ctx, Decision::Launch { job, attempt });
            // Launch commands arrive with the network's per-rank skew
            // (simultaneous on hardware multicast, staggered down the
            // emulation tree).
            let (base, schedule) = fan.delivery_schedule();
            self.fan_out(ctx, &set, base, schedule, Msg::LaunchCmd { job, attempt });
        }
    }

    // ------------------------------------------------------------ strobe —

    fn strobe(&mut self, ctx: &mut Context<'_, World, Msg>) {
        let now = ctx.now();
        if ctx.world_ref().matrix.job_count() == 0 {
            return;
        }
        // Rotate the active slot on quantum boundaries — or immediately
        // when the active slot just emptied (its job completed mid-quantum
        // and the machine would otherwise idle until the boundary).
        let current = ctx.world_ref().active_slot;
        let quantum_boundary = self
            .ticks
            .is_multiple_of(Self::ticks_per_quantum(&ctx.world_ref().cfg));
        let current_empty = ctx.world_ref().jobs_in_slot(current).is_empty();
        let next = if quantum_boundary || current_empty {
            ctx.world_ref()
                .matrix
                .next_active_slot(current)
                .unwrap_or(current)
        } else {
            current
        };
        ctx.world().active_slot = next;
        let (nodes, load, placement) = {
            let w = ctx.world_ref();
            (w.cfg.nodes, w.cfg.load, w.cfg.placement)
        };
        let set = NodeSet::All(nodes);
        let result = {
            let (world, rng) = ctx.world_and_rng();
            world.mech.xfer_fanout(
                now,
                NodeId(0),
                &set,
                CONTROL_MSG_BYTES,
                placement,
                None,
                None,
                load,
                rng,
            )
        };
        let Ok(fan) = result else {
            let w = ctx.world();
            w.stats.xfer_retries += 1;
            w.metric_inc("fault.xfer_retries");
            return;
        };
        {
            let w = ctx.world();
            w.stats.strobes += 1;
            w.metric_inc("mm.strobes");
        }
        // The context switch is *coordinated*: every NM acts when the
        // whole strobe multicast has completed, not at its own arrival.
        let arrival = fan.all_arrived();
        let slot = u32::try_from(next).expect("slot index");
        if next != current {
            self.log_decision(ctx, Decision::Slot { slot });
        }
        self.fan_out(
            ctx,
            &set,
            arrival,
            GroupSchedule::Simultaneous,
            Msg::Strobe {
                slot,
                epoch: self.epoch,
            },
        );
    }

    // ----------------------------------------------------------- reports —

    fn process_events(&mut self, ctx: &mut Context<'_, World, Msg>) {
        let now = ctx.now();
        // Transfer-completion notifications land at collection boundaries.
        let confirmed: Vec<JobId> = ctx
            .world_ref()
            .jobs
            .iter()
            .filter(|r| {
                r.state == JobState::Transferring
                    && r.metrics.transfer_done.is_none()
                    && r.transfer_confirmed.is_some_and(|t| t <= now)
            })
            .map(|r| r.id)
            .collect();
        for job in confirmed {
            ctx.world().job_mut(job).metrics.transfer_done = Some(now);
            self.ensure_tick(ctx); // a Tick must follow to issue the launch
        }
        // NM reports. Take the buffer out for the borrow, drain it, and put
        // it back so its capacity is reused every collection instead of
        // reallocated from scratch.
        let mut reports = std::mem::take(&mut self.pending_reports);
        for (node, job, attempt, kind) in reports.drain(..) {
            {
                let w = ctx.world();
                w.stats.reports += 1;
                w.metric_inc("mm.reports");
            }
            if ctx.world_ref().job(job).state.is_terminal() {
                continue;
            }
            if ctx.world_ref().job(job).attempt != attempt {
                continue; // report from a lost incarnation
            }
            // Per-node exactly-once counting: after an MM failover the
            // resync protocol makes every node re-announce its local
            // status, so duplicates are expected and must not double-count.
            match kind {
                ReportKind::Started => {
                    let node_count = ctx.world_ref().job(job).alloc().active_node_count();
                    let rec = ctx.world().job_mut(job);
                    if !rec.reported_started.contains(&node) {
                        rec.reported_started.push(node);
                        rec.start_reports += 1;
                    }
                    if rec.state == JobState::Launching && rec.start_reports >= node_count {
                        rec.state = JobState::Running;
                        if rec.metrics.started.is_none() {
                            rec.metrics.started = Some(now);
                        }
                    }
                }
                ReportKind::Done { app_done } => {
                    let node_count = ctx.world_ref().job(job).alloc().active_node_count();
                    let finished = {
                        let rec = ctx.world().job_mut(job);
                        if rec.reported_done.contains(&node) {
                            false
                        } else {
                            rec.reported_done.push(node);
                            rec.done_reports += 1;
                            rec.app_done_max = Some(match rec.app_done_max {
                                Some(prev) => prev.max(app_done),
                                None => app_done,
                            });
                            rec.done_reports >= node_count
                        }
                    };
                    if finished {
                        self.complete_job(job, now, JobState::Completed, ctx);
                    }
                }
            }
        }
        reports.append(&mut self.pending_reports);
        self.pending_reports = reports;
    }

    fn complete_job(
        &mut self,
        job: JobId,
        now: SimTime,
        state: JobState,
        ctx: &mut Context<'_, World, Msg>,
    ) {
        let w = ctx.world();
        {
            let rec = w.job_mut(job);
            rec.state = state;
            rec.metrics.completed = Some(now);
            if rec.metrics.app_done.is_none() {
                rec.metrics.app_done = rec.app_done_max;
            }
        }
        if let Some((slot, _)) = w.matrix.remove(job) {
            w.slot_jobs_remove(slot, job);
        }
        w.stats.completed_jobs += 1;
        if w.telemetry.is_enabled() {
            let (metrics, name, ranks, attempts) = {
                let rec = w.job(job);
                (
                    rec.metrics.clone(),
                    rec.spec.name.clone(),
                    rec.spec.ranks,
                    rec.attempt + 1,
                )
            };
            let t = &mut w.telemetry;
            t.metrics.inc(
                match state {
                    JobState::Completed => "jobs.completed",
                    JobState::Killed => "jobs.killed",
                    _ => "jobs.failed",
                },
                1,
            );
            let phases = metrics.phase_breakdown();
            for &(phase, start, end) in &phases {
                t.metrics.observe_span_with(
                    "job.phase_us",
                    vec![("phase", phase.to_string())],
                    end.since(start),
                );
            }
            if let (Some(sub), Some(done)) = (metrics.submitted, metrics.completed) {
                t.metrics.observe_span("job.total_us", done.since(sub));
            }
            t.spans.record(|| JobSpan {
                job: job.0,
                name,
                ranks,
                outcome: format!("{state:?}"),
                attempts,
                phases: phases
                    .iter()
                    .map(|&(phase, start, end)| Phase {
                        name: phase,
                        start,
                        end,
                    })
                    .collect(),
            });
        }
        ctx.trace("mm.job_done", || format!("{job} -> {state:?}"));
        self.log_decision(ctx, Decision::Complete { job });
        // Freed space may unblock queued jobs.
        self.ensure_tick(ctx);
    }

    // ---------------------------------------------------- fault detection —

    fn fault_round(&mut self, ctx: &mut Context<'_, World, Msg>) {
        let now = ctx.now();
        let (nodes, load, placement) = {
            let w = ctx.world_ref();
            (w.cfg.nodes, w.cfg.load, w.cfg.placement)
        };
        if ctx.world_ref().hb_var.is_none() {
            let var = ctx.world().mech.memory.alloc_var(0);
            ctx.world().hb_var = Some(var);
        }
        let hb_var = ctx.world_ref().hb_var.expect("just set");
        let round = ctx.world_ref().hb_round;
        // Re-admission scan: heartbeats keep being multicast to the whole
        // machine, so a node that came back (or whose dæmon stall ended)
        // catches up on the round counter in a single beat — when its value
        // reaches the current round, it rejoins the allocator.
        if round > 0 && !self.detected_failed.is_empty() {
            // Dense-flag iteration is already in ascending node order.
            let candidates: Vec<u32> = self.detected_failed.iter().collect();
            let cand_set = NodeSet::from_list(candidates.iter().map(|&n| NodeId(n)).collect());
            let values = ctx.world_ref().mech.memory.gather(&cand_set, hb_var);
            for (&node, v) in candidates.iter().zip(values) {
                if v >= round {
                    self.detected_failed.remove(node);
                    let w = ctx.world();
                    w.nodes.set_quarantined(node, false);
                    let ok = w.matrix.rejoin_node(node);
                    debug_assert!(ok, "re-admitted node must have been quarantined");
                    w.stats.rejoins.push((node, now));
                    w.metric_inc("fault.rejoins");
                    ctx.trace("mm.node_rejoined", || format!("node {node}"));
                    self.log_decision(ctx, Decision::Rejoin { node });
                    // Restored capacity may unblock queued jobs.
                    self.ensure_tick(ctx);
                }
            }
        }
        // The common case — no detected failures — needs no list at all;
        // `All` iterates the same members in the same order.
        let alive_set = if self.detected_failed.is_empty() {
            NodeSet::All(nodes)
        } else {
            NodeSet::from_list(
                (0..nodes)
                    .filter(|&n| !self.detected_failed.contains(n))
                    .map(NodeId)
                    .collect(),
            )
        };
        if round > 0 && !alive_set.is_empty() {
            // Query receipt of the previous round's heartbeat with
            // COMPARE-AND-WRITE (§4 "Fault detection").
            let caw = {
                let (world, rng) = ctx.world_and_rng();
                world.mech.compare_and_write_faulty(
                    now,
                    &alive_set,
                    hb_var,
                    CmpOp::Ge,
                    round,
                    None,
                    load,
                    rng,
                )
            };
            match caw {
                None => {
                    // The query was lost; skip detection this round rather
                    // than condemn nodes on missing evidence.
                    let w = ctx.world();
                    w.stats.caw_drops += 1;
                    w.metric_inc("fault.caw_drops");
                }
                Some(caw) if !caw.satisfied => {
                    // Gather status to isolate the failed slave(s).
                    let values = ctx.world_ref().mech.memory.gather(&alive_set, hb_var);
                    let lagging: Vec<u32> = alive_set
                        .iter()
                        .zip(values)
                        .filter(|&(_, v)| v < round)
                        .map(|(n, _)| n.0)
                        .collect();
                    for node in lagging {
                        if self.detected_failed.insert(node) {
                            {
                                let w = ctx.world();
                                w.stats.failures_detected.push((node, now));
                                w.metric_inc("fault.detections");
                                if let Some(at) = w.nodes.failed_since(node) {
                                    w.telemetry
                                        .metrics
                                        .observe_span("fault.detection_latency_us", now.since(at));
                                }
                            }
                            ctx.trace("mm.fault_detected", || format!("node {node}"));
                            // Evict the victims first: quarantining requires
                            // the node's leaf to be free in every slot.
                            self.fail_jobs_on(node, now, ctx);
                            {
                                let w = ctx.world();
                                let ok = w.matrix.quarantine_node(node);
                                debug_assert!(ok, "victim eviction must free the node");
                                w.nodes.set_quarantined(node, true);
                            }
                            self.log_decision(ctx, Decision::Quarantine { node });
                        }
                    }
                }
                Some(_) => {}
            }
        }
        // Issue the next heartbeat — to *all* nodes, so detected-failed ones
        // can prove themselves alive again (a dead NM simply drops it). The
        // round counter advances only when the multicast actually went out:
        // an aborted multicast must not leave the whole machine one round
        // behind and condemned en masse at the next check.
        let new_round = round + 1;
        let set = NodeSet::All(nodes);
        let result = {
            let (world, rng) = ctx.world_and_rng();
            world.mech.xfer_fanout(
                now,
                NodeId(0),
                &set,
                CONTROL_MSG_BYTES,
                placement,
                None,
                None,
                load,
                rng,
            )
        };
        if let Ok(fan) = result {
            {
                let w = ctx.world();
                w.hb_round = new_round;
                w.telemetry
                    .metrics
                    .observe_span("hb.round_latency_us", fan.all_arrived().since(now));
            }
            self.log_decision(ctx, Decision::Round { round: new_round });
            let (base, schedule) = fan.delivery_schedule();
            self.fan_out(
                ctx,
                &set,
                base,
                schedule,
                Msg::Heartbeat {
                    round: new_round,
                    epoch: self.epoch,
                },
            );
        } else {
            let w = ctx.world();
            w.stats.xfer_retries += 1;
            w.metric_inc("fault.xfer_retries");
        }
        // Replication plane: beats (and periodic checkpoints) ride the
        // same round cadence the standby watchdogs are armed on.
        self.ship_beats(ctx);
    }

    /// Apply the configured [`FailurePolicy`] to every live job whose
    /// allocation includes `node`. In every case the victim's buddy
    /// allocation is freed (leaving the node ready for quarantine);
    /// the policies differ only in what happens to the job afterwards.
    fn fail_jobs_on(&mut self, node: u32, now: SimTime, ctx: &mut Context<'_, World, Msg>) {
        let victims: Vec<JobId> = ctx
            .world_ref()
            .jobs
            .iter()
            .filter(|r| {
                !r.state.is_terminal()
                    && r.allocation
                        .as_ref()
                        .is_some_and(|a| a.nodes.contains(&node))
            })
            .map(|r| r.id)
            .collect();
        let policy = ctx.world_ref().cfg.failure_policy;
        for job in victims {
            match policy {
                FailurePolicy::Fail => self.complete_job(job, now, JobState::Failed, ctx),
                FailurePolicy::Requeue {
                    max_retries,
                    backoff,
                } => {
                    if ctx.world_ref().job(job).retries < max_retries {
                        self.requeue_job(job, now, backoff, ctx);
                    } else {
                        ctx.world().metric_inc("jobs.retry_budget_exhausted");
                        ctx.trace("mm.retry_budget_exhausted", || format!("{job}"));
                        self.complete_job(job, now, JobState::Failed, ctx);
                    }
                }
                FailurePolicy::Shrink => {
                    // Unbounded retries; the job is re-sized to surviving
                    // capacity when it is re-admitted to the queue.
                    self.requeue_job(job, now, SimSpan::from_millis(5), ctx);
                }
            }
        }
    }

    /// Evict a victim job from the matrix, reset its record for a fresh
    /// incarnation, and schedule its re-admission after a linear backoff
    /// (`backoff × retry number`).
    fn requeue_job(
        &mut self,
        job: JobId,
        now: SimTime,
        backoff: SimSpan,
        ctx: &mut Context<'_, World, Msg>,
    ) {
        let retry_no = {
            let w = ctx.world();
            if let Some((slot, _)) = w.matrix.remove(job) {
                w.slot_jobs_remove(slot, job);
            }
            let rec = w.job_mut(job);
            rec.reset_for_retry();
            w.stats.requeues += 1;
            w.metric_inc("jobs.requeued");
            w.job(job).retries
        };
        ctx.trace("mm.requeue", || format!("{job} retry {retry_no}"));
        let fire_at = now + Self::requeue_delay(backoff, retry_no);
        ctx.world().requeue_pending.push((job, fire_at));
        self.log_decision(
            ctx,
            Decision::Requeue {
                job,
                retry: retry_no,
            },
        );
        ctx.send_self_at(fire_at, Msg::RequeueJob(job));
    }

    /// Under [`FailurePolicy::Shrink`], re-size a job being re-admitted to
    /// the largest power-of-two node count the (possibly diminished)
    /// machine can still place, keeping at least one rank.
    fn shrink_to_fit(&mut self, job: JobId, ctx: &mut Context<'_, World, Msg>) {
        let cpus = ctx.world_ref().cfg.cpus_per_node;
        let (needed, rpn, ranks) = {
            let rec = ctx.world_ref().job(job);
            (
                rec.spec.nodes_needed(cpus),
                rec.spec.ranks_per_node(cpus),
                rec.spec.ranks,
            )
        };
        let mut fit = needed;
        while fit > 1 && !ctx.world_ref().matrix.can_place(fit) {
            fit /= 2;
        }
        if fit < needed {
            let new_ranks = (fit * rpn).min(ranks).max(1);
            let w = ctx.world();
            w.job_mut(job).spec.ranks = new_ranks;
            w.metric_inc("jobs.shrunk");
            ctx.trace("mm.shrink", || format!("{job} -> {new_ranks} ranks"));
        }
    }
}

impl Component<World, Msg> for MachineManager {
    fn handle(&mut self, msg: Msg, ctx: &mut Context<'_, World, Msg>) {
        match self.role {
            MmRole::Active => {}
            MmRole::Standby => return self.handle_standby(msg, ctx),
            MmRole::Failed => return self.handle_failed(msg, ctx),
        }
        // Active-role replication traffic: the injected kill, plus stale
        // leftovers from this replica's time as a standby.
        match msg {
            Msg::MmFail => return self.die(ctx),
            Msg::MmBeat { .. }
            | Msg::MmWatchdog
            | Msg::ReplLog { .. }
            | Msg::ReplCheckpoint { .. } => return,
            _ => {}
        }
        match msg {
            Msg::Submit(job) => {
                let now = ctx.now();
                {
                    let rec = ctx.world().job_mut(job);
                    if rec.metrics.submitted.is_none() {
                        rec.metrics.submitted = Some(now);
                    }
                }
                let w = ctx.world();
                w.queue.push_back(job);
                w.metric_inc("jobs.submitted");
                ctx.trace("mm.submit", || format!("{job}"));
                self.log_decision(ctx, Decision::Submit { job });
                self.ensure_tick(ctx);
            }
            Msg::Tick => {
                let tick_now = ctx.now();
                if self.last_tick_at == Some(tick_now) {
                    // The superseded far tick of a re-densified idle leap:
                    // this boundary already ran. Drop the duplicate.
                    return;
                }
                self.last_tick_at = Some(tick_now);
                self.tick_scheduled = false;
                // Resolve any armed fast-forward first: replay the skipped
                // quiescent boundaries and realign the tick counter,
                // exactly as if the chain had ticked through them.
                self.ticks += ctx.world().take_leap(tick_now);
                self.ticks += 1;
                // A tick is also a collection boundary.
                self.process_events(ctx);
                let fault = {
                    let w = ctx.world_ref();
                    w.cfg.fault_detection
                        && (self.ticks - 1).is_multiple_of(u64::from(w.cfg.heartbeat_every))
                };
                if fault {
                    self.fault_round(ctx);
                }
                self.run_policy(ctx);
                self.launch_ready_jobs(ctx);
                self.strobe(ctx);
                if ctx.world_ref().telemetry.is_enabled() {
                    // Per-timeslice health sample. `pending_messages()` is
                    // the logical count, identical across delivery modes;
                    // the raw queue depth/peak gauges count a group entry
                    // once, so they are backend-identical but vary across
                    // delivery modes.
                    let pending = ctx.pending_messages();
                    let qs = ctx.queue_stats();
                    let ar = ctx.arena_stats();
                    let w = ctx.world();
                    let queued = w.queue.len() as i64;
                    let quarantined = i64::from(w.nodes.quarantined_count());
                    let alive = i64::from(w.cfg.nodes) - quarantined;
                    let slots = w.matrix.slot_count();
                    let mut used: u64 = 0;
                    for slot in 0..slots {
                        for (_, ranks) in w.matrix.jobs_in_slot(slot) {
                            used += u64::from(ranks.end - ranks.start);
                        }
                    }
                    let cells = (slots as u64) * u64::from(w.matrix.nodes());
                    let m = &mut w.telemetry.metrics;
                    m.inc("mm.ticks", 1);
                    m.set_gauge("sched.queue_depth", queued);
                    m.set_gauge("nodes.alive", alive);
                    m.set_gauge("nodes.quarantined", quarantined);
                    m.set_gauge("engine.pending_messages", pending as i64);
                    m.set_gauge("sim.queue.depth", qs.len as i64);
                    m.set_gauge("sim.queue.peak", qs.peak as i64);
                    m.set_gauge("sim.arena.payload_bytes", ar.payload_bytes as i64);
                    m.set_gauge("sim.arena.live", ar.live as i64);
                    m.set_gauge("sim.arena.peak", ar.peak as i64);
                    m.observe("engine.pending_messages_per_tick", pending);
                    if let Some(pct) = (used * 100).checked_div(cells) {
                        m.observe("sched.matrix_utilization_pct", pct);
                    }
                }
                // Continuous queries observe the same boundary the health
                // sample does. A single branch when none are registered.
                if !ctx.world_ref().cq.is_empty() {
                    let slice = self.ticks;
                    ctx.world().evaluate_continuous_queries(slice, tick_now);
                }
                let keep_going = !ctx.world_ref().is_idle() || ctx.world_ref().cfg.fault_detection;
                if keep_going && !self.try_leap(ctx) {
                    self.ensure_tick(ctx);
                }
            }
            Msg::Collect => {
                self.collect_scheduled = false;
                self.process_events(ctx);
            }
            Msg::ReadDone { job, attempt, .. } => {
                if ctx.world_ref().job(job).attempt != attempt {
                    return; // read for a lost incarnation
                }
                {
                    let t = &mut ctx.world().job_mut(job).transfer;
                    t.read_busy = false;
                    t.chunks_read += 1;
                }
                self.try_broadcast(job, ctx);
                self.try_start_read(job, ctx);
            }
            Msg::BcastFreed { job, attempt, .. } => {
                if ctx.world_ref().job(job).attempt != attempt {
                    return; // broadcast of a lost incarnation
                }
                ctx.world().job_mut(job).transfer.bcast_busy = false;
                self.try_broadcast(job, ctx);
                self.try_start_read(job, ctx);
            }
            Msg::FlowPoll { job, attempt } => {
                if ctx.world_ref().job(job).attempt != attempt {
                    return; // poll for a lost incarnation
                }
                ctx.world().job_mut(job).transfer.poll_pending = false;
                self.try_broadcast(job, ctx);
            }
            Msg::NmReport {
                node,
                job,
                kind,
                attempt,
            } => {
                self.pending_reports.push((node, job, attempt, kind));
                self.ensure_collect(ctx);
            }
            Msg::RequeueJob(job) => {
                // Disarm the pending-timer record first: after a failover
                // both the re-posted and any surviving original timer fire,
                // and the admission guard below makes the second a no-op.
                ctx.world().requeue_pending.retain(|&(j, _)| j != job);
                {
                    let w = ctx.world_ref();
                    let rec = w.job(job);
                    // The job may have been killed, or already re-admitted.
                    if rec.state != JobState::Queued || w.queue.contains(&job) {
                        return;
                    }
                }
                if matches!(ctx.world_ref().cfg.failure_policy, FailurePolicy::Shrink) {
                    self.shrink_to_fit(job, ctx);
                }
                ctx.world().queue.push_back(job);
                ctx.trace("mm.requeue_admitted", || format!("{job}"));
                self.log_decision(ctx, Decision::Admit { job });
                self.ensure_tick(ctx);
            }
            Msg::Kill(job) => {
                let now = ctx.now();
                if !ctx.world_ref().job(job).state.is_terminal() {
                    ctx.world().queue.retain(|&q| q != job);
                    self.complete_job(job, now, JobState::Killed, ctx);
                }
            }
            other => panic!("MM received unexpected message {other:?}"),
        }
    }

    fn name(&self) -> &str {
        "MM"
    }

    /// NM reports are pure buffer appends on the active MM — the
    /// highest-volume message class it receives (one per node per job
    /// event), and the classic same-instant pile-up: a whole allocation's
    /// reports landing on one collection boundary.
    fn batchable(&self, msg: &Msg) -> bool {
        self.role == MmRole::Active && matches!(msg, Msg::NmReport { .. })
    }

    /// Drain a same-instant report batch into the buffer in one pass and
    /// arm the collect boundary once. Byte-identical to the per-message
    /// path: `ensure_collect` calls after the first at one instant are
    /// no-ops (the tick is already scheduled at this very boundary), and
    /// buffering pushes nothing to the event queue, so sequence numbers
    /// are untouched.
    fn handle_batch(&mut self, msgs: &mut Vec<Msg>, ctx: &mut Context<'_, World, Msg>) {
        let mut buffered = false;
        for msg in msgs.drain(..) {
            ctx.next_batch_message();
            match msg {
                Msg::NmReport {
                    node,
                    job,
                    kind,
                    attempt,
                } if self.role == MmRole::Active => {
                    self.pending_reports.push((node, job, attempt, kind));
                    buffered = true;
                }
                // `batchable` only admits active-role reports, and the
                // role cannot change mid-batch (no batchable handler
                // mutates it) — but stay correct if it ever does.
                other => self.handle(other, ctx),
            }
        }
        if buffered {
            self.ensure_collect(ctx);
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// A machine manager's private state, exported for checkpointing.
///
/// Every field of [`MachineManager`] is represented; `detected_failed` is
/// flattened to the ascending node list (the dense flag array is rebuilt
/// on import).
#[derive(Debug, Clone, PartialEq)]
pub struct MmState {
    /// Whether a `Tick` is in flight.
    pub tick_scheduled: bool,
    /// Whether a `Collect` is in flight.
    pub collect_scheduled: bool,
    /// Buffered `(node, job, attempt, kind)` NM reports.
    pub pending_reports: Vec<(u32, JobId, u32, ReportKind)>,
    /// Ticks executed so far.
    pub ticks: u64,
    /// Instant of the last executed tick.
    pub last_tick_at: Option<SimTime>,
    /// Detected-failed nodes in ascending order.
    pub detected_failed: Vec<u32>,
    /// Replica rank (0 = primary).
    pub rank: u32,
    /// Current replica role.
    pub role: MmRole,
    /// The epoch this replica believes is current.
    pub epoch: u64,
    /// When this standby last heard a liveness beat.
    pub last_beat_seen: Option<SimTime>,
    /// Liveness beats sent while active.
    pub beats_sent: u64,
}

impl MachineManager {
    /// Snapshot the dæmon's private state for a checkpoint.
    pub fn export_state(&self) -> MmState {
        MmState {
            tick_scheduled: self.tick_scheduled,
            collect_scheduled: self.collect_scheduled,
            pending_reports: self.pending_reports.clone(),
            ticks: self.ticks,
            last_tick_at: self.last_tick_at,
            detected_failed: self.detected_failed.iter().collect(),
            rank: self.rank,
            role: self.role,
            epoch: self.epoch,
            last_beat_seen: self.last_beat_seen,
            beats_sent: self.beats_sent,
        }
    }

    /// Rebuild a dæmon from a checkpointed [`MmState`].
    pub fn import_state(state: MmState) -> Self {
        let mut detected_failed = DetectedSet::default();
        for node in state.detected_failed {
            detected_failed.insert(node);
        }
        MachineManager {
            tick_scheduled: state.tick_scheduled,
            collect_scheduled: state.collect_scheduled,
            pending_reports: state.pending_reports,
            ticks: state.ticks,
            last_tick_at: state.last_tick_at,
            detected_failed,
            rank: state.rank,
            role: state.role,
            epoch: state.epoch,
            last_beat_seen: state.last_beat_seen,
            beats_sent: state.beats_sent,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requeue_delay_boundary_values() {
        let b = SimSpan::from_millis(5);
        // Retry 0 (shouldn't happen, but must be well-defined) and a normal case.
        assert_eq!(MachineManager::requeue_delay(b, 0), SimSpan::ZERO);
        assert_eq!(
            MachineManager::requeue_delay(b, 3),
            SimSpan::from_millis(15)
        );
        // Products that would overflow u64 nanoseconds saturate, then cap.
        assert_eq!(
            MachineManager::requeue_delay(SimSpan::MAX, u32::MAX),
            MAX_REQUEUE_DELAY
        );
        assert_eq!(
            MachineManager::requeue_delay(SimSpan::from_nanos(u64::MAX / 2 + 1), 2),
            MAX_REQUEUE_DELAY
        );
        // Large but non-overflowing products still hit the ceiling.
        assert_eq!(
            MachineManager::requeue_delay(SimSpan::from_secs(30), 1000),
            MAX_REQUEUE_DELAY
        );
        // The cap itself passes through unchanged.
        assert_eq!(
            MachineManager::requeue_delay(SimSpan::from_secs(60), 1),
            MAX_REQUEUE_DELAY
        );
    }
}
