//! Buddy-tree processor allocation.
//!
//! "Whenever a new job arrives, the MM enqueues it and attempts to allocate
//! processors to it using a buddy tree algorithm" (§2.1, citing Feitelson's
//! packing schemes and the ParPar allocator). Nodes are organised as the
//! leaves of a binary tree; a request for *k* nodes is rounded up to the
//! next power of two and satisfied by an aligned block, splitting larger
//! free blocks as needed; freed blocks coalesce with their buddies.
//!
//! Buddy allocation keeps gangs on contiguous, aligned node ranges — which
//! is also what lets the launch protocol address a job with a single
//! `NodeSet::Range` multicast destination.

use std::collections::{BTreeSet, HashMap};
use std::ops::Range;

/// A buddy allocator over node indices `0..capacity_hint` (internally
/// rounded up to a power of two; the excess tail is permanently reserved).
#[derive(Debug, Clone)]
pub struct BuddyAllocator {
    /// Total leaves (power of two).
    capacity: u32,
    /// Real usable nodes (≤ capacity).
    usable: u32,
    /// `free[order]` = set of start indices of free blocks of size 2^order.
    free: Vec<BTreeSet<u32>>,
    /// start → order of live allocations.
    allocated: HashMap<u32, u32>,
    /// Nodes carved out by [`BuddyAllocator::quarantine`] (not free, not
    /// allocated, not counted usable until they rejoin).
    quarantined: BTreeSet<u32>,
}

fn next_pow2(n: u32) -> u32 {
    n.max(1).next_power_of_two()
}

fn order_for(count: u32) -> u32 {
    next_pow2(count).trailing_zeros()
}

impl BuddyAllocator {
    /// Allocator over `nodes` usable nodes.
    pub fn new(nodes: u32) -> Self {
        assert!(nodes > 0, "allocator needs at least one node");
        let capacity = next_pow2(nodes);
        let max_order = capacity.trailing_zeros() as usize;
        let mut free = vec![BTreeSet::new(); max_order + 1];
        free[max_order].insert(0);
        let mut a = BuddyAllocator {
            capacity,
            usable: nodes,
            free,
            allocated: HashMap::new(),
            quarantined: BTreeSet::new(),
        };
        // Reserve the non-existent tail [nodes, capacity) by allocating its
        // binary decomposition; those blocks are never freed.
        let mut start = nodes;
        while start < capacity {
            // Largest aligned power-of-two block starting at `start`.
            let align = 1u32 << start.trailing_zeros();
            let rest = capacity - start;
            let block = align.min(next_pow2(rest + 1) / 2).min(rest);
            let block = if block.is_power_of_two() {
                block
            } else {
                1 << (31 - block.leading_zeros())
            };
            a.carve(start, order_for(block));
            start += block;
        }
        a
    }

    /// Usable node count.
    pub fn usable(&self) -> u32 {
        self.usable
    }

    /// Internal power-of-two capacity (≥ usable).
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Number of usable nodes currently free.
    pub fn free_nodes(&self) -> u32 {
        let mut total = 0u32;
        for (order, set) in self.free.iter().enumerate() {
            total += (set.len() as u32) << order;
        }
        total
    }

    /// Allocate a block of at least `count` nodes (rounded up to a power of
    /// two). Returns the node range, or `None` if no suitable block exists.
    pub fn alloc(&mut self, count: u32) -> Option<Range<u32>> {
        if count == 0 || count > self.usable {
            return None;
        }
        let want = order_for(count) as usize;
        // Find the smallest free block of order ≥ want.
        let mut found = None;
        for order in want..self.free.len() {
            if let Some(&start) = self.free[order].iter().next() {
                found = Some((order, start));
                break;
            }
        }
        let (mut order, start) = found?;
        self.free[order].remove(&start);
        // Split down to the wanted order, freeing the upper halves.
        while order > want {
            order -= 1;
            let buddy = start + (1u32 << order);
            self.free[order].insert(buddy);
        }
        self.allocated.insert(start, order as u32);
        Some(start..start + (1u32 << order))
    }

    /// Free a previously-allocated block by its start index, coalescing with
    /// free buddies. Panics on a start that is not currently allocated.
    pub fn free(&mut self, start: u32) {
        let order = self
            .allocated
            .remove(&start)
            .unwrap_or_else(|| panic!("free of unallocated block at {start}"));
        let mut order = order as usize;
        let mut start = start;
        let max_order = self.free.len() - 1;
        while order < max_order {
            let buddy = start ^ (1u32 << order);
            if self.free[order].remove(&buddy) {
                start = start.min(buddy);
                order += 1;
            } else {
                break;
            }
        }
        self.free[order].insert(start);
    }

    /// Mark a specific aligned block as allocated (used for the reserved
    /// tail and by tests). Panics if the block is not exactly free.
    fn carve(&mut self, start: u32, order: u32) {
        // Split larger blocks until a block of exactly (start, order) is free.
        loop {
            if self.free[order as usize].remove(&start) {
                self.allocated.insert(start, order);
                return;
            }
            // Find an enclosing free block and split it once.
            let mut split_done = false;
            for o in (order as usize + 1)..self.free.len() {
                let enclosing = start & !((1u32 << o) - 1);
                if self.free[o].remove(&enclosing) {
                    self.free[o - 1].insert(enclosing);
                    self.free[o - 1].insert(enclosing + (1u32 << (o - 1)));
                    split_done = true;
                    break;
                }
            }
            assert!(split_done, "carve({start}, {order}): block not free");
        }
    }

    /// Is `node` inside some currently-free block?
    fn is_free(&self, node: u32) -> bool {
        self.free.iter().enumerate().any(|(order, set)| {
            let aligned = node & !((1u32 << order) - 1);
            set.contains(&aligned)
        })
    }

    /// Quarantine a node: carve it out of the free pool so no future
    /// [`BuddyAllocator::alloc`] can return a block containing it. Returns
    /// `false` (and does nothing) if the node is outside the usable range,
    /// already quarantined, or currently inside an allocated block — the
    /// caller must evict whatever holds it first.
    pub fn quarantine(&mut self, node: u32) -> bool {
        if node >= self.usable || self.quarantined.contains(&node) || !self.is_free(node) {
            return false;
        }
        self.carve(node, 0);
        // Track it as quarantined rather than allocated: it must neither
        // show up in `allocations()` nor coalesce with freed neighbours.
        self.allocated.remove(&node);
        self.quarantined.insert(node);
        true
    }

    /// Rejoin a quarantined node, returning its leaf to the free pool
    /// (coalescing with free buddies). Returns `false` if the node was not
    /// quarantined.
    pub fn rejoin(&mut self, node: u32) -> bool {
        if !self.quarantined.remove(&node) {
            return false;
        }
        self.allocated.insert(node, 0);
        self.free(node);
        true
    }

    /// Nodes currently quarantined.
    pub fn quarantined_nodes(&self) -> impl Iterator<Item = u32> + '_ {
        self.quarantined.iter().copied()
    }

    /// Is `node` quarantined?
    pub fn is_quarantined(&self, node: u32) -> bool {
        self.quarantined.contains(&node)
    }

    /// All live allocations as ranges (excluding the reserved tail).
    pub fn allocations(&self) -> Vec<Range<u32>> {
        let mut v: Vec<Range<u32>> = self
            .allocated
            .iter()
            .filter(|&(&s, _)| s < self.usable)
            .map(|(&s, &o)| s..s + (1u32 << o))
            .collect();
        v.sort_by_key(|r| r.start);
        v
    }

    /// Checkpoint image: the usable width, every live allocation (start,
    /// order — excluding the reserved tail, which reconstruction re-carves),
    /// and the quarantined node set.
    pub fn export_state(&self) -> BuddyState {
        let mut allocated: Vec<(u32, u32)> = self
            .allocated
            .iter()
            .filter(|&(&s, _)| s < self.usable)
            .map(|(&s, &o)| (s, o))
            .collect();
        allocated.sort_unstable();
        BuddyState {
            usable: self.usable,
            allocated,
            quarantined: self.quarantined.iter().copied().collect(),
        }
    }

    /// Rebuild an allocator from an exported image by replaying quarantines
    /// and re-carving each allocation. Free blocks always sit in the unique
    /// maximal buddy decomposition of the unallocated space (eager
    /// coalescing in [`BuddyAllocator::free`] maintains it), so replay
    /// reproduces the free lists exactly.
    pub fn import_state(state: BuddyState) -> Self {
        let mut b = BuddyAllocator::new(state.usable);
        for node in state.quarantined {
            assert!(b.quarantine(node), "checkpointed quarantine must replay");
        }
        for (start, order) in state.allocated {
            b.carve(start, order);
        }
        b
    }
}

/// Serializable image of a [`BuddyAllocator`], produced by
/// [`BuddyAllocator::export_state`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuddyState {
    /// Usable node count (internal capacity is derived).
    pub usable: u32,
    /// Live allocations as `(start, order)` pairs, ascending by start.
    pub allocated: Vec<(u32, u32)>,
    /// Quarantined nodes, ascending.
    pub quarantined: Vec<u32>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_rounded_aligned_blocks() {
        let mut b = BuddyAllocator::new(64);
        let r = b.alloc(3).unwrap();
        assert_eq!(r.len(), 4, "3 rounds up to 4");
        assert_eq!(r.start % 4, 0, "aligned");
        let r2 = b.alloc(16).unwrap();
        assert_eq!(r2.len(), 16);
        assert_eq!(r2.start % 16, 0);
    }

    #[test]
    fn allocations_never_overlap() {
        let mut b = BuddyAllocator::new(64);
        let mut got = Vec::new();
        while let Some(r) = b.alloc(4) {
            got.push(r);
        }
        assert_eq!(got.len(), 16);
        for (i, a) in got.iter().enumerate() {
            for bb in &got[i + 1..] {
                assert!(a.end <= bb.start || bb.end <= a.start, "{a:?} vs {bb:?}");
            }
        }
        assert_eq!(b.free_nodes(), 0);
    }

    #[test]
    fn free_coalesces_buddies() {
        let mut b = BuddyAllocator::new(16);
        let r1 = b.alloc(8).unwrap();
        let r2 = b.alloc(8).unwrap();
        assert!(b.alloc(1).is_none());
        b.free(r1.start);
        b.free(r2.start);
        // Fully coalesced: the whole machine is allocatable again.
        let all = b.alloc(16).unwrap();
        assert_eq!(all, 0..16);
    }

    #[test]
    fn smallest_sufficient_block_is_preferred() {
        let mut b = BuddyAllocator::new(16);
        let a = b.alloc(4).unwrap(); // leaves 4 free at 4..8 and 8..16
        let _c = b.alloc(8).unwrap();
        b.free(a.start);
        // Now free: 0..8 (two 4-blocks coalesced into 0..4,4..8 → 0..8).
        let d = b.alloc(2).unwrap();
        assert!(d.end <= 8);
    }

    #[test]
    fn non_power_of_two_capacity_reserves_tail() {
        let mut b = BuddyAllocator::new(48);
        assert_eq!(b.usable(), 48);
        assert_eq!(b.free_nodes(), 48);
        // A 32-node job fits…
        let r = b.alloc(32).unwrap();
        assert!(r.end <= 48);
        // …plus a 16-node job exactly fills it.
        let r2 = b.alloc(16).unwrap();
        assert!(r2.end <= 48);
        assert_eq!(b.free_nodes(), 0);
        assert!(b.alloc(1).is_none());
    }

    #[test]
    fn single_node_cluster() {
        let mut b = BuddyAllocator::new(1);
        let r = b.alloc(1).unwrap();
        assert_eq!(r, 0..1);
        assert!(b.alloc(1).is_none());
        b.free(0);
        assert!(b.alloc(1).is_some());
    }

    #[test]
    fn oversized_requests_fail_cleanly() {
        let mut b = BuddyAllocator::new(8);
        assert!(b.alloc(9).is_none());
        assert!(b.alloc(0).is_none());
        assert!(b.alloc(8).is_some());
    }

    #[test]
    #[should_panic(expected = "free of unallocated block")]
    fn double_free_panics() {
        let mut b = BuddyAllocator::new(8);
        let r = b.alloc(2).unwrap();
        b.free(r.start);
        b.free(r.start);
    }

    #[test]
    fn allocations_view_is_sorted_and_excludes_tail() {
        let mut b = BuddyAllocator::new(24); // capacity 32, tail 24..32 reserved
        let _ = b.alloc(8).unwrap();
        let _ = b.alloc(4).unwrap();
        let allocs = b.allocations();
        assert_eq!(allocs.len(), 2);
        assert!(allocs.windows(2).all(|w| w[0].start < w[1].start));
        assert!(allocs.iter().all(|r| r.end <= 24));
    }

    #[test]
    fn quarantine_excludes_node_from_allocation() {
        let mut b = BuddyAllocator::new(8);
        assert!(b.quarantine(3));
        assert!(b.is_quarantined(3));
        assert_eq!(b.free_nodes(), 7);
        // Every allocatable block avoids node 3.
        let mut got = Vec::new();
        while let Some(r) = b.alloc(1) {
            assert!(!r.contains(&3));
            got.push(r);
        }
        assert_eq!(got.len(), 7);
        assert!(!b.quarantine(3), "already quarantined");
        assert!(!b.quarantine(8), "outside usable range");
    }

    #[test]
    fn quarantine_refuses_allocated_nodes() {
        let mut b = BuddyAllocator::new(8);
        let r = b.alloc(4).unwrap();
        assert!(!b.quarantine(r.start), "node is inside a live allocation");
        b.free(r.start);
        assert!(b.quarantine(r.start), "free after eviction");
    }

    #[test]
    fn rejoin_restores_full_capacity() {
        let mut b = BuddyAllocator::new(16);
        let before = b.free_nodes();
        assert!(b.quarantine(5));
        assert!(b.alloc(16).is_none(), "full-machine block unavailable");
        assert!(b.rejoin(5));
        assert_eq!(b.free_nodes(), before);
        // Coalescing healed: the full machine is one block again.
        assert_eq!(b.alloc(16).unwrap(), 0..16);
        assert!(!b.rejoin(5), "not quarantined any more");
    }

    #[test]
    fn stress_alloc_free_preserves_free_count() {
        use storm_sim::DeterministicRng;
        let mut rng = DeterministicRng::new(11);
        let mut b = BuddyAllocator::new(128);
        let mut live: Vec<Range<u32>> = Vec::new();
        for _ in 0..2000 {
            if rng.uniform() < 0.6 || live.is_empty() {
                let want = 1 << rng.below(5);
                if let Some(r) = b.alloc(want) {
                    // no overlap with any live block
                    for l in &live {
                        assert!(r.end <= l.start || l.end <= r.start);
                    }
                    live.push(r);
                }
            } else {
                let idx = rng.below(live.len() as u64) as usize;
                let r = live.swap_remove(idx);
                b.free(r.start);
            }
            let live_total: u32 = live.iter().map(|r| r.len() as u32).sum();
            assert_eq!(b.free_nodes(), 128 - live_total);
        }
    }
}
