//! Checkpoint/restore: serialize a running [`Cluster`] to a
//! self-contained, versioned JSON artifact and rebuild it later — on a
//! different process, machine, or queue backend — such that the resumed
//! run is byte-identical (trace, stats, snapshots, interleaving digest)
//! to the uninterrupted one.
//!
//! The artifact (`CKPT_*.json` by convention, mirroring the DST repro
//! format) captures everything mutable: the engine image (clock, pending
//! queue entries with their `(time, tie, seq)` pop keys, both payload
//! arenas, RNG stream, delivery-order hook, trace), the shared world
//! (global memory, jobs, queue, gang matrix, node health, devices,
//! replication plane, telemetry), and every dæmon's private state (MM,
//! NMs, PLs). The configuration is embedded with its environment-
//! dependent knobs (`queue_backend`, `event_batching`) pinned to their
//! resolved values, so a restore replays the same choices regardless of
//! the restoring process's environment.
//!
//! Restore works by *reconstruction*: [`Cluster::new`] rebuilds the
//! deterministic layout (component wiring, QsNET model, fault plan) from
//! the embedded config, the engine image then replaces the construction-
//! time event queue wholesale, and the world/component sections overwrite
//! the remaining mutable state. Version mismatches and malformed
//! documents are rejected with descriptive errors, never panics.
//!
//! Encoding conventions: times and spans as integer nanoseconds, `f64`
//! as IEEE-754 bit patterns (`to_bits`), enums as lowercase tagged
//! arrays, `Option` as the value or `null`. All integers round-trip
//! exactly through the shared [`storm_telemetry::json`] value model.

use crate::buddy::BuddyState;
use crate::cluster::Cluster;
use crate::config::{ClusterConfig, DaemonCosts, SchedulerKind};
use crate::fault::{FailurePolicy, FaultEvent, FaultSchedule};
use crate::job::{Allocation, JobId, JobMetrics, JobRecord, JobSpec, JobState, TransferState};
use crate::matrix::{GangMatrix, MatrixState, SlotState};
use crate::mm::{MachineManager, MmState};
use crate::msg::{Msg, ReportKind};
use crate::nm::{NmLocalJobState, NmState, NodeManager};
use crate::pl::ProgramLauncher;
use crate::replica::{Decision, MmCoreState, MmRole, ReplStats, ReplicaState};
use crate::world::{ClusterStats, IdleLeap, NodeTable, World};
use std::sync::Arc;
use storm_apps::{AppSpec, Step, Workload, WorkloadCursor};
use storm_fs::FsKind;
use storm_mech::{CawAudit, ErrorBurst, GlobalMemory, MemoryState, NodeId, NodeSet, VarId};
use storm_net::{BackgroundLoad, BufferPlacement, NetworkKind, Nic};
use storm_sim::{
    intern_label, ArenaState, ComponentId, DeliveryOrder, DeliveryOrderState, EngineState,
    GroupSchedule, GroupState, GroupTargets, OrderModeState, QueueAccounting, QueueBackend,
    QueuedEventState, SimSpan, SimTime, TraceRecord,
};
use storm_telemetry::json::{num, parse, render, Value};
use storm_telemetry::registry::HISTOGRAM_BUCKETS;
use storm_telemetry::{
    Histogram, JobSpan, MetricKey, MetricValue, MetricsRegistry, Phase, SpanLog, Telemetry,
};

/// Artifact format version. Bumped on any incompatible layout change;
/// [`Cluster::restore`] rejects artifacts from other versions.
pub const CHECKPOINT_VERSION: u64 = 1;

type R<T> = Result<T, String>;

// ---------------------------------------------------------------------------
// Small encode/decode helpers
// ---------------------------------------------------------------------------

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn tag(name: &str, args: Vec<Value>) -> Value {
    let mut v = vec![Value::Str(name.to_string())];
    v.extend(args);
    Value::Arr(v)
}

fn time(t: SimTime) -> Value {
    num(t.as_nanos())
}

fn span(s: SimSpan) -> Value {
    num(s.as_nanos())
}

fn fbits(x: f64) -> Value {
    num(x.to_bits())
}

fn boolean(b: bool) -> Value {
    Value::Bool(b)
}

fn string(s: &str) -> Value {
    Value::Str(s.to_string())
}

fn opt<T>(v: Option<T>, f: impl FnOnce(T) -> Value) -> Value {
    match v {
        Some(x) => f(x),
        None => Value::Null,
    }
}

fn du64(v: &Value) -> R<u64> {
    v.as_u64().ok_or_else(|| "expected unsigned integer".into())
}

fn di64(v: &Value) -> R<i64> {
    v.as_i64().ok_or_else(|| "expected integer".into())
}

fn du32(v: &Value) -> R<u32> {
    u32::try_from(du64(v)?).map_err(|_| "integer out of u32 range".to_string())
}

fn dusize(v: &Value) -> R<usize> {
    usize::try_from(du64(v)?).map_err(|_| "integer out of usize range".to_string())
}

fn df64(v: &Value) -> R<f64> {
    Ok(f64::from_bits(du64(v)?))
}

fn dbool(v: &Value) -> R<bool> {
    match v {
        Value::Bool(b) => Ok(*b),
        _ => Err("expected boolean".into()),
    }
}

fn dstr(v: &Value) -> R<&str> {
    v.as_str().ok_or_else(|| "expected string".into())
}

fn darr(v: &Value) -> R<&[Value]> {
    v.as_arr().ok_or_else(|| "expected array".into())
}

fn dtime(v: &Value) -> R<SimTime> {
    Ok(SimTime::from_nanos(du64(v)?))
}

fn dspan(v: &Value) -> R<SimSpan> {
    Ok(SimSpan::from_nanos(du64(v)?))
}

fn dopt(v: &Value) -> Option<&Value> {
    match v {
        Value::Null => None,
        other => Some(other),
    }
}

fn arg(a: &[Value], i: usize) -> R<&Value> {
    a.get(i)
        .ok_or_else(|| format!("missing tagged-array argument {i}"))
}

fn untag(v: &Value) -> R<(&str, &[Value])> {
    let a = darr(v)?;
    let t = dstr(a.first().ok_or_else(|| "empty tagged array".to_string())?)?;
    Ok((t, &a[1..]))
}

fn elems<'a>(v: &'a Value, k: &str) -> R<&'a [Value]> {
    darr(v.req(k)?).map_err(|e| format!("{k}: {e}"))
}

fn dvec<T>(v: &Value, f: impl Fn(&Value) -> R<T>) -> R<Vec<T>> {
    darr(v)?.iter().map(f).collect()
}

fn djob(v: &Value) -> R<JobId> {
    Ok(JobId(du32(v)?))
}

// ---------------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------------

fn enc_order_state(s: &DeliveryOrderState) -> Value {
    let mode = match &s.mode {
        OrderModeState::Seeded { state, amplitude } => {
            tag("seeded", vec![num(*state), num(*amplitude)])
        }
        OrderModeState::Script(ties) => tag(
            "script",
            vec![Value::Arr(ties.iter().map(|&t| num(t)).collect())],
        ),
    };
    obj(vec![
        ("mode", mode),
        ("max_delay", span(s.max_delay)),
        ("draws", num(s.draws)),
    ])
}

fn dec_order_state(v: &Value) -> R<DeliveryOrderState> {
    let (t, a) = untag(v.req("mode")?)?;
    let mode = match t {
        "seeded" => OrderModeState::Seeded {
            state: du64(arg(a, 0)?)?,
            amplitude: du64(arg(a, 1)?)?,
        },
        "script" => OrderModeState::Script(dvec(arg(a, 0)?, du64)?),
        other => return Err(format!("unknown delivery-order mode {other:?}")),
    };
    Ok(DeliveryOrderState {
        mode,
        max_delay: dspan(v.req("max_delay")?)?,
        draws: v.req_u64("draws")?,
    })
}

fn enc_fault_event(e: &FaultEvent) -> Value {
    match *e {
        FaultEvent::Crash { at, node } => tag("crash", vec![time(at), num(node)]),
        FaultEvent::Rejoin { at, node } => tag("rejoin", vec![time(at), num(node)]),
        FaultEvent::Stall { node, from, until } => {
            tag("stall", vec![num(node), time(from), time(until)])
        }
        FaultEvent::MmCrash { at, rank } => tag("mm_crash", vec![time(at), num(rank)]),
    }
}

fn dec_fault_event(v: &Value) -> R<FaultEvent> {
    let (t, a) = untag(v)?;
    Ok(match t {
        "crash" => FaultEvent::Crash {
            at: dtime(arg(a, 0)?)?,
            node: du32(arg(a, 1)?)?,
        },
        "rejoin" => FaultEvent::Rejoin {
            at: dtime(arg(a, 0)?)?,
            node: du32(arg(a, 1)?)?,
        },
        "stall" => FaultEvent::Stall {
            node: du32(arg(a, 0)?)?,
            from: dtime(arg(a, 1)?)?,
            until: dtime(arg(a, 2)?)?,
        },
        "mm_crash" => FaultEvent::MmCrash {
            at: dtime(arg(a, 0)?)?,
            rank: du32(arg(a, 1)?)?,
        },
        other => return Err(format!("unknown fault event {other:?}")),
    })
}

fn enc_faults(f: &FaultSchedule) -> Value {
    obj(vec![
        (
            "events",
            Value::Arr(f.events.iter().map(enc_fault_event).collect()),
        ),
        ("xfer_error_prob", fbits(f.xfer_error_prob)),
        ("caw_drop_prob", fbits(f.caw_drop_prob)),
        ("heartbeat_drop_prob", fbits(f.heartbeat_drop_prob)),
        (
            "bursts",
            Value::Arr(
                f.bursts
                    .iter()
                    .map(|b| Value::Arr(vec![time(b.from), time(b.until), fbits(b.prob)]))
                    .collect(),
            ),
        ),
    ])
}

fn dec_faults(v: &Value) -> R<FaultSchedule> {
    Ok(FaultSchedule {
        events: elems(v, "events")?
            .iter()
            .map(dec_fault_event)
            .collect::<R<_>>()?,
        xfer_error_prob: df64(v.req("xfer_error_prob")?)?,
        caw_drop_prob: df64(v.req("caw_drop_prob")?)?,
        heartbeat_drop_prob: df64(v.req("heartbeat_drop_prob")?)?,
        bursts: elems(v, "bursts")?
            .iter()
            .map(|b| {
                let a = darr(b)?;
                Ok(ErrorBurst {
                    from: dtime(arg(a, 0)?)?,
                    until: dtime(arg(a, 1)?)?,
                    prob: df64(arg(a, 2)?)?,
                })
            })
            .collect::<R<_>>()?,
    })
}

fn enc_policy(p: &FailurePolicy) -> Value {
    match *p {
        FailurePolicy::Fail => tag("fail", vec![]),
        FailurePolicy::Requeue {
            max_retries,
            backoff,
        } => tag("requeue", vec![num(max_retries), span(backoff)]),
        FailurePolicy::Shrink => tag("shrink", vec![]),
    }
}

fn dec_policy(v: &Value) -> R<FailurePolicy> {
    let (t, a) = untag(v)?;
    Ok(match t {
        "fail" => FailurePolicy::Fail,
        "requeue" => FailurePolicy::Requeue {
            max_retries: du32(arg(a, 0)?)?,
            backoff: dspan(arg(a, 1)?)?,
        },
        "shrink" => FailurePolicy::Shrink,
        other => return Err(format!("unknown failure policy {other:?}")),
    })
}

fn enc_daemon(d: &DaemonCosts) -> Value {
    obj(vec![
        ("nm_strobe_service", span(d.nm_strobe_service)),
        ("switch_overhead", span(d.switch_overhead)),
        ("nm_msg_service", span(d.nm_msg_service)),
        ("fork_base", span(d.fork_base)),
        ("fork_sigma", fbits(d.fork_sigma)),
        ("helper_bw", fbits(d.helper_bw)),
        ("chunk_fixed", span(d.chunk_fixed)),
        ("tlb_per_extra_slot", span(d.tlb_per_extra_slot)),
        ("caw_poll", span(d.caw_poll)),
        ("write_sigma", fbits(d.write_sigma)),
        ("exit_detect", span(d.exit_detect)),
        ("os_delay_mean", span(d.os_delay_mean)),
        ("mm_report_service", span(d.mm_report_service)),
        ("ics_local_quantum", span(d.ics_local_quantum)),
    ])
}

fn dec_daemon(v: &Value) -> R<DaemonCosts> {
    Ok(DaemonCosts {
        nm_strobe_service: dspan(v.req("nm_strobe_service")?)?,
        switch_overhead: dspan(v.req("switch_overhead")?)?,
        nm_msg_service: dspan(v.req("nm_msg_service")?)?,
        fork_base: dspan(v.req("fork_base")?)?,
        fork_sigma: df64(v.req("fork_sigma")?)?,
        helper_bw: df64(v.req("helper_bw")?)?,
        chunk_fixed: dspan(v.req("chunk_fixed")?)?,
        tlb_per_extra_slot: dspan(v.req("tlb_per_extra_slot")?)?,
        caw_poll: dspan(v.req("caw_poll")?)?,
        write_sigma: df64(v.req("write_sigma")?)?,
        exit_detect: dspan(v.req("exit_detect")?)?,
        os_delay_mean: dspan(v.req("os_delay_mean")?)?,
        mm_report_service: dspan(v.req("mm_report_service")?)?,
        ics_local_quantum: dspan(v.req("ics_local_quantum")?)?,
    })
}

fn enc_config(cfg: &ClusterConfig) -> Value {
    obj(vec![
        ("nodes", num(cfg.nodes)),
        ("cpus_per_node", num(cfg.cpus_per_node)),
        ("timeslice", span(cfg.timeslice)),
        ("max_event_collect", span(cfg.max_event_collect)),
        ("mpl_max", num(cfg.mpl_max)),
        ("chunk_bytes", num(cfg.chunk_bytes)),
        ("queue_slots", num(cfg.queue_slots)),
        (
            "fs",
            string(match cfg.fs {
                FsKind::RamDisk => "ram_disk",
                FsKind::LocalExt2 => "local_ext2",
                FsKind::Nfs => "nfs",
            }),
        ),
        (
            "placement",
            string(match cfg.placement {
                BufferPlacement::MainMemory => "main_memory",
                BufferPlacement::NicMemory => "nic_memory",
            }),
        ),
        (
            "network",
            string(match cfg.network {
                NetworkKind::QsNet => "qsnet",
                NetworkKind::GigabitEthernet => "gigabit_ethernet",
                NetworkKind::Myrinet => "myrinet",
                NetworkKind::Infiniband => "infiniband",
                NetworkKind::BlueGeneL => "bluegene_l",
            }),
        ),
        (
            "load",
            obj(vec![
                ("cpu", fbits(cfg.load.cpu)),
                ("network", fbits(cfg.load.network)),
            ]),
        ),
        (
            "scheduler",
            string(match cfg.scheduler {
                SchedulerKind::Gang => "gang",
                SchedulerKind::Batch => "batch",
                SchedulerKind::Backfill => "backfill",
                SchedulerKind::ImplicitCosched => "implicit_cosched",
            }),
        ),
        ("fault_detection", boolean(cfg.fault_detection)),
        ("heartbeat_every", num(cfg.heartbeat_every)),
        ("faults", enc_faults(&cfg.faults)),
        ("failure_policy", enc_policy(&cfg.failure_policy)),
        ("mm_standbys", num(cfg.mm_standbys)),
        ("group_delivery", boolean(cfg.group_delivery)),
        ("telemetry", boolean(cfg.telemetry)),
        (
            "queue_backend",
            string(match cfg.resolved_queue_backend() {
                QueueBackend::Heap => "heap",
                QueueBackend::Wheel => "wheel",
            }),
        ),
        ("event_batching", boolean(cfg.resolved_event_batching())),
        ("threads", num(cfg.resolved_threads())),
        (
            "delivery_order",
            opt(cfg.delivery_order.as_ref(), |o| {
                enc_order_state(&o.export_state())
            }),
        ),
        ("fast_forward", boolean(cfg.fast_forward)),
        ("daemon", enc_daemon(&cfg.daemon)),
        ("seed", num(cfg.seed)),
    ])
}

fn dec_config(v: &Value) -> R<ClusterConfig> {
    Ok(ClusterConfig {
        nodes: du32(v.req("nodes")?)?,
        cpus_per_node: du32(v.req("cpus_per_node")?)?,
        timeslice: dspan(v.req("timeslice")?)?,
        max_event_collect: dspan(v.req("max_event_collect")?)?,
        mpl_max: dusize(v.req("mpl_max")?)?,
        chunk_bytes: v.req_u64("chunk_bytes")?,
        queue_slots: du32(v.req("queue_slots")?)?,
        fs: match v.req_str("fs")? {
            "ram_disk" => FsKind::RamDisk,
            "local_ext2" => FsKind::LocalExt2,
            "nfs" => FsKind::Nfs,
            other => return Err(format!("unknown fs kind {other:?}")),
        },
        placement: match v.req_str("placement")? {
            "main_memory" => BufferPlacement::MainMemory,
            "nic_memory" => BufferPlacement::NicMemory,
            other => return Err(format!("unknown buffer placement {other:?}")),
        },
        network: match v.req_str("network")? {
            "qsnet" => NetworkKind::QsNet,
            "gigabit_ethernet" => NetworkKind::GigabitEthernet,
            "myrinet" => NetworkKind::Myrinet,
            "infiniband" => NetworkKind::Infiniband,
            "bluegene_l" => NetworkKind::BlueGeneL,
            other => return Err(format!("unknown network kind {other:?}")),
        },
        load: {
            let l = v.req("load")?;
            BackgroundLoad {
                cpu: df64(l.req("cpu")?)?,
                network: df64(l.req("network")?)?,
            }
        },
        scheduler: match v.req_str("scheduler")? {
            "gang" => SchedulerKind::Gang,
            "batch" => SchedulerKind::Batch,
            "backfill" => SchedulerKind::Backfill,
            "implicit_cosched" => SchedulerKind::ImplicitCosched,
            other => return Err(format!("unknown scheduler {other:?}")),
        },
        fault_detection: dbool(v.req("fault_detection")?)?,
        heartbeat_every: du32(v.req("heartbeat_every")?)?,
        faults: dec_faults(v.req("faults")?)?,
        failure_policy: dec_policy(v.req("failure_policy")?)?,
        mm_standbys: du32(v.req("mm_standbys")?)?,
        group_delivery: dbool(v.req("group_delivery")?)?,
        telemetry: dbool(v.req("telemetry")?)?,
        queue_backend: Some(match v.req_str("queue_backend")? {
            "heap" => QueueBackend::Heap,
            "wheel" => QueueBackend::Wheel,
            other => return Err(format!("unknown queue backend {other:?}")),
        }),
        event_batching: Some(dbool(v.req("event_batching")?)?),
        threads: Some(du32(v.req("threads")?)?),
        delivery_order: dopt(v.req("delivery_order")?)
            .map(|o| Ok::<_, String>(DeliveryOrder::import_state(dec_order_state(o)?)))
            .transpose()?,
        fast_forward: dbool(v.req("fast_forward")?)?,
        daemon: dec_daemon(v.req("daemon")?)?,
        seed: v.req_u64("seed")?,
    })
}

// ---------------------------------------------------------------------------
// Messages, decisions, replicated state
// ---------------------------------------------------------------------------

fn enc_report(k: &ReportKind) -> Value {
    match *k {
        ReportKind::Started => tag("started", vec![]),
        ReportKind::Done { app_done } => tag("done", vec![time(app_done)]),
    }
}

fn dec_report(v: &Value) -> R<ReportKind> {
    let (t, a) = untag(v)?;
    Ok(match t {
        "started" => ReportKind::Started,
        "done" => ReportKind::Done {
            app_done: dtime(arg(a, 0)?)?,
        },
        other => return Err(format!("unknown report kind {other:?}")),
    })
}

fn enc_decision(d: &Decision) -> Value {
    match *d {
        Decision::Submit { job } => tag("submit", vec![num(job.0)]),
        Decision::Place { job, slot } => tag("place", vec![num(job.0), num(slot)]),
        Decision::Admit { job } => tag("admit", vec![num(job.0)]),
        Decision::Launch { job, attempt } => tag("launch", vec![num(job.0), num(attempt)]),
        Decision::Complete { job } => tag("complete", vec![num(job.0)]),
        Decision::Requeue { job, retry } => tag("requeue", vec![num(job.0), num(retry)]),
        Decision::Quarantine { node } => tag("quarantine", vec![num(node)]),
        Decision::Rejoin { node } => tag("rejoin", vec![num(node)]),
        Decision::Round { round } => tag("round", vec![num(round)]),
        Decision::Slot { slot } => tag("slot", vec![num(slot)]),
    }
}

fn dec_decision(v: &Value) -> R<Decision> {
    let (t, a) = untag(v)?;
    Ok(match t {
        "submit" => Decision::Submit {
            job: djob(arg(a, 0)?)?,
        },
        "place" => Decision::Place {
            job: djob(arg(a, 0)?)?,
            slot: du32(arg(a, 1)?)?,
        },
        "admit" => Decision::Admit {
            job: djob(arg(a, 0)?)?,
        },
        "launch" => Decision::Launch {
            job: djob(arg(a, 0)?)?,
            attempt: du32(arg(a, 1)?)?,
        },
        "complete" => Decision::Complete {
            job: djob(arg(a, 0)?)?,
        },
        "requeue" => Decision::Requeue {
            job: djob(arg(a, 0)?)?,
            retry: du32(arg(a, 1)?)?,
        },
        "quarantine" => Decision::Quarantine {
            node: du32(arg(a, 0)?)?,
        },
        "rejoin" => Decision::Rejoin {
            node: du32(arg(a, 0)?)?,
        },
        "round" => Decision::Round {
            round: di64(arg(a, 0)?)?,
        },
        "slot" => Decision::Slot {
            slot: du32(arg(a, 0)?)?,
        },
        other => return Err(format!("unknown decision {other:?}")),
    })
}

fn enc_core(s: &MmCoreState) -> Value {
    obj(vec![
        ("ticks", num(s.ticks)),
        ("hb_round", num(s.hb_round)),
        (
            "detected_failed",
            Value::Arr(s.detected_failed.iter().map(|&n| num(n)).collect()),
        ),
        (
            "queue",
            Value::Arr(s.queue.iter().map(|j| num(j.0)).collect()),
        ),
        ("active_slot", num(s.active_slot)),
        ("log_len", num(s.log_len)),
        ("digest", num(s.digest)),
    ])
}

fn dec_core(v: &Value) -> R<MmCoreState> {
    Ok(MmCoreState {
        ticks: v.req_u64("ticks")?,
        hb_round: di64(v.req("hb_round")?)?,
        detected_failed: dvec(v.req("detected_failed")?, du32)?,
        queue: dvec(v.req("queue")?, djob)?,
        active_slot: du32(v.req("active_slot")?)?,
        log_len: v.req_u64("log_len")?,
        digest: v.req_u64("digest")?,
    })
}

fn enc_msg(m: &Msg) -> Value {
    match m {
        Msg::Submit(j) => tag("submit", vec![num(j.0)]),
        Msg::Tick => tag("tick", vec![]),
        Msg::Collect => tag("collect", vec![]),
        Msg::ReadDone {
            job,
            chunk,
            attempt,
        } => tag("read_done", vec![num(job.0), num(*chunk), num(*attempt)]),
        Msg::BcastFreed {
            job,
            chunk,
            attempt,
        } => tag("bcast_freed", vec![num(job.0), num(*chunk), num(*attempt)]),
        Msg::FlowPoll { job, attempt } => tag("flow_poll", vec![num(job.0), num(*attempt)]),
        Msg::NmReport {
            node,
            job,
            kind,
            attempt,
        } => tag(
            "nm_report",
            vec![num(*node), num(job.0), enc_report(kind), num(*attempt)],
        ),
        Msg::Kill(j) => tag("kill", vec![num(j.0)]),
        Msg::RequeueJob(j) => tag("requeue_job", vec![num(j.0)]),
        Msg::Fragment {
            job,
            chunk,
            attempt,
        } => tag("fragment", vec![num(job.0), num(*chunk), num(*attempt)]),
        Msg::WriteDone {
            job,
            chunk,
            attempt,
        } => tag("write_done", vec![num(job.0), num(*chunk), num(*attempt)]),
        Msg::LaunchCmd { job, attempt } => tag("launch_cmd", vec![num(job.0), num(*attempt)]),
        Msg::Strobe { slot, epoch } => tag("strobe", vec![num(*slot), num(*epoch)]),
        Msg::Heartbeat { round, epoch } => tag("heartbeat", vec![num(*round), num(*epoch)]),
        Msg::ForkDone { job, pl, attempt } => {
            tag("fork_done", vec![num(job.0), num(*pl), num(*attempt)])
        }
        Msg::PlExited { job, pl, attempt } => {
            tag("pl_exited", vec![num(job.0), num(*pl), num(*attempt)])
        }
        Msg::FailNode => tag("fail_node", vec![]),
        Msg::RejoinNode => tag("rejoin_node", vec![]),
        Msg::StallNode { until } => tag("stall_node", vec![time(*until)]),
        Msg::FlushReports => tag("flush_reports", vec![]),
        Msg::Resync { epoch } => tag("resync", vec![num(*epoch)]),
        Msg::MmBeat {
            epoch,
            ticks,
            log_len,
        } => tag("mm_beat", vec![num(*epoch), num(*ticks), num(*log_len)]),
        Msg::MmWatchdog => tag("mm_watchdog", vec![]),
        Msg::MmFail => tag("mm_fail", vec![]),
        Msg::ReplLog {
            epoch,
            seq,
            decision,
        } => tag(
            "repl_log",
            vec![num(*epoch), num(*seq), enc_decision(decision)],
        ),
        Msg::ReplCheckpoint { epoch, state } => {
            tag("repl_checkpoint", vec![num(*epoch), enc_core(state)])
        }
        Msg::Fork { job, attempt } => tag("fork", vec![num(job.0), num(*attempt)]),
    }
}

fn dec_msg(v: &Value) -> R<Msg> {
    let (t, a) = untag(v)?;
    Ok(match t {
        "submit" => Msg::Submit(djob(arg(a, 0)?)?),
        "tick" => Msg::Tick,
        "collect" => Msg::Collect,
        "read_done" => Msg::ReadDone {
            job: djob(arg(a, 0)?)?,
            chunk: du32(arg(a, 1)?)?,
            attempt: du32(arg(a, 2)?)?,
        },
        "bcast_freed" => Msg::BcastFreed {
            job: djob(arg(a, 0)?)?,
            chunk: du32(arg(a, 1)?)?,
            attempt: du32(arg(a, 2)?)?,
        },
        "flow_poll" => Msg::FlowPoll {
            job: djob(arg(a, 0)?)?,
            attempt: du32(arg(a, 1)?)?,
        },
        "nm_report" => Msg::NmReport {
            node: du32(arg(a, 0)?)?,
            job: djob(arg(a, 1)?)?,
            kind: dec_report(arg(a, 2)?)?,
            attempt: du32(arg(a, 3)?)?,
        },
        "kill" => Msg::Kill(djob(arg(a, 0)?)?),
        "requeue_job" => Msg::RequeueJob(djob(arg(a, 0)?)?),
        "fragment" => Msg::Fragment {
            job: djob(arg(a, 0)?)?,
            chunk: du32(arg(a, 1)?)?,
            attempt: du32(arg(a, 2)?)?,
        },
        "write_done" => Msg::WriteDone {
            job: djob(arg(a, 0)?)?,
            chunk: du32(arg(a, 1)?)?,
            attempt: du32(arg(a, 2)?)?,
        },
        "launch_cmd" => Msg::LaunchCmd {
            job: djob(arg(a, 0)?)?,
            attempt: du32(arg(a, 1)?)?,
        },
        "strobe" => Msg::Strobe {
            slot: du32(arg(a, 0)?)?,
            epoch: du64(arg(a, 1)?)?,
        },
        "heartbeat" => Msg::Heartbeat {
            round: di64(arg(a, 0)?)?,
            epoch: du64(arg(a, 1)?)?,
        },
        "fork_done" => Msg::ForkDone {
            job: djob(arg(a, 0)?)?,
            pl: du32(arg(a, 1)?)?,
            attempt: du32(arg(a, 2)?)?,
        },
        "pl_exited" => Msg::PlExited {
            job: djob(arg(a, 0)?)?,
            pl: du32(arg(a, 1)?)?,
            attempt: du32(arg(a, 2)?)?,
        },
        "fail_node" => Msg::FailNode,
        "rejoin_node" => Msg::RejoinNode,
        "stall_node" => Msg::StallNode {
            until: dtime(arg(a, 0)?)?,
        },
        "flush_reports" => Msg::FlushReports,
        "resync" => Msg::Resync {
            epoch: du64(arg(a, 0)?)?,
        },
        "mm_beat" => Msg::MmBeat {
            epoch: du64(arg(a, 0)?)?,
            ticks: du64(arg(a, 1)?)?,
            log_len: du64(arg(a, 2)?)?,
        },
        "mm_watchdog" => Msg::MmWatchdog,
        "mm_fail" => Msg::MmFail,
        "repl_log" => Msg::ReplLog {
            epoch: du64(arg(a, 0)?)?,
            seq: du64(arg(a, 1)?)?,
            decision: dec_decision(arg(a, 2)?)?,
        },
        "repl_checkpoint" => Msg::ReplCheckpoint {
            epoch: du64(arg(a, 0)?)?,
            state: Box::new(dec_core(arg(a, 1)?)?),
        },
        "fork" => Msg::Fork {
            job: djob(arg(a, 0)?)?,
            attempt: du32(arg(a, 1)?)?,
        },
        other => return Err(format!("unknown message tag {other:?}")),
    })
}

// ---------------------------------------------------------------------------
// Engine image
// ---------------------------------------------------------------------------

fn enc_group(g: &GroupState<Msg>) -> Value {
    let targets = match &g.targets {
        GroupTargets::Strided { first, stride, len } => {
            tag("strided", vec![num(first.index()), num(*stride), num(*len)])
        }
        GroupTargets::List(ids) => tag(
            "list",
            vec![Value::Arr(ids.iter().map(|id| num(id.index())).collect())],
        ),
    };
    let schedule = match g.schedule {
        GroupSchedule::Simultaneous => tag("simultaneous", vec![]),
        GroupSchedule::FanoutTree { per_hop, fanout } => {
            tag("fanout_tree", vec![span(per_hop), num(fanout)])
        }
    };
    obj(vec![
        ("targets", targets),
        ("schedule", schedule),
        ("base", time(g.base)),
        ("floor", time(g.floor)),
        ("base_seq", num(g.base_seq)),
        ("cursor", num(g.cursor)),
        ("msg", enc_msg(&g.msg)),
    ])
}

fn dec_group(v: &Value) -> R<GroupState<Msg>> {
    let (t, a) = untag(v.req("targets")?)?;
    let targets = match t {
        "strided" => GroupTargets::Strided {
            first: ComponentId::from_index(du32(arg(a, 0)?)?),
            stride: du32(arg(a, 1)?)?,
            len: du32(arg(a, 2)?)?,
        },
        "list" => GroupTargets::List(
            darr(arg(a, 0)?)?
                .iter()
                .map(|x| Ok(ComponentId::from_index(du32(x)?)))
                .collect::<R<Arc<[ComponentId]>>>()?,
        ),
        other => return Err(format!("unknown group targets {other:?}")),
    };
    let (t, a) = untag(v.req("schedule")?)?;
    let schedule = match t {
        "simultaneous" => GroupSchedule::Simultaneous,
        "fanout_tree" => GroupSchedule::FanoutTree {
            per_hop: dspan(arg(a, 0)?)?,
            fanout: du32(arg(a, 1)?)?,
        },
        other => return Err(format!("unknown group schedule {other:?}")),
    };
    Ok(GroupState {
        targets,
        schedule,
        base: dtime(v.req("base")?)?,
        floor: dtime(v.req("floor")?)?,
        base_seq: v.req_u64("base_seq")?,
        cursor: du32(v.req("cursor")?)?,
        msg: dec_msg(v.req("msg")?)?,
    })
}

fn enc_arena<T>(a: &ArenaState<T>, f: impl Fn(&T) -> Value) -> Value {
    obj(vec![
        (
            "slots",
            Value::Arr(
                a.slots
                    .iter()
                    .map(|(gen, v)| Value::Arr(vec![num(*gen), opt(v.as_ref(), &f)]))
                    .collect(),
            ),
        ),
        ("free", Value::Arr(a.free.iter().map(|&x| num(x)).collect())),
        ("peak", num(a.peak)),
        ("reserve", num(a.reserve)),
    ])
}

fn dec_arena<T>(v: &Value, f: impl Fn(&Value) -> R<T>) -> R<ArenaState<T>> {
    Ok(ArenaState {
        slots: elems(v, "slots")?
            .iter()
            .map(|row| {
                let a = darr(row)?;
                Ok((du32(arg(a, 0)?)?, dopt(arg(a, 1)?).map(&f).transpose()?))
            })
            .collect::<R<_>>()?,
        free: dvec(v.req("free")?, du32)?,
        peak: dusize(v.req("peak")?)?,
        reserve: dusize(v.req("reserve")?)?,
    })
}

fn enc_engine(e: &EngineState<Msg>) -> Value {
    obj(vec![
        ("now", time(e.now)),
        ("halt", boolean(e.halt)),
        ("delivered", num(e.delivered)),
        ("handled", num(e.handled)),
        ("max_events", num(e.max_events)),
        ("batching", boolean(e.batching)),
        (
            "entries",
            Value::Arr(
                e.entries
                    .iter()
                    .map(|q| {
                        Value::Arr(vec![
                            time(q.time),
                            num(q.tie),
                            num(q.seq),
                            num(q.target),
                            num(q.payload.0),
                            num(q.payload.1),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "accounting",
            obj(vec![
                ("next_seq", num(e.accounting.next_seq)),
                ("pushed", num(e.accounting.pushed)),
                ("popped", num(e.accounting.popped)),
                ("peak", num(e.accounting.peak)),
                ("pop_digest", num(e.accounting.pop_digest)),
            ]),
        ),
        ("order", opt(e.order.as_ref(), enc_order_state)),
        ("msgs", enc_arena(&e.msgs, enc_msg)),
        ("groups", enc_arena(&e.groups, enc_group)),
        ("rng_seed", num(e.rng_seed)),
        (
            "rng_state",
            Value::Arr(e.rng_state.iter().map(|&x| num(x)).collect()),
        ),
        (
            "streams",
            Value::Arr(
                e.streams
                    .iter()
                    .map(|st| Value::Arr(st.iter().map(|&x| num(x)).collect()))
                    .collect(),
            ),
        ),
        ("trace_enabled", boolean(e.trace_enabled)),
        ("trace_capacity", opt(e.trace_capacity, num)),
        (
            "trace_records",
            Value::Arr(
                e.trace_records
                    .iter()
                    .map(|r| {
                        Value::Arr(vec![
                            time(r.time),
                            num(r.component.index()),
                            string(r.label),
                            string(&r.detail),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("trace_dropped", num(e.trace_dropped)),
    ])
}

fn dec_engine(v: &Value) -> R<EngineState<Msg>> {
    let acc = v.req("accounting")?;
    let rng_state_v = dvec(v.req("rng_state")?, du64)?;
    let rng_state: [u64; 4] = rng_state_v
        .try_into()
        .map_err(|_| "rng_state must have exactly 4 words".to_string())?;
    Ok(EngineState {
        now: dtime(v.req("now")?)?,
        halt: dbool(v.req("halt")?)?,
        delivered: v.req_u64("delivered")?,
        handled: v.req_u64("handled")?,
        max_events: v.req_u64("max_events")?,
        batching: dbool(v.req("batching")?)?,
        entries: elems(v, "entries")?
            .iter()
            .map(|row| {
                let a = darr(row)?;
                Ok(QueuedEventState {
                    time: dtime(arg(a, 0)?)?,
                    tie: du64(arg(a, 1)?)?,
                    seq: du64(arg(a, 2)?)?,
                    target: du32(arg(a, 3)?)?,
                    payload: (du32(arg(a, 4)?)?, du32(arg(a, 5)?)?),
                })
            })
            .collect::<R<_>>()?,
        accounting: QueueAccounting {
            next_seq: acc.req_u64("next_seq")?,
            pushed: acc.req_u64("pushed")?,
            popped: acc.req_u64("popped")?,
            peak: dusize(acc.req("peak")?)?,
            pop_digest: acc.req_u64("pop_digest")?,
        },
        order: dopt(v.req("order")?).map(dec_order_state).transpose()?,
        msgs: dec_arena(v.req("msgs")?, dec_msg)?,
        groups: dec_arena(v.req("groups")?, dec_group)?,
        rng_seed: v.req_u64("rng_seed")?,
        rng_state,
        streams: elems(v, "streams")?
            .iter()
            .map(|row| {
                let st = dvec(row, du64)?;
                st.try_into()
                    .map_err(|_| "stream state must have exactly 4 words".to_string())
            })
            .collect::<R<_>>()?,
        trace_enabled: dbool(v.req("trace_enabled")?)?,
        trace_capacity: dopt(v.req("trace_capacity")?).map(dusize).transpose()?,
        trace_records: elems(v, "trace_records")?
            .iter()
            .map(|row| {
                let a = darr(row)?;
                Ok(TraceRecord {
                    time: dtime(arg(a, 0)?)?,
                    component: ComponentId::from_index(du32(arg(a, 1)?)?),
                    label: intern_label(dstr(arg(a, 2)?)?),
                    detail: dstr(arg(a, 3)?)?.to_string(),
                })
            })
            .collect::<R<_>>()?,
        trace_dropped: v.req_u64("trace_dropped")?,
    })
}

// ---------------------------------------------------------------------------
// World
// ---------------------------------------------------------------------------

fn enc_node_set(s: &NodeSet) -> Value {
    match s {
        NodeSet::All(n) => tag("all", vec![num(*n)]),
        NodeSet::Range { start, len } => tag("range", vec![num(*start), num(*len)]),
        NodeSet::List(ids) => tag(
            "list",
            vec![Value::Arr(ids.iter().map(|id| num(id.0)).collect())],
        ),
    }
}

fn dec_node_set(v: &Value) -> R<NodeSet> {
    let (t, a) = untag(v)?;
    Ok(match t {
        "all" => NodeSet::All(du32(arg(a, 0)?)?),
        "range" => NodeSet::Range {
            start: du32(arg(a, 0)?)?,
            len: du32(arg(a, 1)?)?,
        },
        "list" => NodeSet::List(
            darr(arg(a, 0)?)?
                .iter()
                .map(|x| Ok(NodeId(du32(x)?)))
                .collect::<R<_>>()?,
        ),
        other => return Err(format!("unknown node set {other:?}")),
    })
}

fn enc_memory(m: &MemoryState) -> Value {
    obj(vec![
        ("nodes", num(m.nodes)),
        (
            "vars",
            Value::Arr(
                m.vars
                    .iter()
                    .map(|per| Value::Arr(per.iter().map(|&x| num(x)).collect()))
                    .collect(),
            ),
        ),
        (
            "events",
            Value::Arr(
                m.events
                    .iter()
                    .map(|per| Value::Arr(per.iter().map(|&e| opt(e, time)).collect()))
                    .collect(),
            ),
        ),
        (
            "caw_audit",
            opt(m.caw_audit.as_ref(), |audit| {
                Value::Arr(
                    audit
                        .iter()
                        .map(|(var, a)| {
                            Value::Arr(vec![num(*var), enc_node_set(&a.set), num(a.value)])
                        })
                        .collect(),
                )
            }),
        ),
    ])
}

fn dec_memory(v: &Value) -> R<MemoryState> {
    Ok(MemoryState {
        nodes: du32(v.req("nodes")?)?,
        vars: elems(v, "vars")?
            .iter()
            .map(|per| dvec(per, di64))
            .collect::<R<_>>()?,
        events: elems(v, "events")?
            .iter()
            .map(|per| {
                darr(per)?
                    .iter()
                    .map(|e| dopt(e).map(dtime).transpose())
                    .collect::<R<Vec<_>>>()
            })
            .collect::<R<_>>()?,
        caw_audit: dopt(v.req("caw_audit")?)
            .map(|audit| {
                darr(audit)?
                    .iter()
                    .map(|row| {
                        let a = darr(row)?;
                        Ok((
                            du32(arg(a, 0)?)?,
                            CawAudit {
                                set: dec_node_set(arg(a, 1)?)?,
                                value: di64(arg(a, 2)?)?,
                            },
                        ))
                    })
                    .collect::<R<Vec<_>>>()
            })
            .transpose()?,
    })
}

fn enc_app(app: &AppSpec) -> Value {
    match *app {
        AppSpec::DoNothing { binary_bytes } => tag("do_nothing", vec![num(binary_bytes)]),
        AppSpec::Sweep3d {
            iterations,
            compute_per_iter,
            comm_bytes_per_iter,
        } => tag(
            "sweep3d",
            vec![
                num(iterations),
                span(compute_per_iter),
                num(comm_bytes_per_iter),
            ],
        ),
        AppSpec::Synthetic { compute } => tag("synthetic", vec![span(compute)]),
        AppSpec::SpinLoop => tag("spin_loop", vec![]),
        AppSpec::NetLoad { msg_bytes } => tag("net_load", vec![num(msg_bytes)]),
    }
}

fn dec_app(v: &Value) -> R<AppSpec> {
    let (t, a) = untag(v)?;
    Ok(match t {
        "do_nothing" => AppSpec::DoNothing {
            binary_bytes: du64(arg(a, 0)?)?,
        },
        "sweep3d" => AppSpec::Sweep3d {
            iterations: du32(arg(a, 0)?)?,
            compute_per_iter: dspan(arg(a, 1)?)?,
            comm_bytes_per_iter: du64(arg(a, 2)?)?,
        },
        "synthetic" => AppSpec::Synthetic {
            compute: dspan(arg(a, 0)?)?,
        },
        "spin_loop" => AppSpec::SpinLoop,
        "net_load" => AppSpec::NetLoad {
            msg_bytes: du64(arg(a, 0)?)?,
        },
        other => return Err(format!("unknown app spec {other:?}")),
    })
}

fn enc_workload(w: &Workload) -> Value {
    obj(vec![
        ("endless", boolean(w.is_endless())),
        (
            "steps",
            Value::Arr(
                w.steps()
                    .iter()
                    .map(|s| Value::Arr(vec![span(s.compute), num(s.comm_bytes)]))
                    .collect(),
            ),
        ),
    ])
}

fn dec_workload(v: &Value) -> R<Workload> {
    let steps = elems(v, "steps")?
        .iter()
        .map(|row| {
            let a = darr(row)?;
            Ok(Step {
                compute: dspan(arg(a, 0)?)?,
                comm_bytes: du64(arg(a, 1)?)?,
            })
        })
        .collect::<R<Vec<_>>>()?;
    Ok(if dbool(v.req("endless")?)? {
        Workload::endless(steps)
    } else if steps.is_empty() {
        Workload::empty()
    } else {
        Workload::new(steps)
    })
}

fn enc_cursor(c: &WorkloadCursor) -> Value {
    Value::Arr(vec![
        num(c.steps_done()),
        span(c.consumed_in_step()),
        span(c.total_consumed()),
    ])
}

fn dec_cursor(v: &Value) -> R<WorkloadCursor> {
    let a = darr(v)?;
    Ok(WorkloadCursor::from_parts(
        dusize(arg(a, 0)?)?,
        dspan(arg(a, 1)?)?,
        dspan(arg(a, 2)?)?,
    ))
}

fn enc_job_state(s: JobState) -> Value {
    string(match s {
        JobState::Queued => "queued",
        JobState::Transferring => "transferring",
        JobState::Launching => "launching",
        JobState::Running => "running",
        JobState::Completed => "completed",
        JobState::Killed => "killed",
        JobState::Failed => "failed",
    })
}

fn dec_job_state(v: &Value) -> R<JobState> {
    Ok(match dstr(v)? {
        "queued" => JobState::Queued,
        "transferring" => JobState::Transferring,
        "launching" => JobState::Launching,
        "running" => JobState::Running,
        "completed" => JobState::Completed,
        "killed" => JobState::Killed,
        "failed" => JobState::Failed,
        other => return Err(format!("unknown job state {other:?}")),
    })
}

fn enc_job(j: &JobRecord) -> Value {
    obj(vec![
        ("id", num(j.id.0)),
        (
            "spec",
            obj(vec![
                ("name", string(&j.spec.name)),
                ("app", enc_app(&j.spec.app)),
                ("ranks", num(j.spec.ranks)),
                ("max_ranks_per_node", opt(j.spec.max_ranks_per_node, num)),
                ("runtime_estimate", opt(j.spec.runtime_estimate, span)),
            ]),
        ),
        ("state", enc_job_state(j.state)),
        (
            "allocation",
            opt(j.allocation.as_ref(), |a| {
                obj(vec![
                    ("slot", num(a.slot)),
                    ("nodes_start", num(a.nodes.start)),
                    ("nodes_end", num(a.nodes.end)),
                    ("ranks_per_node", num(a.ranks_per_node)),
                    ("ranks", num(a.ranks)),
                ])
            }),
        ),
        ("workload", enc_workload(&j.workload)),
        ("cursor", enc_cursor(&j.cursor)),
        (
            "metrics",
            obj(vec![
                ("submitted", opt(j.metrics.submitted, time)),
                ("transfer_start", opt(j.metrics.transfer_start, time)),
                ("transfer_done", opt(j.metrics.transfer_done, time)),
                ("launch_cmd", opt(j.metrics.launch_cmd, time)),
                ("started", opt(j.metrics.started, time)),
                ("app_done", opt(j.metrics.app_done, time)),
                ("completed", opt(j.metrics.completed, time)),
            ]),
        ),
        (
            "transfer",
            obj(vec![
                ("total_chunks", num(j.transfer.total_chunks)),
                ("last_chunk_bytes", num(j.transfer.last_chunk_bytes)),
                ("next_read", num(j.transfer.next_read)),
                ("chunks_read", num(j.transfer.chunks_read)),
                ("next_bcast", num(j.transfer.next_bcast)),
                ("read_busy", boolean(j.transfer.read_busy)),
                ("bcast_busy", boolean(j.transfer.bcast_busy)),
                ("poll_pending", boolean(j.transfer.poll_pending)),
                ("written_var", opt(j.transfer.written_var, |v| num(v.0))),
            ]),
        ),
        ("start_reports", num(j.start_reports)),
        ("done_reports", num(j.done_reports)),
        (
            "reported_started",
            Value::Arr(j.reported_started.iter().map(|&n| num(n)).collect()),
        ),
        (
            "reported_done",
            Value::Arr(j.reported_done.iter().map(|&n| num(n)).collect()),
        ),
        ("transfer_confirmed", opt(j.transfer_confirmed, time)),
        ("app_done_max", opt(j.app_done_max, time)),
        ("attempt", num(j.attempt)),
        ("retries", num(j.retries)),
    ])
}

fn dec_job(v: &Value) -> R<JobRecord> {
    let spec = v.req("spec")?;
    let metrics = v.req("metrics")?;
    let transfer = v.req("transfer")?;
    Ok(JobRecord {
        id: JobId(du32(v.req("id")?)?),
        spec: JobSpec {
            name: spec.req_str("name")?.to_string(),
            app: dec_app(spec.req("app")?)?,
            ranks: du32(spec.req("ranks")?)?,
            max_ranks_per_node: dopt(spec.req("max_ranks_per_node")?)
                .map(du32)
                .transpose()?,
            runtime_estimate: dopt(spec.req("runtime_estimate")?).map(dspan).transpose()?,
        },
        state: dec_job_state(v.req("state")?)?,
        allocation: dopt(v.req("allocation")?)
            .map(|a| {
                Ok::<_, String>(Allocation {
                    slot: dusize(a.req("slot")?)?,
                    nodes: du32(a.req("nodes_start")?)?..du32(a.req("nodes_end")?)?,
                    ranks_per_node: du32(a.req("ranks_per_node")?)?,
                    ranks: du32(a.req("ranks")?)?,
                })
            })
            .transpose()?,
        workload: dec_workload(v.req("workload")?)?,
        cursor: dec_cursor(v.req("cursor")?)?,
        metrics: JobMetrics {
            submitted: dopt(metrics.req("submitted")?).map(dtime).transpose()?,
            transfer_start: dopt(metrics.req("transfer_start")?)
                .map(dtime)
                .transpose()?,
            transfer_done: dopt(metrics.req("transfer_done")?).map(dtime).transpose()?,
            launch_cmd: dopt(metrics.req("launch_cmd")?).map(dtime).transpose()?,
            started: dopt(metrics.req("started")?).map(dtime).transpose()?,
            app_done: dopt(metrics.req("app_done")?).map(dtime).transpose()?,
            completed: dopt(metrics.req("completed")?).map(dtime).transpose()?,
        },
        transfer: TransferState {
            total_chunks: du32(transfer.req("total_chunks")?)?,
            last_chunk_bytes: transfer.req_u64("last_chunk_bytes")?,
            next_read: du32(transfer.req("next_read")?)?,
            chunks_read: du32(transfer.req("chunks_read")?)?,
            next_bcast: du32(transfer.req("next_bcast")?)?,
            read_busy: dbool(transfer.req("read_busy")?)?,
            bcast_busy: dbool(transfer.req("bcast_busy")?)?,
            poll_pending: dbool(transfer.req("poll_pending")?)?,
            written_var: dopt(transfer.req("written_var")?)
                .map(|x| Ok::<_, String>(VarId(du32(x)?)))
                .transpose()?,
        },
        start_reports: du32(v.req("start_reports")?)?,
        done_reports: du32(v.req("done_reports")?)?,
        reported_started: dvec(v.req("reported_started")?, du32)?,
        reported_done: dvec(v.req("reported_done")?, du32)?,
        transfer_confirmed: dopt(v.req("transfer_confirmed")?).map(dtime).transpose()?,
        app_done_max: dopt(v.req("app_done_max")?).map(dtime).transpose()?,
        attempt: du32(v.req("attempt")?)?,
        retries: du32(v.req("retries")?)?,
    })
}

fn enc_matrix(m: &MatrixState) -> Value {
    obj(vec![
        ("nodes", num(m.nodes)),
        ("mpl_max", num(m.mpl_max)),
        (
            "slots",
            Value::Arr(
                m.slots
                    .iter()
                    .map(|s| {
                        obj(vec![
                            (
                                "buddy",
                                obj(vec![
                                    ("usable", num(s.buddy.usable)),
                                    (
                                        "allocated",
                                        Value::Arr(
                                            s.buddy
                                                .allocated
                                                .iter()
                                                .map(|&(start, order)| {
                                                    Value::Arr(vec![num(start), num(order)])
                                                })
                                                .collect(),
                                        ),
                                    ),
                                    (
                                        "quarantined",
                                        Value::Arr(
                                            s.buddy.quarantined.iter().map(|&n| num(n)).collect(),
                                        ),
                                    ),
                                ]),
                            ),
                            (
                                "jobs",
                                Value::Arr(
                                    s.jobs
                                        .iter()
                                        .map(|(j, r)| {
                                            Value::Arr(vec![num(j.0), num(r.start), num(r.end)])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "quarantined",
            Value::Arr(m.quarantined.iter().map(|&n| num(n)).collect()),
        ),
    ])
}

fn dec_matrix(v: &Value) -> R<MatrixState> {
    Ok(MatrixState {
        nodes: du32(v.req("nodes")?)?,
        mpl_max: dusize(v.req("mpl_max")?)?,
        slots: elems(v, "slots")?
            .iter()
            .map(|s| {
                let b = s.req("buddy")?;
                Ok(SlotState {
                    buddy: BuddyState {
                        usable: du32(b.req("usable")?)?,
                        allocated: elems(b, "allocated")?
                            .iter()
                            .map(|row| {
                                let a = darr(row)?;
                                Ok((du32(arg(a, 0)?)?, du32(arg(a, 1)?)?))
                            })
                            .collect::<R<_>>()?,
                        quarantined: dvec(b.req("quarantined")?, du32)?,
                    },
                    jobs: elems(s, "jobs")?
                        .iter()
                        .map(|row| {
                            let a = darr(row)?;
                            Ok((djob(arg(a, 0)?)?, du32(arg(a, 1)?)?..du32(arg(a, 2)?)?))
                        })
                        .collect::<R<_>>()?,
                })
            })
            .collect::<R<_>>()?,
        quarantined: dvec(v.req("quarantined")?, du32)?,
    })
}

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------

fn enc_metric_key(k: &MetricKey) -> Value {
    obj(vec![
        ("name", string(k.name)),
        (
            "labels",
            Value::Arr(
                k.labels
                    .iter()
                    .map(|(lk, lv)| Value::Arr(vec![string(lk), string(lv)]))
                    .collect(),
            ),
        ),
    ])
}

fn dec_metric_key(v: &Value) -> R<MetricKey> {
    Ok(MetricKey {
        name: intern_label(v.req_str("name")?),
        labels: elems(v, "labels")?
            .iter()
            .map(|row| {
                let a = darr(row)?;
                Ok((
                    intern_label(dstr(arg(a, 0)?)?),
                    dstr(arg(a, 1)?)?.to_string(),
                ))
            })
            .collect::<R<_>>()?,
    })
}

fn enc_metric_value(m: &MetricValue) -> Value {
    match m {
        MetricValue::Counter(n) => tag("counter", vec![num(*n)]),
        MetricValue::Gauge(g) => tag("gauge", vec![num(*g)]),
        MetricValue::Histogram(h) => tag(
            "histogram",
            vec![
                Value::Arr(h.bucket_counts().iter().map(|&b| num(b)).collect()),
                num(h.count()),
                num(h.sum()),
                num(h.min()),
                num(h.max()),
            ],
        ),
    }
}

fn dec_metric_value(v: &Value) -> R<MetricValue> {
    let (t, a) = untag(v)?;
    Ok(match t {
        "counter" => MetricValue::Counter(du64(arg(a, 0)?)?),
        "gauge" => MetricValue::Gauge(di64(arg(a, 0)?)?),
        "histogram" => {
            let rows = darr(arg(a, 0)?)?;
            if rows.len() != HISTOGRAM_BUCKETS {
                return Err(format!(
                    "histogram must have {HISTOGRAM_BUCKETS} buckets, got {}",
                    rows.len()
                ));
            }
            let mut buckets = [0u64; HISTOGRAM_BUCKETS];
            for (slot, row) in buckets.iter_mut().zip(rows) {
                *slot = du64(row)?;
            }
            MetricValue::Histogram(Box::new(Histogram::from_parts(
                buckets,
                du64(arg(a, 1)?)?,
                du64(arg(a, 2)?)?,
                du64(arg(a, 3)?)?,
                du64(arg(a, 4)?)?,
            )))
        }
        other => return Err(format!("unknown metric value {other:?}")),
    })
}

fn enc_condition(c: &crate::cq::Condition) -> Value {
    use crate::cq::Condition as C;
    match c {
        C::QuarantinedAbove(n) => tag("quarantined_above", vec![num(*n)]),
        C::QueueDepthAbove(n) => tag("queue_depth_above", vec![num(*n)]),
        C::QueueDepthGrowingFor(k) => tag("queue_depth_growing_for", vec![num(*k)]),
        C::FailedNodesAbove(n) => tag("failed_nodes_above", vec![num(*n)]),
        C::RunningJobsAbove(n) => tag("running_jobs_above", vec![num(*n)]),
        C::AliveNodesBelow(n) => tag("alive_nodes_below", vec![num(*n)]),
    }
}

fn dec_condition(v: &Value) -> R<crate::cq::Condition> {
    use crate::cq::Condition as C;
    let (name, args) = untag(v)?;
    Ok(match name {
        "quarantined_above" => C::QuarantinedAbove(du32(arg(args, 0)?)?),
        "queue_depth_above" => C::QueueDepthAbove(du64(arg(args, 0)?)?),
        "queue_depth_growing_for" => C::QueueDepthGrowingFor(du32(arg(args, 0)?)?),
        "failed_nodes_above" => C::FailedNodesAbove(du32(arg(args, 0)?)?),
        "running_jobs_above" => C::RunningJobsAbove(du32(arg(args, 0)?)?),
        "alive_nodes_below" => C::AliveNodesBelow(du32(arg(args, 0)?)?),
        other => return Err(format!("unknown condition {other:?}")),
    })
}

fn enc_cq(cq: &crate::cq::ContinuousQueries) -> Value {
    obj(vec![
        (
            "queries",
            Value::Arr(
                cq.queries()
                    .iter()
                    .map(|q| {
                        let (last_depth, streak) = q.eval_state();
                        obj(vec![
                            ("name", string(&q.name)),
                            ("cond", enc_condition(&q.cond)),
                            ("last_depth", opt(last_depth, num)),
                            ("streak", num(streak)),
                            ("firings", num(q.firings)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "alerts",
            Value::Arr(
                cq.alerts()
                    .iter()
                    .map(|a| {
                        Value::Arr(vec![
                            num(a.slice),
                            time(a.at),
                            string(&a.query),
                            num(a.observed),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("cap", num(cq.capacity())),
        ("dropped", num(cq.dropped())),
    ])
}

fn dec_cq(v: &Value) -> R<crate::cq::ContinuousQueries> {
    let queries = elems(v, "queries")?
        .iter()
        .map(|q| {
            Ok(crate::cq::ContinuousQuery::from_parts(
                q.req_str("name")?.to_string(),
                dec_condition(q.req("cond")?)?,
                dopt(q.req("last_depth")?).map(du64).transpose()?,
                du32(q.req("streak")?)?,
                q.req_u64("firings")?,
            ))
        })
        .collect::<R<_>>()?;
    let alerts = elems(v, "alerts")?
        .iter()
        .map(|a| {
            let row = darr(a)?;
            Ok(crate::cq::Alert {
                slice: du64(arg(row, 0)?)?,
                at: dtime(arg(row, 1)?)?,
                query: dstr(arg(row, 2)?)?.to_string(),
                observed: du64(arg(row, 3)?)?,
            })
        })
        .collect::<R<_>>()?;
    Ok(crate::cq::ContinuousQueries::from_parts(
        queries,
        alerts,
        dusize(v.req("cap")?)?,
        v.req_u64("dropped")?,
    ))
}

fn enc_telemetry(t: &Telemetry) -> Value {
    obj(vec![
        ("on", boolean(t.is_enabled())),
        (
            "metrics",
            Value::Arr(
                t.metrics
                    .snapshot()
                    .entries()
                    .iter()
                    .map(|(k, v)| Value::Arr(vec![enc_metric_key(k), enc_metric_value(v)]))
                    .collect(),
            ),
        ),
        (
            "spans",
            Value::Arr(
                t.spans
                    .spans()
                    .iter()
                    .map(|s| {
                        obj(vec![
                            ("job", num(s.job)),
                            ("name", string(&s.name)),
                            ("ranks", num(s.ranks)),
                            ("outcome", string(&s.outcome)),
                            ("attempts", num(s.attempts)),
                            (
                                "phases",
                                Value::Arr(
                                    s.phases
                                        .iter()
                                        .map(|p| {
                                            Value::Arr(vec![
                                                string(p.name),
                                                time(p.start),
                                                time(p.end),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn dec_telemetry(v: &Value) -> R<Telemetry> {
    let on = dbool(v.req("on")?)?;
    let entries = elems(v, "metrics")?
        .iter()
        .map(|row| {
            let a = darr(row)?;
            Ok((dec_metric_key(arg(a, 0)?)?, dec_metric_value(arg(a, 1)?)?))
        })
        .collect::<R<Vec<_>>>()?;
    let spans = elems(v, "spans")?
        .iter()
        .map(|s| {
            Ok(JobSpan {
                job: du32(s.req("job")?)?,
                name: s.req_str("name")?.to_string(),
                ranks: du32(s.req("ranks")?)?,
                outcome: s.req_str("outcome")?.to_string(),
                attempts: du32(s.req("attempts")?)?,
                phases: elems(s, "phases")?
                    .iter()
                    .map(|p| {
                        let a = darr(p)?;
                        Ok(Phase {
                            name: intern_label(dstr(arg(a, 0)?)?),
                            start: dtime(arg(a, 1)?)?,
                            end: dtime(arg(a, 2)?)?,
                        })
                    })
                    .collect::<R<_>>()?,
            })
        })
        .collect::<R<Vec<_>>>()?;
    Ok(Telemetry {
        metrics: MetricsRegistry::import(on, entries),
        spans: SpanLog::import(on, spans),
    })
}

// ---------------------------------------------------------------------------
// World section
// ---------------------------------------------------------------------------

fn enc_world(w: &World) -> Value {
    obj(vec![
        (
            "mech",
            obj(vec![
                ("memory", enc_memory(&w.mech.memory.export_state())),
                ("xfer_count", num(w.mech.xfer_count())),
                ("caw_count", num(w.mech.caw_count())),
            ]),
        ),
        ("jobs", Value::Arr(w.jobs.iter().map(enc_job).collect())),
        (
            "queue",
            Value::Arr(w.queue.iter().map(|j| num(j.0)).collect()),
        ),
        ("matrix", enc_matrix(&w.matrix.export_state())),
        (
            "slot_jobs",
            Value::Arr(
                w.slot_jobs
                    .iter()
                    .map(|per| Value::Arr(per.iter().map(|j| num(j.0)).collect()))
                    .collect(),
            ),
        ),
        ("active_slot", num(w.active_slot)),
        (
            "nodes",
            Value::Arr(
                (0..w.nodes.len() as u32)
                    .map(|n| {
                        Value::Arr(vec![
                            boolean(w.nodes.is_failed(n)),
                            opt(w.nodes.failed_since(n), time),
                            boolean(w.nodes.is_quarantined(n)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("read_dev", time(w.read_dev.next_free())),
        ("bcast_dev", time(w.bcast_dev.next_free())),
        ("hb_var", opt(w.hb_var, |v| num(v.0))),
        ("hb_round", num(w.hb_round)),
        ("mm_core", enc_core(&w.mm_core)),
        (
            "mm_replicas",
            Value::Arr(
                w.mm_replicas
                    .iter()
                    .map(|r| {
                        obj(vec![
                            ("applied", num(r.applied)),
                            ("state", enc_core(&r.state)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "mm_roles",
            Value::Arr(
                w.mm_roles
                    .iter()
                    .map(|r| {
                        string(match r {
                            MmRole::Active => "active",
                            MmRole::Standby => "standby",
                            MmRole::Failed => "failed",
                        })
                    })
                    .collect(),
            ),
        ),
        (
            "mm_failed",
            Value::Arr(w.mm_failed.iter().map(|&b| boolean(b)).collect()),
        ),
        (
            "mm_failed_at",
            Value::Arr(w.mm_failed_at.iter().map(|&t| opt(t, time)).collect()),
        ),
        ("mm_active_rank", num(w.mm_active_rank)),
        ("mm_epoch", num(w.mm_epoch)),
        ("mm_epoch_var", opt(w.mm_epoch_var, |v| num(v.0))),
        (
            "requeue_pending",
            Value::Arr(
                w.requeue_pending
                    .iter()
                    .map(|&(j, at)| Value::Arr(vec![num(j.0), time(at)]))
                    .collect(),
            ),
        ),
        (
            "repl",
            obj(vec![
                ("log_records", num(w.repl.log_records)),
                ("checkpoints", num(w.repl.checkpoints)),
                ("beats", num(w.repl.beats)),
                ("log_gaps", num(w.repl.log_gaps)),
                ("promotions", num(w.repl.promotions)),
                (
                    "failovers",
                    Value::Arr(
                        w.repl
                            .failovers
                            .iter()
                            .map(|&(rank, at)| Value::Arr(vec![num(rank), time(at)]))
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "stats",
            obj(vec![
                ("strobes", num(w.stats.strobes)),
                ("fragments", num(w.stats.fragments)),
                ("flow_stalls", num(w.stats.flow_stalls)),
                ("reports", num(w.stats.reports)),
                ("completed_jobs", num(w.stats.completed_jobs)),
                (
                    "failures_detected",
                    Value::Arr(
                        w.stats
                            .failures_detected
                            .iter()
                            .map(|&(n, at)| Value::Arr(vec![num(n), time(at)]))
                            .collect(),
                    ),
                ),
                (
                    "rejoins",
                    Value::Arr(
                        w.stats
                            .rejoins
                            .iter()
                            .map(|&(n, at)| Value::Arr(vec![num(n), time(at)]))
                            .collect(),
                    ),
                ),
                ("requeues", num(w.stats.requeues)),
                ("caw_drops", num(w.stats.caw_drops)),
                ("hb_drops", num(w.stats.hb_drops)),
                ("xfer_retries", num(w.stats.xfer_retries)),
                ("nm_overruns", num(w.stats.nm_overruns)),
            ]),
        ),
        ("telemetry", enc_telemetry(&w.telemetry)),
        ("cq", enc_cq(&w.cq)),
        (
            "leap",
            opt(w.leap.as_ref(), |l| {
                obj(vec![
                    ("from", time(l.from)),
                    ("parked", time(l.parked)),
                    ("settled", time(l.settled)),
                    ("pending", num(l.pending)),
                    ("pct", opt(l.pct, num)),
                ])
            }),
        ),
        ("sim_leaps", num(w.sim_leaps)),
        ("sim_leaped_slices", num(w.sim_leaped_slices)),
    ])
}

fn dpair_u32_time(v: &Value) -> R<(u32, SimTime)> {
    let a = darr(v)?;
    Ok((du32(arg(a, 0)?)?, dtime(arg(a, 1)?)?))
}

fn dec_world_into(v: &Value, w: &mut World) -> R<()> {
    let mech = v.req("mech")?;
    w.mech.memory = GlobalMemory::import_state(dec_memory(mech.req("memory")?)?);
    w.mech
        .restore_counters(mech.req_u64("xfer_count")?, mech.req_u64("caw_count")?);
    w.jobs = elems(v, "jobs")?.iter().map(dec_job).collect::<R<_>>()?;
    w.queue = dvec(v.req("queue")?, djob)?.into();
    w.matrix = GangMatrix::import_state(dec_matrix(v.req("matrix")?)?);
    w.slot_jobs = elems(v, "slot_jobs")?
        .iter()
        .map(|per| dvec(per, djob))
        .collect::<R<_>>()?;
    w.active_slot = dusize(v.req("active_slot")?)?;
    let rows = elems(v, "nodes")?;
    let mut nodes =
        NodeTable::new(u32::try_from(rows.len()).map_err(|_| "node table too large".to_string())?);
    for (n, row) in rows.iter().enumerate() {
        let a = darr(row)?;
        let failed = dbool(arg(a, 0)?)?;
        let failed_at = dopt(arg(a, 1)?).map(dtime).transpose()?;
        if failed {
            let at = failed_at.ok_or_else(|| "failed node without failure instant".to_string())?;
            nodes.mark_failed(n as u32, at);
        }
        if dbool(arg(a, 2)?)? {
            nodes.set_quarantined(n as u32, true);
        }
    }
    w.nodes = nodes;
    w.read_dev = Nic::from_state(dtime(v.req("read_dev")?)?);
    w.bcast_dev = Nic::from_state(dtime(v.req("bcast_dev")?)?);
    w.hb_var = dopt(v.req("hb_var")?)
        .map(|x| Ok::<_, String>(VarId(du32(x)?)))
        .transpose()?;
    w.hb_round = di64(v.req("hb_round")?)?;
    w.mm_core = dec_core(v.req("mm_core")?)?;
    w.mm_replicas = elems(v, "mm_replicas")?
        .iter()
        .map(|r| {
            Ok(ReplicaState {
                applied: r.req_u64("applied")?,
                state: dec_core(r.req("state")?)?,
            })
        })
        .collect::<R<_>>()?;
    w.mm_roles = elems(v, "mm_roles")?
        .iter()
        .map(|r| {
            Ok(match dstr(r)? {
                "active" => MmRole::Active,
                "standby" => MmRole::Standby,
                "failed" => MmRole::Failed,
                other => return Err(format!("unknown MM role {other:?}")),
            })
        })
        .collect::<R<_>>()?;
    w.mm_failed = dvec(v.req("mm_failed")?, dbool)?;
    w.mm_failed_at = elems(v, "mm_failed_at")?
        .iter()
        .map(|t| dopt(t).map(dtime).transpose())
        .collect::<R<_>>()?;
    w.mm_active_rank = du32(v.req("mm_active_rank")?)?;
    w.mm_epoch = v.req_u64("mm_epoch")?;
    w.mm_epoch_var = dopt(v.req("mm_epoch_var")?)
        .map(|x| Ok::<_, String>(VarId(du32(x)?)))
        .transpose()?;
    w.requeue_pending = elems(v, "requeue_pending")?
        .iter()
        .map(|row| {
            let a = darr(row)?;
            Ok((djob(arg(a, 0)?)?, dtime(arg(a, 1)?)?))
        })
        .collect::<R<_>>()?;
    let repl = v.req("repl")?;
    w.repl = ReplStats {
        log_records: repl.req_u64("log_records")?,
        checkpoints: repl.req_u64("checkpoints")?,
        beats: repl.req_u64("beats")?,
        log_gaps: repl.req_u64("log_gaps")?,
        promotions: repl.req_u64("promotions")?,
        failovers: elems(repl, "failovers")?
            .iter()
            .map(dpair_u32_time)
            .collect::<R<_>>()?,
    };
    let stats = v.req("stats")?;
    w.stats = ClusterStats {
        strobes: stats.req_u64("strobes")?,
        fragments: stats.req_u64("fragments")?,
        flow_stalls: stats.req_u64("flow_stalls")?,
        reports: stats.req_u64("reports")?,
        completed_jobs: stats.req_u64("completed_jobs")?,
        failures_detected: elems(stats, "failures_detected")?
            .iter()
            .map(dpair_u32_time)
            .collect::<R<_>>()?,
        rejoins: elems(stats, "rejoins")?
            .iter()
            .map(dpair_u32_time)
            .collect::<R<_>>()?,
        requeues: stats.req_u64("requeues")?,
        caw_drops: stats.req_u64("caw_drops")?,
        hb_drops: stats.req_u64("hb_drops")?,
        xfer_retries: stats.req_u64("xfer_retries")?,
        nm_overruns: stats.req_u64("nm_overruns")?,
    };
    w.telemetry = dec_telemetry(v.req("telemetry")?)?;
    w.cq = dec_cq(v.req("cq")?)?;
    w.leap = dopt(v.req("leap")?)
        .map(|l| {
            Ok::<_, String>(IdleLeap {
                from: dtime(l.req("from")?)?,
                parked: dtime(l.req("parked")?)?,
                settled: dtime(l.req("settled")?)?,
                pending: l.req_u64("pending")?,
                pct: dopt(l.req("pct")?).map(du64).transpose()?,
            })
        })
        .transpose()?;
    w.sim_leaps = v.req_u64("sim_leaps")?;
    w.sim_leaped_slices = v.req_u64("sim_leaped_slices")?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Dæmon private state
// ---------------------------------------------------------------------------

fn enc_mm_report(r: &(u32, JobId, u32, ReportKind)) -> Value {
    Value::Arr(vec![num(r.0), num(r.1 .0), num(r.2), enc_report(&r.3)])
}

fn dec_mm_report(v: &Value) -> R<(u32, JobId, u32, ReportKind)> {
    let a = darr(v)?;
    Ok((
        du32(arg(a, 0)?)?,
        djob(arg(a, 1)?)?,
        du32(arg(a, 2)?)?,
        dec_report(arg(a, 3)?)?,
    ))
}

fn enc_mm(s: &MmState) -> Value {
    obj(vec![
        ("tick_scheduled", boolean(s.tick_scheduled)),
        ("collect_scheduled", boolean(s.collect_scheduled)),
        (
            "pending_reports",
            Value::Arr(s.pending_reports.iter().map(enc_mm_report).collect()),
        ),
        ("ticks", num(s.ticks)),
        ("last_tick_at", opt(s.last_tick_at, time)),
        (
            "detected_failed",
            Value::Arr(s.detected_failed.iter().map(|&n| num(n)).collect()),
        ),
        ("rank", num(s.rank)),
        (
            "role",
            string(match s.role {
                MmRole::Active => "active",
                MmRole::Standby => "standby",
                MmRole::Failed => "failed",
            }),
        ),
        ("epoch", num(s.epoch)),
        ("last_beat_seen", opt(s.last_beat_seen, time)),
        ("beats_sent", num(s.beats_sent)),
    ])
}

fn dec_mm(v: &Value) -> R<MmState> {
    Ok(MmState {
        tick_scheduled: dbool(v.req("tick_scheduled")?)?,
        collect_scheduled: dbool(v.req("collect_scheduled")?)?,
        pending_reports: elems(v, "pending_reports")?
            .iter()
            .map(dec_mm_report)
            .collect::<R<_>>()?,
        ticks: v.req_u64("ticks")?,
        last_tick_at: dopt(v.req("last_tick_at")?).map(dtime).transpose()?,
        detected_failed: dvec(v.req("detected_failed")?, du32)?,
        rank: du32(v.req("rank")?)?,
        role: match v.req_str("role")? {
            "active" => MmRole::Active,
            "standby" => MmRole::Standby,
            "failed" => MmRole::Failed,
            other => return Err(format!("unknown MM role {other:?}")),
        },
        epoch: v.req_u64("epoch")?,
        last_beat_seen: dopt(v.req("last_beat_seen")?).map(dtime).transpose()?,
        beats_sent: v.req_u64("beats_sent")?,
    })
}

fn enc_nm(s: &NmState) -> Value {
    obj(vec![
        ("node", num(s.node)),
        ("failed", boolean(s.failed)),
        ("busy_until", time(s.busy_until)),
        ("write_free", time(s.write_free)),
        ("current_slot", num(s.current_slot)),
        ("last_strobe", time(s.last_strobe)),
        ("switch_pending", boolean(s.switch_pending)),
        (
            "local",
            Value::Arr(
                s.local
                    .iter()
                    .map(|l| {
                        obj(vec![
                            ("job", num(l.job.0)),
                            ("ranks", num(l.ranks)),
                            ("forked", num(l.forked)),
                            ("exited", num(l.exited)),
                            ("started_at", opt(l.started_at, time)),
                            (
                                "cursor",
                                Value::Arr(vec![
                                    num(l.cursor.0),
                                    span(l.cursor.1),
                                    span(l.cursor.2),
                                ]),
                            ),
                            ("done", boolean(l.done)),
                            ("done_at", opt(l.done_at, time)),
                            ("attempt", num(l.attempt)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "pending_reports",
            Value::Arr(
                s.pending_reports
                    .iter()
                    .map(|&(j, attempt, ref kind)| {
                        Value::Arr(vec![num(j.0), num(attempt), enc_report(kind)])
                    })
                    .collect(),
            ),
        ),
        ("flush_scheduled", boolean(s.flush_scheduled)),
        ("stalled_until", opt(s.stalled_until, time)),
    ])
}

fn dec_nm(v: &Value) -> R<NmState> {
    Ok(NmState {
        node: du32(v.req("node")?)?,
        failed: dbool(v.req("failed")?)?,
        busy_until: dtime(v.req("busy_until")?)?,
        write_free: dtime(v.req("write_free")?)?,
        current_slot: dusize(v.req("current_slot")?)?,
        last_strobe: dtime(v.req("last_strobe")?)?,
        switch_pending: dbool(v.req("switch_pending")?)?,
        local: elems(v, "local")?
            .iter()
            .map(|l| {
                let c = darr(l.req("cursor")?)?;
                Ok(NmLocalJobState {
                    job: djob(l.req("job")?)?,
                    ranks: du32(l.req("ranks")?)?,
                    forked: du32(l.req("forked")?)?,
                    exited: du32(l.req("exited")?)?,
                    started_at: dopt(l.req("started_at")?).map(dtime).transpose()?,
                    cursor: (dusize(arg(c, 0)?)?, dspan(arg(c, 1)?)?, dspan(arg(c, 2)?)?),
                    done: dbool(l.req("done")?)?,
                    done_at: dopt(l.req("done_at")?).map(dtime).transpose()?,
                    attempt: du32(l.req("attempt")?)?,
                })
            })
            .collect::<R<_>>()?,
        pending_reports: elems(v, "pending_reports")?
            .iter()
            .map(|row| {
                let a = darr(row)?;
                Ok((
                    djob(arg(a, 0)?)?,
                    du32(arg(a, 1)?)?,
                    dec_report(arg(a, 2)?)?,
                ))
            })
            .collect::<R<_>>()?,
        flush_scheduled: dbool(v.req("flush_scheduled")?)?,
        stalled_until: dopt(v.req("stalled_until")?).map(dtime).transpose()?,
    })
}

// ---------------------------------------------------------------------------
// Top level
// ---------------------------------------------------------------------------

impl Cluster {
    /// Serialize the cluster's complete mutable state to a self-contained
    /// versioned JSON artifact (the `CKPT_*.json` format). The embedded
    /// configuration pins the environment-resolved knobs (queue backend,
    /// event batching), so [`Cluster::restore`] replays the same choices
    /// anywhere. Call between runs, never from inside a handler.
    pub fn checkpoint(&self) -> String {
        let w = self.sim().world();
        let mut cfg = w.cfg.clone();
        cfg.queue_backend = Some(cfg.resolved_queue_backend());
        cfg.event_batching = Some(cfg.resolved_event_batching());
        cfg.threads = Some(cfg.resolved_threads());
        let mms: Vec<Value> = w
            .wiring
            .mms
            .iter()
            .map(|&id| {
                let mm = self
                    .sim()
                    .component(id)
                    .as_any()
                    .and_then(|a| a.downcast_ref::<MachineManager>())
                    .expect("MM wiring points at a MachineManager");
                enc_mm(&mm.export_state())
            })
            .collect();
        let nms: Vec<Value> = w
            .wiring
            .nms
            .iter()
            .map(|&id| {
                let nm = self
                    .sim()
                    .component(id)
                    .as_any()
                    .and_then(|a| a.downcast_ref::<NodeManager>())
                    .expect("NM wiring points at a NodeManager");
                enc_nm(&nm.export_state())
            })
            .collect();
        let pls: Vec<Value> = w
            .wiring
            .pls
            .iter()
            .map(|per_node| {
                Value::Arr(
                    per_node
                        .iter()
                        .map(|&id| {
                            let pl = self
                                .sim()
                                .component(id)
                                .as_any()
                                .and_then(|a| a.downcast_ref::<ProgramLauncher>())
                                .expect("PL wiring points at a ProgramLauncher");
                            num(pl.fork_count())
                        })
                        .collect(),
                )
            })
            .collect();
        let doc = Value::Obj(vec![
            ("version".into(), num(CHECKPOINT_VERSION)),
            ("kind".into(), Value::Str("storm-checkpoint".into())),
            ("config".into(), enc_config(&cfg)),
            ("next_job".into(), num(self.next_job_counter())),
            (
                "engine".into(),
                enc_engine(&self.sim().export_engine_state()),
            ),
            ("world".into(), enc_world(w)),
            ("mms".into(), Value::Arr(mms)),
            ("nms".into(), Value::Arr(nms)),
            ("pls".into(), Value::Arr(pls)),
        ]);
        render(&doc)
    }

    /// Rebuild a cluster from a [`Cluster::checkpoint`] artifact. The
    /// resumed run is byte-identical — trace, stats, telemetry snapshots,
    /// and interleaving digest — to the run the checkpoint was taken
    /// from, under either queue backend. Rejects version mismatches and
    /// malformed documents with a descriptive error.
    pub fn restore(text: &str) -> Result<Cluster, String> {
        let doc = parse(text)?;
        let version = doc.req_u64("version")?;
        if version != CHECKPOINT_VERSION {
            return Err(format!(
                "unsupported checkpoint version {version} (this build reads version {CHECKPOINT_VERSION})"
            ));
        }
        if doc.req_str("kind")? != "storm-checkpoint" {
            return Err("not a storm-checkpoint artifact".into());
        }
        let cfg = dec_config(doc.req("config")?)?;
        cfg.validate()
            .map_err(|e| format!("embedded config invalid: {e}"))?;
        let mut cluster = Cluster::new(cfg);
        // The engine image replaces construction-time posts wholesale.
        cluster
            .sim_mut()
            .import_engine_state(dec_engine(doc.req("engine")?)?);
        dec_world_into(doc.req("world")?, cluster.sim_mut().world_mut())?;
        let (mm_ids, nm_ids, pl_ids, active_rank) = {
            let w = cluster.sim().world();
            (
                w.wiring.mms.clone(),
                w.wiring.nms.clone(),
                w.wiring.pls.clone(),
                w.mm_active_rank,
            )
        };
        // Repoint the active-MM alias (moved by failover, not by layout).
        cluster.sim_mut().world_mut().wiring.mm = mm_ids.get(active_rank as usize).copied();
        let mm_rows = darr(doc.req("mms")?)?;
        if mm_rows.len() != mm_ids.len() {
            return Err(format!(
                "checkpoint has {} MM replicas, cluster layout has {}",
                mm_rows.len(),
                mm_ids.len()
            ));
        }
        for (&id, row) in mm_ids.iter().zip(mm_rows) {
            let state = dec_mm(row)?;
            let mm = cluster
                .sim_mut()
                .component_mut(id)
                .as_any_mut()
                .and_then(|a| a.downcast_mut::<MachineManager>())
                .ok_or_else(|| "MM wiring does not point at a MachineManager".to_string())?;
            *mm = MachineManager::import_state(state);
        }
        let nm_rows = darr(doc.req("nms")?)?;
        if nm_rows.len() != nm_ids.len() {
            return Err(format!(
                "checkpoint has {} NMs, cluster layout has {}",
                nm_rows.len(),
                nm_ids.len()
            ));
        }
        for (&id, row) in nm_ids.iter().zip(nm_rows) {
            let state = dec_nm(row)?;
            let nm = cluster
                .sim_mut()
                .component_mut(id)
                .as_any_mut()
                .and_then(|a| a.downcast_mut::<NodeManager>())
                .ok_or_else(|| "NM wiring does not point at a NodeManager".to_string())?;
            *nm = NodeManager::import_state(state);
        }
        let pl_rows = darr(doc.req("pls")?)?;
        if pl_rows.len() != pl_ids.len() {
            return Err(format!(
                "checkpoint has PL rows for {} nodes, cluster layout has {}",
                pl_rows.len(),
                pl_ids.len()
            ));
        }
        for (per_node_ids, per_node_row) in pl_ids.iter().zip(pl_rows) {
            let forks = dvec(per_node_row, du64)?;
            if forks.len() != per_node_ids.len() {
                return Err("checkpoint PL count does not match cluster layout".into());
            }
            for (&id, f) in per_node_ids.iter().zip(forks) {
                let pl = cluster
                    .sim_mut()
                    .component_mut(id)
                    .as_any_mut()
                    .and_then(|a| a.downcast_mut::<ProgramLauncher>())
                    .ok_or_else(|| "PL wiring does not point at a ProgramLauncher".to_string())?;
                pl.restore_forks(f);
            }
        }
        let next_job = u32::try_from(doc.req_u64("next_job")?)
            .map_err(|_| "next_job out of range".to_string())?;
        cluster.set_next_job_counter(next_job);
        Ok(cluster)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;

    #[test]
    fn roundtrip_midrun_is_byte_identical_to_the_end() {
        let cfg = ClusterConfig::paper_cluster().with_telemetry(true);
        let mut live = Cluster::new(cfg);
        live.enable_tracing();
        live.submit(JobSpec::new(AppSpec::do_nothing_mb(8), 32));
        // 50 ms lands mid-transfer: queue entries, arena payloads, devices
        // and per-job transfer state are all non-trivial.
        live.run_until(SimTime::from_millis(50));
        let ckpt = live.checkpoint();

        let mut restored = Cluster::restore(&ckpt).expect("restore");
        assert_eq!(restored.now(), live.now());
        assert_eq!(
            restored.interleaving_digest(),
            live.interleaving_digest(),
            "pop digest must resume mid-stream"
        );

        live.run_until_idle();
        restored.run_until_idle();
        assert_eq!(
            live.interleaving_digest(),
            restored.interleaving_digest(),
            "interleaving must be identical after resume"
        );
        assert_eq!(live.trace(), restored.trace(), "traces must match");
        assert_eq!(
            live.checkpoint(),
            restored.checkpoint(),
            "final states must be byte-identical"
        );
    }

    #[test]
    fn fresh_cluster_roundtrips() {
        let live = Cluster::new(ClusterConfig::paper_cluster());
        let restored = Cluster::restore(&live.checkpoint()).expect("restore");
        assert_eq!(live.checkpoint(), restored.checkpoint());
    }

    #[test]
    fn rejects_malformed_and_mismatched_artifacts() {
        assert!(Cluster::restore("not json").is_err());
        assert!(Cluster::restore("{}").is_err());
        let v99 = r#"{"version": 99, "kind": "storm-checkpoint"}"#;
        let err = Cluster::restore(v99).err().expect("v99 must be rejected");
        assert!(err.contains("version"), "got: {err}");
        let wrong_kind = r#"{"version": 1, "kind": "something-else"}"#;
        assert!(Cluster::restore(wrong_kind).is_err());
    }
}
