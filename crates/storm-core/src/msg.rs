//! The message vocabulary exchanged by the STORM dæmons inside the
//! simulation.
//!
//! Every arrow in the paper's protocol diagrams is one of these variants:
//! the MM's timeslice tick, the chunked-transfer events, the strobe that
//! enacts a coordinated context switch, launch commands, fork/exit
//! notifications, and the heartbeat used for fault detection.

use crate::job::JobId;
use storm_sim::SimTime;

/// What a Node Manager reports to the Machine Manager (buffered locally and
/// flushed at event-collection boundaries — "the MM can … receive the
/// notification of events only at the beginning of a timeslice").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportKind {
    /// All local ranks of the job have been forked and are running.
    Started,
    /// All local ranks of the job have exited; payload is the instant the
    /// last local rank exited.
    Done {
        /// When the last local rank exited on this node.
        app_done: SimTime,
    },
}

/// All simulation messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    // ---------------------------------------------------------------- MM —
    /// A job (pre-registered in the world) has been submitted.
    Submit(JobId),
    /// Timeslice boundary: rotate the gang matrix, run the scheduling
    /// policy, issue launch commands, run fault-detection rounds.
    Tick,
    /// Event-collection boundary: process buffered NM reports (scheduled on
    /// demand when reports arrive between ticks and the collect period is
    /// shorter than the timeslice).
    Collect,
    /// The filesystem finished reading one chunk of a job's binary.
    ReadDone {
        /// Which job's transfer.
        job: JobId,
        /// Chunk index.
        chunk: u32,
    },
    /// The source NIC/helper finished broadcasting a chunk (source buffer
    /// freed; next broadcast/read may proceed).
    BcastFreed {
        /// Which job's transfer.
        job: JobId,
        /// Chunk index.
        chunk: u32,
    },
    /// Retry the COMPARE-AND-WRITE flow-control check for a transfer that
    /// was blocked on a full remote receive queue.
    FlowPoll {
        /// Which job's transfer.
        job: JobId,
    },
    /// A Node Manager's buffered report, flushed at a collection boundary.
    NmReport {
        /// Reporting node.
        node: u32,
        /// Subject job.
        job: JobId,
        /// What happened.
        kind: ReportKind,
    },
    /// Kill a job (used to stop the endless hog programs).
    Kill(JobId),

    // ---------------------------------------------------------------- NM —
    /// One broadcast fragment of a job's binary arrived on this node.
    Fragment {
        /// Which job's transfer.
        job: JobId,
        /// Chunk index.
        chunk: u32,
    },
    /// The local RAM-disk write of a fragment completed.
    WriteDone {
        /// Which job's transfer.
        job: JobId,
        /// Chunk index.
        chunk: u32,
    },
    /// Launch command: fork this job's local ranks.
    LaunchCmd(JobId),
    /// The coordinated context-switch strobe: slot `slot` becomes active.
    Strobe {
        /// Newly active matrix time slot.
        slot: u32,
    },
    /// Fault-detection heartbeat (round counter).
    Heartbeat {
        /// Monotonic round number.
        round: i64,
    },
    /// A Program Launcher finished forking a rank.
    ForkDone {
        /// Subject job.
        job: JobId,
        /// PL index on this node.
        pl: u32,
    },
    /// A Program Launcher's application process exited (do-nothing jobs).
    PlExited {
        /// Subject job.
        job: JobId,
        /// PL index on this node.
        pl: u32,
    },
    /// Injected node failure: this NM stops responding to everything.
    FailNode,
    /// Flush buffered reports to the MM (self-message at a collection
    /// boundary).
    FlushReports,

    // ---------------------------------------------------------------- PL —
    /// Fork one rank of this job.
    Fork(JobId),
}
