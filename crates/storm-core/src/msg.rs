//! The message vocabulary exchanged by the STORM dæmons inside the
//! simulation.
//!
//! Every arrow in the paper's protocol diagrams is one of these variants:
//! the MM's timeslice tick, the chunked-transfer events, the strobe that
//! enacts a coordinated context switch, launch commands, fork/exit
//! notifications, and the heartbeat used for fault detection.
//!
//! ## Attempt tagging
//!
//! Job-scoped messages carry the job's *attempt* counter (bumped each time
//! the failure-recovery policy requeues the job). A message whose attempt
//! does not match the job record's current attempt is from a previous
//! incarnation — still in flight when the node failure was detected — and
//! is dropped by the receiver, so a retried job can never be corrupted by
//! its own ghost.

use crate::job::JobId;
use crate::replica::{Decision, MmCoreState};
use storm_sim::SimTime;

/// What a Node Manager reports to the Machine Manager (buffered locally and
/// flushed at event-collection boundaries — "the MM can … receive the
/// notification of events only at the beginning of a timeslice").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportKind {
    /// All local ranks of the job have been forked and are running.
    Started,
    /// All local ranks of the job have exited; payload is the instant the
    /// last local rank exited.
    Done {
        /// When the last local rank exited on this node.
        app_done: SimTime,
    },
}

/// All simulation messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    // ---------------------------------------------------------------- MM —
    /// A job (pre-registered in the world) has been submitted.
    Submit(JobId),
    /// Timeslice boundary: rotate the gang matrix, run the scheduling
    /// policy, issue launch commands, run fault-detection rounds.
    Tick,
    /// Event-collection boundary: process buffered NM reports (scheduled on
    /// demand when reports arrive between ticks and the collect period is
    /// shorter than the timeslice).
    Collect,
    /// The filesystem finished reading one chunk of a job's binary.
    ReadDone {
        /// Which job's transfer.
        job: JobId,
        /// Chunk index.
        chunk: u32,
        /// Launch attempt this read belongs to.
        attempt: u32,
    },
    /// The source NIC/helper finished broadcasting a chunk (source buffer
    /// freed; next broadcast/read may proceed).
    BcastFreed {
        /// Which job's transfer.
        job: JobId,
        /// Chunk index.
        chunk: u32,
        /// Launch attempt this broadcast belongs to.
        attempt: u32,
    },
    /// Retry the COMPARE-AND-WRITE flow-control check for a transfer that
    /// was blocked on a full remote receive queue.
    FlowPoll {
        /// Which job's transfer.
        job: JobId,
        /// Launch attempt this poll belongs to.
        attempt: u32,
    },
    /// A Node Manager's buffered report, flushed at a collection boundary.
    NmReport {
        /// Reporting node.
        node: u32,
        /// Subject job.
        job: JobId,
        /// What happened.
        kind: ReportKind,
        /// Launch attempt the report refers to.
        attempt: u32,
    },
    /// Kill a job (used to stop the endless hog programs).
    Kill(JobId),
    /// Re-admit a previously-evicted job to the queue after its
    /// failure-recovery backoff elapsed.
    RequeueJob(JobId),

    // ---------------------------------------------------------------- NM —
    /// One broadcast fragment of a job's binary arrived on this node.
    Fragment {
        /// Which job's transfer.
        job: JobId,
        /// Chunk index.
        chunk: u32,
        /// Launch attempt this fragment belongs to.
        attempt: u32,
    },
    /// The local RAM-disk write of a fragment completed.
    WriteDone {
        /// Which job's transfer.
        job: JobId,
        /// Chunk index.
        chunk: u32,
        /// Launch attempt this write belongs to.
        attempt: u32,
    },
    /// Launch command: fork this job's local ranks.
    LaunchCmd {
        /// Subject job.
        job: JobId,
        /// Launch attempt being started.
        attempt: u32,
    },
    /// The coordinated context-switch strobe: slot `slot` becomes active.
    Strobe {
        /// Newly active matrix time slot.
        slot: u32,
        /// MM epoch the strobe was issued in; nodes drop strobes from a
        /// fenced-off (stale) epoch.
        epoch: u64,
    },
    /// Fault-detection heartbeat (round counter).
    Heartbeat {
        /// Monotonic round number.
        round: i64,
        /// MM epoch the round was issued in; stale-epoch rounds are dropped.
        epoch: u64,
    },
    /// A Program Launcher finished forking a rank.
    ForkDone {
        /// Subject job.
        job: JobId,
        /// PL index on this node.
        pl: u32,
        /// Launch attempt the fork belongs to.
        attempt: u32,
    },
    /// A Program Launcher's application process exited (do-nothing jobs).
    PlExited {
        /// Subject job.
        job: JobId,
        /// PL index on this node.
        pl: u32,
        /// Launch attempt the exit belongs to.
        attempt: u32,
    },
    /// Injected node failure: this NM stops responding to everything.
    FailNode,
    /// Injected node revival: the NM comes back with empty local state; the
    /// MM re-admits the node once heartbeats show it caught up.
    RejoinNode,
    /// Injected dæmon stall: defer all message processing until `until`.
    StallNode {
        /// Instant processing resumes.
        until: SimTime,
    },
    /// Flush buffered reports to the MM (self-message at a collection
    /// boundary).
    FlushReports,
    /// Post-failover resynchronisation: the newly promoted MM (epoch
    /// `epoch`) asks every node to clear buffered reports and re-announce
    /// the status of each locally known job incarnation.
    Resync {
        /// The promoting MM's epoch.
        epoch: u64,
    },

    // ------------------------------------------------------- replication —
    /// Active-MM liveness beat to a standby (replication plane).
    MmBeat {
        /// The sender's epoch.
        epoch: u64,
        /// The sender's scheduler tick counter at send time.
        ticks: u64,
        /// Length of the sender's decision log at send time.
        log_len: u64,
    },
    /// Standby self-timer: check whether the active MM's beats stopped and
    /// promote if this replica is the deterministic successor.
    MmWatchdog,
    /// Injected MM crash: this replica stops participating.
    MmFail,
    /// One replicated scheduling decision, shipped in sequence order.
    ReplLog {
        /// The sender's epoch.
        epoch: u64,
        /// Log sequence number of this record (0-based).
        seq: u64,
        /// The decision itself.
        decision: Decision,
    },
    /// A full checkpoint of the active MM's private state.
    ReplCheckpoint {
        /// The sender's epoch.
        epoch: u64,
        /// The checkpointed state (boxed: it is by far the largest variant).
        state: Box<MmCoreState>,
    },

    // ---------------------------------------------------------------- PL —
    /// Fork one rank of this job.
    Fork {
        /// Subject job.
        job: JobId,
        /// Launch attempt being forked.
        attempt: u32,
    },
}
