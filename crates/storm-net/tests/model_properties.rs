//! Property-based tests of the network models: the monotonicities and
//! bounds the paper's scalability argument (§3.3.2) depends on.

use proptest::prelude::*;
use storm_net::{BackgroundLoad, BufferPlacement, Nic, QsNetModel, Topology};
use storm_sim::{SimSpan, SimTime};

proptest! {
    /// Broadcast bandwidth never increases with node count or cable length,
    /// and never exceeds the link rate.
    #[test]
    fn broadcast_bw_monotone(nodes in 1u32..8192, cable in 1.0f64..150.0) {
        let m = QsNetModel::for_nodes(64);
        let bw = m.broadcast_bw_at(nodes, cable);
        prop_assert!(bw > 0.0);
        prop_assert!(bw <= m.params.link_bw * 1.001);
        prop_assert!(m.broadcast_bw_at(nodes * 2, cable) <= bw);
        prop_assert!(m.broadcast_bw_at(nodes, cable + 10.0) <= bw);
    }

    /// Packet service time is bounded below by the injection time.
    #[test]
    fn packet_time_at_least_injection(stages in 1u32..8, cable in 0.0f64..200.0) {
        let m = QsNetModel::for_nodes(64);
        let inject_ns = m.params.mtu_bytes as f64 / m.params.link_bw * 1e9;
        prop_assert!(m.packet_time_ns(stages, cable) >= inject_ns - 1e-9);
    }

    /// Barrier latency grows with node count but stays under Table 5's
    /// 10 µs bound through 4 096 nodes.
    #[test]
    fn barrier_monotone_and_bounded(n in 1u32..4096) {
        let small = QsNetModel::for_nodes(n).barrier_latency();
        let bigger = QsNetModel::for_nodes(n + 64).barrier_latency();
        prop_assert!(bigger >= small);
        prop_assert!(small.as_micros_f64() < 10.0);
    }

    /// Point-to-point span is strictly monotone in message size and has the
    /// fixed latency as a floor.
    #[test]
    fn ptp_monotone(bytes in 0u64..100_000_000) {
        let m = QsNetModel::for_nodes(64);
        let s = m.ptp_span(bytes);
        prop_assert!(s >= SimSpan::from_nanos(m.params.ptp_latency_ns as u64));
        prop_assert!(m.ptp_span(bytes + 1_000_000) > s);
    }

    /// Broadcast span decomposition: time for 2×bytes is less than double
    /// (fixed setup amortises) but at least the data-proportional part.
    #[test]
    fn broadcast_span_subadditive(bytes in 1_000u64..50_000_000) {
        let m = QsNetModel::for_nodes(64);
        for placement in [BufferPlacement::MainMemory, BufferPlacement::NicMemory] {
            let one = m.broadcast_span(bytes, placement);
            let two = m.broadcast_span(2 * bytes, placement);
            prop_assert!(two < one * 2, "setup must amortise");
            prop_assert!(two > one, "more data takes longer");
        }
    }

    /// NIC reservations never overlap and never start before requested.
    #[test]
    fn nic_serialisation(requests in prop::collection::vec((0u64..1_000_000, 1u64..100_000), 1..100)) {
        let mut nic = Nic::new();
        let mut last_done = SimTime::ZERO;
        let mut last_req = 0u64;
        for (at_raw, span) in requests {
            // Issue times are non-decreasing (callers live on the event loop).
            let at = SimTime::from_nanos(last_req.max(at_raw));
            last_req = at.as_nanos();
            let (start, done) = nic.transmit(at, SimSpan::from_nanos(span));
            prop_assert!(start >= at);
            prop_assert!(start >= last_done, "overlapping reservation");
            prop_assert_eq!(done, start + SimSpan::from_nanos(span));
            last_done = done;
        }
    }

    /// Background load: effective bandwidth scales down, CPU inflation
    /// scales up, and the unloaded case is the identity.
    #[test]
    fn load_scaling(cpu in 0.0f64..0.95, net in 0.0f64..0.95, bw in 1.0f64..1e9) {
        let l = BackgroundLoad { cpu, network: net };
        prop_assert!(l.validate().is_ok());
        prop_assert!(l.effective_bw(bw) <= bw);
        let span = SimSpan::from_micros(100);
        prop_assert!(l.inflate(span) >= span);
        let none = BackgroundLoad::NONE;
        prop_assert_eq!(none.effective_bw(bw), bw);
        prop_assert_eq!(none.inflate(span), span);
    }

    /// Topology: stages fit the radix-4 tree and the diameter follows Eq. 2.
    #[test]
    fn topology_consistency(nodes in 1u32..100_000) {
        let t = Topology::new(nodes);
        let s = t.stages();
        prop_assert!(4u64.pow(s) >= u64::from(nodes), "tree must cover all nodes");
        if s > 1 {
            prop_assert!(4u64.pow(s - 1) < u64::from(nodes), "no wasted stage");
        }
        prop_assert_eq!(t.switches_crossed(), 2 * s - 1);
        let d = t.diameter_m();
        prop_assert!(d >= 1.0);
        prop_assert!((d - (2.0 * f64::from(nodes)).sqrt().floor().max(1.0)).abs() < 1e-9);
    }
}
