//! # storm-net — network substrate models
//!
//! The paper's initial STORM implementation sits on the Quadrics QsNET
//! (Elan3), whose hardware primitives — ordered reliable multicast, network
//! conditionals, remotely-signalled events, remote DMA — are what make the
//! three STORM mechanisms fast. This crate models that network (and, for
//! Table 5, Gigabit Ethernet, Myrinet, InfiniBand and BlueGene/L) at the
//! granularity the paper's own scalability analysis (§3.3.2) uses:
//!
//! * [`topology`] — the quaternary fat tree: stage counts, switches crossed,
//!   and the floor-plan diameter model of Eq. 2.
//! * [`qsnet`] — the QsNET timing model: 320-byte MTU, circuit-switched
//!   ACK-token flow control (whose propagation bubbles produce the
//!   bandwidth-vs-cable-length degradation of Table 4), hardware broadcast
//!   bandwidth from NIC- vs. main-memory buffers (Fig. 7), and hardware
//!   barrier/network-conditional latency (Fig. 9).
//! * [`networks`] — the comparison networks of Table 5 with their
//!   COMPARE-AND-WRITE latency and XFER-AND-SIGNAL bandwidth models.
//! * [`contention`] — per-NIC serialization and background-load scaling used
//!   for the loaded-launch experiments (Fig. 3).
//!
//! All constants are calibrated to the measurements reported in the paper;
//! each constant's provenance is documented where it is defined.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contention;
pub mod networks;
pub mod qsnet;
pub mod topology;

pub use contention::{BackgroundLoad, Nic};
pub use networks::{MechanismPerf, NetworkKind};
pub use qsnet::{BufferPlacement, QsNetModel, QsNetParams};
pub use topology::Topology;
