//! The comparison networks of Table 5.
//!
//! §4 ("Portability of the STORM Mechanisms") tabulates the measured or
//! expected performance of COMPARE-AND-WRITE (latency to check a global
//! condition and write one word everywhere) and XFER-AND-SIGNAL (aggregate
//! delivered bandwidth) on five networks. On Ethernet, Myrinet and
//! InfiniBand the mechanisms must be *emulated* by a thin software layer
//! using logarithmic-depth trees; on QsNET and BlueGene/L they map directly
//! onto hardware (network conditionals / the global tree network).

use crate::qsnet::QsNetModel;
use storm_sim::SimSpan;

/// A high-performance cluster interconnect, as characterised in Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NetworkKind {
    /// Quadrics QsNET (Elan3) — the paper's implementation platform.
    #[default]
    QsNet,
    /// Gigabit Ethernet with an EMP-style OS-bypass layer.
    GigabitEthernet,
    /// Myrinet with NIC-assisted multidestination messages.
    Myrinet,
    /// InfiniBand (Mellanox, early 4x).
    Infiniband,
    /// BlueGene/L with its dedicated global tree network.
    BlueGeneL,
}

/// The expected/measured mechanism performance for one network and node
/// count — one cell pair of Table 5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MechanismPerf {
    /// COMPARE-AND-WRITE latency.
    pub caw_latency: SimSpan,
    /// Aggregate XFER-AND-SIGNAL bandwidth in bytes/s delivered to all
    /// nodes, when a figure is available (the paper lists "Not available"
    /// for Gigabit Ethernet and InfiniBand).
    pub xfer_aggregate_bw: Option<f64>,
    /// Whether the mechanisms map onto hardware primitives (QsNET,
    /// BlueGene/L) or require software tree emulation.
    pub hardware_collectives: bool,
}

impl NetworkKind {
    /// All five networks in Table 5 order.
    pub const ALL: [NetworkKind; 5] = [
        NetworkKind::GigabitEthernet,
        NetworkKind::Myrinet,
        NetworkKind::Infiniband,
        NetworkKind::QsNet,
        NetworkKind::BlueGeneL,
    ];

    /// Display name matching the paper's table.
    pub fn name(&self) -> &'static str {
        match self {
            NetworkKind::QsNet => "QsNET",
            NetworkKind::GigabitEthernet => "Gigabit Ethernet",
            NetworkKind::Myrinet => "Myrinet",
            NetworkKind::Infiniband => "Infiniband",
            NetworkKind::BlueGeneL => "BlueGene/L",
        }
    }

    /// Whether the STORM mechanisms map one-to-one onto hardware.
    pub fn has_hardware_collectives(&self) -> bool {
        matches!(self, NetworkKind::QsNet | NetworkKind::BlueGeneL)
    }

    /// Expected mechanism performance on `nodes` nodes (Table 5 formulas;
    /// `log` is log₂, matching the tree-depth of the software emulations).
    pub fn mechanism_perf(&self, nodes: u32) -> MechanismPerf {
        let n = f64::from(nodes.max(2));
        let lg = n.log2();
        match self {
            NetworkKind::GigabitEthernet => MechanismPerf {
                caw_latency: SimSpan::from_micros_f64(46.0 * lg),
                xfer_aggregate_bw: None,
                hardware_collectives: false,
            },
            NetworkKind::Myrinet => MechanismPerf {
                caw_latency: SimSpan::from_micros_f64(20.0 * lg),
                xfer_aggregate_bw: Some(15.0e6 * n),
                hardware_collectives: false,
            },
            NetworkKind::Infiniband => MechanismPerf {
                caw_latency: SimSpan::from_micros_f64(20.0 * lg),
                xfer_aggregate_bw: None,
                hardware_collectives: false,
            },
            NetworkKind::QsNet => {
                let model = QsNetModel::for_nodes(nodes.max(1));
                MechanismPerf {
                    caw_latency: model.barrier_latency(),
                    // ">150n": the hardware broadcast delivers the full
                    // per-node broadcast bandwidth to every node at once.
                    xfer_aggregate_bw: Some(
                        model.broadcast_bw(crate::qsnet::BufferPlacement::NicMemory) * n,
                    ),
                    hardware_collectives: true,
                }
            }
            NetworkKind::BlueGeneL => MechanismPerf {
                caw_latency: SimSpan::from_micros_f64(1.5),
                xfer_aggregate_bw: Some(700.0e6 * n),
                hardware_collectives: true,
            },
        }
    }

    /// Per-packet/message software-emulation cost on the host CPU — what the
    /// emulated-tree mechanisms (storm-mech) charge per hop. Zero on
    /// networks with hardware collectives.
    pub fn emulation_hop_cost(&self) -> SimSpan {
        match self {
            NetworkKind::GigabitEthernet => SimSpan::from_micros(46),
            NetworkKind::Myrinet | NetworkKind::Infiniband => SimSpan::from_micros(20),
            NetworkKind::QsNet | NetworkKind::BlueGeneL => SimSpan::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_caw_latencies() {
        // The paper's formulas, evaluated at n = 64 (lg n = 6):
        let n = 64;
        let ge = NetworkKind::GigabitEthernet.mechanism_perf(n);
        assert!((ge.caw_latency.as_micros_f64() - 276.0).abs() < 1.0);
        let my = NetworkKind::Myrinet.mechanism_perf(n);
        assert!((my.caw_latency.as_micros_f64() - 120.0).abs() < 1.0);
        let ib = NetworkKind::Infiniband.mechanism_perf(n);
        assert_eq!(ib.caw_latency, my.caw_latency);
        // QsNET < 10 µs, BlueGene/L < 2 µs — also at 4096 nodes.
        for nodes in [64, 4096] {
            assert!(
                NetworkKind::QsNet
                    .mechanism_perf(nodes)
                    .caw_latency
                    .as_micros_f64()
                    < 10.0
            );
            assert!(
                NetworkKind::BlueGeneL
                    .mechanism_perf(nodes)
                    .caw_latency
                    .as_micros_f64()
                    < 2.0
            );
        }
    }

    #[test]
    fn table5_xfer_bandwidths() {
        let n = 64;
        assert!(NetworkKind::GigabitEthernet
            .mechanism_perf(n)
            .xfer_aggregate_bw
            .is_none());
        assert!(NetworkKind::Infiniband
            .mechanism_perf(n)
            .xfer_aggregate_bw
            .is_none());
        let my = NetworkKind::Myrinet
            .mechanism_perf(n)
            .xfer_aggregate_bw
            .unwrap();
        assert!((my - 15.0e6 * 64.0).abs() < 1.0);
        // QsNET delivers > 150 MB/s × n.
        let qs = NetworkKind::QsNet
            .mechanism_perf(n)
            .xfer_aggregate_bw
            .unwrap();
        assert!(qs > 150.0e6 * 64.0);
        let bg = NetworkKind::BlueGeneL
            .mechanism_perf(n)
            .xfer_aggregate_bw
            .unwrap();
        assert!((bg - 700.0e6 * 64.0).abs() < 1.0);
    }

    #[test]
    fn hardware_collective_flags() {
        assert!(NetworkKind::QsNet.has_hardware_collectives());
        assert!(NetworkKind::BlueGeneL.has_hardware_collectives());
        assert!(!NetworkKind::Myrinet.has_hardware_collectives());
        assert!(!NetworkKind::GigabitEthernet.has_hardware_collectives());
        assert!(!NetworkKind::Infiniband.has_hardware_collectives());
        for k in NetworkKind::ALL {
            assert_eq!(
                k.emulation_hop_cost().is_zero(),
                k.has_hardware_collectives()
            );
        }
    }

    #[test]
    fn caw_latency_grows_logarithmically_on_emulated_networks() {
        let at = |n| {
            NetworkKind::Myrinet
                .mechanism_perf(n)
                .caw_latency
                .as_micros_f64()
        };
        // Doubling node count adds one tree level: +20 µs.
        assert!((at(128) - at(64) - 20.0).abs() < 0.5);
        assert!((at(1024) - at(64) - 80.0).abs() < 0.5);
    }
}
