//! Fat-tree topology and machine floor-plan geometry.
//!
//! QsNET is a quaternary fat tree built from 8-port (4 up / 4 down) switch
//! elements packaged into up-to-128-port switch chassis. What matters for
//! the timing models is (a) how many *stages* the tree has for a given node
//! count and (b) the worst-case number of switch elements a packet crosses —
//! both taken directly from Table 4 of the paper (4 nodes → 1 stage/1
//! switch, …, 4096 nodes → 6 stages/11 switches).
//!
//! The floor-plan diameter model is Eq. 2: assuming four ES40 nodes per
//! square metre of machine-room footprint arranged in a square,
//! `diameter(nodes) = ⌊sqrt(2 × nodes)⌋` metres — a conservative estimate of
//! the longest cable between two nodes.

/// A quaternary fat-tree cluster topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    nodes: u32,
}

impl Topology {
    /// The tree radix (QsNET switch elements have 4 down links).
    pub const RADIX: u32 = 4;

    /// A topology for `nodes` compute nodes. Panics on zero.
    pub fn new(nodes: u32) -> Self {
        assert!(nodes > 0, "a cluster needs at least one node");
        Topology { nodes }
    }

    /// Number of compute nodes.
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// Number of fat-tree stages: ⌈log₄ nodes⌉, minimum 1.
    ///
    /// Matches the "Stages" column of Table 4 (4 → 1, 16 → 2, 64 → 3,
    /// 256 → 4, 1024 → 5, 4096 → 6).
    pub fn stages(&self) -> u32 {
        if self.nodes <= Self::RADIX {
            return 1;
        }
        let mut stages = 0u32;
        let mut capacity = 1u64;
        while capacity < u64::from(self.nodes) {
            capacity *= u64::from(Self::RADIX);
            stages += 1;
        }
        stages
    }

    /// Worst-case number of switch elements a packet crosses on an up-down
    /// route: `2 × stages − 1` (the "Switches" column of Table 4).
    pub fn switches_crossed(&self) -> u32 {
        2 * self.stages() - 1
    }

    /// Conservative machine floor-plan diameter in metres (Eq. 2):
    /// `⌊sqrt(2 × nodes)⌋`, with a 1 m minimum for trivial clusters.
    pub fn diameter_m(&self) -> f64 {
        let d = (2.0 * f64::from(self.nodes)).sqrt().floor();
        d.max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_counts_match_table4() {
        // (nodes, stages, switches) rows of Table 4.
        let rows = [
            (4u32, 1u32, 1u32),
            (16, 2, 3),
            (64, 3, 5),
            (256, 4, 7),
            (1024, 5, 9),
            (4096, 6, 11),
        ];
        for (n, s, sw) in rows {
            let t = Topology::new(n);
            assert_eq!(t.stages(), s, "stages for {n} nodes");
            assert_eq!(t.switches_crossed(), sw, "switches for {n} nodes");
        }
    }

    #[test]
    fn non_power_of_four_rounds_up() {
        assert_eq!(Topology::new(5).stages(), 2);
        assert_eq!(Topology::new(17).stages(), 3);
        assert_eq!(Topology::new(100).stages(), 4);
        assert_eq!(Topology::new(1).stages(), 1);
        assert_eq!(Topology::new(2).stages(), 1);
    }

    #[test]
    fn diameter_matches_eq2() {
        // Examples from §3.3.2: 4 nodes occupy ~4 m² → diameter ~2–3 m;
        // Table 4 tops out at 4096 nodes / ~90 m.
        assert_eq!(Topology::new(4).diameter_m(), 2.0);
        assert_eq!(Topology::new(64).diameter_m(), 11.0);
        assert_eq!(Topology::new(1024).diameter_m(), 45.0);
        assert_eq!(Topology::new(4096).diameter_m(), 90.0);
        // Minimum clamp.
        assert_eq!(Topology::new(1).diameter_m(), 1.0);
    }

    #[test]
    fn stages_monotone_in_nodes() {
        let mut last = 0;
        for n in 1..=5000 {
            let s = Topology::new(n).stages();
            assert!(s >= last);
            last = s;
        }
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        Topology::new(0);
    }
}
