//! The QsNET (Elan3) timing model.
//!
//! QsNET transmits packets with circuit-switched flow control: a message is
//! chunked into packets with a 320-byte payload, and packet *i* may only be
//! injected after the ACK token for packet *i−1* returns. On a broadcast the
//! ACK returns only after **all** destinations received the packet, so in a
//! physically large machine the ACK propagation delay opens a bubble in the
//! pipeline and caps the asymptotic bandwidth (§3.3.2, Table 4).
//!
//! We model the per-packet service time as
//!
//! ```text
//! T_pkt(stages, d) = max( MTU / BW_link ,
//!                         ack_base + ack_per_stage × (stages − 1) + ack_per_m × d )
//! BW_broadcast(nodes, d) = MTU / T_pkt(stages(nodes), d)
//! ```
//!
//! with the constants below fitted to Table 4 (fit error < 2% on all 42
//! table entries — verified by the `table4` tests). The paper states the
//! underlying model predicted several real configurations up to 1024 nodes
//! with < 5% error.
//!
//! Broadcasts sourced from **main memory** additionally cross the 64-bit /
//! 33 MHz PCI bus of the ES40, which caps them at 175 MB/s (Fig. 7); from
//! **NIC memory** the PCI bus is bypassed and the model above applies
//! directly (312 MB/s measured on 64 nodes — our model gives 309).

use crate::topology::Topology;
use storm_sim::{SimSpan, SimTime};

/// Where communication buffers live — host main memory or Elan NIC memory.
///
/// Fig. 6/7 of the paper show the trade-off: *reading* from a RAM disk is
/// faster into main memory (218 vs 120 MB/s), while *broadcasting* is faster
/// from NIC memory (312 vs 175 MB/s); the launch pipeline picks main memory
/// because `min(218, 175) > min(120, 312)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BufferPlacement {
    /// Buffers in host main memory (the launch protocol's choice).
    #[default]
    MainMemory,
    /// Buffers in Elan NIC memory (bypasses the PCI bus when broadcasting).
    NicMemory,
}

/// Calibrated QsNET model parameters. Defaults reproduce the paper's
/// cluster (QM-400 Elan3 NICs on ES40 AlphaServers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QsNetParams {
    /// Packet payload: the Elan3 maximum transfer unit (320 bytes, §3.3.2).
    pub mtu_bytes: u64,
    /// Link/injection bandwidth in bytes/s. 319 MB/s matches the peak rows
    /// of Table 4.
    pub link_bw: f64,
    /// PCI-bus ceiling for main-memory broadcasts, bytes/s (175 MB/s, Fig. 7).
    pub pci_broadcast_bw: f64,
    /// Switch-element flow-through latency (≈35 ns, §3.3.2).
    pub switch_latency_ns: f64,
    /// ACK round-trip base cost, ns. Fitted to Table 4: 656 ns.
    pub ack_base_ns: f64,
    /// ACK round-trip cost per fat-tree stage beyond the first, ns.
    /// Fitted to Table 4: 147 ns (≈ two extra switch crossings each way plus
    /// arbitration).
    pub ack_per_stage_ns: f64,
    /// ACK round-trip cost per metre of cable, ns. Fitted to Table 4:
    /// 7.85 ns/m (≈ 2 × 3.9 ns/m signal propagation).
    pub ack_per_meter_ns: f64,
    /// One-way small-message (put) latency between two user processes, ns.
    /// Elan3 user-level latency is ≈ 2–5 µs; we use 4 µs.
    pub ptp_latency_ns: f64,
    /// Per-transfer protocol setup overhead for large DMAs, ns. Gives the
    /// bandwidth-vs-message-size saturation curve of Fig. 7 (≈ 80 µs).
    pub dma_setup_ns: f64,
    /// Hardware barrier / network-conditional base latency, ns. Fig. 9 shows
    /// ≈ 4.5 µs on a handful of nodes.
    pub barrier_base_ns: f64,
    /// Extra barrier latency per fat-tree stage beyond the first, ns.
    /// Fig. 9 shows ≈ +2 µs across a 384× node-count increase (≈ 5 stages),
    /// i.e. ≈ 400 ns/stage.
    pub barrier_per_stage_ns: f64,
}

impl Default for QsNetParams {
    fn default() -> Self {
        QsNetParams {
            mtu_bytes: 320,
            link_bw: 319.0e6,
            pci_broadcast_bw: 175.0e6,
            switch_latency_ns: 35.0,
            ack_base_ns: 656.0,
            ack_per_stage_ns: 147.0,
            ack_per_meter_ns: 7.85,
            ptp_latency_ns: 4_000.0,
            dma_setup_ns: 80_000.0,
            barrier_base_ns: 4_500.0,
            barrier_per_stage_ns: 400.0,
        }
    }
}

/// The QsNET timing model for a concrete cluster size.
#[derive(Debug, Clone, Copy)]
pub struct QsNetModel {
    /// Model parameters (calibrated constants).
    pub params: QsNetParams,
    /// The fat-tree topology this model is instantiated for.
    pub topology: Topology,
}

impl QsNetModel {
    /// Model for a cluster of `nodes` nodes with default (paper) parameters.
    pub fn for_nodes(nodes: u32) -> Self {
        QsNetModel {
            params: QsNetParams::default(),
            topology: Topology::new(nodes),
        }
    }

    /// Model with explicit parameters.
    pub fn new(params: QsNetParams, topology: Topology) -> Self {
        QsNetModel { params, topology }
    }

    /// Per-packet service time for a broadcast on a machine with the given
    /// stage count and cable diameter (the `max` of injection time and ACK
    /// round-trip described in the module docs).
    pub fn packet_time_ns(&self, stages: u32, diameter_m: f64) -> f64 {
        let p = &self.params;
        let inject = p.mtu_bytes as f64 / p.link_bw * 1e9;
        let ack = p.ack_base_ns
            + p.ack_per_stage_ns * (stages.max(1) - 1) as f64
            + p.ack_per_meter_ns * diameter_m;
        inject.max(ack)
    }

    /// Asymptotic hardware-broadcast bandwidth (bytes/s) for an explicit
    /// `(nodes, cable length)` pair — the Table 4 model. Buffers in NIC
    /// memory (no PCI ceiling).
    pub fn broadcast_bw_at(&self, nodes: u32, diameter_m: f64) -> f64 {
        let stages = Topology::new(nodes).stages();
        let t_pkt = self.packet_time_ns(stages, diameter_m);
        self.params.mtu_bytes as f64 / (t_pkt * 1e-9)
    }

    /// Asymptotic broadcast bandwidth (bytes/s) for this model's topology,
    /// using the Eq. 2 floor-plan diameter, honouring the PCI ceiling for
    /// main-memory buffers.
    pub fn broadcast_bw(&self, placement: BufferPlacement) -> f64 {
        let raw = self.broadcast_bw_at(self.topology.nodes(), self.topology.diameter_m());
        match placement {
            BufferPlacement::NicMemory => raw,
            BufferPlacement::MainMemory => raw.min(self.params.pci_broadcast_bw),
        }
    }

    /// Effective broadcast bandwidth (bytes/s) for a message of `bytes`,
    /// including the fixed DMA setup cost — the saturation curve of Fig. 7.
    pub fn broadcast_bw_for_size(&self, bytes: u64, placement: BufferPlacement) -> f64 {
        let peak = self.broadcast_bw(placement);
        let t = self.params.dma_setup_ns * 1e-9 + bytes as f64 / peak;
        bytes as f64 / t
    }

    /// Time to broadcast `bytes` from the source to every node, including
    /// setup and the one-way latency across the tree.
    pub fn broadcast_span(&self, bytes: u64, placement: BufferPlacement) -> SimSpan {
        let bw = self.broadcast_bw(placement);
        let latency = self.one_way_latency_ns();
        SimSpan::from_secs_f64(self.params.dma_setup_ns * 1e-9 + latency * 1e-9 + bytes as f64 / bw)
    }

    /// One-way network traversal latency (switch flow-through plus wire), ns.
    pub fn one_way_latency_ns(&self) -> f64 {
        let p = &self.params;
        let switches = self.topology.switches_crossed() as f64;
        // ~5 ns/m one-way propagation over half the diameter on average; the
        // worst case uses the full diameter, which is what we model.
        switches * p.switch_latency_ns + self.topology.diameter_m() * p.ack_per_meter_ns / 2.0
    }

    /// Point-to-point time for a `bytes`-byte put between two processes.
    pub fn ptp_span(&self, bytes: u64) -> SimSpan {
        let p = &self.params;
        SimSpan::from_secs_f64(p.ptp_latency_ns * 1e-9 + bytes as f64 / p.link_bw)
    }

    /// Hardware barrier-synchronisation / network-conditional latency — the
    /// primitive COMPARE-AND-WRITE maps onto (Fig. 9).
    pub fn barrier_latency(&self) -> SimSpan {
        let p = &self.params;
        let stages = self.topology.stages() as f64;
        let wire = self.topology.diameter_m() * p.ack_per_meter_ns;
        SimSpan::from_secs_f64(
            (p.barrier_base_ns + p.barrier_per_stage_ns * (stages - 1.0) + wire) * 1e-9,
        )
    }

    /// Convenience: the instant at which a broadcast issued at `now` is
    /// visible on all destinations.
    pub fn broadcast_arrival(
        &self,
        now: SimTime,
        bytes: u64,
        placement: BufferPlacement,
    ) -> SimTime {
        now + self.broadcast_span(bytes, placement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every entry of Table 4 (MB/s), rows = (nodes, [bw at 10,20,30,40,60,80,100 m]).
    const TABLE4: &[(u32, [f64; 7])] = &[
        (4, [319.0, 319.0, 319.0, 319.0, 284.0, 249.0, 222.0]),
        (16, [319.0, 319.0, 309.0, 287.0, 251.0, 224.0, 202.0]),
        (64, [312.0, 290.0, 270.0, 254.0, 225.0, 203.0, 185.0]),
        (256, [273.0, 256.0, 241.0, 227.0, 204.0, 186.0, 170.0]),
        (1024, [243.0, 229.0, 217.0, 206.0, 187.0, 171.0, 158.0]),
        (4096, [218.0, 207.0, 197.0, 188.0, 172.0, 159.0, 147.0]),
    ];
    const CABLES: [f64; 7] = [10.0, 20.0, 30.0, 40.0, 60.0, 80.0, 100.0];

    #[test]
    fn table4_reproduced_within_2_percent() {
        let m = QsNetModel::for_nodes(64);
        for &(nodes, row) in TABLE4 {
            for (d, want) in CABLES.iter().zip(row.iter()) {
                let got = m.broadcast_bw_at(nodes, *d) / 1e6;
                let err = (got - want).abs() / want;
                assert!(
                    err < 0.02,
                    "Table 4 mismatch at {nodes} nodes / {d} m: model {got:.1} vs paper {want}"
                );
            }
        }
    }

    #[test]
    fn bandwidth_decreases_with_nodes_and_cable() {
        let m = QsNetModel::for_nodes(64);
        for w in TABLE4.windows(2) {
            for d in CABLES {
                assert!(m.broadcast_bw_at(w[1].0, d) <= m.broadcast_bw_at(w[0].0, d));
            }
        }
        for &(nodes, _) in TABLE4 {
            for w in CABLES.windows(2) {
                assert!(m.broadcast_bw_at(nodes, w[1]) <= m.broadcast_bw_at(nodes, w[0]));
            }
        }
    }

    #[test]
    fn fig7_buffer_placement_bandwidths() {
        // Fig. 7: on 64 nodes, NIC-memory broadcast ≈ 312 MB/s, main-memory
        // ≈ 175 MB/s (PCI-limited).
        let m = QsNetModel::for_nodes(64);
        let nic = m.broadcast_bw(BufferPlacement::NicMemory) / 1e6;
        let main = m.broadcast_bw(BufferPlacement::MainMemory) / 1e6;
        assert!((nic - 312.0).abs() < 8.0, "NIC bw {nic:.1}");
        assert!((main - 175.0).abs() < 1.0, "main bw {main:.1}");
    }

    #[test]
    fn fig7_bandwidth_saturates_with_message_size() {
        let m = QsNetModel::for_nodes(64);
        let mut last = 0.0;
        for kb in [100u64, 200, 400, 600, 800, 1000] {
            let bw = m.broadcast_bw_for_size(kb * 1000, BufferPlacement::NicMemory);
            assert!(bw > last, "bandwidth should grow with message size");
            last = bw;
        }
        // Large messages approach the asymptote.
        let asym = m.broadcast_bw(BufferPlacement::NicMemory);
        assert!(last > 0.95 * asym);
    }

    #[test]
    fn fig9_barrier_latency_shape() {
        // ≈4.5 µs small, growing ≈2 µs out to 1024 nodes.
        let small = QsNetModel::for_nodes(2).barrier_latency().as_micros_f64();
        let large = QsNetModel::for_nodes(1024)
            .barrier_latency()
            .as_micros_f64();
        assert!((small - 4.5).abs() < 0.5, "small barrier {small:.2} µs");
        assert!(
            large > small + 1.0 && large < small + 3.0,
            "large barrier {large:.2} µs"
        );
        // Table 5 row: QsNET COMPARE-AND-WRITE < 10 µs even at 4096 nodes.
        let huge = QsNetModel::for_nodes(4096)
            .barrier_latency()
            .as_micros_f64();
        assert!(huge < 10.0, "4096-node barrier {huge:.2} µs");
    }

    #[test]
    fn ptp_latency_and_bandwidth() {
        let m = QsNetModel::for_nodes(64);
        let small = m.ptp_span(8);
        assert!(small.as_micros_f64() < 10.0);
        let big = m.ptp_span(32_000_000);
        // 32 MB at 319 MB/s ≈ 100 ms.
        assert!((big.as_millis_f64() - 100.3).abs() < 2.0);
    }

    #[test]
    fn broadcast_span_includes_setup_and_latency() {
        let m = QsNetModel::for_nodes(64);
        let s = m.broadcast_span(512 * 1024, BufferPlacement::MainMemory);
        // 512 KB at 175 MB/s ≈ 3.0 ms plus ~80 µs setup.
        assert!(s.as_millis_f64() > 2.9 && s.as_millis_f64() < 3.3, "{s}");
        let arrival = m.broadcast_arrival(
            SimTime::from_millis(5),
            512 * 1024,
            BufferPlacement::MainMemory,
        );
        assert_eq!(arrival, SimTime::from_millis(5) + s);
    }
}
