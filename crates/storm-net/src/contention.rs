//! NIC serialization and background load.
//!
//! Two contention effects matter for the paper's experiments:
//!
//! 1. A NIC injects one message at a time — concurrent sends from the same
//!    node serialise ([`Nic`]).
//! 2. The loaded-launch experiments (Fig. 3) run a CPU hog or a pairwise
//!    network-bandwidth hog on every node while a job is being launched;
//!    [`BackgroundLoad`] captures how those hogs degrade the bandwidth seen
//!    by the launch protocol and delay dæmon processing.

use storm_sim::{SimSpan, SimTime};

/// Per-node NIC transmit serialization.
#[derive(Debug, Clone, Copy, Default)]
pub struct Nic {
    next_free: SimTime,
}

impl Nic {
    /// A NIC that is free immediately.
    pub fn new() -> Self {
        Nic::default()
    }

    /// Reserve the NIC for a transmission of length `span` starting no
    /// earlier than `now`. Returns `(start, done)`; the NIC is busy until
    /// `done`.
    pub fn transmit(&mut self, now: SimTime, span: SimSpan) -> (SimTime, SimTime) {
        let start = now.max(self.next_free);
        let done = start + span;
        self.next_free = done;
        (start, done)
    }

    /// When the NIC next becomes idle.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Forget all reservations (experiment reset).
    pub fn reset(&mut self) {
        self.next_free = SimTime::ZERO;
    }

    /// Rebuild a NIC whose current reservation ends at `next_free` — the
    /// checkpoint/restore path's counterpart of [`Nic::next_free`].
    pub fn from_state(next_free: SimTime) -> Self {
        Nic { next_free }
    }
}

/// Background load on the cluster during an experiment.
///
/// * `cpu` ∈ [0, 1) — fraction of each node's CPUs consumed by a
///   spin-loop hog. It slows everything that needs host CPU: the dæmons,
///   the lightweight helper process that services NIC TLB misses and file
///   accesses, `fork()`, and OS scheduling responsiveness.
/// * `network` ∈ [0, 1) — fraction of link bandwidth consumed by pairwise
///   point-to-point traffic. A broadcast must win arbitration at every
///   switch stage against this traffic, so its effective bandwidth scales
///   by roughly `1 − network`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BackgroundLoad {
    /// CPU-hog intensity in `[0, 1)`.
    pub cpu: f64,
    /// Network-hog intensity in `[0, 1)`.
    pub network: f64,
}

impl BackgroundLoad {
    /// No load (the paper's "unloaded" scenario).
    pub const NONE: BackgroundLoad = BackgroundLoad {
        cpu: 0.0,
        network: 0.0,
    };

    /// Calibrated "CPU loaded" scenario of Fig. 3: a tight spin loop on all
    /// 256 processors. The dominant effect is that the host helper process
    /// and the dæmons only run when the OS preempts the hog, inflating all
    /// host-side service times by roughly the 4× effective multiprogramming.
    pub fn cpu_loaded() -> Self {
        BackgroundLoad {
            cpu: 0.75,
            network: 0.0,
        }
    }

    /// Calibrated "network loaded" scenario of Fig. 3: all 256 processors
    /// exchange point-to-point messages continuously, leaving ≈ 6.5% of the
    /// fabric to the launch broadcast (12 MB then takes ≈ 1.4 s — the
    /// paper's worst case of 1.5 s total).
    pub fn network_loaded() -> Self {
        BackgroundLoad {
            cpu: 0.15,
            network: 0.951,
        }
    }

    /// Validate field ranges.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..1.0).contains(&self.cpu) {
            return Err(format!("cpu load {} outside [0,1)", self.cpu));
        }
        if !(0.0..1.0).contains(&self.network) {
            return Err(format!("network load {} outside [0,1)", self.network));
        }
        Ok(())
    }

    /// Effective bandwidth of a transfer competing with the background
    /// network traffic.
    pub fn effective_bw(&self, base_bw: f64) -> f64 {
        base_bw * (1.0 - self.network)
    }

    /// Inflation factor for host-CPU service times (dæmon processing, the
    /// NIC helper process, `fork()`): with a hog pinning every CPU, a
    /// service that needs the CPU waits ~1/(1−cpu) longer on average.
    pub fn cpu_slowdown(&self) -> f64 {
        1.0 / (1.0 - self.cpu)
    }

    /// Inflate a host-side service time by the CPU load.
    pub fn inflate(&self, span: SimSpan) -> SimSpan {
        span.mul_f64(self.cpu_slowdown())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nic_serialises_transmissions() {
        let mut nic = Nic::new();
        let t0 = SimTime::from_millis(1);
        let (s1, d1) = nic.transmit(t0, SimSpan::from_millis(2));
        assert_eq!(s1, t0);
        assert_eq!(d1, SimTime::from_millis(3));
        // A second send issued during the first waits for the NIC.
        let (s2, d2) = nic.transmit(SimTime::from_millis(2), SimSpan::from_millis(1));
        assert_eq!(s2, SimTime::from_millis(3));
        assert_eq!(d2, SimTime::from_millis(4));
        // A send issued after the NIC is idle starts immediately.
        let (s3, _) = nic.transmit(SimTime::from_millis(10), SimSpan::from_millis(1));
        assert_eq!(s3, SimTime::from_millis(10));
        nic.reset();
        assert_eq!(nic.next_free(), SimTime::ZERO);
    }

    #[test]
    fn load_scenarios_validate() {
        assert!(BackgroundLoad::NONE.validate().is_ok());
        assert!(BackgroundLoad::cpu_loaded().validate().is_ok());
        assert!(BackgroundLoad::network_loaded().validate().is_ok());
        assert!(BackgroundLoad {
            cpu: 1.5,
            network: 0.0
        }
        .validate()
        .is_err());
        assert!(BackgroundLoad {
            cpu: 0.0,
            network: -0.1
        }
        .validate()
        .is_err());
    }

    #[test]
    fn network_load_degrades_bandwidth() {
        let l = BackgroundLoad::network_loaded();
        let eff = l.effective_bw(131.0e6);
        // Calibration target: ≈ 6.4 MB/s so a 12 MB send takes ≈ 1.4 s
        // against the 131 MB/s protocol (8.6 MB/s against the PCI bound).
        assert!(eff > 5.0e6 && eff < 8.0e6, "effective bw {eff:.0}");
        assert_eq!(BackgroundLoad::NONE.effective_bw(131.0e6), 131.0e6);
    }

    #[test]
    fn cpu_load_inflates_service_times() {
        let l = BackgroundLoad::cpu_loaded();
        assert!((l.cpu_slowdown() - 4.0).abs() < 0.1);
        let inflated = l.inflate(SimSpan::from_millis(1));
        assert!((inflated.as_millis_f64() - 4.0).abs() < 0.1);
        assert_eq!(
            BackgroundLoad::NONE.inflate(SimSpan::from_millis(1)),
            SimSpan::from_millis(1)
        );
    }
}
