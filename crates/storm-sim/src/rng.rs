//! Deterministic random-number streams.
//!
//! The simulation needs stochastic noise (OS scheduling skew, fork latency,
//! NFS jitter) but bit-for-bit reproducibility across runs. We wrap
//! [`rand::rngs::SmallRng`] seeded through a SplitMix64 mix of a global seed
//! and a stream identifier, so independent subsystems (each dæmon, each
//! experiment repetition) get decorrelated but reproducible streams.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// SplitMix64 step — used only to derive seeds, never as the main generator.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic RNG with named sub-streams.
#[derive(Debug, Clone)]
pub struct DeterministicRng {
    seed: u64,
    rng: SmallRng,
}

impl DeterministicRng {
    /// Create the root stream for `seed`.
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        let derived = splitmix64(&mut s);
        DeterministicRng {
            seed,
            rng: SmallRng::seed_from_u64(derived),
        }
    }

    /// The seed this stream hierarchy was derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent stream for `stream_id`. Streams with different
    /// ids are decorrelated; the same `(seed, stream_id)` always yields an
    /// identical stream.
    pub fn stream(&self, stream_id: u64) -> DeterministicRng {
        let mut s = self.seed
            ^ stream_id
                .rotate_left(17)
                .wrapping_mul(0xA24B_AED4_963E_E407);
        let derived = splitmix64(&mut s);
        DeterministicRng {
            seed: self.seed,
            rng: SmallRng::seed_from_u64(derived),
        }
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.rng.random::<f64>()
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(hi >= lo);
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.rng.random_range(0..n)
    }

    /// Exponentially distributed with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        let u: f64 = 1.0 - self.uniform(); // avoid ln(0)
        -mean * u.ln()
    }

    /// Standard normal via Box–Muller (one value per call; the pair's second
    /// half is deliberately discarded to keep state simple).
    pub fn normal(&mut self, mean: f64, stddev: f64) -> f64 {
        let u1: f64 = 1.0 - self.uniform();
        let u2: f64 = self.uniform();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + stddev * z
    }

    /// Log-normal noise: multiplicative jitter with median 1.0 and the given
    /// sigma in log space. Used for OS scheduling skew where the paper
    /// reports rare slow outliers that bias the mean.
    pub fn lognormal_jitter(&mut self, sigma: f64) -> f64 {
        let n = self.normal(0.0, sigma);
        n.exp()
    }

    /// Access the underlying [`SmallRng`] for APIs that want `impl Rng`.
    pub fn inner(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    /// The raw generator state, for checkpointing. Together with
    /// [`DeterministicRng::seed`] this captures the stream exactly;
    /// [`DeterministicRng::from_parts`] rebuilds it mid-sequence.
    pub fn state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Rebuild a stream from a checkpointed `(seed, state)` pair. The
    /// seed is carried so later [`DeterministicRng::stream`] derivations
    /// match the original hierarchy; the state resumes the main sequence
    /// exactly where the checkpoint left it.
    pub fn from_parts(seed: u64, state: [u64; 4]) -> Self {
        DeterministicRng {
            seed,
            rng: SmallRng::from_state(state),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = DeterministicRng::new(1234);
        let mut b = DeterministicRng::new(1234);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DeterministicRng::new(1);
        let mut b = DeterministicRng::new(2);
        let va: Vec<u64> = (0..8).map(|_| a.below(1_000_000)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.below(1_000_000)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn streams_are_reproducible_and_decorrelated() {
        let root = DeterministicRng::new(99);
        let mut s1a = root.stream(1);
        let mut s1b = root.stream(1);
        let mut s2 = root.stream(2);
        let a: Vec<u64> = (0..8).map(|_| s1a.below(u64::MAX)).collect();
        let b: Vec<u64> = (0..8).map(|_| s1b.below(u64::MAX)).collect();
        let c: Vec<u64> = (0..8).map(|_| s2.below(u64::MAX)).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn exponential_has_roughly_right_mean() {
        let mut r = DeterministicRng::new(7);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean = {mean}");
    }

    #[test]
    fn normal_has_roughly_right_moments() {
        let mut r = DeterministicRng::new(8);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean = {mean}");
        assert!((var - 4.0).abs() < 0.3, "var = {var}");
    }

    #[test]
    fn lognormal_jitter_is_positive_with_median_near_one() {
        let mut r = DeterministicRng::new(9);
        let mut xs: Vec<f64> = (0..10_001).map(|_| r.lognormal_jitter(0.5)).collect();
        assert!(xs.iter().all(|&x| x > 0.0));
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        assert!((median - 1.0).abs() < 0.1, "median = {median}");
    }

    #[test]
    fn state_roundtrip_resumes_mid_sequence() {
        let mut a = DeterministicRng::new(77);
        for _ in 0..13 {
            a.uniform();
        }
        let mut b = DeterministicRng::from_parts(a.seed(), a.state());
        for _ in 0..50 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
        // Stream derivation only depends on the carried seed.
        let mut sa = a.stream(5);
        let mut sb = b.stream(5);
        assert_eq!(sa.below(u64::MAX), sb.below(u64::MAX));
    }

    #[test]
    fn uniform_range_bounds() {
        let mut r = DeterministicRng::new(10);
        for _ in 0..1000 {
            let x = r.uniform_range(2.0, 5.0);
            assert!((2.0..5.0).contains(&x));
        }
    }
}
