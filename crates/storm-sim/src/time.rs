//! Simulated time: nanosecond-resolution instants ([`SimTime`]) and
//! durations ([`SimSpan`]).
//!
//! Two distinct newtypes are used so the type system catches the classic
//! simulation bug of adding two instants. All arithmetic is saturating-free
//! and will panic on overflow in debug builds; the u64 nanosecond range
//! (~584 years) is far beyond any experiment in this repository.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time, measured in nanoseconds from the start of
/// the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A length of simulated time in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimSpan(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant; used as an "infinitely far" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from integral nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }
    /// Construct from integral microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }
    /// Construct from integral milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }
    /// Construct from integral seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }
    /// Construct from fractional seconds (rounds to the nearest nanosecond).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "negative instant");
        // `+ 0.5` then truncate == `.round()` for non-negative values
        // below 2^52 ns (the whole simulated range), without the libm
        // `round` call the hot paths would otherwise pay per event.
        SimTime((s * 1e9 + 0.5) as u64)
    }

    /// Nanoseconds since the epoch.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    /// Fractional microseconds since the epoch.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }
    /// Fractional milliseconds since the epoch.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
    /// Fractional seconds since the epoch.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Span since an earlier instant; panics (debug) if `earlier` is later.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimSpan {
        debug_assert!(self >= earlier, "time went backwards");
        SimSpan(self.0 - earlier.0)
    }

    /// Saturating difference: zero if `earlier` is actually later.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimSpan {
        SimSpan(self.0.saturating_sub(earlier.0))
    }

    /// The next boundary of a repeating period of length `period` that is
    /// strictly after `self`. Used for "the MM only acts at timeslice
    /// boundaries" quantisation in the paper's launch protocol.
    #[inline]
    pub fn next_boundary(self, period: SimSpan) -> SimTime {
        assert!(period.0 > 0, "period must be positive");
        let q = self.0 / period.0 + 1;
        SimTime(q * period.0)
    }

    /// The most recent boundary of `period` at or before `self`.
    #[inline]
    pub fn prev_boundary(self, period: SimSpan) -> SimTime {
        assert!(period.0 > 0, "period must be positive");
        SimTime(self.0 / period.0 * period.0)
    }

    /// Number of `period` boundaries in the half-open interval
    /// `(earlier, self]` — the arithmetic behind idle fast-forward: how
    /// many periodic ticks a leap from `earlier` to `self` skips over.
    #[inline]
    pub fn boundaries_since(self, earlier: SimTime, period: SimSpan) -> u64 {
        assert!(period.0 > 0, "period must be positive");
        debug_assert!(earlier <= self);
        self.0 / period.0 - earlier.0 / period.0
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl SimSpan {
    /// The empty span.
    pub const ZERO: SimSpan = SimSpan(0);
    /// The maximum representable span.
    pub const MAX: SimSpan = SimSpan(u64::MAX);

    /// Construct from integral nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimSpan(ns)
    }
    /// Construct from integral microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimSpan(us * 1_000)
    }
    /// Construct from integral milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimSpan(ms * 1_000_000)
    }
    /// Construct from integral seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimSpan(s * 1_000_000_000)
    }
    /// Construct from fractional seconds (rounds to the nearest nanosecond).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "negative span: {s}");
        // See `SimTime::from_secs_f64` — round-half-up by add-truncate
        // avoids the libm `round` call on the per-event path.
        SimSpan((s * 1e9 + 0.5) as u64)
    }
    /// Construct from fractional milliseconds.
    #[inline]
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }
    /// Construct from fractional microseconds.
    #[inline]
    pub fn from_micros_f64(us: f64) -> Self {
        Self::from_secs_f64(us / 1e6)
    }

    /// The time to move `bytes` bytes at `bytes_per_sec`; zero-bandwidth
    /// panics.
    #[inline]
    pub fn for_bytes(bytes: u64, bytes_per_sec: f64) -> Self {
        assert!(bytes_per_sec > 0.0, "bandwidth must be positive");
        Self::from_secs_f64(bytes as f64 / bytes_per_sec)
    }

    /// Nanoseconds in this span.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    /// Fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }
    /// Fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
    /// Fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    /// True if the span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The longer of two spans.
    #[inline]
    pub fn max(self, other: SimSpan) -> SimSpan {
        if self >= other {
            self
        } else {
            other
        }
    }
    /// The shorter of two spans.
    #[inline]
    pub fn min(self, other: SimSpan) -> SimSpan {
        if self <= other {
            self
        } else {
            other
        }
    }
    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimSpan) -> SimSpan {
        SimSpan(self.0.saturating_sub(other.0))
    }
    /// Saturating scalar multiplication: clamps to `SimSpan::MAX` instead of
    /// overflowing, so retry-backoff arithmetic with extreme configurations
    /// stays well-defined.
    #[inline]
    pub fn saturating_mul(self, k: u64) -> SimSpan {
        SimSpan(self.0.saturating_mul(k))
    }
    /// Multiply by a non-negative scalar.
    #[inline]
    pub fn mul_f64(self, k: f64) -> SimSpan {
        debug_assert!(k >= 0.0, "negative scale");
        SimSpan((self.0 as f64 * k + 0.5) as u64)
    }
    /// Integer division rounding up: how many `chunk`-long pieces cover this
    /// span.
    #[inline]
    pub fn div_ceil(self, chunk: SimSpan) -> u64 {
        assert!(chunk.0 > 0, "chunk must be positive");
        self.0.div_ceil(chunk.0)
    }
}

impl Add<SimSpan> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimSpan) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimSpan> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimSpan) {
        self.0 += rhs.0;
    }
}

impl Sub<SimSpan> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimSpan) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimSpan;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimSpan {
        SimSpan(self.0 - rhs.0)
    }
}

impl Add for SimSpan {
    type Output = SimSpan;
    #[inline]
    fn add(self, rhs: SimSpan) -> SimSpan {
        SimSpan(self.0 + rhs.0)
    }
}

impl AddAssign for SimSpan {
    #[inline]
    fn add_assign(&mut self, rhs: SimSpan) {
        self.0 += rhs.0;
    }
}

impl Sub for SimSpan {
    type Output = SimSpan;
    #[inline]
    fn sub(self, rhs: SimSpan) -> SimSpan {
        SimSpan(self.0 - rhs.0)
    }
}

impl SubAssign for SimSpan {
    #[inline]
    fn sub_assign(&mut self, rhs: SimSpan) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimSpan {
    type Output = SimSpan;
    #[inline]
    fn mul(self, rhs: u64) -> SimSpan {
        SimSpan(self.0 * rhs)
    }
}

impl Div<u64> for SimSpan {
    type Output = SimSpan;
    #[inline]
    fn div(self, rhs: u64) -> SimSpan {
        SimSpan(self.0 / rhs)
    }
}

impl Sum for SimSpan {
    fn sum<I: Iterator<Item = SimSpan>>(iter: I) -> SimSpan {
        iter.fold(SimSpan::ZERO, Add::add)
    }
}

fn fmt_ns(ns: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if ns == 0 {
        write!(f, "0s")
    } else if ns < 1_000 {
        write!(f, "{ns}ns")
    } else if ns < 1_000_000 {
        write!(f, "{:.3}us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        write!(f, "{:.3}ms", ns as f64 / 1e6)
    } else {
        write!(f, "{:.3}s", ns as f64 / 1e9)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t=")?;
        fmt_ns(self.0, f)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}

impl fmt::Debug for SimSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}

impl fmt::Display for SimSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimTime::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimTime::from_secs(5).as_nanos(), 5_000_000_000);
        assert_eq!(SimSpan::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert_eq!(SimSpan::from_millis_f64(0.5).as_micros_f64(), 500.0);
    }

    #[test]
    fn instant_plus_span() {
        let t = SimTime::from_millis(10) + SimSpan::from_micros(500);
        assert_eq!(t.as_nanos(), 10_500_000);
        assert_eq!(t - SimTime::from_millis(10), SimSpan::from_micros(500));
    }

    #[test]
    fn since_and_saturating() {
        let a = SimTime::from_millis(3);
        let b = SimTime::from_millis(7);
        assert_eq!(b.since(a), SimSpan::from_millis(4));
        assert_eq!(a.saturating_since(b), SimSpan::ZERO);
    }

    #[test]
    fn boundaries_quantise_correctly() {
        let q = SimSpan::from_millis(1);
        assert_eq!(SimTime::ZERO.next_boundary(q), SimTime::from_millis(1));
        assert_eq!(
            SimTime::from_micros(1500).next_boundary(q),
            SimTime::from_millis(2)
        );
        // An instant exactly on a boundary advances to the next one.
        assert_eq!(
            SimTime::from_millis(2).next_boundary(q),
            SimTime::from_millis(3)
        );
        assert_eq!(
            SimTime::from_micros(2500).prev_boundary(q),
            SimTime::from_millis(2)
        );
    }

    #[test]
    fn bandwidth_span() {
        // 1 MiB at 1 MiB/s is one second.
        let s = SimSpan::for_bytes(1 << 20, (1 << 20) as f64);
        assert_eq!(s, SimSpan::from_secs(1));
        // 12 MB at 131 MB/s is the paper's ~92 ms send time.
        let send = SimSpan::for_bytes(12_000_000, 131e6);
        assert!((send.as_millis_f64() - 91.6).abs() < 0.1);
    }

    #[test]
    fn span_arithmetic() {
        let a = SimSpan::from_millis(10);
        assert_eq!(a * 3, SimSpan::from_millis(30));
        assert_eq!(a / 4, SimSpan::from_micros(2500));
        assert_eq!(a.mul_f64(0.5), SimSpan::from_millis(5));
        assert_eq!(a.saturating_sub(SimSpan::from_secs(1)), SimSpan::ZERO);
        assert_eq!(
            SimSpan::from_millis(10).div_ceil(SimSpan::from_millis(3)),
            4
        );
        let total: SimSpan = vec![a, a, a].into_iter().sum();
        assert_eq!(total, SimSpan::from_millis(30));
    }

    #[test]
    fn saturating_mul_clamps_at_max() {
        assert_eq!(
            SimSpan::from_millis(10).saturating_mul(3),
            SimSpan::from_millis(30)
        );
        assert_eq!(SimSpan::MAX.saturating_mul(2), SimSpan::MAX);
        assert_eq!(
            SimSpan::from_nanos(u64::MAX / 2 + 1).saturating_mul(2),
            SimSpan::MAX
        );
        assert_eq!(SimSpan::MAX.saturating_mul(0), SimSpan::ZERO);
        assert_eq!(SimSpan::MAX.saturating_mul(1), SimSpan::MAX);
    }

    #[test]
    fn ordering_and_minmax() {
        let a = SimTime::from_millis(1);
        let b = SimTime::from_millis(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(
            SimSpan::from_millis(1).max(SimSpan::from_millis(2)),
            SimSpan::from_millis(2)
        );
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", SimSpan::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimSpan::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimSpan::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimSpan::from_secs(12)), "12.000s");
        assert_eq!(format!("{}", SimTime::ZERO), "0s");
    }
}
