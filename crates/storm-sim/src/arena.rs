//! Generational slab arena for in-flight event payloads.
//!
//! The event queue used to carry a full message (or a whole group
//! delivery) inside every entry, so every heap sift and every wheel
//! bucket move shuffled payload-sized entries around. The engine now
//! interns payloads here and the queue carries a dense
//! `EventRef { target, payload }` instead; an entry shrinks to a few
//! machine words regardless of the message type.
//!
//! Slots are reused through a free list, and each slot carries a
//! *generation* counter bumped on every free: a [`PayloadId`] minted for
//! one payload can never silently alias a later payload occupying the
//! same slot — a stale id panics (or reads as dead through
//! [`EventArena::try_get`]). The arena-reuse property test in this module
//! and the engine's lock-step determinism suite are what the DESIGN.md
//! §16 guarantees rest on.

use std::fmt;

/// Dense handle to one interned payload: slot index plus the slot's
/// generation at allocation time.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct PayloadId {
    ix: u32,
    gen: u32,
}

impl fmt::Debug for PayloadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}g{}", self.ix, self.gen)
    }
}

impl PayloadId {
    /// The `(slot index, generation)` pair, for checkpointing.
    pub fn to_raw(self) -> (u32, u32) {
        (self.ix, self.gen)
    }

    /// Rebuild a handle from checkpointed raw parts. Only meaningful
    /// against an arena restored from the matching [`ArenaState`]; a
    /// fabricated pair reads as stale, exactly like any expired id.
    pub fn from_raw(ix: u32, gen: u32) -> Self {
        PayloadId { ix, gen }
    }
}

/// A snapshot of arena accounting, returned by value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArenaStats {
    /// Payloads currently interned.
    pub live: usize,
    /// High-water mark of live payloads.
    pub peak: usize,
    /// Slots ever created (live + free-listed).
    pub capacity: usize,
    /// Resident bytes of the slot table (capacity × slot size).
    pub payload_bytes: usize,
}

impl ArenaStats {
    /// Field-wise sum — the engine reports its message and group arenas
    /// as one figure.
    pub fn merged(self, other: ArenaStats) -> ArenaStats {
        ArenaStats {
            live: self.live + other.live,
            peak: self.peak + other.peak,
            capacity: self.capacity + other.capacity,
            payload_bytes: self.payload_bytes + other.payload_bytes,
        }
    }
}

/// One slot: the current generation and the payload, if occupied.
#[derive(Debug)]
struct Slot<T> {
    gen: u32,
    val: Option<T>,
}

/// Generational slab arena. Allocation pops the free list (or grows the
/// slot table), freeing bumps the slot's generation and pushes it back —
/// both O(1), no per-payload heap allocation once the table is warm.
#[derive(Debug)]
pub struct EventArena<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    live: usize,
    peak: usize,
}

impl<T> Default for EventArena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventArena<T> {
    /// An empty arena.
    pub fn new() -> Self {
        EventArena {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            peak: 0,
        }
    }

    /// Intern `val`, returning its handle.
    pub fn alloc(&mut self, val: T) -> PayloadId {
        self.live += 1;
        self.peak = self.peak.max(self.live);
        if let Some(ix) = self.free.pop() {
            let slot = &mut self.slots[ix as usize];
            debug_assert!(slot.val.is_none(), "free list pointed at a live slot");
            slot.val = Some(val);
            return PayloadId { ix, gen: slot.gen };
        }
        let ix = u32::try_from(self.slots.len()).expect("arena slot overflow");
        self.slots.push(Slot {
            gen: 0,
            val: Some(val),
        });
        PayloadId { ix, gen: 0 }
    }

    /// Remove and return the payload behind `id`, freeing its slot for
    /// reuse under a new generation.
    ///
    /// Panics on a stale or double-taken id — the engine's invariant is
    /// one live arena payload per queued event reference, so a mismatch
    /// here is a bug, never a recoverable condition.
    pub fn take(&mut self, id: PayloadId) -> T {
        let slot = &mut self.slots[id.ix as usize];
        assert!(slot.gen == id.gen, "stale payload id {id:?}");
        let val = slot
            .val
            .take()
            .unwrap_or_else(|| panic!("double take of {id:?}"));
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(id.ix);
        self.live -= 1;
        val
    }

    /// Borrow the payload behind `id`; panics when stale.
    pub fn get(&self, id: PayloadId) -> &T {
        self.try_get(id)
            .unwrap_or_else(|| panic!("stale payload id {id:?}"))
    }

    /// Borrow the payload behind `id`, or `None` when the id no longer
    /// names a live payload (freed, or its slot reused under a newer
    /// generation).
    pub fn try_get(&self, id: PayloadId) -> Option<&T> {
        let slot = self.slots.get(id.ix as usize)?;
        if slot.gen != id.gen {
            return None;
        }
        slot.val.as_ref()
    }

    /// Iterate over live payloads in unspecified slot order — for
    /// order-insensitive folds (pending-message accounting), not for
    /// delivery.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.slots.iter().filter_map(|s| s.val.as_ref())
    }

    /// Payloads currently interned.
    pub fn live(&self) -> usize {
        self.live
    }

    /// High-water mark of live payloads.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Accounting snapshot.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            live: self.live,
            peak: self.peak,
            capacity: self.slots.len(),
            payload_bytes: self.slots.capacity() * std::mem::size_of::<Slot<T>>(),
        }
    }

    /// Full-fidelity image of the arena for checkpointing: every slot
    /// (generation plus payload, if occupied), the free list in pop
    /// order, the high-water mark, and the slot table's reserved
    /// capacity. [`EventArena::import_state`] rebuilds an arena in which
    /// every outstanding [`PayloadId`] — including ids embedded in
    /// queued event references — resolves exactly as before.
    pub fn export_state(&self) -> ArenaState<T>
    where
        T: Clone,
    {
        ArenaState {
            slots: self.slots.iter().map(|s| (s.gen, s.val.clone())).collect(),
            free: self.free.clone(),
            peak: self.peak,
            reserve: self.slots.capacity(),
        }
    }

    /// Rebuild an arena from an exported image. See
    /// [`EventArena::export_state`].
    pub fn import_state(state: ArenaState<T>) -> Self {
        let live = state.slots.iter().filter(|(_, v)| v.is_some()).count();
        let mut slots = Vec::with_capacity(state.reserve.max(state.slots.len()));
        slots.extend(state.slots.into_iter().map(|(gen, val)| Slot { gen, val }));
        EventArena {
            slots,
            free: state.free,
            live,
            peak: state.peak,
        }
    }
}

/// Serializable image of an [`EventArena`], produced by
/// [`EventArena::export_state`].
#[derive(Debug, Clone)]
pub struct ArenaState<T> {
    /// Per-slot `(generation, payload)` pairs in slot order.
    pub slots: Vec<(u32, Option<T>)>,
    /// Free-list contents, preserving pop order.
    pub free: Vec<u32>,
    /// High-water mark of live payloads.
    pub peak: usize,
    /// Reserved capacity of the slot table (kept so resident-byte
    /// accounting survives a round trip).
    pub reserve: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_take_roundtrip_and_accounting() {
        let mut a = EventArena::new();
        let x = a.alloc("x");
        let y = a.alloc("y");
        assert_eq!(a.live(), 2);
        assert_eq!(a.get(x), &"x");
        assert_eq!(a.take(x), "x");
        assert_eq!(a.live(), 1);
        assert_eq!(a.take(y), "y");
        assert_eq!(a.live(), 0);
        let s = a.stats();
        assert_eq!(s.peak, 2);
        assert_eq!(s.capacity, 2);
        assert!(s.payload_bytes > 0);
    }

    #[test]
    fn slots_are_reused_under_new_generations() {
        let mut a = EventArena::new();
        let first = a.alloc(1u64);
        a.take(first);
        let second = a.alloc(2u64);
        // Same slot, new generation: the stale id is dead, not aliased.
        assert_eq!(a.get(second), &2);
        assert!(a.try_get(first).is_none());
        assert_eq!(a.stats().capacity, 1, "slot was reused, not grown");
    }

    #[test]
    #[should_panic(expected = "stale payload id")]
    fn stale_take_panics() {
        let mut a = EventArena::new();
        let id = a.alloc(5u32);
        a.take(id);
        a.alloc(6u32);
        a.take(id);
    }

    #[test]
    fn iter_visits_only_live_payloads() {
        let mut a = EventArena::new();
        let ids: Vec<_> = (0..10u32).map(|i| a.alloc(i)).collect();
        for id in ids.iter().step_by(2) {
            a.take(*id);
        }
        let mut left: Vec<u32> = a.iter().copied().collect();
        left.sort_unstable();
        assert_eq!(left, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn export_import_roundtrip_preserves_ids_and_accounting() {
        let mut a = EventArena::new();
        let ids: Vec<_> = (0..6u64).map(|i| a.alloc(i)).collect();
        a.take(ids[1]);
        a.take(ids[4]);
        let reborn = a.alloc(100u64); // reuses a freed slot under a new gen
        let before = a.stats();
        let mut b = EventArena::import_state(a.export_state());
        assert_eq!(b.stats(), before);
        assert_eq!(b.get(ids[0]), &0);
        assert_eq!(b.get(reborn), &100);
        assert!(b.try_get(ids[1]).is_none());
        // Raw round trip of a handle.
        let (ix, gen) = reborn.to_raw();
        assert_eq!(b.get(PayloadId::from_raw(ix, gen)), &100);
        // Free-list pop order survives: the next two allocs in each arena
        // land in the same slots.
        let na = a.alloc(7u64);
        let nb = b.alloc(7u64);
        assert_eq!(na, nb);
    }

    use proptest::prelude::*;

    proptest! {
        /// Random push/pop/leak cycles: live ids always read back their own
        /// value, freed ids never alias a later payload, and draining the
        /// model drains the arena to zero.
        #[test]
        fn generational_reuse_never_aliases(ops in prop::collection::vec(0u8..=2, 1..200)) {
            let mut arena = EventArena::new();
            let mut live: Vec<(PayloadId, u64)> = Vec::new();
            let mut dead: Vec<PayloadId> = Vec::new();
            let mut next_val = 0u64;
            for op in ops {
                match op {
                    // Intern a fresh, unique value.
                    0 | 1 => {
                        let id = arena.alloc(next_val);
                        live.push((id, next_val));
                        next_val += 1;
                    }
                    // Free the oldest live payload.
                    _ => {
                        if let Some((id, want)) = live.first().copied() {
                            live.remove(0);
                            prop_assert_eq!(arena.take(id), want);
                            dead.push(id);
                        }
                    }
                }
                prop_assert_eq!(arena.live(), live.len());
                for &(id, want) in &live {
                    prop_assert_eq!(arena.try_get(id), Some(&want));
                }
                for &id in &dead {
                    prop_assert!(arena.try_get(id).is_none(), "dead id aliased a live slot");
                }
            }
            for (id, want) in live.drain(..) {
                prop_assert_eq!(arena.take(id), want);
            }
            prop_assert_eq!(arena.live(), 0, "arena drains to zero");
        }
    }
}
