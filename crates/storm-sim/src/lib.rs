//! # storm-sim — deterministic discrete-event simulation engine
//!
//! This crate is the substrate on which the whole STORM reproduction runs.
//! The paper evaluated STORM on a 256-processor AlphaServer ES40 cluster with
//! a Quadrics QsNET network; we do not have that hardware, so every
//! experiment executes inside a deterministic, single-threaded discrete-event
//! simulation built from the pieces in this crate:
//!
//! * [`SimTime`] / [`SimSpan`] — nanosecond-resolution instants and durations.
//! * [`EventQueue`] — an event queue with a total (time, sequence) order,
//!   which makes every run bit-for-bit reproducible for a given seed. Two
//!   backends — a hierarchical timing wheel (default) and the reference
//!   binary heap — pop in bit-identical order. Entries carry only a dense
//!   event reference; payloads are interned in [`EventArena`].
//! * [`EventArena`] — a generational slab arena for in-flight message
//!   payloads, so queue reshuffles move machine words, not messages.
//! * [`Simulation`] / [`Component`] / [`Context`] — a small actor framework:
//!   components (the STORM dæmons, application processes, baseline launchers)
//!   exchange timestamped messages and share a mutable *world* (network
//!   occupancy, global variables, metrics).
//! * [`stats`] — online statistics, percentiles and series collection used by
//!   the benchmark harness.
//! * [`trace`] — a lightweight event trace used by tests to assert
//!   determinism and by examples to print timelines.
//!
//! The engine is deliberately simple — no `unsafe`, no wall-clock time —
//! because reproducibility of the *simulated* timings is the property
//! every experiment in the paper reproduction depends on. Parallel
//! intra-timeslice window execution ([`shard`], opt-in via
//! `Simulation::set_threads`) keeps that property: worker outputs are
//! merged back in canonical serial order, byte-identical to a
//! single-threaded run.
//!
//! ## Example
//!
//! ```
//! use storm_sim::{Component, Context, SimSpan, Simulation};
//!
//! struct Ping { count: u32 }
//!
//! #[derive(Clone, Debug)]
//! enum Msg { Ping, Pong }
//!
//! impl Component<(), Msg> for Ping {
//!     fn handle(&mut self, msg: Msg, ctx: &mut Context<'_, (), Msg>) {
//!         match msg {
//!             Msg::Ping => {
//!                 self.count += 1;
//!                 if self.count < 3 {
//!                     ctx.send_self(SimSpan::from_micros(10), Msg::Ping);
//!                 }
//!             }
//!             Msg::Pong => {}
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new((), 42);
//! let ping = sim.add_component(Ping { count: 0 });
//! sim.post(storm_sim::SimTime::ZERO, ping, Msg::Ping);
//! sim.run_to_completion();
//! assert_eq!(sim.now(), storm_sim::SimTime::from_micros(20));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod engine;
pub mod queue;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod time;
pub mod trace;

pub use arena::{ArenaState, ArenaStats, EventArena, PayloadId};
pub use engine::{
    tree_depth, Component, ComponentId, Context, EngineState, GroupSchedule, GroupState,
    GroupTargets, QueuedEventState, Simulation,
};
pub use queue::{
    DeliveryOrder, DeliveryOrderState, EventQueue, OrderModeState, QueueAccounting, QueueBackend,
    QueueStats,
};
pub use rng::DeterministicRng;
pub use shard::{ShardContext, ShardWorld};
pub use time::{SimSpan, SimTime};
pub use trace::{intern_label, TraceRecord, Tracer};
