//! The actor-style simulation engine.
//!
//! A [`Simulation`] owns a set of [`Component`]s (in STORM: the Machine
//! Manager, one Node Manager per node, Program Launchers, application
//! processes, baseline launchers, …), a deterministic [`EventQueue`] of
//! `(time, target, message)` deliveries, a shared mutable *world* `W`
//! (network occupancy, global variables, filesystem state, metrics), and a
//! deterministic RNG.
//!
//! Components communicate exclusively through timestamped messages; the
//! engine delivers them in `(time, insertion-sequence)` order, so any two
//! runs with the same inputs and seed produce identical traces.

use crate::queue::EventQueue;
use crate::rng::DeterministicRng;
use crate::time::{SimSpan, SimTime};
use crate::trace::Tracer;
use std::fmt;

/// Identifies a component within one [`Simulation`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(pub(crate) u32);

impl ComponentId {
    /// The raw index (stable for the lifetime of the simulation).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A simulated actor. `W` is the shared world type, `M` the message type.
pub trait Component<W, M> {
    /// Handle one message delivered at `ctx.now()`.
    fn handle(&mut self, msg: M, ctx: &mut Context<'_, W, M>);

    /// A short name used in traces; defaults to the type name.
    fn name(&self) -> &str {
        std::any::type_name::<Self>()
    }
}

/// Everything a component may touch while handling a message.
pub struct Context<'a, W, M> {
    now: SimTime,
    self_id: ComponentId,
    world: &'a mut W,
    queue: &'a mut EventQueue<(ComponentId, M)>,
    rng: &'a mut DeterministicRng,
    tracer: &'a mut Tracer,
    halt: &'a mut bool,
}

impl<W, M> Context<'_, W, M> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the component handling this message.
    pub fn self_id(&self) -> ComponentId {
        self.self_id
    }

    /// Shared world state.
    pub fn world(&mut self) -> &mut W {
        self.world
    }

    /// Immutable view of the world.
    pub fn world_ref(&self) -> &W {
        self.world
    }

    /// Deliver `msg` to `target` at absolute instant `at`. Instants in the
    /// past are clamped to *now* (delivery still happens, never time travel).
    pub fn send_at(&mut self, target: ComponentId, at: SimTime, msg: M) {
        let at = at.max(self.now);
        self.queue.push(at, (target, msg));
    }

    /// Deliver `msg` to `target` after `delay`.
    pub fn send(&mut self, target: ComponentId, delay: SimSpan, msg: M) {
        self.queue.push(self.now + delay, (target, msg));
    }

    /// Deliver `msg` to self after `delay` (a timer).
    pub fn send_self(&mut self, delay: SimSpan, msg: M) {
        let id = self.self_id;
        self.send(id, delay, msg);
    }

    /// Deliver `msg` to self at absolute instant `at`.
    pub fn send_self_at(&mut self, at: SimTime, msg: M) {
        let id = self.self_id;
        self.send_at(id, at, msg);
    }

    /// The deterministic RNG (shared by all components; still deterministic
    /// because the engine is single-threaded with a total delivery order).
    pub fn rng(&mut self) -> &mut DeterministicRng {
        self.rng
    }

    /// Simultaneous access to the world and the RNG — for world-resident
    /// subsystems whose operations draw randomness (e.g. fault-injected
    /// mechanism calls).
    pub fn world_and_rng(&mut self) -> (&mut W, &mut DeterministicRng) {
        (self.world, self.rng)
    }

    /// Record a trace event (no-op unless tracing is enabled).
    pub fn trace(&mut self, label: &'static str, detail: impl FnOnce() -> String) {
        let now = self.now;
        let id = self.self_id;
        self.tracer.record(now, id, label, detail);
    }

    /// Stop the simulation after this message completes.
    pub fn halt(&mut self) {
        *self.halt = true;
    }
}

/// A discrete-event simulation over world `W` and message type `M`.
pub struct Simulation<W, M> {
    now: SimTime,
    world: W,
    components: Vec<Option<Box<dyn Component<W, M>>>>,
    queue: EventQueue<(ComponentId, M)>,
    rng: DeterministicRng,
    tracer: Tracer,
    halt: bool,
    delivered: u64,
    /// Hard cap on deliveries; guards against accidental event storms.
    max_events: u64,
}

impl<W, M> Simulation<W, M> {
    /// Create a simulation with the given world and seed.
    pub fn new(world: W, seed: u64) -> Self {
        Simulation {
            now: SimTime::ZERO,
            world,
            components: Vec::new(),
            queue: EventQueue::new(),
            rng: DeterministicRng::new(seed),
            tracer: Tracer::disabled(),
            halt: false,
            delivered: 0,
            max_events: u64::MAX,
        }
    }

    /// Enable trace recording (see [`Tracer`]).
    pub fn enable_tracing(&mut self) {
        self.tracer = Tracer::enabled();
    }

    /// Set a hard cap on the number of delivered events.
    pub fn set_max_events(&mut self, cap: u64) {
        self.max_events = cap;
    }

    /// Register a component, returning its id.
    pub fn add_component(&mut self, c: impl Component<W, M> + 'static) -> ComponentId {
        let id = ComponentId(u32::try_from(self.components.len()).expect("too many components"));
        self.components.push(Some(Box::new(c)));
        id
    }

    /// Register a boxed component.
    pub fn add_boxed(&mut self, c: Box<dyn Component<W, M>>) -> ComponentId {
        let id = ComponentId(u32::try_from(self.components.len()).expect("too many components"));
        self.components.push(Some(c));
        id
    }

    /// Schedule an initial message delivery.
    pub fn post(&mut self, at: SimTime, target: ComponentId, msg: M) {
        self.queue.push(at, (target, msg));
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Shared world (immutable).
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Shared world (mutable) — for experiment setup/teardown between runs.
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consume the simulation, returning the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Total messages delivered so far.
    pub fn events_delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of pending events.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// The recorded trace (empty unless tracing was enabled).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Borrow a component back out (e.g. to read final state after a run).
    ///
    /// Panics if the id is stale or the component is mid-delivery (cannot
    /// happen between `run_*` calls).
    pub fn component(&self, id: ComponentId) -> &dyn Component<W, M> {
        self.components[id.index()]
            .as_deref()
            .expect("component checked out")
    }

    /// Mutable access to a component between runs.
    pub fn component_mut(&mut self, id: ComponentId) -> &mut (dyn Component<W, M> + 'static) {
        self.components[id.index()]
            .as_deref_mut()
            .expect("component checked out")
    }

    /// Deliver the next event, if any. Returns `false` when the queue is
    /// empty or the simulation has been halted.
    pub fn step(&mut self) -> bool {
        if self.halt {
            return false;
        }
        let Some((time, (target, msg))) = self.queue.pop() else {
            return false;
        };
        debug_assert!(time >= self.now, "event queue violated time order");
        self.now = time;
        self.deliver(target, msg);
        true
    }

    fn deliver(&mut self, target: ComponentId, msg: M) {
        self.delivered += 1;
        assert!(
            self.delivered <= self.max_events,
            "event cap exceeded ({} events): runaway simulation?",
            self.max_events
        );
        let mut comp = self.components[target.index()]
            .take()
            .unwrap_or_else(|| panic!("message to unknown/checked-out component {target}"));
        {
            let mut ctx = Context {
                now: self.now,
                self_id: target,
                world: &mut self.world,
                queue: &mut self.queue,
                rng: &mut self.rng,
                tracer: &mut self.tracer,
                halt: &mut self.halt,
            };
            comp.handle(msg, &mut ctx);
        }
        self.components[target.index()] = Some(comp);
    }

    /// Run until the queue drains or the simulation halts. Returns the final
    /// simulated time.
    pub fn run_to_completion(&mut self) -> SimTime {
        while self.step() {}
        self.now
    }

    /// Run until simulated time reaches `deadline` (events at exactly the
    /// deadline are delivered), the queue drains, or the simulation halts.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        loop {
            match self.queue.peek_time() {
                Some(t) if t <= deadline && !self.halt => {
                    self.step();
                }
                _ => break,
            }
        }
        if self.now < deadline && !self.halt {
            self.now = deadline;
        }
        self.now
    }

    /// True once [`Context::halt`] has been called.
    pub fn halted(&self) -> bool {
        self.halt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Msg {
        Tick(u32),
        Echo(ComponentId),
        Reply,
        Stop,
    }

    #[derive(Default)]
    struct Counter {
        ticks: u32,
        replies: u32,
    }

    type World = Vec<(SimTime, u32)>;

    impl Component<World, Msg> for Counter {
        fn handle(&mut self, msg: Msg, ctx: &mut Context<'_, World, Msg>) {
            match msg {
                Msg::Tick(n) => {
                    self.ticks += 1;
                    let now = ctx.now();
                    ctx.world().push((now, n));
                    if n > 0 {
                        ctx.send_self(SimSpan::from_millis(1), Msg::Tick(n - 1));
                    }
                }
                Msg::Echo(from) => ctx.send(from, SimSpan::from_micros(5), Msg::Reply),
                Msg::Reply => self.replies += 1,
                Msg::Stop => ctx.halt(),
            }
        }
    }

    #[test]
    fn timers_advance_time() {
        let mut sim = Simulation::new(World::new(), 1);
        let c = sim.add_component(Counter::default());
        sim.post(SimTime::ZERO, c, Msg::Tick(5));
        sim.run_to_completion();
        assert_eq!(sim.now(), SimTime::from_millis(5));
        assert_eq!(sim.world().len(), 6);
        assert_eq!(sim.world()[3], (SimTime::from_millis(3), 2));
    }

    #[test]
    fn request_reply_between_components() {
        let mut sim = Simulation::new(World::new(), 1);
        let a = sim.add_component(Counter::default());
        let b = sim.add_component(Counter::default());
        sim.post(SimTime::ZERO, b, Msg::Echo(a));
        sim.run_to_completion();
        assert_eq!(sim.now(), SimTime::from_micros(5));
        // Downcast-free check: re-handle to observe state via world is
        // overkill here; instead check delivery count.
        assert_eq!(sim.events_delivered(), 2);
    }

    #[test]
    fn halt_stops_early() {
        let mut sim = Simulation::new(World::new(), 1);
        let c = sim.add_component(Counter::default());
        sim.post(SimTime::ZERO, c, Msg::Tick(1000));
        sim.post(SimTime::from_millis(3), c, Msg::Stop);
        sim.run_to_completion();
        assert!(sim.halted());
        assert!(sim.now() <= SimTime::from_millis(3));
    }

    #[test]
    fn run_until_deadline() {
        let mut sim = Simulation::new(World::new(), 1);
        let c = sim.add_component(Counter::default());
        sim.post(SimTime::ZERO, c, Msg::Tick(100));
        sim.run_until(SimTime::from_millis(10));
        assert_eq!(sim.now(), SimTime::from_millis(10));
        assert_eq!(sim.world().len(), 11); // ticks at 0..=10 ms
        assert!(sim.pending_events() > 0);
        sim.run_to_completion();
        assert_eq!(sim.world().len(), 101);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = |seed: u64| -> World {
            let mut sim = Simulation::new(World::new(), seed);
            let c = sim.add_component(Counter::default());
            let d = sim.add_component(Counter::default());
            sim.post(SimTime::ZERO, c, Msg::Tick(50));
            sim.post(SimTime::ZERO, d, Msg::Tick(50));
            sim.post(SimTime::from_micros(1), c, Msg::Echo(d));
            sim.run_to_completion();
            sim.into_world()
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    #[should_panic(expected = "event cap exceeded")]
    fn event_cap_guards_runaway() {
        let mut sim = Simulation::new(World::new(), 1);
        sim.set_max_events(10);
        let c = sim.add_component(Counter::default());
        sim.post(SimTime::ZERO, c, Msg::Tick(1000));
        sim.run_to_completion();
    }

    #[test]
    fn past_sends_are_clamped_to_now() {
        struct PastSender;
        impl Component<World, Msg> for PastSender {
            fn handle(&mut self, msg: Msg, ctx: &mut Context<'_, World, Msg>) {
                // On the initial tick, try to send into the past; the engine
                // must clamp delivery to now (and the Reply itself must not
                // re-trigger a send, or we'd loop at a frozen timestamp).
                if matches!(msg, Msg::Tick(_)) {
                    let id = ctx.self_id();
                    ctx.send_at(id, SimTime::ZERO, Msg::Reply);
                }
            }
        }
        let mut sim = Simulation::new(World::new(), 1);
        let c = sim.add_component(PastSender);
        sim.post(SimTime::from_millis(5), c, Msg::Tick(0));
        sim.run_to_completion();
        assert_eq!(sim.now(), SimTime::from_millis(5));
        assert_eq!(sim.events_delivered(), 2);
    }
}
