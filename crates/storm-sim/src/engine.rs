//! The actor-style simulation engine.
//!
//! A [`Simulation`] owns a set of [`Component`]s (in STORM: the Machine
//! Manager, one Node Manager per node, Program Launchers, application
//! processes, baseline launchers, …), a deterministic [`EventQueue`] of
//! timestamped deliveries, a shared mutable *world* `W` (network
//! occupancy, global variables, filesystem state, metrics), and a
//! deterministic RNG.
//!
//! Components communicate exclusively through timestamped messages; the
//! engine delivers them in `(time, insertion-sequence)` order, so any two
//! runs with the same inputs and seed produce identical traces.
//!
//! ## The batched, arena-backed hot loop (DESIGN.md §16)
//!
//! The queue itself carries only a dense [`EventRef`] — target component
//! index plus a generational [`PayloadId`] into a slab arena — so heap
//! sifts and wheel bucket moves shuffle a few machine words per entry no
//! matter how large the message type is. Components live in a flat
//! dispatch table indexed by that component index (no per-delivery
//! checkout/check-in), and a component may opt messages into same-instant
//! batching via [`Component::batchable`]: the maximal run of consecutive
//! pops at one instant bound for one component is drained into a reusable
//! scratch vector and applied through a single [`Component::handle_batch`]
//! call, preserving `(time, tie, seq)` order exactly. Batching
//! auto-disables while a [`DeliveryOrder`] hook is installed (nonzero
//! ties may legally interleave a freshly-pushed event *between* already
//! drained ones), which also keeps the interleaving digest untouched.

use crate::arena::{ArenaState, ArenaStats, EventArena, PayloadId};
use crate::queue::{
    DeliveryOrder, DeliveryOrderState, EventQueue, QueueAccounting, QueueBackend, QueueStats,
};
use crate::rng::DeterministicRng;
use crate::shard::{ParallelExec, ShardContext, ShardWorld, WindowExec, WindowOutput};
use crate::time::{SimSpan, SimTime};
use crate::trace::{TraceRecord, Tracer};
use std::fmt;
use std::sync::Arc;

/// Windows shorter than this run serially even with threads configured:
/// the scoped-pool spawn cost would eat the win. Exposed for the shard
/// property tests, which need to force both paths.
pub(crate) const PAR_WINDOW_MIN: usize = 128;

/// Identifies a component within one [`Simulation`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(pub(crate) u32);

impl ComponentId {
    /// The raw index (stable for the lifetime of the simulation).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a raw index. No validation against any live
    /// simulation — for tooling/tests that rebuild trace records;
    /// sending to an id that names no component panics at delivery.
    pub fn from_index(ix: u32) -> Self {
        ComponentId(ix)
    }
}

impl fmt::Debug for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Depth of the `rank`-th destination (1-based) in a `fanout`-ary
/// distribution tree rooted at the source — the arrival-skew model shared
/// by the mechanism layer's software-emulated multicast and the engine's
/// [`GroupSchedule::FanoutTree`].
pub fn tree_depth(rank: u64, fanout: u64) -> u64 {
    debug_assert!(fanout >= 2);
    // Nodes at depth d (excluding the root): fanout^1 + … + fanout^d.
    let mut depth = 0u64;
    let mut covered = 0u64;
    let mut level = 1u64;
    while covered < rank {
        depth += 1;
        level *= fanout;
        covered += level;
    }
    depth
}

/// The recipients of one group delivery, in delivery (rank) order.
///
/// Both variants are O(1)-sized: a strided arithmetic progression of
/// component ids (how regularly-wired per-node components lay out), or a
/// shared slice for irregular sets. Cloning is allocation-free (a field
/// copy or an `Arc` refcount bump), which is what lets
/// [`Context::multicast`] borrow the caller's targets.
#[derive(Clone, Debug)]
pub enum GroupTargets {
    /// `len` components at ids `first, first+stride, first+2·stride, …`.
    Strided {
        /// First recipient.
        first: ComponentId,
        /// Id increment between consecutive recipients.
        stride: u32,
        /// Number of recipients.
        len: u32,
    },
    /// An explicit list, shared (never copied per delivery).
    List(Arc<[ComponentId]>),
}

impl GroupTargets {
    /// Number of recipients.
    pub fn len(&self) -> u32 {
        match self {
            GroupTargets::Strided { len, .. } => *len,
            GroupTargets::List(v) => u32::try_from(v.len()).expect("group too large"),
        }
    }

    /// True when there is no recipient.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `rank`-th recipient.
    pub fn get(&self, rank: u32) -> ComponentId {
        match self {
            GroupTargets::Strided { first, stride, len } => {
                debug_assert!(rank < *len);
                ComponentId(first.0 + stride * rank)
            }
            GroupTargets::List(v) => v[rank as usize],
        }
    }
}

/// When each member of a group delivery receives the message, relative to
/// the delivery's base instant.
#[derive(Clone, Copy, Debug)]
pub enum GroupSchedule {
    /// Every recipient at the base instant (hardware multicast).
    Simultaneous,
    /// Recipient `rank` at `base + per_hop × tree_depth(rank+1, fanout)` —
    /// the software-emulated fan-out tree's arrival skew.
    FanoutTree {
        /// Cost of one tree hop.
        per_hop: SimSpan,
        /// Tree fan-out (≥ 2).
        fanout: u32,
    },
}

impl GroupSchedule {
    /// Arrival instant of the `rank`-th recipient.
    pub fn arrival(&self, base: SimTime, rank: u32) -> SimTime {
        match self {
            GroupSchedule::Simultaneous => base,
            GroupSchedule::FanoutTree { per_hop, fanout } => {
                base + *per_hop * tree_depth(u64::from(rank) + 1, u64::from(*fanout))
            }
        }
    }
}

/// A pending group delivery: one queue entry standing in for `targets.len()`
/// per-recipient entries. `base_seq` is the first of the `len` sequence
/// numbers reserved at multicast time, so when delivery pauses (a later
/// arrival instant, or a halt) the remainder is re-inserted at exactly the
/// `(time, seq)` slot its per-recipient equivalent would have occupied.
#[derive(Debug, Clone)]
struct GroupDelivery<M> {
    targets: GroupTargets,
    schedule: GroupSchedule,
    base: SimTime,
    /// Clamp floor: arrivals never precede the multicast call (mirrors
    /// [`Context::send_at`]'s past-clamping).
    floor: SimTime,
    base_seq: u64,
    cursor: u32,
    msg: M,
}

/// Serializable image of one pending group delivery — the public mirror
/// of the engine's internal group-entry payload, for checkpointing.
#[derive(Debug, Clone)]
pub struct GroupState<M> {
    /// Recipients in rank order.
    pub targets: GroupTargets,
    /// Per-rank arrival schedule.
    pub schedule: GroupSchedule,
    /// Base instant arrivals are computed from.
    pub base: SimTime,
    /// Clamp floor (the multicast call's instant).
    pub floor: SimTime,
    /// First of the reserved sequence numbers.
    pub base_seq: u64,
    /// Next undelivered rank.
    pub cursor: u32,
    /// The message (cloned per member at delivery).
    pub msg: M,
}

impl<M> From<GroupDelivery<M>> for GroupState<M> {
    fn from(g: GroupDelivery<M>) -> Self {
        GroupState {
            targets: g.targets,
            schedule: g.schedule,
            base: g.base,
            floor: g.floor,
            base_seq: g.base_seq,
            cursor: g.cursor,
            msg: g.msg,
        }
    }
}

impl<M> From<GroupState<M>> for GroupDelivery<M> {
    fn from(g: GroupState<M>) -> Self {
        GroupDelivery {
            targets: g.targets,
            schedule: g.schedule,
            base: g.base,
            floor: g.floor,
            base_seq: g.base_seq,
            cursor: g.cursor,
            msg: g.msg,
        }
    }
}

impl<M> GroupDelivery<M> {
    fn arrival(&self, rank: u32) -> SimTime {
        self.schedule.arrival(self.base, rank).max(self.floor)
    }
}

/// Component index standing in for "this entry is a group delivery".
/// Real components are capped one below it at registration.
const GROUP_TARGET: u32 = u32::MAX;

/// One queue entry: the target component's dense index (or the group
/// sentinel) plus the generational arena handle of the payload. `Copy`
/// and a few machine words — this is all the wheel and heap ever move.
#[derive(Clone, Copy, Debug)]
struct EventRef {
    target: u32,
    payload: PayloadId,
}

impl EventRef {
    fn one(target: ComponentId, payload: PayloadId) -> Self {
        EventRef {
            target: target.0,
            payload,
        }
    }

    fn group(payload: PayloadId) -> Self {
        EventRef {
            target: GROUP_TARGET,
            payload,
        }
    }

    fn is_group(self) -> bool {
        self.target == GROUP_TARGET
    }
}

/// A simulated actor. `W` is the shared world type, `M` the message type.
pub trait Component<W, M> {
    /// Handle one message delivered at `ctx.now()`.
    fn handle(&mut self, msg: M, ctx: &mut Context<'_, W, M>);

    /// A short name used in traces; defaults to the type name.
    fn name(&self) -> &str {
        std::any::type_name::<Self>()
    }

    /// Opt `msg` into same-instant batching: when this returns `true`
    /// (default `false`), the engine may drain the maximal run of
    /// consecutive same-instant pops bound for this component into one
    /// [`Component::handle_batch`] call instead of one [`Component::
    /// handle`] call each.
    ///
    /// Contract for batchable messages — what keeps a batched run
    /// byte-identical to the unbatched one: their handlers must not halt
    /// the simulation and must not read queue observables
    /// ([`Context::peek_next_event`], [`Context::queue_stats`]) — drained
    /// messages are no longer *in* the queue while the batch runs.
    /// [`Context::pending_messages`] stays exact as long as the batch
    /// handler calls [`Context::next_batch_message`] before each message
    /// (the default [`Component::handle_batch`] does).
    fn batchable(&self, _msg: &M) -> bool {
        false
    }

    /// Handle a same-instant batch of messages, in delivery order. The
    /// default drains the vector through [`Component::handle`] one
    /// message at a time — components overriding this amortize per-batch
    /// work but must preserve exactly that per-message order (and drain
    /// `msgs` completely).
    fn handle_batch(&mut self, msgs: &mut Vec<M>, ctx: &mut Context<'_, W, M>) {
        for msg in msgs.drain(..) {
            ctx.next_batch_message();
            self.handle(msg, ctx);
        }
    }

    /// Opt `msg` into parallel window execution: when this returns `true`
    /// (default `false`), the engine may hand the message to
    /// [`Component::handle_shard`] on a worker thread as part of a
    /// same-instant window, instead of delivering it through
    /// [`Component::handle`] / [`Component::handle_batch`].
    ///
    /// Contract for shardable messages — what keeps a parallel window
    /// byte-identical to the serial run (DESIGN.md §18): handlers must
    /// mutate only the component's own state and the world shard carved
    /// out by [`ShardWorld::extract_shard`](crate::shard::ShardWorld),
    /// read the rest of the world as an immutable snapshot, never halt,
    /// never read queue observables or pending-message counts, and keep
    /// per-message semantics independent of how the window is grouped.
    /// The shardable set must be a superset of the batchable set — the
    /// window drain crosses targets, so a batchable-but-unshardable
    /// message would split a run the serial engine batches.
    fn shardable(&self, _msg: &M) -> bool {
        false
    }

    /// Handle one target's slice of a parallel window, in pop order.
    /// Implementations must call [`ShardContext::next_message`] before
    /// each message and drain `msgs` completely. Only invoked for
    /// messages that opted in via [`Component::shardable`]; the default
    /// panics to surface a missing implementation.
    fn handle_shard(&mut self, _msgs: &mut Vec<M>, _ctx: &mut ShardContext<'_, W, M>) {
        unimplemented!("component declared shardable messages but no handle_shard")
    }

    /// Downcast support for checkpointing: components whose internal
    /// state participates in checkpoint/restore return `Some(self)` so a
    /// harness can reach their concrete type through the dispatch table.
    /// Defaults to `None` — opaque components simply aren't captured.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }

    /// Mutable variant of [`Component::as_any`].
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }
}

/// Logical messages pending across the payload arenas: each interned
/// unicast payload counts one, each interned group counts its undelivered
/// members. Arena slot order is arbitrary, but a sum over it is
/// order-insensitive, so the result is deterministic — and, unlike the
/// raw queue length, identical whether fan-outs travel grouped or
/// per-member.
fn logical_pending<M>(msgs: &EventArena<M>, groups: &EventArena<GroupDelivery<M>>) -> u64 {
    msgs.live() as u64
        + groups
            .iter()
            .map(|g| u64::from(g.targets.len() - g.cursor))
            .sum::<u64>()
}

/// Everything a component may touch while handling a message.
pub struct Context<'a, W, M> {
    now: SimTime,
    self_id: ComponentId,
    world: &'a mut W,
    queue: &'a mut EventQueue<EventRef>,
    msgs: &'a mut EventArena<M>,
    groups: &'a mut EventArena<GroupDelivery<M>>,
    rng: &'a mut DeterministicRng,
    tracer: &'a mut Tracer,
    halt: &'a mut bool,
    /// Messages delivered out of the queue but not yet handled: the
    /// undelivered members of a group mid-expansion, or the not-yet-handled
    /// remainder of the current batch. They live in neither the queue nor a
    /// handler, so [`Context::pending_messages`] must add them back in.
    in_flight: u64,
}

impl<W, M> Context<'_, W, M> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the component handling this message.
    pub fn self_id(&self) -> ComponentId {
        self.self_id
    }

    /// Shared world state.
    pub fn world(&mut self) -> &mut W {
        self.world
    }

    /// Immutable view of the world.
    pub fn world_ref(&self) -> &W {
        self.world
    }

    /// Deliver `msg` to `target` at absolute instant `at`. Instants in the
    /// past are clamped to *now* (delivery still happens, never time travel).
    pub fn send_at(&mut self, target: ComponentId, at: SimTime, msg: M) {
        let at = at.max(self.now);
        let payload = self.msgs.alloc(msg);
        self.queue.push(at, EventRef::one(target, payload));
    }

    /// Deliver `msg` to `target` after `delay`.
    pub fn send(&mut self, target: ComponentId, delay: SimSpan, msg: M) {
        let payload = self.msgs.alloc(msg);
        self.queue
            .push(self.now + delay, EventRef::one(target, payload));
    }

    /// Deliver one `msg` to every member of `targets`, member `rank`
    /// arriving at `schedule.arrival(base, rank)` (clamped to *now*, like
    /// [`Context::send_at`]).
    ///
    /// This costs **one** queue entry regardless of the group size: the
    /// entry reserves `targets.len()` sequence numbers and is expanded
    /// lazily at delivery time, in ascending rank order, so the delivered
    /// trace — order, timestamps and tie-breaks against every other event —
    /// is byte-identical to the equivalent loop of per-member `send_at`
    /// calls. Targets are borrowed: the internal copy is a field copy or
    /// an `Arc` refcount bump, never a per-member allocation.
    pub fn multicast(
        &mut self,
        targets: &GroupTargets,
        base: SimTime,
        schedule: GroupSchedule,
        msg: M,
    ) {
        let len = targets.len();
        if len == 0 {
            return;
        }
        let base_seq = self.queue.reserve_seqs(u64::from(len));
        let group = GroupDelivery {
            targets: targets.clone(),
            schedule,
            base,
            floor: self.now,
            base_seq,
            cursor: 0,
            msg,
        };
        let at = group.arrival(0);
        let payload = self.groups.alloc(group);
        self.queue
            .push_at_seq(at, base_seq, EventRef::group(payload));
    }

    /// Deliver `msg` to self after `delay` (a timer).
    pub fn send_self(&mut self, delay: SimSpan, msg: M) {
        let id = self.self_id;
        self.send(id, delay, msg);
    }

    /// Deliver `msg` to self at absolute instant `at`.
    pub fn send_self_at(&mut self, at: SimTime, msg: M) {
        let id = self.self_id;
        self.send_at(id, at, msg);
    }

    /// The handling component's own deterministic RNG stream (derived
    /// from the root seed and the component index at registration).
    /// Per-component streams are what keep draw sequences identical
    /// between serial and parallel window execution.
    pub fn rng(&mut self) -> &mut DeterministicRng {
        self.rng
    }

    /// Simultaneous access to the world and the RNG — for world-resident
    /// subsystems whose operations draw randomness (e.g. fault-injected
    /// mechanism calls).
    pub fn world_and_rng(&mut self) -> (&mut W, &mut DeterministicRng) {
        (self.world, self.rng)
    }

    /// Logical messages awaiting delivery: each unicast payload counts
    /// one, each group counts its undelivered members, plus whatever the
    /// engine has popped but not yet handled (a group mid-expansion, the
    /// rest of the current batch). The count is therefore identical
    /// whether fan-outs travel grouped or per-member and whether batching
    /// is on or off — unlike the raw queue length — so telemetry built on
    /// it stays byte-identical across delivery modes.
    pub fn pending_messages(&self) -> u64 {
        self.in_flight + logical_pending(self.msgs, self.groups)
    }

    /// Mark the next message of the current batch as handled — called by
    /// [`Component::handle_batch`] implementations before each message so
    /// [`Context::pending_messages`] matches the unbatched run exactly.
    pub fn next_batch_message(&mut self) {
        self.in_flight = self.in_flight.saturating_sub(1);
    }

    /// The instant of the earliest pending event, if any — lets a periodic
    /// component prove the queue is quiet up to some horizon before leaping
    /// over it (idle fast-forward).
    pub fn peek_next_event(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Raw queue accounting (see [`Simulation::queue_stats`]).
    pub fn queue_stats(&self) -> QueueStats {
        self.queue.stats()
    }

    /// Payload-arena accounting (see [`Simulation::arena_stats`]): the
    /// message and group arenas summed, available to components so health
    /// samples can export allocator gauges without reaching the engine.
    pub fn arena_stats(&self) -> ArenaStats {
        self.msgs.stats().merged(self.groups.stats())
    }

    /// Record a trace event (no-op unless tracing is enabled).
    pub fn trace(&mut self, label: &'static str, detail: impl FnOnce() -> String) {
        let now = self.now;
        let id = self.self_id;
        self.tracer.record(now, id, label, detail);
    }

    /// Stop the simulation after this message completes.
    pub fn halt(&mut self) {
        *self.halt = true;
    }
}

/// A discrete-event simulation over world `W` and message type `M`.
pub struct Simulation<W, M> {
    now: SimTime,
    world: W,
    /// The dispatch table: components in registration order, indexed
    /// directly by the dense component index every [`EventRef`] carries.
    /// No per-delivery checkout — the borrow is split from the rest of
    /// the engine state, so dispatch is one bounds check and one call.
    /// `Send` so parallel windows can lend `&mut` slices to scoped
    /// workers (the table itself never leaves the engine thread).
    components: Vec<Box<dyn Component<W, M> + Send>>,
    /// One deterministic RNG stream per component, derived from the root
    /// seed at registration ([`DeterministicRng::stream`] is a pure
    /// function of `(seed, index)`). Every delivery — serial or parallel
    /// — draws from the target's own stream, so concurrent handlers
    /// cannot perturb each other's draw sequences.
    streams: Vec<DeterministicRng>,
    queue: EventQueue<EventRef>,
    /// Interned unicast payloads.
    msgs: EventArena<M>,
    /// Interned group deliveries (rare, large; kept out of the unicast
    /// arena so its slots stay message-sized).
    groups: EventArena<GroupDelivery<M>>,
    /// Reusable batch scratch buffer (capacity persists across batches).
    scratch: Vec<M>,
    /// Same-instant batching enabled? (Configuration; the engine
    /// additionally requires no [`DeliveryOrder`] hook to be installed.)
    batching: bool,
    rng: DeterministicRng,
    tracer: Tracer,
    halt: bool,
    /// Queue entries popped (a group delivery counts once).
    delivered: u64,
    /// Handler invocations (a group delivery counts once per member).
    handled: u64,
    /// Hard cap on handler invocations; guards against accidental event
    /// storms.
    max_events: u64,
    /// Worker count for parallel window execution (1 = serial).
    threads: usize,
    /// Minimum window length worth fanning out (see [`PAR_WINDOW_MIN`]).
    par_min: usize,
    /// Windows actually executed in parallel (not replayed serially) —
    /// lets tests and benches assert the parallel path was exercised.
    par_windows: u64,
    /// The type-erased window executor, installed by
    /// [`Simulation::set_threads`] when `threads > 1`.
    window_exec: Option<Box<dyn WindowExec<W, M>>>,
}

impl<W, M> Simulation<W, M> {
    /// Create a simulation with the given world and seed, on the default
    /// event-queue backend (timing wheel, default granularity).
    pub fn new(world: W, seed: u64) -> Self {
        Self::with_queue(world, seed, EventQueue::new())
    }

    /// Create a simulation on an explicit event-queue backend. `granularity`
    /// sizes the wheel's buckets (callers pass a fraction of their periodic
    /// strobe/tick interval); it is ignored by the heap backend. Pop order
    /// — and therefore every trace, stat, and telemetry snapshot — is
    /// byte-identical across backends.
    pub fn new_with_backend(
        world: W,
        seed: u64,
        backend: QueueBackend,
        granularity: SimSpan,
    ) -> Self {
        Self::with_queue(
            world,
            seed,
            EventQueue::with_backend_and_granularity(backend, granularity),
        )
    }

    fn with_queue(world: W, seed: u64, queue: EventQueue<EventRef>) -> Self {
        Simulation {
            now: SimTime::ZERO,
            world,
            components: Vec::new(),
            streams: Vec::new(),
            queue,
            msgs: EventArena::new(),
            groups: EventArena::new(),
            scratch: Vec::new(),
            batching: true,
            rng: DeterministicRng::new(seed),
            tracer: Tracer::disabled(),
            halt: false,
            delivered: 0,
            handled: 0,
            max_events: u64::MAX,
            threads: 1,
            par_min: PAR_WINDOW_MIN,
            par_windows: 0,
            window_exec: None,
        }
    }

    /// Enable trace recording (see [`Tracer`]).
    pub fn enable_tracing(&mut self) {
        self.tracer = Tracer::enabled();
    }

    /// Enable trace recording bounded to `capacity` records; overflow is
    /// counted in [`Tracer::dropped`] instead of growing memory.
    pub fn enable_tracing_with_capacity(&mut self, capacity: usize) {
        self.tracer = Tracer::bounded(capacity);
    }

    /// Set a hard cap on the number of delivered events.
    pub fn set_max_events(&mut self, cap: u64) {
        self.max_events = cap;
    }

    /// Toggle same-instant batching (on by default). Purely a throughput
    /// knob: batched and unbatched runs are byte-identical in trace,
    /// stats, and digest. Batching is additionally suspended — regardless
    /// of this setting — while a [`DeliveryOrder`] hook is installed.
    pub fn set_event_batching(&mut self, on: bool) {
        self.batching = on;
    }

    /// Whether same-instant batching is configured on (see
    /// [`Simulation::set_event_batching`]).
    pub fn event_batching(&self) -> bool {
        self.batching
    }

    /// Register a component, returning its id. Components are `Send` so
    /// parallel windows can execute them on scoped workers; a component
    /// never migrates threads mid-handler and needs no synchronisation.
    pub fn add_component(&mut self, c: impl Component<W, M> + Send + 'static) -> ComponentId {
        self.add_boxed(Box::new(c))
    }

    /// Register a boxed component.
    pub fn add_boxed(&mut self, c: Box<dyn Component<W, M> + Send>) -> ComponentId {
        let ix = u32::try_from(self.components.len()).expect("too many components");
        assert!(ix < GROUP_TARGET, "too many components");
        self.components.push(c);
        self.streams.push(self.rng.stream(u64::from(ix)));
        ComponentId(ix)
    }

    /// Worker count for parallel window execution (see
    /// [`Simulation::set_threads`]).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// How many windows executed on the parallel path so far. Zero in
    /// serial mode; tests use this to prove byte-identity runs were not
    /// vacuously serial.
    pub fn parallel_windows(&self) -> u64 {
        self.par_windows
    }

    /// Tune the minimum same-instant window length worth fanning out to
    /// workers; shorter windows run serially. Exists for tests and
    /// benches that need to force the parallel path on small windows.
    pub fn set_parallel_window_min(&mut self, min: usize) {
        self.par_min = min.max(1);
    }

    /// Schedule an initial message delivery.
    pub fn post(&mut self, at: SimTime, target: ComponentId, msg: M) {
        let payload = self.msgs.alloc(msg);
        self.queue.push(at, EventRef::one(target, payload));
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Shared world (immutable).
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Shared world (mutable) — for experiment setup/teardown between runs.
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consume the simulation, returning the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Queue events delivered so far. A group delivery (multicast) counts
    /// **once** per pop however many recipients it expands to — this is the
    /// event-queue-work metric the scalability benches track.
    pub fn events_delivered(&self) -> u64 {
        self.delivered
    }

    /// Handler invocations so far. A group delivery counts once per member,
    /// so this equals what `events_delivered` would have been under
    /// per-member sends; the `max_events` runaway guard is enforced on it.
    pub fn messages_handled(&self) -> u64 {
        self.handled
    }

    /// Number of pending events.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Raw queue accounting (push/pop totals, current and peak depth),
    /// returned by value without cloning queue contents. Unlike
    /// [`Simulation::pending_messages`], depth counts a group entry once,
    /// so it differs across delivery modes (but not across backends).
    pub fn queue_stats(&self) -> QueueStats {
        self.queue.stats()
    }

    /// Payload-arena accounting: live and peak interned payloads plus the
    /// resident bytes of the slot tables, summed over the message and
    /// group arenas. After a run drains the queue, `live` is zero — every
    /// payload is taken exactly once.
    pub fn arena_stats(&self) -> ArenaStats {
        self.msgs.stats().merged(self.groups.stats())
    }

    /// The event-queue backend this simulation runs on.
    pub fn queue_backend(&self) -> QueueBackend {
        self.queue.backend()
    }

    /// Install (or remove) a [`DeliveryOrder`] hook on the event queue —
    /// the DST entry point for exploring same-timestamp delivery
    /// permutations. Install before posting the first event so every
    /// insertion is keyed; `None` (the default) keeps the engine's classic
    /// `(time, seq)` order bit-identical. While a hook is installed,
    /// same-instant batching is suspended (ties may legally order a
    /// freshly-pushed event between already-drained ones).
    pub fn set_delivery_order(&mut self, order: Option<DeliveryOrder>) {
        self.queue.set_delivery_order(order);
    }

    /// The queue's interleaving digest: FNV-1a over every `(time, seq)`
    /// pair delivered so far. Accumulated only while a [`DeliveryOrder`]
    /// hook is installed — the DST explorer's measure of *which* delivery
    /// interleaving a run actually executed.
    pub fn interleaving_digest(&self) -> u64 {
        self.queue.pop_digest()
    }

    /// Logical messages awaiting delivery (see
    /// [`Context::pending_messages`]); identical across delivery modes.
    pub fn pending_messages(&self) -> u64 {
        logical_pending(&self.msgs, &self.groups)
    }

    /// The recorded trace (empty unless tracing was enabled).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Borrow a component back out (e.g. to read final state after a run).
    pub fn component(&self, id: ComponentId) -> &dyn Component<W, M> {
        &*self.components[id.index()]
    }

    /// Mutable access to a component between runs.
    pub fn component_mut(&mut self, id: ComponentId) -> &mut (dyn Component<W, M> + 'static) {
        &mut *self.components[id.index()]
    }

    /// True once [`Context::halt`] has been called.
    pub fn halted(&self) -> bool {
        self.halt
    }
}

impl<W, M> Simulation<W, M>
where
    W: ShardWorld + Sync + 'static,
    M: Clone + Send + 'static,
{
    /// Configure parallel window execution on `threads` workers
    /// (`<= 1` restores serial execution). Parallel runs are
    /// byte-identical to serial ones — trace, stats, digest, telemetry
    /// — per the DESIGN.md §18 zero-perturbation contract; parallelism
    /// is additionally suspended, like batching, while a
    /// [`DeliveryOrder`] hook is installed.
    pub fn set_threads(&mut self, threads: usize) {
        let threads = threads.max(1);
        self.threads = threads;
        self.window_exec = if threads > 1 {
            Some(Box::new(ParallelExec::<W, M>::default()))
        } else {
            None
        };
    }
}

impl<W, M: Clone> Simulation<W, M> {
    /// Deliver the next event, if any. Returns `false` when the queue is
    /// empty or the simulation has been halted.
    ///
    /// A group entry is expanded here, member by member in ascending rank
    /// order; members whose arrival instant lies beyond the popped entry's
    /// (a fan-out tree's deeper ranks) are re-inserted as one entry at
    /// their own reserved `(time, seq)` slot, so interleaving with every
    /// other pending event matches per-member sends exactly. A unicast
    /// entry whose component opted the message into batching additionally
    /// drains its same-instant run (see [`Component::batchable`]).
    pub fn step(&mut self) -> bool {
        if self.halt {
            return false;
        }
        let Some((time, eref)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(time >= self.now, "event queue violated time order");
        self.now = time;
        self.delivered += 1;
        if !eref.is_group() && self.batching && self.queue.delivery_order().is_none() {
            if self.window_exec.is_some()
                && self.components[eref.target as usize].shardable(self.msgs.get(eref.payload))
            {
                self.deliver_parallel_window(time, eref);
            } else {
                self.deliver_maybe_batched(time, eref);
            }
        } else {
            self.apply(time, eref);
        }
        true
    }

    /// Drain the maximal run of consecutive same-instant *shardable*
    /// unicast pops into a window and execute it across worker threads,
    /// merging outputs back in canonical serial order (see
    /// [`crate::shard`]). Falls back to an exact serial replay for short
    /// or single-target windows and when the world refuses shard
    /// extraction. The first non-window pop is carried and applied right
    /// after, exactly like the batch path's carry.
    fn deliver_parallel_window(&mut self, time: SimTime, first: EventRef) {
        let mut window: Vec<(u32, PayloadId)> = vec![(first.target, first.payload)];
        let mut carry = None;
        let mut multi_target = false;
        while self.queue.peek_time() == Some(time) {
            let Some((_, next)) = self.queue.pop() else {
                break;
            };
            self.delivered += 1;
            let shardable = !next.is_group()
                && self.components[next.target as usize].shardable(self.msgs.get(next.payload));
            if !shardable {
                carry = Some(next);
                break;
            }
            multi_target |= next.target != first.target;
            window.push((next.target, next.payload));
        }
        let outs = if multi_target && window.len() >= self.par_min {
            self.run_window_parallel(&window)
        } else {
            None
        };
        match outs {
            Some(outs) => {
                self.par_windows += 1;
                self.merge_window(time, &window, outs, carry.is_some());
            }
            None => self.replay_window_serially(time, &window, carry.is_some()),
        }
        if let Some(next) = carry {
            if self.halt {
                // Shardable handlers are contractually halt-free; if one
                // halts anyway, mirror the batch path: hand the popped
                // successor back to the queue rather than deliver past
                // the halt.
                self.queue.push(time, next);
            } else {
                self.apply(time, next);
            }
        }
    }

    /// Clone the window's payloads and hand them to the installed
    /// executor. Payloads stay live in the arena — the merge takes them
    /// in serial order so slot reuse and live/peak trajectories match
    /// serial runs exactly.
    fn run_window_parallel(&mut self, window: &[(u32, PayloadId)]) -> Option<WindowOutput<M>> {
        let exec = self.window_exec.take()?;
        let wmsgs: Vec<(u32, M)> = window
            .iter()
            .map(|&(t, p)| (t, self.msgs.get(p).clone()))
            .collect();
        let outs = exec.run(
            self.threads,
            self.now,
            self.tracer.is_enabled(),
            &mut self.world,
            &mut self.components,
            &mut self.streams,
            &wmsgs,
        );
        self.window_exec = Some(exec);
        outs
    }

    /// Execute an already-drained window serially, reproducing exactly
    /// what the serial engine would have done with these pops: maximal
    /// same-target batchable runs go through [`Component::handle_batch`],
    /// the event after a run is delivered singly (the batch carry), and
    /// everything else is delivered one message at a time. Because the
    /// whole window was popped up front, the queue's depth high-water
    /// mark is biased by the events the serial engine would not yet have
    /// popped at each step.
    fn replay_window_serially(
        &mut self,
        _time: SimTime,
        window: &[(u32, PayloadId)],
        carry_popped: bool,
    ) {
        let total = window.len() as u64 + u64::from(carry_popped);
        let mut virt = 0u64; // events the serial engine has popped by now
        let mut i = 0usize;
        while i < window.len() {
            let (t, p) = window[i];
            let msg = self.msgs.take(p);
            if self.components[t as usize].batchable(&msg) {
                let mut batch = std::mem::take(&mut self.scratch);
                batch.push(msg);
                let mut end = i + 1;
                while end < window.len()
                    && window[end].0 == t
                    && self.components[t as usize].batchable(self.msgs.get(window[end].1))
                {
                    batch.push(self.msgs.take(window[end].1));
                    end += 1;
                }
                let follower_in_window = end < window.len();
                virt += (end - i) as u64;
                if follower_in_window || (carry_popped && end == window.len()) {
                    // The serial batch drain pops the run's successor
                    // early (its carry) before the handler pushes.
                    virt += 1;
                }
                self.queue.set_depth_bias((total - virt) as usize);
                self.handled += batch.len() as u64;
                assert!(
                    self.handled <= self.max_events,
                    "event cap exceeded ({} events): runaway simulation?",
                    self.max_events
                );
                {
                    let mut ctx = Context {
                        now: self.now,
                        self_id: ComponentId(t),
                        world: &mut self.world,
                        queue: &mut self.queue,
                        msgs: &mut self.msgs,
                        groups: &mut self.groups,
                        rng: &mut self.streams[t as usize],
                        tracer: &mut self.tracer,
                        halt: &mut self.halt,
                        in_flight: batch.len() as u64,
                    };
                    self.components[t as usize].handle_batch(&mut batch, &mut ctx);
                }
                debug_assert!(batch.is_empty(), "handle_batch must drain its input");
                batch.clear();
                self.scratch = batch;
                if follower_in_window {
                    let (ft, fp) = window[end];
                    let fmsg = self.msgs.take(fp);
                    self.deliver(ComponentId(ft), fmsg, 0);
                    i = end + 1;
                } else {
                    i = end;
                }
            } else {
                virt += 1;
                self.queue.set_depth_bias((total - virt) as usize);
                self.deliver(ComponentId(t), msg, 0);
                i += 1;
            }
        }
        self.queue.set_depth_bias(0);
    }

    /// Merge per-event worker outputs back in canonical serial order,
    /// replaying the serial engine's accounting byte for byte: payload
    /// takes in serial order (arena slot reuse and live/peak match),
    /// handler pushes through the real queue (sequence numbers assigned
    /// exactly as serial handlers would), trace records through the real
    /// tracer (bounded-cap drops included), and the queue depth biased
    /// by the not-yet-serially-popped remainder so `peak` matches.
    fn merge_window(
        &mut self,
        _time: SimTime,
        window: &[(u32, PayloadId)],
        mut outs: WindowOutput<M>,
        carry_popped: bool,
    ) {
        debug_assert_eq!(outs.len(), window.len());
        let total = window.len() as u64 + u64::from(carry_popped);
        let mut virt = 0u64;
        let mut i = 0usize;
        while i < window.len() {
            let (t, p) = window[i];
            if self.components[t as usize].batchable(self.msgs.get(p)) {
                let mut end = i + 1;
                while end < window.len()
                    && window[end].0 == t
                    && self.components[t as usize].batchable(self.msgs.get(window[end].1))
                {
                    end += 1;
                }
                let follower_in_window = end < window.len();
                virt += (end - i) as u64;
                if follower_in_window || (carry_popped && end == window.len()) {
                    virt += 1;
                }
                // Serial drains the whole run's payloads before the
                // batch handler runs, then counts and caps it as one.
                for &(_, fp) in &window[i..end] {
                    let _ = self.msgs.take(fp);
                }
                self.queue.set_depth_bias((total - virt) as usize);
                self.handled += (end - i) as u64;
                assert!(
                    self.handled <= self.max_events,
                    "event cap exceeded ({} events): runaway simulation?",
                    self.max_events
                );
                for k in i..end {
                    self.emit_output(&mut outs, k);
                }
                if follower_in_window {
                    // The run's carry: taken and delivered singly.
                    let (_, fp) = window[end];
                    let _ = self.msgs.take(fp);
                    self.count_one_handled();
                    self.emit_output(&mut outs, end);
                    i = end + 1;
                } else {
                    i = end;
                }
            } else {
                virt += 1;
                let _ = self.msgs.take(p);
                self.queue.set_depth_bias((total - virt) as usize);
                self.count_one_handled();
                self.emit_output(&mut outs, i);
                i += 1;
            }
        }
        self.queue.set_depth_bias(0);
    }

    /// Replay window position `w`'s buffered sends and traces through the
    /// real queue and tracer, in emission order.
    fn emit_output(&mut self, outs: &mut WindowOutput<M>, w: usize) {
        let msgs = &mut self.msgs;
        let queue = &mut self.queue;
        let tracer = &mut self.tracer;
        outs.emit(
            w,
            |to, at, msg| {
                let payload = msgs.alloc(msg);
                queue.push(at, EventRef::one(to, payload));
            },
            |rec| {
                let TraceRecord {
                    time,
                    component,
                    label,
                    detail,
                } = rec;
                tracer.record(time, component, label, || detail);
            },
        );
    }

    /// The single-delivery half of [`Simulation::deliver`]'s accounting.
    fn count_one_handled(&mut self) {
        self.handled += 1;
        assert!(
            self.handled <= self.max_events,
            "event cap exceeded ({} events): runaway simulation?",
            self.max_events
        );
    }

    /// Deliver one already-popped entry: take its payload back out of the
    /// arena and dispatch (expanding a group member by member).
    fn apply(&mut self, time: SimTime, eref: EventRef) {
        if eref.is_group() {
            let group = self.groups.take(eref.payload);
            self.expand_group(time, group);
        } else {
            let msg = self.msgs.take(eref.payload);
            self.deliver(ComponentId(eref.target), msg, 0);
        }
    }

    /// Unicast delivery with the same-instant batch fast path. With no
    /// [`DeliveryOrder`] hook installed (the caller checked), every tie is
    /// zero and anything a handler pushes at this instant receives a later
    /// sequence number than everything already queued — so the maximal run
    /// of consecutive same-instant, same-target, batchable pops drained
    /// here is exactly the run the unbatched engine would deliver
    /// back-to-back, and handling it as one batch preserves the delivery
    /// order byte for byte.
    fn deliver_maybe_batched(&mut self, time: SimTime, eref: EventRef) {
        let target = ComponentId(eref.target);
        let ix = eref.target as usize;
        let msg = self.msgs.take(eref.payload);
        if !self.components[ix].batchable(&msg) {
            self.deliver(target, msg, 0);
            return;
        }
        let mut batch = std::mem::take(&mut self.scratch);
        batch.push(msg);
        // The first same-instant pop that is *not* part of the run is
        // already out of the queue; it is applied right after the batch,
        // exactly where the unbatched engine would have delivered it.
        let mut carry = None;
        while self.queue.peek_time() == Some(time) {
            let Some((_, next)) = self.queue.pop() else {
                break;
            };
            self.delivered += 1;
            let same_run = !next.is_group()
                && next.target == eref.target
                && self.components[ix].batchable(self.msgs.get(next.payload));
            if !same_run {
                carry = Some(next);
                break;
            }
            batch.push(self.msgs.take(next.payload));
        }
        self.handled += batch.len() as u64;
        assert!(
            self.handled <= self.max_events,
            "event cap exceeded ({} events): runaway simulation?",
            self.max_events
        );
        {
            let mut ctx = Context {
                now: self.now,
                self_id: target,
                world: &mut self.world,
                queue: &mut self.queue,
                msgs: &mut self.msgs,
                groups: &mut self.groups,
                rng: &mut self.streams[ix],
                tracer: &mut self.tracer,
                halt: &mut self.halt,
                in_flight: batch.len() as u64,
            };
            self.components[ix].handle_batch(&mut batch, &mut ctx);
        }
        debug_assert!(batch.is_empty(), "handle_batch must drain its input");
        batch.clear();
        self.scratch = batch;
        if let Some(next) = carry {
            if self.halt {
                // Batchable handlers are contractually halt-free; if one
                // halts anyway, hand the already-popped successor back to
                // the queue (fresh sequence number — unobservable after a
                // halt) rather than deliver past the halt.
                self.queue.push(time, next);
            } else {
                self.apply(time, next);
            }
        }
    }

    /// Expand a popped group delivery member by member. The final member
    /// receives the message by move — a group of N costs N-1 clones, and
    /// none of them allocate for the fan-out message types the cluster
    /// uses (asserted by the allocation-free expansion test).
    fn expand_group(&mut self, time: SimTime, mut group: GroupDelivery<M>) {
        let len = group.targets.len();
        loop {
            let rank = group.cursor;
            let at = group.arrival(rank);
            if at > time || self.halt {
                // Later arrival (or halt mid-group): park the remainder at
                // its reserved slot and stop here.
                let seq = group.base_seq + u64::from(rank);
                let payload = self.groups.alloc(group);
                self.queue.push_at_seq(at, seq, EventRef::group(payload));
                return;
            }
            group.cursor += 1;
            let target = group.targets.get(rank);
            if group.cursor == len {
                self.deliver(target, group.msg, 0);
                return;
            }
            let msg = group.msg.clone();
            // The undelivered rest of this group is in-flight, not queued;
            // tell the handler's context about it so pending-message
            // counts match per-member sends.
            self.deliver(target, msg, u64::from(len - group.cursor));
        }
    }

    fn deliver(&mut self, target: ComponentId, msg: M, in_flight: u64) {
        self.handled += 1;
        assert!(
            self.handled <= self.max_events,
            "event cap exceeded ({} events): runaway simulation?",
            self.max_events
        );
        assert!(
            target.index() < self.components.len(),
            "message to unknown component {target}"
        );
        let mut ctx = Context {
            now: self.now,
            self_id: target,
            world: &mut self.world,
            queue: &mut self.queue,
            msgs: &mut self.msgs,
            groups: &mut self.groups,
            rng: &mut self.streams[target.index()],
            tracer: &mut self.tracer,
            halt: &mut self.halt,
            in_flight,
        };
        self.components[target.index()].handle(msg, &mut ctx);
    }

    /// Run until the queue drains or the simulation halts. Returns the final
    /// simulated time.
    pub fn run_to_completion(&mut self) -> SimTime {
        while self.step() {}
        self.now
    }

    /// Run until simulated time reaches `deadline` (events at exactly the
    /// deadline are delivered), the queue drains, or the simulation halts.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        loop {
            match self.queue.peek_time() {
                Some(t) if t <= deadline && !self.halt => {
                    self.step();
                }
                _ => break,
            }
        }
        if self.now < deadline && !self.halt {
            self.now = deadline;
        }
        self.now
    }

    /// Full image of the engine's mutable state for checkpointing: clock,
    /// run flags, counters, every pending queue entry with its `(time,
    /// tie, seq)` key, both payload arenas (including free-list order and
    /// generations, so the raw handles inside queue entries stay valid),
    /// the RNG stream, the delivery-order hook mid-stream, and the trace.
    ///
    /// Component and world state are *not* included — they are the
    /// caller's to capture (see `Component::as_any`). Call between
    /// deliveries only (never from inside a handler).
    pub fn export_engine_state(&self) -> EngineState<M> {
        let groups_src = self.groups.export_state();
        EngineState {
            now: self.now,
            halt: self.halt,
            delivered: self.delivered,
            handled: self.handled,
            max_events: self.max_events,
            batching: self.batching,
            entries: self
                .queue
                .entries()
                .map(|(time, tie, seq, eref)| QueuedEventState {
                    time,
                    tie,
                    seq,
                    target: eref.target,
                    payload: eref.payload.to_raw(),
                })
                .collect(),
            accounting: self.queue.export_accounting(),
            order: self.queue.delivery_order().map(DeliveryOrder::export_state),
            msgs: self.msgs.export_state(),
            groups: ArenaState {
                slots: groups_src
                    .slots
                    .into_iter()
                    .map(|(gen, val)| (gen, val.map(GroupState::from)))
                    .collect(),
                free: groups_src.free,
                peak: groups_src.peak,
                reserve: groups_src.reserve,
            },
            rng_seed: self.rng.seed(),
            rng_state: self.rng.state(),
            streams: self.streams.iter().map(DeterministicRng::state).collect(),
            trace_enabled: self.tracer.is_enabled(),
            trace_capacity: self.tracer.capacity(),
            trace_records: self.tracer.records().to_vec(),
            trace_dropped: self.tracer.dropped(),
        }
    }

    /// Overwrite this simulation's mutable state with a checkpointed
    /// image. The simulation should be freshly constructed on the desired
    /// queue backend with its components registered in the original
    /// order; any events posted during that construction are discarded
    /// and replaced by the image's pending entries. After this call the
    /// run continues byte-identically to the run the image was exported
    /// from — pop order, RNG draws, digests, and trace all resume
    /// mid-stream.
    pub fn import_engine_state(&mut self, state: EngineState<M>) {
        self.now = state.now;
        self.halt = state.halt;
        self.delivered = state.delivered;
        self.handled = state.handled;
        self.max_events = state.max_events;
        self.batching = state.batching;
        self.msgs = EventArena::import_state(state.msgs);
        self.groups = EventArena::import_state(ArenaState {
            slots: state
                .groups
                .slots
                .into_iter()
                .map(|(gen, val)| (gen, val.map(GroupDelivery::from)))
                .collect(),
            free: state.groups.free,
            peak: state.groups.peak,
            reserve: state.groups.reserve,
        });
        self.queue.clear();
        self.queue
            .set_delivery_order(state.order.map(DeliveryOrder::import_state));
        for e in state.entries {
            let (ix, gen) = e.payload;
            self.queue.restore_entry(
                e.time,
                e.tie,
                e.seq,
                EventRef {
                    target: e.target,
                    payload: PayloadId::from_raw(ix, gen),
                },
            );
        }
        self.queue.import_accounting(state.accounting);
        self.rng = DeterministicRng::from_parts(state.rng_seed, state.rng_state);
        // Per-component streams: seeds are re-derived from the root seed
        // (a pure function of `(seed, index)`), mid-run positions come
        // from the image.
        assert_eq!(
            state.streams.len(),
            self.components.len(),
            "checkpoint stream count does not match registered components"
        );
        self.streams = state
            .streams
            .iter()
            .enumerate()
            .map(|(ix, &st)| {
                let derived = self.rng.stream(ix as u64);
                DeterministicRng::from_parts(derived.seed(), st)
            })
            .collect();
        self.tracer = Tracer::import_state(
            state.trace_enabled,
            state.trace_capacity,
            state.trace_records,
            state.trace_dropped,
        );
    }
}

/// One pending queue entry in an [`EngineState`]: the full `(time, tie,
/// seq)` pop key plus the raw event reference.
#[derive(Debug, Clone, Copy)]
pub struct QueuedEventState {
    /// Delivery instant (including any order-hook delay already applied).
    pub time: SimTime,
    /// Delivery-order tie key.
    pub tie: u64,
    /// Insertion sequence number.
    pub seq: u64,
    /// Raw target component index; `u32::MAX` marks a group entry whose
    /// payload lives in the group arena.
    pub target: u32,
    /// Raw `(slot, generation)` payload handle into the matching arena.
    pub payload: (u32, u32),
}

/// Serializable image of a [`Simulation`]'s mutable engine state,
/// produced by [`Simulation::export_engine_state`]. World and component
/// state are captured separately by the embedding harness.
#[derive(Debug, Clone)]
pub struct EngineState<M> {
    /// Current simulated time.
    pub now: SimTime,
    /// Halt flag.
    pub halt: bool,
    /// Queue entries popped so far.
    pub delivered: u64,
    /// Handler invocations so far.
    pub handled: u64,
    /// Runaway-guard cap on handler invocations.
    pub max_events: u64,
    /// Same-instant batching configuration.
    pub batching: bool,
    /// Every pending queue entry.
    pub entries: Vec<QueuedEventState>,
    /// Queue lifetime counters and interleaving digest.
    pub accounting: QueueAccounting,
    /// Delivery-order hook mid-stream, if installed.
    pub order: Option<DeliveryOrderState>,
    /// The unicast payload arena.
    pub msgs: ArenaState<M>,
    /// The group-delivery arena.
    pub groups: ArenaState<GroupState<M>>,
    /// RNG root seed (stream derivations depend on it).
    pub rng_seed: u64,
    /// RNG state after all draws so far.
    pub rng_state: [u64; 4],
    /// Per-component stream positions, in registration order (seeds are
    /// re-derived from the root seed at import).
    pub streams: Vec<[u64; 4]>,
    /// Whether tracing is on.
    pub trace_enabled: bool,
    /// Trace record cap, if bounded.
    pub trace_capacity: Option<usize>,
    /// Kept trace records.
    pub trace_records: Vec<TraceRecord>,
    /// Trace records dropped over the cap.
    pub trace_dropped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Msg {
        Tick(u32),
        Echo(ComponentId),
        Reply,
        Stop,
    }

    #[derive(Default)]
    struct Counter {
        ticks: u32,
        replies: u32,
    }

    type World = Vec<(SimTime, u32)>;

    impl Component<World, Msg> for Counter {
        fn handle(&mut self, msg: Msg, ctx: &mut Context<'_, World, Msg>) {
            match msg {
                Msg::Tick(n) => {
                    self.ticks += 1;
                    let now = ctx.now();
                    ctx.world().push((now, n));
                    if n > 0 {
                        ctx.send_self(SimSpan::from_millis(1), Msg::Tick(n - 1));
                    }
                }
                Msg::Echo(from) => ctx.send(from, SimSpan::from_micros(5), Msg::Reply),
                Msg::Reply => self.replies += 1,
                Msg::Stop => ctx.halt(),
            }
        }
    }

    #[test]
    fn delivery_order_permutes_same_instant_posts() {
        // Three same-instant posts; a scripted order reverses their
        // delivery while an inert hook (and no hook) keeps posting order.
        let run = |order: Option<DeliveryOrder>| {
            let mut sim = Simulation::new(World::new(), 1);
            let c = sim.add_component(Counter::default());
            sim.set_delivery_order(order);
            let t = SimTime::from_millis(3);
            for n in [10u32, 20, 30] {
                sim.post(t, c, Msg::Tick(n));
            }
            sim.run_to_completion();
            sim.world().iter().map(|&(_, n)| n).collect::<Vec<_>>()
        };
        let plain = run(None);
        assert_eq!(&plain[..3], &[10, 20, 30]);
        assert_eq!(plain, run(Some(DeliveryOrder::seeded(9, 0))), "inert hook");
        let reversed = run(Some(DeliveryOrder::script(vec![2, 1, 0])));
        assert_eq!(&reversed[..3], &[30, 20, 10]);
        // Every post is still delivered exactly once, at the same instant.
        assert_eq!(plain.len(), reversed.len());
    }

    #[test]
    fn timers_advance_time() {
        let mut sim = Simulation::new(World::new(), 1);
        let c = sim.add_component(Counter::default());
        sim.post(SimTime::ZERO, c, Msg::Tick(5));
        sim.run_to_completion();
        assert_eq!(sim.now(), SimTime::from_millis(5));
        assert_eq!(sim.world().len(), 6);
        assert_eq!(sim.world()[3], (SimTime::from_millis(3), 2));
    }

    #[test]
    fn request_reply_between_components() {
        let mut sim = Simulation::new(World::new(), 1);
        let a = sim.add_component(Counter::default());
        let b = sim.add_component(Counter::default());
        sim.post(SimTime::ZERO, b, Msg::Echo(a));
        sim.run_to_completion();
        assert_eq!(sim.now(), SimTime::from_micros(5));
        // Downcast-free check: re-handle to observe state via world is
        // overkill here; instead check delivery count.
        assert_eq!(sim.events_delivered(), 2);
    }

    #[test]
    fn halt_stops_early() {
        let mut sim = Simulation::new(World::new(), 1);
        let c = sim.add_component(Counter::default());
        sim.post(SimTime::ZERO, c, Msg::Tick(1000));
        sim.post(SimTime::from_millis(3), c, Msg::Stop);
        sim.run_to_completion();
        assert!(sim.halted());
        assert!(sim.now() <= SimTime::from_millis(3));
    }

    #[test]
    fn run_until_deadline() {
        let mut sim = Simulation::new(World::new(), 1);
        let c = sim.add_component(Counter::default());
        sim.post(SimTime::ZERO, c, Msg::Tick(100));
        sim.run_until(SimTime::from_millis(10));
        assert_eq!(sim.now(), SimTime::from_millis(10));
        assert_eq!(sim.world().len(), 11); // ticks at 0..=10 ms
        assert!(sim.pending_events() > 0);
        sim.run_to_completion();
        assert_eq!(sim.world().len(), 101);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = |seed: u64| -> World {
            let mut sim = Simulation::new(World::new(), seed);
            let c = sim.add_component(Counter::default());
            let d = sim.add_component(Counter::default());
            sim.post(SimTime::ZERO, c, Msg::Tick(50));
            sim.post(SimTime::ZERO, d, Msg::Tick(50));
            sim.post(SimTime::from_micros(1), c, Msg::Echo(d));
            sim.run_to_completion();
            sim.into_world()
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn arena_drains_to_zero_after_a_run() {
        let mut sim = Simulation::new(World::new(), 3);
        let c = sim.add_component(Counter::default());
        let d = sim.add_component(Counter::default());
        sim.post(SimTime::ZERO, c, Msg::Tick(40));
        sim.post(SimTime::ZERO, d, Msg::Tick(40));
        sim.run_to_completion();
        let s = sim.arena_stats();
        assert_eq!(s.live, 0, "every payload taken exactly once");
        assert!(s.peak >= 2);
        assert!(s.payload_bytes > 0);
        assert!(s.capacity <= s.peak, "slab reuse: capacity bounded by peak");
    }

    #[test]
    #[should_panic(expected = "event cap exceeded")]
    fn event_cap_guards_runaway() {
        let mut sim = Simulation::new(World::new(), 1);
        sim.set_max_events(10);
        let c = sim.add_component(Counter::default());
        sim.post(SimTime::ZERO, c, Msg::Tick(1000));
        sim.run_to_completion();
    }

    /// A recorder world: every delivery appends `(time, component, value)`.
    type RecWorld = Vec<(SimTime, u32, u32)>;

    struct Recorder;
    impl Component<RecWorld, u32> for Recorder {
        fn handle(&mut self, msg: u32, ctx: &mut Context<'_, RecWorld, u32>) {
            let now = ctx.now();
            let id = ctx.self_id().0;
            ctx.world().push((now, id, msg));
        }
    }

    /// A component that fans out on request: value 1000+n multicasts n to
    /// components 1..=N, letting tests interleave group and unicast sends
    /// from inside a handler (where sequence numbers actually contend).
    struct FanOut {
        targets: GroupTargets,
        schedule: GroupSchedule,
        unicast: bool,
    }
    impl Component<RecWorld, u32> for FanOut {
        fn handle(&mut self, msg: u32, ctx: &mut Context<'_, RecWorld, u32>) {
            if msg >= 500 {
                // A follow-up/competitor message: record it, don't re-fan.
                let now = ctx.now();
                let id = ctx.self_id().0;
                ctx.world().push((now, id, msg));
                return;
            }
            let base = ctx.now() + SimSpan::from_micros(10);
            if self.unicast {
                for rank in 0..self.targets.len() {
                    let at = self.schedule.arrival(base, rank);
                    ctx.send_at(self.targets.get(rank), at, msg);
                }
            } else {
                ctx.multicast(&self.targets, base, self.schedule, msg);
            }
            // A competing event scheduled *after* the fan-out must stay
            // after every member in tie-break order.
            let id = ctx.self_id();
            ctx.send_at(id, base, msg + 500);
        }
    }

    fn fanout_run(unicast: bool, schedule: GroupSchedule) -> RecWorld {
        let mut sim = Simulation::new(RecWorld::new(), 9);
        let fan = sim.add_component(FanOut {
            targets: GroupTargets::Strided {
                first: ComponentId(1),
                stride: 1,
                len: 8,
            },
            schedule,
            unicast,
        });
        for _ in 0..8 {
            sim.add_component(Recorder);
        }
        sim.post(SimTime::ZERO, fan, 7);
        sim.post(SimTime::from_micros(10), fan, 900); // ties with the fan-out base
        sim.run_to_completion();
        sim.into_world()
    }

    #[test]
    fn multicast_trace_matches_per_member_sends() {
        for schedule in [
            GroupSchedule::Simultaneous,
            GroupSchedule::FanoutTree {
                per_hop: SimSpan::from_micros(3),
                fanout: 2,
            },
        ] {
            let group = fanout_run(false, schedule);
            let unicast = fanout_run(true, schedule);
            assert_eq!(group, unicast, "schedule {schedule:?}");
        }
    }

    #[test]
    fn multicast_counts_one_event_many_messages() {
        let mut sim = Simulation::new(RecWorld::new(), 1);
        let fan = sim.add_component(FanOut {
            targets: GroupTargets::Strided {
                first: ComponentId(1),
                stride: 1,
                len: 8,
            },
            schedule: GroupSchedule::Simultaneous,
            unicast: false,
        });
        for _ in 0..8 {
            sim.add_component(Recorder);
        }
        sim.post(SimTime::ZERO, fan, 3);
        sim.run_to_completion();
        // Pops: fan-out trigger + 1 group + the competing self-send.
        assert_eq!(sim.events_delivered(), 3);
        // Handler calls: trigger + 8 members + competing self-send.
        assert_eq!(sim.messages_handled(), 10);
    }

    #[test]
    fn multicast_list_targets_and_empty_group() {
        let mut sim = Simulation::new(RecWorld::new(), 1);
        struct Kick;
        impl Component<RecWorld, u32> for Kick {
            fn handle(&mut self, _msg: u32, ctx: &mut Context<'_, RecWorld, u32>) {
                let now = ctx.now();
                let list: Arc<[ComponentId]> = [ComponentId(2), ComponentId(1)].into();
                ctx.multicast(
                    &GroupTargets::List(list),
                    now,
                    GroupSchedule::Simultaneous,
                    11,
                );
                // Empty group: no-op, no reserved entry popped.
                ctx.multicast(
                    &GroupTargets::Strided {
                        first: ComponentId(1),
                        stride: 1,
                        len: 0,
                    },
                    now,
                    GroupSchedule::Simultaneous,
                    12,
                );
            }
        }
        let kick = sim.add_component(Kick);
        sim.add_component(Recorder);
        sim.add_component(Recorder);
        sim.post(SimTime::ZERO, kick, 0);
        sim.run_to_completion();
        // List order is the delivery order (rank order, not id order).
        let world = sim.world();
        assert_eq!(world[0].1, 2);
        assert_eq!(world[1].1, 1);
        assert_eq!(sim.messages_handled(), 3);
    }

    #[test]
    fn halt_mid_group_parks_the_remainder() {
        struct Halter {
            after: u32,
        }
        impl Component<RecWorld, u32> for Halter {
            fn handle(&mut self, msg: u32, ctx: &mut Context<'_, RecWorld, u32>) {
                let now = ctx.now();
                let id = ctx.self_id().0;
                ctx.world().push((now, id, msg));
                if id == self.after {
                    ctx.halt();
                }
            }
        }
        let mut sim = Simulation::new(RecWorld::new(), 1);
        struct Kick;
        impl Component<RecWorld, u32> for Kick {
            fn handle(&mut self, _msg: u32, ctx: &mut Context<'_, RecWorld, u32>) {
                let now = ctx.now();
                ctx.multicast(
                    &GroupTargets::Strided {
                        first: ComponentId(1),
                        stride: 1,
                        len: 4,
                    },
                    now,
                    GroupSchedule::Simultaneous,
                    5,
                );
            }
        }
        let kick = sim.add_component(Kick);
        for _ in 0..4 {
            sim.add_component(Halter { after: 2 });
        }
        sim.post(SimTime::ZERO, kick, 0);
        sim.run_to_completion();
        assert!(sim.halted());
        // Members 1 and 2 ran; 3 and 4 are parked in the queue, undelivered.
        assert_eq!(sim.world().len(), 2);
        assert_eq!(sim.pending_events(), 1);
        assert_eq!(sim.messages_handled(), 3);
    }

    #[test]
    fn pending_messages_identical_across_delivery_modes() {
        // Recorders log ctx.pending_messages() on every delivery; the
        // sequence must not depend on the fan-out encoding, even while a
        // group is mid-expansion.
        struct PendingRecorder;
        impl Component<RecWorld, u32> for PendingRecorder {
            fn handle(&mut self, _msg: u32, ctx: &mut Context<'_, RecWorld, u32>) {
                let now = ctx.now();
                let id = ctx.self_id().0;
                let pending = u32::try_from(ctx.pending_messages()).unwrap();
                ctx.world().push((now, id, pending));
            }
        }
        let run = |unicast: bool, schedule: GroupSchedule| -> RecWorld {
            let mut sim = Simulation::new(RecWorld::new(), 5);
            let targets = GroupTargets::Strided {
                first: ComponentId(1),
                stride: 1,
                len: 6,
            };
            let fan = sim.add_component(FanOut {
                targets,
                schedule,
                unicast,
            });
            for _ in 0..6 {
                sim.add_component(PendingRecorder);
            }
            sim.post(SimTime::ZERO, fan, 3);
            assert_eq!(sim.pending_messages(), 1);
            sim.run_to_completion();
            sim.into_world()
        };
        for schedule in [
            GroupSchedule::Simultaneous,
            GroupSchedule::FanoutTree {
                per_hop: SimSpan::from_micros(3),
                fanout: 2,
            },
        ] {
            assert_eq!(run(false, schedule), run(true, schedule));
        }
    }

    /// A batching component: records deliveries like [`Recorder`] plus the
    /// batch sizes its `handle_batch` override observed, and counts
    /// pending messages per delivery so batched/unbatched equivalence of
    /// the compensated pending count is checked too.
    struct BatchRecorder {
        batch_sizes: Vec<usize>,
    }
    impl Component<RecWorld, u32> for BatchRecorder {
        fn handle(&mut self, msg: u32, ctx: &mut Context<'_, RecWorld, u32>) {
            let now = ctx.now();
            let id = ctx.self_id().0;
            let pending = u32::try_from(ctx.pending_messages()).unwrap();
            ctx.world().push((now, id, msg * 1000 + pending));
            if msg == 7 {
                // Push more same-instant work from inside a batch: new
                // events get later sequence numbers, so they sort after
                // the drained run in both modes.
                ctx.send_self_at(now, 8);
            }
        }

        fn batchable(&self, msg: &u32) -> bool {
            *msg < 100
        }

        fn handle_batch(&mut self, msgs: &mut Vec<u32>, ctx: &mut Context<'_, RecWorld, u32>) {
            self.batch_sizes.push(msgs.len());
            for msg in msgs.drain(..) {
                ctx.next_batch_message();
                self.handle(msg, ctx);
            }
        }
    }

    fn batch_run(batching: bool) -> (RecWorld, u64, u64) {
        let mut sim = Simulation::new(RecWorld::new(), 11);
        let a = sim.add_component(BatchRecorder {
            batch_sizes: Vec::new(),
        });
        let b = sim.add_component(BatchRecorder {
            batch_sizes: Vec::new(),
        });
        sim.set_event_batching(batching);
        let t = SimTime::from_micros(50);
        // A run for a, one non-batchable interloper (>= 100), a run for b,
        // then more for a at the same instant, plus a later singleton.
        for (target, msg) in [(a, 1u32), (a, 2), (a, 300), (b, 3), (b, 7), (a, 4), (a, 5)] {
            sim.post(t, target, msg);
        }
        sim.post(t + SimSpan::from_micros(5), b, 6);
        sim.run_to_completion();
        let delivered = sim.events_delivered();
        let handled = sim.messages_handled();
        assert_eq!(sim.arena_stats().live, 0);
        (sim.into_world(), delivered, handled)
    }

    #[test]
    fn batching_is_byte_identical_and_counts_match() {
        let (on, delivered_on, handled_on) = batch_run(true);
        let (off, delivered_off, handled_off) = batch_run(false);
        assert_eq!(on, off, "trace identical with batching on and off");
        assert_eq!(delivered_on, delivered_off, "pops identical");
        assert_eq!(handled_on, handled_off, "handler invocations identical");
    }

    #[test]
    fn batching_suspends_under_a_delivery_order_hook() {
        // With a permuting hook installed the engine must fall back to
        // per-message delivery (ties can reorder same-instant events), and
        // the hooked trace must be independent of the batching toggle.
        let run = |batching: bool| {
            let mut sim = Simulation::new(RecWorld::new(), 2);
            let a = sim.add_component(BatchRecorder {
                batch_sizes: Vec::new(),
            });
            sim.set_event_batching(batching);
            sim.set_delivery_order(Some(DeliveryOrder::script(vec![2, 1, 0])));
            let t = SimTime::from_micros(9);
            for msg in [1u32, 2, 3] {
                sim.post(t, a, msg);
            }
            sim.run_to_completion();
            let digest = sim.interleaving_digest();
            (sim.into_world(), digest)
        };
        let (on, digest_on) = run(true);
        let (off, digest_off) = run(false);
        assert_eq!(on, off);
        assert_eq!(digest_on, digest_off);
        // The scripted ties actually permuted (batching did not flatten
        // the permutation away).
        assert_eq!(
            on.iter().map(|&(_, _, v)| v / 1000).collect::<Vec<_>>(),
            vec![3, 2, 1]
        );
    }

    #[test]
    fn tree_depth_is_correct() {
        // 4-ary tree: ranks 1..=4 at depth 1, 5..=20 at depth 2, …
        assert_eq!(tree_depth(1, 4), 1);
        assert_eq!(tree_depth(4, 4), 1);
        assert_eq!(tree_depth(5, 4), 2);
        assert_eq!(tree_depth(20, 4), 2);
        assert_eq!(tree_depth(21, 4), 3);
        // Binary tree.
        assert_eq!(tree_depth(2, 2), 1);
        assert_eq!(tree_depth(3, 2), 2);
        assert_eq!(tree_depth(6, 2), 2);
        assert_eq!(tree_depth(7, 2), 3);
    }

    #[test]
    fn engine_state_roundtrip_resumes_byte_identically() {
        // Run to a midpoint (with a group mid-flight and traces on),
        // export, import into a freshly built simulation, and finish
        // both: worlds, counters, and traces must match exactly.
        let build = |batching: bool| {
            let mut sim = Simulation::new(RecWorld::new(), 23);
            let fan = sim.add_component(FanOut {
                targets: GroupTargets::Strided {
                    first: ComponentId(1),
                    stride: 1,
                    len: 6,
                },
                schedule: GroupSchedule::FanoutTree {
                    per_hop: SimSpan::from_micros(3),
                    fanout: 2,
                },
                unicast: false,
            });
            for _ in 0..6 {
                sim.add_component(Recorder);
            }
            sim.set_event_batching(batching);
            sim.enable_tracing();
            sim.post(SimTime::ZERO, fan, 7);
            sim.post(SimTime::from_micros(10), fan, 900);
            sim
        };
        let mut orig = build(true);
        let mut half = build(true);
        // Stop mid-run, with fan-out remainders still parked.
        orig.run_until(SimTime::from_micros(12));
        half.run_until(SimTime::from_micros(12));
        let state = half.export_engine_state();
        // Import into a fresh sim that was built differently (events
        // posted at construction get discarded, batching differs). The
        // world is the harness's to carry — copy it across.
        let mut restored = build(false);
        *restored.world_mut() = half.world().clone();
        restored.import_engine_state(state);
        assert_eq!(restored.now(), orig.now());
        assert_eq!(restored.pending_messages(), orig.pending_messages());
        orig.run_to_completion();
        restored.run_to_completion();
        assert_eq!(restored.now(), orig.now());
        assert_eq!(restored.world(), orig.world());
        assert_eq!(restored.events_delivered(), orig.events_delivered());
        assert_eq!(restored.messages_handled(), orig.messages_handled());
        assert_eq!(
            restored.tracer().records(),
            orig.tracer().records(),
            "trace resumes mid-stream"
        );
        assert_eq!(restored.queue_stats(), orig.queue_stats());
    }

    #[test]
    fn past_sends_are_clamped_to_now() {
        struct PastSender;
        impl Component<World, Msg> for PastSender {
            fn handle(&mut self, msg: Msg, ctx: &mut Context<'_, World, Msg>) {
                // On the initial tick, try to send into the past; the engine
                // must clamp delivery to now (and the Reply itself must not
                // re-trigger a send, or we'd loop at a frozen timestamp).
                if matches!(msg, Msg::Tick(_)) {
                    let id = ctx.self_id();
                    ctx.send_at(id, SimTime::ZERO, Msg::Reply);
                }
            }
        }
        let mut sim = Simulation::new(World::new(), 1);
        let c = sim.add_component(PastSender);
        sim.post(SimTime::from_millis(5), c, Msg::Tick(0));
        sim.run_to_completion();
        assert_eq!(sim.now(), SimTime::from_millis(5));
        assert_eq!(sim.events_delivered(), 2);
    }
}
