//! Lightweight event tracing.
//!
//! Disabled by default (zero cost beyond a branch); when enabled, each
//! [`crate::Context::trace`] call appends a [`TraceRecord`]. Tests compare
//! traces between runs to assert determinism, and examples print them as
//! timelines.

use crate::engine::ComponentId;
use crate::time::SimTime;
use std::fmt;

/// One trace record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// When the event happened.
    pub time: SimTime,
    /// Which component recorded it.
    pub component: ComponentId,
    /// A static label, e.g. `"launch.fragment"`.
    pub label: &'static str,
    /// Free-form detail (only built when tracing is on).
    pub detail: String,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>14}] {:>5} {:<28} {}",
            format!("{}", self.time),
            format!("{}", self.component),
            self.label,
            self.detail
        )
    }
}

/// A trace sink. Construct with [`Tracer::enabled`] or [`Tracer::disabled`].
#[derive(Debug, Default)]
pub struct Tracer {
    enabled: bool,
    records: Vec<TraceRecord>,
}

impl Tracer {
    /// A tracer that records nothing.
    pub fn disabled() -> Self {
        Tracer {
            enabled: false,
            records: Vec::new(),
        }
    }

    /// A tracer that records everything.
    pub fn enabled() -> Self {
        Tracer {
            enabled: true,
            records: Vec::new(),
        }
    }

    /// Whether records are being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record one event. `detail` is only evaluated when enabled.
    pub fn record(
        &mut self,
        time: SimTime,
        component: ComponentId,
        label: &'static str,
        detail: impl FnOnce() -> String,
    ) {
        if self.enabled {
            self.records.push(TraceRecord {
                time,
                component,
                label,
                detail: detail(),
            });
        }
    }

    /// All records so far.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Records with a given label.
    pub fn with_label<'a>(&'a self, label: &'a str) -> impl Iterator<Item = &'a TraceRecord> {
        self.records.iter().filter(move |r| r.label == label)
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no records were kept.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Render the whole trace, one record per line.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for r in &self.records {
            let _ = writeln!(out, "{r}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_skips_detail_closure() {
        let mut t = Tracer::disabled();
        let mut called = false;
        t.record(SimTime::ZERO, ComponentId(0), "x", || {
            called = true;
            String::new()
        });
        assert!(!called);
        assert!(t.is_empty());
    }

    #[test]
    fn enabled_tracer_records() {
        let mut t = Tracer::enabled();
        t.record(
            SimTime::from_millis(1),
            ComponentId(3),
            "launch.start",
            || "job 7".to_string(),
        );
        t.record(
            SimTime::from_millis(2),
            ComponentId(3),
            "launch.done",
            || "job 7".to_string(),
        );
        assert_eq!(t.len(), 2);
        assert_eq!(t.with_label("launch.done").count(), 1);
        let rendered = t.render();
        assert!(rendered.contains("launch.start"));
        assert!(rendered.contains("job 7"));
    }
}
