//! Lightweight event tracing.
//!
//! Disabled by default (zero cost beyond a branch); when enabled, each
//! [`crate::Context::trace`] call appends a [`TraceRecord`]. Tests compare
//! traces between runs to assert determinism, and examples print them as
//! timelines.

use crate::engine::ComponentId;
use crate::time::SimTime;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Mutex;

/// Intern a label as `&'static str`.
///
/// Trace labels (and metric names) are `&'static str` by design — in a
/// live run they come from string literals. A checkpointed artifact only
/// has owned strings, so restore routes every label through this table:
/// the first sighting of a label leaks one small allocation, repeats
/// reuse it. The set of distinct labels in a run is tiny and fixed, so
/// the leak is bounded and amortised to nothing across restores.
pub fn intern_label(label: &str) -> &'static str {
    static TABLE: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
    let mut table = TABLE.lock().expect("label intern table poisoned");
    if let Some(&hit) = table.get(label) {
        return hit;
    }
    let leaked: &'static str = Box::leak(label.to_owned().into_boxed_str());
    table.insert(leaked);
    leaked
}

/// One trace record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// When the event happened.
    pub time: SimTime,
    /// Which component recorded it.
    pub component: ComponentId,
    /// A static label, e.g. `"launch.fragment"`.
    pub label: &'static str,
    /// Free-form detail (only built when tracing is on).
    pub detail: String,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>14}] {:>5} {:<28} {}",
            format!("{}", self.time),
            format!("{}", self.component),
            self.label,
            self.detail
        )
    }
}

/// A trace sink. Construct with [`Tracer::enabled`] or [`Tracer::disabled`];
/// use [`Tracer::bounded`] to cap memory on large traced runs.
#[derive(Debug, Default)]
pub struct Tracer {
    enabled: bool,
    records: Vec<TraceRecord>,
    capacity: Option<usize>,
    dropped: u64,
}

impl Tracer {
    /// A tracer that records nothing.
    pub fn disabled() -> Self {
        Tracer {
            enabled: false,
            records: Vec::new(),
            capacity: None,
            dropped: 0,
        }
    }

    /// A tracer that records everything, unbounded.
    pub fn enabled() -> Self {
        Tracer {
            enabled: true,
            records: Vec::new(),
            capacity: None,
            dropped: 0,
        }
    }

    /// A tracer that keeps the first `capacity` records and counts the
    /// rest in [`Tracer::dropped`] — so a 4096-node traced run cannot
    /// grow `records` without bound. The kept prefix is still
    /// byte-identical across same-seed runs.
    pub fn bounded(capacity: usize) -> Self {
        Tracer {
            enabled: true,
            records: Vec::new(),
            capacity: Some(capacity),
            dropped: 0,
        }
    }

    /// Whether records are being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The record cap, if this tracer is bounded.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Records discarded because the cap was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Record one event. `detail` is only evaluated when enabled and
    /// under the cap.
    pub fn record(
        &mut self,
        time: SimTime,
        component: ComponentId,
        label: &'static str,
        detail: impl FnOnce() -> String,
    ) {
        if !self.enabled {
            return;
        }
        if self.capacity.is_some_and(|cap| self.records.len() >= cap) {
            self.dropped += 1;
            return;
        }
        self.records.push(TraceRecord {
            time,
            component,
            label,
            detail: detail(),
        });
    }

    /// All records so far.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Records with a given label.
    pub fn with_label<'a>(&'a self, label: &'a str) -> impl Iterator<Item = &'a TraceRecord> {
        self.records.iter().filter(move |r| r.label == label)
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no records were kept.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Rebuild a tracer from checkpointed parts: configuration, the kept
    /// records (labels should come through [`intern_label`]), and the
    /// drop count. A disabled tracer restores as `disabled()` regardless
    /// of `records`.
    pub fn import_state(
        enabled: bool,
        capacity: Option<usize>,
        records: Vec<TraceRecord>,
        dropped: u64,
    ) -> Self {
        Tracer {
            enabled,
            records,
            capacity,
            dropped,
        }
    }

    /// Render the whole trace, one record per line.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for r in &self.records {
            let _ = writeln!(out, "{r}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_skips_detail_closure() {
        let mut t = Tracer::disabled();
        let mut called = false;
        t.record(SimTime::ZERO, ComponentId(0), "x", || {
            called = true;
            String::new()
        });
        assert!(!called);
        assert!(t.is_empty());
    }

    #[test]
    fn enabled_tracer_records() {
        let mut t = Tracer::enabled();
        t.record(
            SimTime::from_millis(1),
            ComponentId(3),
            "launch.start",
            || "job 7".to_string(),
        );
        t.record(
            SimTime::from_millis(2),
            ComponentId(3),
            "launch.done",
            || "job 7".to_string(),
        );
        assert_eq!(t.len(), 2);
        assert_eq!(t.with_label("launch.done").count(), 1);
        let rendered = t.render();
        assert!(rendered.contains("launch.start"));
        assert!(rendered.contains("job 7"));
    }

    #[test]
    fn bounded_tracer_keeps_prefix_and_counts_drops() {
        let mut t = Tracer::bounded(2);
        assert_eq!(t.capacity(), Some(2));
        for i in 0..5u32 {
            t.record(
                SimTime::from_micros(u64::from(i)),
                ComponentId(0),
                "e",
                || format!("{i}"),
            );
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        assert_eq!(t.records()[1].detail, "1");
    }

    #[test]
    fn over_cap_detail_closure_is_not_evaluated() {
        let mut t = Tracer::bounded(1);
        t.record(SimTime::ZERO, ComponentId(0), "kept", String::new);
        let mut called = false;
        t.record(SimTime::ZERO, ComponentId(0), "dropped", || {
            called = true;
            String::new()
        });
        assert!(!called);
        assert_eq!(t.dropped(), 1);
    }
}
