//! The deterministic event queue.
//!
//! Two interchangeable backends hide behind one total order, `(time, tie,
//! sequence)`, where the sequence number is a monotonically increasing
//! insertion counter and the *tie* is an optional reordering key drawn by a
//! [`DeliveryOrder`] hook (always zero when no hook is installed, which
//! reduces the order to the classic `(time, seq)`). Two events scheduled
//! for the same instant therefore fire in insertion order by default,
//! which makes the whole simulation a pure function of its inputs and
//! seed — the property the determinism tests in `engine.rs` assert. A DST
//! harness installs a [`DeliveryOrder`] to *permute* same-instant events
//! deterministically, exploring legal schedules the fixed insertion order
//! never produces (see DESIGN.md §14).
//!
//! * [`QueueBackend::Heap`] — the reference `BinaryHeap`, O(log n) per
//!   operation. Kept as the executable specification the wheel is
//!   property-tested against.
//! * [`QueueBackend::Wheel`] — a hierarchical timing wheel tuned to the
//!   timeslice-periodic workload: a front heap holding the bucket being
//!   drained, two 256-slot levels of power-of-two buckets, and a sorted
//!   overflow map that cascades inward as the cursor wraps. Push and pop
//!   are O(1) amortised; pop order is bit-for-bit identical to the heap.
//!
//! Wheel geometry and the ordering argument are documented in DESIGN.md
//! §12 ("Simulator clock").

use crate::time::{SimSpan, SimTime};
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};

/// One scheduled entry.
#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    /// Reordering key drawn by the [`DeliveryOrder`] hook; 0 when no hook
    /// is installed, so the default order degenerates to `(time, seq)`.
    tie: u64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.tie == other.tie && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Entry<E> {
    /// Pop-order key: ascending `(time, tie, seq)` — the natural order,
    /// unlike the reversed `Ord` below that serves the max-heap.
    fn key(&self) -> (SimTime, u64, u64) {
        (self.time, self.tie, self.seq)
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.tie.cmp(&self.tie))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// SplitMix64 step — the statelessly seedable generator the tie stream is
/// drawn from, so a failing seeded run can be regenerated as an explicit
/// script without ever recording it.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum OrderMode {
    /// Draw ties from a SplitMix64 stream: tie `i` is a pure function of
    /// `(seed, i)`, uniform over `0..=amplitude`.
    Seeded { state: u64, amplitude: u64 },
    /// Replay an explicit tie script (one value per insertion, in
    /// insertion order); zero once the script is exhausted.
    Script(Vec<u64>),
}

/// A pluggable delivery-order hook: assigns each inserted event a *tie*
/// key that permutes same-timestamp delivery (the queue's total order is
/// `(time, tie, seq)`), and optionally a bounded random delivery delay.
///
/// Legality: ties never move an event across a timestamp boundary, so
/// time order — the only ordering the simulation contract guarantees — is
/// preserved; only the arbitrary same-instant insertion order is explored.
/// The optional delay only ever *increases* an event's delivery instant
/// (never below the scheduling instant), so causality holds too.
///
/// Determinism: the hook owns all its randomness (SplitMix64 over its own
/// seed); it never touches the simulation RNG, so with amplitude 0 and no
/// delay a hooked run is byte-identical to an un-hooked one. Tie `i` of a
/// seeded hook is a pure function of `(seed, i)` where `i` is the queue's
/// lifetime insertion index — [`DeliveryOrder::regenerate_ties`] turns any
/// seeded (undelayed) run into an equivalent explicit [`DeliveryOrder::
/// script`] using only the run's final push count, which is what the DST
/// shrinker delta-debugs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeliveryOrder {
    mode: OrderMode,
    max_delay: SimSpan,
    draws: u64,
}

impl DeliveryOrder {
    /// A seeded hook: tie `i` is uniform over `0..=amplitude`, drawn from
    /// SplitMix64 over `seed`. Amplitude 0 draws all-zero ties (identity
    /// order — useful to prove the hook itself is inert).
    pub fn seeded(seed: u64, amplitude: u64) -> Self {
        DeliveryOrder {
            mode: OrderMode::Seeded {
                state: seed,
                amplitude,
            },
            max_delay: SimSpan::ZERO,
            draws: 0,
        }
    }

    /// An explicit tie script: insertion `i` gets `ties[i]`, or 0 once the
    /// script is exhausted. `script(vec![])` is the identity order.
    pub fn script(ties: Vec<u64>) -> Self {
        DeliveryOrder {
            mode: OrderMode::Script(ties),
            max_delay: SimSpan::ZERO,
            draws: 0,
        }
    }

    /// Builder: also delay each event by a bounded random span (uniform
    /// over `0..=max_delay`, drawn from the same per-insertion SplitMix64
    /// value as the tie). Delays only ever push deliveries *later*, so
    /// time-order legality is preserved; scripts never delay. A delayed
    /// run is not script-regenerable (the delays change event times), so
    /// the DST explorer keeps delays off and uses pure tie permutation.
    pub fn with_max_delay(mut self, max_delay: SimSpan) -> Self {
        self.max_delay = max_delay;
        self
    }

    /// The first `n` ties a seeded hook with this `(seed, amplitude)`
    /// draws — converts a finished seeded run (its queue reports how many
    /// events were pushed) into the equivalent explicit script.
    pub fn regenerate_ties(seed: u64, amplitude: u64, n: u64) -> Vec<u64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                let x = splitmix64(&mut state);
                if amplitude == 0 {
                    0
                } else {
                    x % (amplitude + 1)
                }
            })
            .collect()
    }

    /// Number of insertions this hook has keyed so far.
    pub fn draws(&self) -> u64 {
        self.draws
    }

    /// Serializable image of this hook for checkpointing: the mode with
    /// its internal stream state (the *current* SplitMix64 state for a
    /// seeded hook, not the original seed), the delay bound, and the
    /// lifetime draw count. [`DeliveryOrder::import_state`] resumes the
    /// tie stream exactly where it left off.
    pub fn export_state(&self) -> DeliveryOrderState {
        DeliveryOrderState {
            mode: match &self.mode {
                OrderMode::Seeded { state, amplitude } => OrderModeState::Seeded {
                    state: *state,
                    amplitude: *amplitude,
                },
                OrderMode::Script(ties) => OrderModeState::Script(ties.clone()),
            },
            max_delay: self.max_delay,
            draws: self.draws,
        }
    }

    /// Rebuild a hook mid-stream from an exported image. See
    /// [`DeliveryOrder::export_state`].
    pub fn import_state(state: DeliveryOrderState) -> Self {
        DeliveryOrder {
            mode: match state.mode {
                OrderModeState::Seeded { state, amplitude } => {
                    OrderMode::Seeded { state, amplitude }
                }
                OrderModeState::Script(ties) => OrderMode::Script(ties),
            },
            max_delay: state.max_delay,
            draws: state.draws,
        }
    }

    /// The `(tie, delay)` pair for the next insertion.
    fn next(&mut self) -> (u64, SimSpan) {
        self.draws += 1;
        match &mut self.mode {
            OrderMode::Seeded { state, amplitude } => {
                let x = splitmix64(state);
                let tie = if *amplitude == 0 {
                    0
                } else {
                    x % (*amplitude + 1)
                };
                let delay = if self.max_delay.is_zero() {
                    SimSpan::ZERO
                } else {
                    SimSpan::from_nanos((x >> 32) % (self.max_delay.as_nanos() + 1))
                };
                (tie, delay)
            }
            OrderMode::Script(ties) => (
                ties.get((self.draws - 1) as usize).copied().unwrap_or(0),
                SimSpan::ZERO,
            ),
        }
    }
}

/// Serializable image of a [`DeliveryOrder`]'s mode, produced by
/// [`DeliveryOrder::export_state`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrderModeState {
    /// A seeded hook's current SplitMix64 state and tie amplitude.
    Seeded {
        /// The stream state *after* all draws so far.
        state: u64,
        /// Ties are uniform over `0..=amplitude`.
        amplitude: u64,
    },
    /// An explicit tie script (full contents; position is `draws`).
    Script(Vec<u64>),
}

/// Serializable image of a [`DeliveryOrder`], produced by
/// [`DeliveryOrder::export_state`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeliveryOrderState {
    /// The mode with its internal stream position.
    pub mode: OrderModeState,
    /// Bounded random delivery delay, zero when disabled.
    pub max_delay: SimSpan,
    /// Lifetime insertions keyed so far.
    pub draws: u64,
}

/// Which data structure backs an [`EventQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueBackend {
    /// The legacy `BinaryHeap` reference implementation.
    Heap,
    /// The hierarchical timing wheel (default).
    #[default]
    Wheel,
}

/// A snapshot of queue accounting, returned by value (no clones of the
/// queue contents).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueStats {
    /// Total events ever pushed.
    pub pushed: u64,
    /// Total events ever popped.
    pub popped: u64,
    /// Events currently pending.
    pub len: usize,
    /// High-water mark of pending events.
    pub peak: usize,
}

/// Slots per wheel level (2^LEVEL_BITS).
const LEVEL_BITS: u32 = 8;
const LEVEL_SLOTS: usize = 1 << LEVEL_BITS;
const LEVEL_MASK: u64 = (LEVEL_SLOTS - 1) as u64;
/// Default bucket granularity: 2^14 ns ≈ 16.4 µs. One L0 revolution spans
/// ~4.2 ms (a few 1 ms MM ticks), one L1 revolution ~1.07 s.
const DEFAULT_SHIFT: u32 = 14;
/// Granularity clamp: 2^10 ns ≈ 1 µs up to 2^20 ns ≈ 1 ms.
const MIN_SHIFT: u32 = 10;
const MAX_SHIFT: u32 = 20;

fn set_bit(occ: &mut [u64; 4], bit: usize) {
    occ[bit >> 6] |= 1u64 << (bit & 63);
}

fn clear_bit(occ: &mut [u64; 4], bit: usize) {
    occ[bit >> 6] &= !(1u64 << (bit & 63));
}

/// Index of the first set bit at or after `from`, if any.
fn next_set_bit(occ: &[u64; 4], from: usize) -> Option<usize> {
    let mut word = from >> 6;
    let mut bit = from & 63;
    while word < 4 {
        let masked = occ[word] & (!0u64 << bit);
        if masked != 0 {
            return Some((word << 6) + masked.trailing_zeros() as usize);
        }
        word += 1;
        bit = 0;
    }
    None
}

/// Hierarchical timing wheel. `cursor` is the absolute L0 bucket index of
/// the bucket currently being drained through `front`; every entry parked
/// in `l0`/`l1`/`overflow` lives in a strictly later bucket, so the global
/// minimum is always in `front` whenever the wheel is non-empty.
#[derive(Debug)]
struct Wheel<E> {
    /// log2 of the bucket width in nanoseconds.
    shift: u32,
    /// Absolute L0 bucket index of the front position.
    cursor: u64,
    /// Late pushes at or before the cursor bucket (so pop order matches
    /// the reference heap) plus any drained bucket that was not already
    /// in pop order.
    front: BinaryHeap<Entry<E>>,
    /// The current bucket when it drained already sorted — the common
    /// case: a same-instant fan-out is pushed in seq order, so the whole
    /// slice pops straight off this vector (stored in reverse pop order)
    /// without paying the heap's O(log n) sift per event. `pop_min` /
    /// `peek` take the global min of this run's tail and the heap top.
    run: Vec<Entry<E>>,
    /// Same L0 page as the cursor: absolute buckets `b` with
    /// `b >> 8 == cursor >> 8` and `b > cursor`, indexed by `b & 255`.
    l0: Vec<Vec<Entry<E>>>,
    l0_occ: [u64; 4],
    l0_len: usize,
    /// Same L1 page: `b >> 16 == cursor >> 16`, later L0 page, indexed by
    /// `(b >> 8) & 255`.
    l1: Vec<Vec<Entry<E>>>,
    l1_occ: [u64; 4],
    l1_len: usize,
    /// Beyond the current L1 page, keyed by `b >> 16`; the first key
    /// cascades into `l1` when the cursor wraps past the page boundary.
    overflow: BTreeMap<u64, Vec<Entry<E>>>,
    overflow_len: usize,
    /// Drained overflow-page buffers, kept for reuse so the periodic
    /// L1-page crossing in a long steady-state run allocates nothing.
    spare: Vec<Vec<Entry<E>>>,
}

impl<E> Wheel<E> {
    fn new(shift: u32) -> Self {
        Wheel {
            shift,
            cursor: 0,
            front: BinaryHeap::new(),
            run: Vec::new(),
            l0: (0..LEVEL_SLOTS).map(|_| Vec::new()).collect(),
            l0_occ: [0; 4],
            l0_len: 0,
            l1: (0..LEVEL_SLOTS).map(|_| Vec::new()).collect(),
            l1_occ: [0; 4],
            l1_len: 0,
            overflow: BTreeMap::new(),
            overflow_len: 0,
            spare: Vec::new(),
        }
    }

    fn bucket_of(&self, time: SimTime) -> u64 {
        time.as_nanos() >> self.shift
    }

    fn len(&self) -> usize {
        self.front.len() + self.run.len() + self.l0_len + self.l1_len + self.overflow_len
    }

    fn insert(&mut self, e: Entry<E>) {
        let b = self.bucket_of(e.time);
        if b < self.cursor || (b == self.cursor && !(self.run.is_empty() && self.front.is_empty()))
        {
            // A late push: the entry's bucket is already being (or has
            // been) drained, so it must merge with whatever is still
            // pending — the heap keeps it in `(time, tie, seq)` order
            // relative to the run.
            self.front.push(e);
            return;
        }
        if b == self.cursor {
            // The wheel is locally drained (run and front both empty), so
            // nothing pops before this bucket re-drains: park the entry
            // back in the cursor bucket instead of paying heap sifts. The
            // next pop's lazy `advance` re-drains it — `next_set_bit` is
            // inclusive of the cursor slot. This is the hot fan-out path:
            // a handler at the only pending instant pushes a same-bucket
            // burst, which lands here in seq order and is served as a
            // sorted run.
            let slot = (b & LEVEL_MASK) as usize;
            self.l0[slot].push(e);
            set_bit(&mut self.l0_occ, slot);
            self.l0_len += 1;
            return;
        }
        if b >> LEVEL_BITS == self.cursor >> LEVEL_BITS {
            let slot = (b & LEVEL_MASK) as usize;
            self.l0[slot].push(e);
            set_bit(&mut self.l0_occ, slot);
            self.l0_len += 1;
        } else if b >> (2 * LEVEL_BITS) == self.cursor >> (2 * LEVEL_BITS) {
            let slot = ((b >> LEVEL_BITS) & LEVEL_MASK) as usize;
            self.l1[slot].push(e);
            set_bit(&mut self.l1_occ, slot);
            self.l1_len += 1;
        } else {
            self.overflow
                .entry(b >> (2 * LEVEL_BITS))
                .or_insert_with(|| self.spare.pop().unwrap_or_default())
                .push(e);
            self.overflow_len += 1;
        }
    }

    /// Move the cursor to the next occupied bucket and drain it into
    /// `run` (already sorted — the fast path) or `front`, cascading L1
    /// pages and overflow pages inward as needed.
    fn advance(&mut self) {
        debug_assert!(self.front.is_empty() && self.run.is_empty());
        if self.l0_len == 0 && self.l1_len == 0 && self.overflow_len == 0 {
            return;
        }
        if self.l0_len == 0 {
            if self.l1_len == 0 {
                let (page, mut entries) = self.overflow.pop_first().expect("overflow accounting");
                self.overflow_len -= entries.len();
                self.cursor = page << (2 * LEVEL_BITS);
                for e in entries.drain(..) {
                    let slot = ((self.bucket_of(e.time) >> LEVEL_BITS) & LEVEL_MASK) as usize;
                    self.l1[slot].push(e);
                    set_bit(&mut self.l1_occ, slot);
                    self.l1_len += 1;
                }
                if self.spare.len() < 8 {
                    self.spare.push(entries); // hand the buffer back
                }
            }
            let cur = ((self.cursor >> LEVEL_BITS) & LEVEL_MASK) as usize;
            let slot = next_set_bit(&self.l1_occ, cur).expect("l1 occupancy desynced");
            clear_bit(&mut self.l1_occ, slot);
            let mut entries = std::mem::take(&mut self.l1[slot]);
            self.l1_len -= entries.len();
            self.cursor = (self.cursor & !((LEVEL_MASK << LEVEL_BITS) | LEVEL_MASK))
                | ((slot as u64) << LEVEL_BITS);
            for e in entries.drain(..) {
                let s0 = (self.bucket_of(e.time) & LEVEL_MASK) as usize;
                self.l0[s0].push(e);
                set_bit(&mut self.l0_occ, s0);
                self.l0_len += 1;
            }
            self.l1[slot] = entries; // hand the buffer back
        }
        let cur0 = (self.cursor & LEVEL_MASK) as usize;
        let slot = next_set_bit(&self.l0_occ, cur0).expect("l0 occupancy desynced");
        clear_bit(&mut self.l0_occ, slot);
        let mut entries = std::mem::take(&mut self.l0[slot]);
        self.l0_len -= entries.len();
        self.cursor = (self.cursor & !LEVEL_MASK) | slot as u64;
        // Serve the drained bucket as a sorted run: sort descending by
        // key so pops come off the tail in ascending pop order. The
        // common bucket — a same-instant fan-out pushed in seq order —
        // is already one ascending run, which the pattern-defeating
        // quicksort detects and reverses in O(n); a polluted bucket
        // (interleaved pushes for different instants) pays a real sort,
        // still far cheaper than per-entry heap sifts. The emptied old
        // run buffer takes the bucket's place, keeping the buffer cycle
        // allocation-free.
        entries.sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
        std::mem::swap(&mut self.run, &mut entries);
        self.l0[slot] = entries;
    }

    fn pop_min(&mut self) -> Option<Entry<E>> {
        if self.run.is_empty() && self.front.is_empty() {
            // Lazy advance: the cursor moves only when a pop actually
            // needs the next bucket, never eagerly after the last pop —
            // so a handler's same-bucket pushes park in L0 (above)
            // instead of raining into the front heap.
            self.advance();
        }
        // Keys are unique (seq is unique), so strict `<` fully decides
        // which side holds the global minimum.
        let from_run = match (self.run.last(), self.front.peek()) {
            (Some(r), Some(f)) => r.key() < f.key(),
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        let e = if from_run {
            self.run.pop()
        } else {
            self.front.pop()
        }?;
        Some(e)
    }

    fn peek(&self) -> Option<&Entry<E>> {
        match (self.run.last(), self.front.peek()) {
            (Some(r), Some(f)) => Some(if r.key() < f.key() { r } else { f }),
            (Some(r), None) => Some(r),
            (None, Some(f)) => Some(f),
            (None, None) => self.peek_parked(),
        }
    }

    /// The head entry while the wheel is locally drained but not empty —
    /// entries are parked in buckets at or past the cursor, waiting for
    /// the next pop's lazy `advance`. One linear scan of the next
    /// occupied bucket; the pop that follows sorts that bucket into the
    /// run, so a parked episode pays at most one scan.
    fn peek_parked(&self) -> Option<&Entry<E>> {
        if self.l0_len > 0 {
            let cur0 = (self.cursor & LEVEL_MASK) as usize;
            let slot = next_set_bit(&self.l0_occ, cur0)?;
            return self.l0[slot].iter().min_by_key(|e| e.key());
        }
        if self.l1_len > 0 {
            let cur1 = ((self.cursor >> LEVEL_BITS) & LEVEL_MASK) as usize;
            let slot = next_set_bit(&self.l1_occ, cur1)?;
            return self.l1[slot].iter().min_by_key(|e| e.key());
        }
        self.overflow
            .first_key_value()?
            .1
            .iter()
            .min_by_key(|e| e.key())
    }

    fn values(&self) -> impl Iterator<Item = &E> {
        self.front
            .iter()
            .chain(self.run.iter())
            .chain(self.l0.iter().flatten())
            .chain(self.l1.iter().flatten())
            .chain(self.overflow.values().flatten())
            .map(|e| &e.event)
    }

    fn clear(&mut self) {
        self.front.clear();
        self.run.clear();
        for v in &mut self.l0 {
            v.clear();
        }
        for v in &mut self.l1 {
            v.clear();
        }
        self.l0_occ = [0; 4];
        self.l1_occ = [0; 4];
        self.l0_len = 0;
        self.l1_len = 0;
        self.overflow.clear();
        self.overflow_len = 0;
    }
}

#[derive(Debug)]
// One queue exists per simulation and never moves after construction,
// so the size spread between the inline wheel and the heap variant
// costs nothing — boxing the wheel would add a pointer chase to every
// push and pop instead.
#[allow(clippy::large_enum_variant)]
enum Inner<E> {
    Heap(BinaryHeap<Entry<E>>),
    Wheel(Wheel<E>),
}

/// A deterministic priority queue of timestamped events.
///
/// Pop order is total: by time, then by the [`DeliveryOrder`] tie (always
/// zero unless a hook is installed), then by insertion sequence. The queue
/// never reuses sequence numbers, so `(time, tie, seq)` is unique per
/// entry. The backend (reference heap or timing wheel) changes only the
/// asymptotics, never the pop order.
#[derive(Debug)]
pub struct EventQueue<E> {
    inner: Inner<E>,
    next_seq: u64,
    pushed: u64,
    popped: u64,
    peak: usize,
    /// Transient depth adjustment for the peak high-water mark: during a
    /// parallel-window merge the engine has already popped events the
    /// serial engine would still be holding, so pushes credit the depth
    /// with the not-yet-serially-popped remainder to keep `peak`
    /// byte-identical to serial runs. Always zero between deliveries.
    depth_bias: usize,
    order: Option<DeliveryOrder>,
    pop_digest: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue on the default backend (timing wheel).
    pub fn new() -> Self {
        Self::with_backend(QueueBackend::default())
    }

    /// An empty queue on the given backend with default wheel granularity.
    pub fn with_backend(backend: QueueBackend) -> Self {
        Self::from_inner(match backend {
            QueueBackend::Heap => Inner::Heap(BinaryHeap::new()),
            QueueBackend::Wheel => Inner::Wheel(Wheel::new(DEFAULT_SHIFT)),
        })
    }

    /// An empty wheel-backed queue whose bucket width is the largest power
    /// of two at or below `granularity` (clamped to 1 µs – 1 ms). Callers
    /// size buckets to a fraction of their strobe period so one periodic
    /// tick advances the cursor a handful of buckets, not thousands.
    pub fn with_backend_and_granularity(backend: QueueBackend, granularity: SimSpan) -> Self {
        match backend {
            QueueBackend::Heap => Self::with_backend(QueueBackend::Heap),
            QueueBackend::Wheel => {
                let ns = granularity.as_nanos().max(1);
                let shift = (63 - ns.leading_zeros()).clamp(MIN_SHIFT, MAX_SHIFT);
                Self::from_inner(Inner::Wheel(Wheel::new(shift)))
            }
        }
    }

    /// An empty queue with pre-reserved capacity (front heap only for the
    /// wheel backend).
    pub fn with_capacity(cap: usize) -> Self {
        let mut q = Self::new();
        match &mut q.inner {
            Inner::Heap(h) => h.reserve(cap),
            Inner::Wheel(w) => w.front.reserve(cap),
        }
        q
    }

    fn from_inner(inner: Inner<E>) -> Self {
        EventQueue {
            inner,
            next_seq: 0,
            pushed: 0,
            popped: 0,
            peak: 0,
            depth_bias: 0,
            order: None,
            pop_digest: 0xCBF2_9CE4_8422_2325,
        }
    }

    /// Set the transient peak-accounting depth bias (see the field doc).
    /// Engine-internal: only the parallel-window merge sets a nonzero
    /// bias, and it resets to zero before the window completes.
    pub(crate) fn set_depth_bias(&mut self, bias: usize) {
        self.depth_bias = bias;
    }

    /// Install (or remove) the delivery-order hook. Applies to events
    /// pushed from now on; install before scheduling anything for full
    /// coverage. `None` (the default) keeps the classic `(time, seq)`
    /// insertion order bit-identical.
    pub fn set_delivery_order(&mut self, order: Option<DeliveryOrder>) {
        self.order = order;
    }

    /// The installed delivery-order hook, if any.
    pub fn delivery_order(&self) -> Option<&DeliveryOrder> {
        self.order.as_ref()
    }

    /// The `(tie, delay)` keys for the next insertion: `(0, ZERO)` unless
    /// a hook is installed.
    fn draw_order(&mut self) -> (u64, SimSpan) {
        match &mut self.order {
            None => (0, SimSpan::ZERO),
            Some(o) => o.next(),
        }
    }

    /// The backend this queue runs on.
    pub fn backend(&self) -> QueueBackend {
        match self.inner {
            Inner::Heap(_) => QueueBackend::Heap,
            Inner::Wheel(_) => QueueBackend::Wheel,
        }
    }

    fn insert(&mut self, entry: Entry<E>) {
        match &mut self.inner {
            Inner::Heap(h) => h.push(entry),
            Inner::Wheel(w) => w.insert(entry),
        }
        self.pushed += 1;
        self.peak = self.peak.max(self.len() + self.depth_bias);
    }

    /// Schedule `event` at absolute instant `time` (plus the hook's
    /// bounded delay, if a delaying [`DeliveryOrder`] is installed).
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let (tie, delay) = self.draw_order();
        self.insert(Entry {
            time: time + delay,
            tie,
            seq,
            event,
        });
    }

    /// Reserve `width` consecutive sequence numbers without inserting
    /// anything, returning the first. A group-delivery entry reserves one
    /// number per member so that, when part of the group is re-inserted via
    /// [`EventQueue::push_at_seq`], the remainder still occupies exactly the
    /// `(time, seq)` slots the equivalent per-member pushes would have —
    /// which is what keeps multicast traces byte-identical to unicast ones.
    pub fn reserve_seqs(&mut self, width: u64) -> u64 {
        let first = self.next_seq;
        self.next_seq += width;
        first
    }

    /// Insert `event` at `time` under a previously reserved sequence
    /// number. Draws a fresh tie (and delay) like [`EventQueue::push`], so
    /// re-parked group-delivery remainders are reordered against their
    /// same-instant peers just as per-member pushes would be.
    pub fn push_at_seq(&mut self, time: SimTime, seq: u64, event: E) {
        debug_assert!(seq < self.next_seq, "sequence number was never reserved");
        let (tie, delay) = self.draw_order();
        self.insert(Entry {
            time: time + delay,
            tie,
            seq,
            event,
        });
    }

    /// Remove and return the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let e = match &mut self.inner {
            Inner::Heap(h) => h.pop()?,
            Inner::Wheel(w) => w.pop_min()?,
        };
        self.popped += 1;
        // Fold the delivered `(time, seq)` pair into the interleaving
        // digest — but only when a DST hook is installed, so production
        // pops stay branch-plus-nothing. The digest identifies the *pop
        // sequence itself*: two runs deliver the same events in the same
        // order iff their digests match.
        if self.order.is_some() {
            for word in [e.time.as_nanos(), e.seq] {
                for byte in word.to_le_bytes() {
                    self.pop_digest ^= u64::from(byte);
                    self.pop_digest = self.pop_digest.wrapping_mul(0x0000_0100_0000_01B3);
                }
            }
        }
        Some((e.time, e.event))
    }

    /// FNV-1a digest over every `(time, seq)` pair popped so far — the
    /// identity of the delivery interleaving. Only accumulated while a
    /// [`DeliveryOrder`] hook is installed (it is the DST explorer's
    /// distinct-interleaving counter); without one it stays at the FNV
    /// offset basis.
    pub fn pop_digest(&self) -> u64 {
        self.pop_digest
    }

    /// The instant of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.inner {
            Inner::Heap(h) => h.peek().map(|e| e.time),
            Inner::Wheel(w) => w.peek().map(|e| e.time),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.inner {
            Inner::Heap(h) => h.len(),
            Inner::Wheel(w) => w.len(),
        }
    }

    /// Iterate over pending events in unspecified (bucket/heap) order — for
    /// aggregate accounting over queue contents, not for delivery. Any
    /// order-insensitive fold (counting, summing) over this iterator is
    /// still deterministic.
    pub fn values(&self) -> impl Iterator<Item = &E> {
        let (heap, wheel) = match &self.inner {
            Inner::Heap(h) => (Some(h), None),
            Inner::Wheel(w) => (None, Some(w)),
        };
        heap.into_iter()
            .flat_map(|h| h.iter().map(|e| &e.event))
            .chain(wheel.into_iter().flat_map(Wheel::values))
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever pushed (for engine accounting / runaway guards).
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Total events ever popped.
    pub fn total_popped(&self) -> u64 {
        self.popped
    }

    /// High-water mark of pending events.
    pub fn peak_len(&self) -> usize {
        self.peak
    }

    /// Accounting snapshot: lifetime push/pop totals plus current and peak
    /// depth. `Copy` by design — no queue contents are cloned.
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            pushed: self.pushed,
            popped: self.popped,
            len: self.len(),
            peak: self.peak,
        }
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        match &mut self.inner {
            Inner::Heap(h) => h.clear(),
            Inner::Wheel(w) => w.clear(),
        }
    }

    /// Iterate over pending entries as `(time, tie, seq, &event)` in
    /// unspecified (bucket/heap) order — the checkpoint exporter's view.
    /// Pop order is the total `(time, tie, seq)` order regardless of which
    /// internal bucket an entry sits in, so re-inserting this multiset via
    /// [`EventQueue::restore_entry`] into a fresh queue reproduces the
    /// remaining pop sequence exactly.
    pub fn entries(&self) -> impl Iterator<Item = (SimTime, u64, u64, &E)> {
        let (heap, wheel) = match &self.inner {
            Inner::Heap(h) => (Some(h), None),
            Inner::Wheel(w) => (None, Some(w)),
        };
        heap.into_iter()
            .flat_map(|h| h.iter())
            .chain(wheel.into_iter().flat_map(|w| {
                w.front
                    .iter()
                    .chain(w.run.iter())
                    .chain(w.l0.iter().flatten())
                    .chain(w.l1.iter().flatten())
                    .chain(w.overflow.values().flatten())
            }))
            .map(|e| (e.time, e.tie, e.seq, &e.event))
    }

    /// Re-insert a checkpointed entry verbatim: no order hook is drawn,
    /// no accounting counter moves. Only for rebuilding a queue from an
    /// [`EventQueue::entries`] export — pair with
    /// [`EventQueue::import_accounting`] to restore the counters.
    pub fn restore_entry(&mut self, time: SimTime, tie: u64, seq: u64, event: E) {
        let entry = Entry {
            time,
            tie,
            seq,
            event,
        };
        match &mut self.inner {
            Inner::Heap(h) => h.push(entry),
            Inner::Wheel(w) => w.insert(entry),
        }
    }

    /// The lifetime counters and interleaving digest, for checkpointing.
    pub fn export_accounting(&self) -> QueueAccounting {
        QueueAccounting {
            next_seq: self.next_seq,
            pushed: self.pushed,
            popped: self.popped,
            peak: self.peak,
            pop_digest: self.pop_digest,
        }
    }

    /// Overwrite the lifetime counters and interleaving digest with a
    /// checkpointed image. See [`EventQueue::export_accounting`].
    pub fn import_accounting(&mut self, acc: QueueAccounting) {
        self.next_seq = acc.next_seq;
        self.pushed = acc.pushed;
        self.popped = acc.popped;
        self.peak = acc.peak;
        self.pop_digest = acc.pop_digest;
    }
}

/// Serializable image of an [`EventQueue`]'s lifetime counters, produced
/// by [`EventQueue::export_accounting`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueAccounting {
    /// Next sequence number to hand out.
    pub next_seq: u64,
    /// Total events ever pushed.
    pub pushed: u64,
    /// Total events ever popped.
    pub popped: u64,
    /// High-water mark of pending events.
    pub peak: usize,
    /// FNV-1a digest over popped `(time, seq)` pairs.
    pub pop_digest: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimSpan;

    /// Run a test body against both backends (plus a deliberately coarse
    /// and a deliberately fine wheel, to exercise the cascade paths).
    fn on_all_backends<E>(f: impl Fn(EventQueue<E>)) {
        f(EventQueue::with_backend(QueueBackend::Heap));
        f(EventQueue::with_backend(QueueBackend::Wheel));
        f(EventQueue::with_backend_and_granularity(
            QueueBackend::Wheel,
            SimSpan::from_micros(1),
        ));
        f(EventQueue::with_backend_and_granularity(
            QueueBackend::Wheel,
            SimSpan::from_millis(1),
        ));
    }

    #[test]
    fn pops_in_time_order() {
        on_all_backends(|mut q: EventQueue<&str>| {
            q.push(SimTime::from_millis(3), "c");
            q.push(SimTime::from_millis(1), "a");
            q.push(SimTime::from_millis(2), "b");
            assert_eq!(q.pop(), Some((SimTime::from_millis(1), "a")));
            assert_eq!(q.pop(), Some((SimTime::from_millis(2), "b")));
            assert_eq!(q.pop(), Some((SimTime::from_millis(3), "c")));
            assert_eq!(q.pop(), None);
        });
    }

    #[test]
    fn ties_break_by_insertion_order() {
        on_all_backends(|mut q: EventQueue<i32>| {
            let t = SimTime::from_micros(7);
            for i in 0..100 {
                q.push(t, i);
            }
            for i in 0..100 {
                assert_eq!(q.pop(), Some((t, i)));
            }
        });
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        on_all_backends(|mut q: EventQueue<i32>| {
            q.push(SimTime::from_millis(10), 10);
            q.push(SimTime::from_millis(5), 5);
            assert_eq!(q.pop().unwrap().1, 5);
            q.push(SimTime::from_millis(1), 1);
            q.push(SimTime::from_millis(7), 7);
            assert_eq!(q.pop().unwrap().1, 1);
            assert_eq!(q.pop().unwrap().1, 7);
            assert_eq!(q.pop().unwrap().1, 10);
        });
    }

    #[test]
    fn accounting() {
        on_all_backends(|mut q: EventQueue<()>| {
            let t0 = SimTime::ZERO;
            q.push(t0, ());
            q.push(t0 + SimSpan::from_nanos(1), ());
            assert_eq!(q.len(), 2);
            assert!(!q.is_empty());
            assert_eq!(q.peek_time(), Some(t0));
            q.pop();
            assert_eq!(q.total_pushed(), 2);
            assert_eq!(q.total_popped(), 1);
            assert_eq!(
                q.stats(),
                QueueStats {
                    pushed: 2,
                    popped: 1,
                    len: 1,
                    peak: 2
                }
            );
            q.clear();
            assert!(q.is_empty());
            // Sequence numbers keep increasing after clear.
            q.push(t0, ());
            assert_eq!(q.total_pushed(), 3);
        });
    }

    #[test]
    fn reserved_seqs_slot_into_tie_break_order() {
        on_all_backends(|mut q: EventQueue<u64>| {
            let t = SimTime::from_micros(3);
            q.push(t, 0u64);
            let first = q.reserve_seqs(3); // seqs for events 1, 2, 3
            q.push(t, 4);
            // Insert the reserved entries out of order; they still pop in
            // reserved-sequence order, between the surrounding pushes.
            q.push_at_seq(t, first + 2, 3);
            q.push_at_seq(t, first, 1);
            q.push_at_seq(t, first + 1, 2);
            for want in 0..=4 {
                assert_eq!(q.pop(), Some((t, want)));
            }
        });
    }

    #[test]
    fn values_visits_every_pending_event() {
        on_all_backends(|mut q: EventQueue<u64>| {
            for i in 1..=4u64 {
                q.push(SimTime::from_micros(i), i);
            }
            q.pop();
            assert_eq!(q.values().count(), 3);
            assert_eq!(q.values().sum::<u64>(), 2 + 3 + 4);
        });
    }

    #[test]
    fn large_random_batch_is_sorted() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        on_all_backends(|mut q: EventQueue<u64>| {
            let mut rng = SmallRng::seed_from_u64(7);
            for i in 0..10_000u64 {
                q.push(SimTime::from_nanos(rng.random_range(0..1_000_000)), i);
            }
            let mut last = SimTime::ZERO;
            while let Some((t, _)) = q.pop() {
                assert!(t >= last);
                last = t;
            }
        });
    }

    #[test]
    fn wheel_spans_all_levels_and_matches_heap() {
        // Times chosen to land in the front bucket, the cursor's L0 page,
        // the L1 page, and several overflow pages (with the default 2^14 ns
        // buckets: L0 page ≈ 4.2 ms, L1 page ≈ 1.07 s).
        let times: Vec<u64> = vec![
            0,
            1,
            16_384,          // next L0 bucket
            4_000_000,       // same L0 page edge
            5_000_000,       // L1 page
            1_000_000_000,   // near end of first L1 page
            1_100_000_000,   // first overflow page
            5_000_000_000,   // deeper overflow page
            5_000_000_001,   // same-instant-ish tie ordering across pages
            120_000_000_000, // far overflow
            120_000_000_000, // exact tie in far overflow
        ];
        let mut heap = EventQueue::with_backend(QueueBackend::Heap);
        let mut wheel = EventQueue::with_backend(QueueBackend::Wheel);
        for (i, &t) in times.iter().enumerate() {
            heap.push(SimTime::from_nanos(t), i);
            wheel.push(SimTime::from_nanos(t), i);
        }
        loop {
            let (h, w) = (heap.pop(), wheel.pop());
            assert_eq!(h, w);
            if h.is_none() {
                break;
            }
        }
    }

    #[test]
    fn wheel_accepts_pushes_at_or_before_cursor() {
        // After draining far into the future, a push at an earlier time
        // (the engine never does this, but the queue contract allows it)
        // still pops next, exactly as the heap would order it.
        let mut q = EventQueue::with_backend(QueueBackend::Wheel);
        q.push(SimTime::from_secs(10), 1u32);
        q.push(SimTime::from_secs(20), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(SimTime::from_secs(5), 3);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn random_interleaving_matches_heap_exactly() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        for seed in 0..8u64 {
            let mut rng = SmallRng::seed_from_u64(0xC0FFEE ^ seed);
            let mut heap = EventQueue::with_backend(QueueBackend::Heap);
            let mut wheel = EventQueue::with_backend_and_granularity(
                QueueBackend::Wheel,
                SimSpan::from_micros(1 << (seed % 7)),
            );
            let mut floor = 0u64; // pops never go back in time in real use
            for i in 0..20_000u64 {
                match rng.random_range(0..10u32) {
                    // Mostly pushes, spanning same-instant bursts through
                    // far-future overflow wraps.
                    0..=5 => {
                        let t = floor + rng.random_range(0..3_000_000_000u64);
                        heap.push(SimTime::from_nanos(t), i);
                        wheel.push(SimTime::from_nanos(t), i);
                    }
                    6 => {
                        // Same-instant burst with reserved seqs slotted in
                        // out of order.
                        let t = SimTime::from_nanos(floor + rng.random_range(0..1_000_000));
                        let base_h = heap.reserve_seqs(3);
                        let base_w = wheel.reserve_seqs(3);
                        assert_eq!(base_h, base_w);
                        for k in [2u64, 0, 1] {
                            heap.push_at_seq(t, base_h + k, i + k);
                            wheel.push_at_seq(t, base_w + k, i + k);
                        }
                    }
                    _ => {
                        let (h, w) = (heap.pop(), wheel.pop());
                        assert_eq!(h, w);
                        if let Some((t, _)) = h {
                            floor = t.as_nanos();
                        }
                    }
                }
                assert_eq!(heap.len(), wheel.len());
                assert_eq!(heap.peek_time(), wheel.peek_time());
            }
            loop {
                let (h, w) = (heap.pop(), wheel.pop());
                assert_eq!(h, w);
                if h.is_none() {
                    break;
                }
            }
            assert_eq!(heap.stats(), wheel.stats());
        }
    }

    #[test]
    fn script_ties_permute_same_instant_events() {
        on_all_backends(|mut q: EventQueue<&str>| {
            // Ties reverse the insertion order of a same-instant burst.
            q.set_delivery_order(Some(DeliveryOrder::script(vec![2, 1, 0])));
            let t = SimTime::from_micros(9);
            q.push(t, "first-in");
            q.push(t, "second-in");
            q.push(t, "third-in");
            assert_eq!(q.pop(), Some((t, "third-in")));
            assert_eq!(q.pop(), Some((t, "second-in")));
            assert_eq!(q.pop(), Some((t, "first-in")));
        });
    }

    #[test]
    fn ties_never_cross_timestamp_boundaries() {
        on_all_backends(|mut q: EventQueue<u32>| {
            // Even a huge tie cannot move an event past a later timestamp.
            q.set_delivery_order(Some(DeliveryOrder::script(vec![u64::MAX, 0])));
            q.push(SimTime::from_micros(1), 1);
            q.push(SimTime::from_micros(2), 2);
            assert_eq!(q.pop().unwrap().1, 1);
            assert_eq!(q.pop().unwrap().1, 2);
        });
    }

    #[test]
    fn disabled_and_inert_hooks_are_identity() {
        // No hook, an empty script, and a seeded hook with amplitude 0 all
        // produce the classic (time, seq) order, pop for pop.
        let build = |order: Option<DeliveryOrder>| {
            let mut q = EventQueue::with_backend(QueueBackend::Wheel);
            q.set_delivery_order(order);
            for i in 0..500u64 {
                q.push(SimTime::from_nanos((i * 37) % 900), i);
            }
            let mut out = Vec::new();
            while let Some(e) = q.pop() {
                out.push(e);
            }
            out
        };
        let plain = build(None);
        assert_eq!(plain, build(Some(DeliveryOrder::script(Vec::new()))));
        assert_eq!(plain, build(Some(DeliveryOrder::seeded(42, 0))));
    }

    #[test]
    fn seeded_orders_match_across_backends() {
        // The same seeded hook must reorder identically on heap and wheel:
        // the tie is part of the total order, not a backend detail.
        for seed in 0..4u64 {
            let mut heap = EventQueue::with_backend(QueueBackend::Heap);
            let mut wheel = EventQueue::with_backend(QueueBackend::Wheel);
            heap.set_delivery_order(Some(DeliveryOrder::seeded(seed, 7)));
            wheel.set_delivery_order(Some(DeliveryOrder::seeded(seed, 7)));
            for i in 0..5_000u64 {
                let t = SimTime::from_micros((i * 13) % 97);
                heap.push(t, i);
                wheel.push(t, i);
            }
            loop {
                let (h, w) = (heap.pop(), wheel.pop());
                assert_eq!(h, w);
                if h.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn regenerated_script_replays_a_seeded_run() {
        // A seeded run is convertible to an explicit script knowing only
        // (seed, amplitude, pushed-count): tie i is a pure function of
        // (seed, i).
        let ops: Vec<u64> = (0..800).map(|i| (i * 29) % 131).collect();
        let run = |order: DeliveryOrder| {
            let mut q = EventQueue::with_backend(QueueBackend::Wheel);
            q.set_delivery_order(Some(order));
            for (i, &t) in ops.iter().enumerate() {
                q.push(SimTime::from_micros(t), i as u64);
            }
            let pushed = q.stats().pushed;
            let mut out = Vec::new();
            while let Some(e) = q.pop() {
                out.push(e);
            }
            (out, pushed)
        };
        let (seeded, pushed) = run(DeliveryOrder::seeded(0xDE57, 5));
        let script = DeliveryOrder::regenerate_ties(0xDE57, 5, pushed);
        let (replayed, _) = run(DeliveryOrder::script(script));
        assert_eq!(seeded, replayed);
    }

    #[test]
    fn checkpoint_roundtrip_reproduces_remaining_pops() {
        // Drain half a seeded run, export entries + accounting + order
        // state, rebuild on both backends, and check the remaining pop
        // sequence (and digest evolution) is byte-identical.
        let mut q = EventQueue::with_backend(QueueBackend::Wheel);
        q.set_delivery_order(Some(DeliveryOrder::seeded(0xABCD, 5)));
        for i in 0..600u64 {
            q.push(SimTime::from_micros((i * 31) % 211), i);
        }
        for _ in 0..250 {
            q.pop();
        }
        let order_state = q.delivery_order().unwrap().export_state();
        let entries: Vec<(SimTime, u64, u64, u64)> = q
            .entries()
            .map(|(t, tie, seq, &e)| (t, tie, seq, e))
            .collect();
        let acc = q.export_accounting();
        for backend in [QueueBackend::Heap, QueueBackend::Wheel] {
            let mut r = EventQueue::with_backend(backend);
            r.set_delivery_order(Some(DeliveryOrder::import_state(order_state.clone())));
            for &(t, tie, seq, e) in &entries {
                r.restore_entry(t, tie, seq, e);
            }
            r.import_accounting(acc);
            assert_eq!(r.stats(), q.stats());
            assert_eq!(r.pop_digest(), q.pop_digest());
            // Rebuild the uninterrupted original by replaying its
            // construction, then push more through both resumed hooks and
            // drain: pops, digests, and stats must stay in lock step.
            let mut orig = EventQueue::with_backend(QueueBackend::Wheel);
            orig.set_delivery_order(Some(DeliveryOrder::seeded(0xABCD, 5)));
            for i in 0..600u64 {
                orig.push(SimTime::from_micros((i * 31) % 211), i);
            }
            for _ in 0..250 {
                orig.pop();
            }
            orig.push(SimTime::from_micros(400), 9999);
            r.push(SimTime::from_micros(400), 9999);
            loop {
                let (x, y) = (orig.pop(), r.pop());
                assert_eq!(x, y);
                if x.is_none() {
                    break;
                }
            }
            assert_eq!(orig.pop_digest(), r.pop_digest());
            assert_eq!(orig.stats(), r.stats());
        }
    }

    #[test]
    fn bounded_delay_preserves_time_order_and_never_delivers_early() {
        let mut q = EventQueue::with_backend(QueueBackend::Wheel);
        q.set_delivery_order(Some(
            DeliveryOrder::seeded(3, 3).with_max_delay(SimSpan::from_micros(50)),
        ));
        let mut scheduled = Vec::new();
        for i in 0..1_000u64 {
            let t = SimTime::from_micros((i * 7) % 300);
            scheduled.push((i, t));
            q.push(t, i);
        }
        let mut last = SimTime::ZERO;
        let mut delivered = 0u64;
        while let Some((t, i)) = q.pop() {
            assert!(t >= last, "pops stay time-ordered");
            let (_, at) = scheduled[i as usize];
            assert!(t >= at, "delay never delivers before the scheduled instant");
            assert!(
                t <= at + SimSpan::from_micros(50),
                "delay is bounded by max_delay"
            );
            last = t;
            delivered += 1;
        }
        assert_eq!(delivered, 1_000, "no event is lost");
    }
}
