//! The deterministic event queue.
//!
//! A binary heap keyed on `(time, sequence)` where the sequence number is a
//! monotonically increasing insertion counter. Two events scheduled for the
//! same instant therefore fire in insertion order, which makes the whole
//! simulation a pure function of its inputs and seed — the property the
//! determinism tests in `engine.rs` assert.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled entry.
#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic priority queue of timestamped events.
///
/// Pop order is total: by time, then by insertion sequence. The queue never
/// reuses sequence numbers, so `(time, seq)` is unique per entry.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    pushed: u64,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            pushed: 0,
            popped: 0,
        }
    }

    /// An empty queue with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            pushed: 0,
            popped: 0,
        }
    }

    /// Schedule `event` at absolute instant `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushed += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Reserve `width` consecutive sequence numbers without inserting
    /// anything, returning the first. A group-delivery entry reserves one
    /// number per member so that, when part of the group is re-inserted via
    /// [`EventQueue::push_at_seq`], the remainder still occupies exactly the
    /// `(time, seq)` slots the equivalent per-member pushes would have —
    /// which is what keeps multicast traces byte-identical to unicast ones.
    pub fn reserve_seqs(&mut self, width: u64) -> u64 {
        let first = self.next_seq;
        self.next_seq += width;
        first
    }

    /// Insert `event` at `time` under a previously reserved sequence number.
    pub fn push_at_seq(&mut self, time: SimTime, seq: u64, event: E) {
        debug_assert!(seq < self.next_seq, "sequence number was never reserved");
        self.pushed += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Remove and return the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let e = self.heap.pop()?;
        self.popped += 1;
        Some((e.time, e.event))
    }

    /// The instant of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Iterate over pending events in unspecified (heap) order — for
    /// aggregate accounting over queue contents, not for delivery. Any
    /// order-insensitive fold (counting, summing) over this iterator is
    /// still deterministic.
    pub fn values(&self) -> impl Iterator<Item = &E> {
        self.heap.iter().map(|e| &e.event)
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever pushed (for engine accounting / runaway guards).
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Total events ever popped.
    pub fn total_popped(&self) -> u64 {
        self.popped
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimSpan;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(3), "c");
        q.push(SimTime::from_millis(1), "a");
        q.push(SimTime::from_millis(2), "b");
        assert_eq!(q.pop(), Some((SimTime::from_millis(1), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(2), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(7);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(10), 10);
        q.push(SimTime::from_millis(5), 5);
        assert_eq!(q.pop().unwrap().1, 5);
        q.push(SimTime::from_millis(1), 1);
        q.push(SimTime::from_millis(7), 7);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 7);
        assert_eq!(q.pop().unwrap().1, 10);
    }

    #[test]
    fn accounting() {
        let mut q = EventQueue::new();
        let t0 = SimTime::ZERO;
        q.push(t0, ());
        q.push(t0 + SimSpan::from_nanos(1), ());
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        assert_eq!(q.peek_time(), Some(t0));
        q.pop();
        assert_eq!(q.total_pushed(), 2);
        assert_eq!(q.total_popped(), 1);
        q.clear();
        assert!(q.is_empty());
        // Sequence numbers keep increasing after clear.
        q.push(t0, ());
        assert_eq!(q.total_pushed(), 3);
    }

    #[test]
    fn reserved_seqs_slot_into_tie_break_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(3);
        q.push(t, 0u64);
        let first = q.reserve_seqs(3); // seqs for events 1, 2, 3
        q.push(t, 4);
        // Insert the reserved entries out of order; they still pop in
        // reserved-sequence order, between the surrounding pushes.
        q.push_at_seq(t, first + 2, 3);
        q.push_at_seq(t, first, 1);
        q.push_at_seq(t, first + 1, 2);
        for want in 0..=4 {
            assert_eq!(q.pop(), Some((t, want)));
        }
    }

    #[test]
    fn values_visits_every_pending_event() {
        let mut q = EventQueue::new();
        for i in 1..=4u64 {
            q.push(SimTime::from_micros(i), i);
        }
        q.pop();
        assert_eq!(q.values().count(), 3);
        assert_eq!(q.values().sum::<u64>(), 2 + 3 + 4);
    }

    #[test]
    fn large_random_batch_is_sorted() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(7);
        let mut q = EventQueue::new();
        for i in 0..10_000u64 {
            q.push(SimTime::from_nanos(rng.random_range(0..1_000_000)), i);
        }
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
    }
}
