//! Statistics helpers for the experiment harness.
//!
//! The paper (§3) runs each experiment 3–20 times and reports the mean — or
//! the minimum for the application experiments in §3.2, where rare slow runs
//! biased the mean. [`Summary`] supports both conventions; [`OnlineStats`]
//! is a Welford accumulator for streaming use; [`Series`] collects `(x, y)`
//! points for figure reproduction.

use crate::time::SimSpan;

/// Streaming mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }
    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }
    /// Population variance (0 for < 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }
    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }
    /// Smallest observation (+inf if empty).
    pub fn min(&self) -> f64 {
        self.min
    }
    /// Largest observation (-inf if empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// A batch of repeated measurements of one quantity.
///
/// Percentile queries sort lazily, once: the sorted view is cached on
/// first use and invalidated by [`Summary::push`], so multi-percentile
/// bench reports cost one sort total instead of one per quantile.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    values: Vec<f64>,
    sorted: std::cell::OnceCell<Vec<f64>>,
}

impl Summary {
    /// Empty summary.
    pub fn new() -> Self {
        Summary::default()
    }

    /// Build from raw values.
    pub fn from_values(values: impl IntoIterator<Item = f64>) -> Self {
        Summary {
            values: values.into_iter().collect(),
            sorted: std::cell::OnceCell::new(),
        }
    }

    /// Build from simulated spans, stored as seconds.
    pub fn from_spans(spans: impl IntoIterator<Item = SimSpan>) -> Self {
        Summary {
            values: spans.into_iter().map(|s| s.as_secs_f64()).collect(),
            sorted: std::cell::OnceCell::new(),
        }
    }

    /// Add one value.
    pub fn push(&mut self, x: f64) {
        self.values.push(x);
        self.sorted.take();
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// Arithmetic mean (paper's default statistic).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Minimum (paper's statistic for the §3.2 application runs).
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum.
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Median (average-of-middle-two for even counts).
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Linear-interpolated percentile, `p` in `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let sorted = self.sorted.get_or_init(|| {
            let mut sorted = self.values.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            sorted
        });
        let rank = (p / 100.0) * (sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        if lo == hi {
            sorted[lo]
        } else {
            let w = rank - lo as f64;
            sorted[lo] * (1.0 - w) + sorted[hi] * w
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        let mut s = OnlineStats::new();
        for &v in &self.values {
            s.push(v);
        }
        s.stddev()
    }

    /// The raw observations.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// An `(x, y)` series for reproducing a figure.
#[derive(Debug, Clone, Default)]
pub struct Series {
    /// Series name as shown in the figure legend.
    pub name: String,
    points: Vec<(f64, f64)>,
}

impl Series {
    /// Empty named series.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The collected points in insertion order.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// The y value at a given x (exact match), if present.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (*px - x).abs() < 1e-9)
            .map(|&(_, y)| y)
    }

    /// True if y never decreases as x increases (series must be pushed in
    /// ascending x order).
    pub fn is_non_decreasing(&self) -> bool {
        self.points.windows(2).all(|w| w[1].1 >= w[0].1 - 1e-12)
    }

    /// True if y never increases as x increases.
    pub fn is_non_increasing(&self) -> bool {
        self.points.windows(2).all(|w| w[1].1 <= w[0].1 + 1e-12)
    }

    /// Render as a simple aligned two-column table.
    pub fn render(&self, x_label: &str, y_label: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.name);
        let _ = writeln!(out, "{x_label:>12}  {y_label:>14}");
        for (x, y) in &self.points {
            let _ = writeln!(out, "{x:>12.3}  {y:>14.4}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_match_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for x in xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        let sum = Summary::new();
        assert_eq!(sum.mean(), 0.0);
        assert_eq!(sum.median(), 0.0);
    }

    #[test]
    fn summary_statistics() {
        let s = Summary::from_values([5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.median(), 3.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(100.0), 5.0);
        assert_eq!(s.percentile(25.0), 2.0);
    }

    #[test]
    fn median_of_even_count_interpolates() {
        let s = Summary::from_values([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.median(), 2.5);
    }

    #[test]
    fn push_invalidates_the_cached_sort() {
        let mut s = Summary::from_values([5.0, 1.0]);
        assert_eq!(s.median(), 3.0); // populates the cache
        s.push(0.0);
        assert_eq!(s.median(), 1.0);
        assert_eq!(s.percentile(100.0), 5.0);
    }

    #[test]
    fn summary_from_spans_is_in_seconds() {
        let s = Summary::from_spans([SimSpan::from_millis(100), SimSpan::from_millis(300)]);
        assert!((s.mean() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn series_monotonicity_checks() {
        let mut up = Series::new("up");
        let mut down = Series::new("down");
        for i in 0..10 {
            up.push(i as f64, (i * i) as f64);
            down.push(i as f64, 1.0 / (1.0 + i as f64));
        }
        assert!(up.is_non_decreasing());
        assert!(!up.is_non_increasing());
        assert!(down.is_non_increasing());
        assert_eq!(up.y_at(3.0), Some(9.0));
        assert_eq!(up.y_at(3.5), None);
        let r = up.render("n", "t");
        assert!(r.contains("# up"));
    }
}
