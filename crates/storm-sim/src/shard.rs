//! Deterministic parallel intra-timeslice execution (DESIGN.md §18).
//!
//! Within one instant, the engine drains the maximal run of consecutive
//! *shardable* unicast pops (see [`Component::shardable`]) into a
//! **window**, partitions the window's events by target component, and
//! executes each partition on a scoped worker pool. Workers never touch
//! the queue, the arenas, the tracer, or the shared world mutably:
//! each runs against an immutable `&W` plus a private per-component
//! *shard* of world state carved out by [`ShardWorld::extract_shard`],
//! draws randomness from the component's own derived stream, and buffers
//! every send and trace record into per-event scratch buckets. The engine
//! then merges the buckets back in canonical serial pop order, replaying
//! arena and queue accounting exactly as the serial engine would — so the
//! trace, the stats, the interleaving digest, and every telemetry
//! snapshot are byte-identical to a single-threaded run.
//!
//! The zero-perturbation contract rests on four properties:
//!
//! 1. **Clean seq prefix.** With no [`DeliveryOrder`] hook installed,
//!    ties are zero and anything a handler pushes at this instant gets a
//!    higher sequence number than everything already queued — so the
//!    drained window is a contiguous `(time, seq)` prefix of the instant
//!    and merged pushes sort after it exactly as serial pushes would.
//! 2. **Per-component RNG streams.** Every component always draws from
//!    its own stream (serial mode included), so concurrent handlers
//!    cannot perturb each other's draws.
//! 3. **Shard isolation.** A shardable handler mutates only its own
//!    component state and its own shard; the rest of the world is read
//!    as an immutable snapshot — which serial same-window handlers do
//!    not mutate either (they only write *their* shards).
//! 4. **Replayed accounting.** The merge re-applies arena takes/allocs
//!    and queue pushes in serial order, biasing the queue's depth
//!    high-water mark by the events the serial engine would not yet
//!    have popped, so `peak` gauges match bit for bit.
//!
//! [`Component::shardable`]: crate::engine::Component::shardable
//! [`DeliveryOrder`]: crate::queue::DeliveryOrder

use crate::engine::{Component, ComponentId};
use crate::rng::DeterministicRng;
use crate::time::{SimSpan, SimTime};
use crate::trace::TraceRecord;
use std::any::Any;

/// A world that can carve out per-component private state for parallel
/// window execution.
///
/// `extract_shard` hands the window executor ownership of everything a
/// shardable handler of `component` may *mutate* besides the component's
/// own fields; `restore_shard` merges it back. Returning `None` refuses
/// the window (e.g. a global audit is observing writes) and the engine
/// falls back to serial execution — refusal must leave the world
/// unchanged, and extraction must be rollback-safe: a refusal after some
/// shards were already extracted restores them verbatim.
pub trait ShardWorld {
    /// The per-component private state. Moved onto worker threads.
    type Shard: Send + 'static;

    /// Detach `component`'s private shard, or `None` to refuse sharding
    /// (the engine then executes the window serially).
    fn extract_shard(&mut self, component: ComponentId) -> Option<Self::Shard>;

    /// Re-attach a shard previously returned by
    /// [`ShardWorld::extract_shard`], folding any buffered deltas (stat
    /// counters, metric bumps) into the shared world.
    fn restore_shard(&mut self, component: ComponentId, shard: Self::Shard);
}

/// What a shardable handler may touch while executing on a worker: the
/// clock, an immutable world snapshot, its private shard, its own RNG
/// stream, and buffered send/trace sinks.
///
/// Mirrors [`Context`](crate::engine::Context) minus everything that
/// would be observable mid-window: no queue observables, no
/// pending-message count, no mutable world, no halt, no multicast.
/// Implementations of [`Component::handle_shard`] must call
/// [`ShardContext::next_message`] before handling each message so the
/// engine can merge sends and traces back per event in serial order.
pub struct ShardContext<'a, W, M> {
    now: SimTime,
    self_id: ComponentId,
    world: &'a W,
    shard: &'a mut (dyn Any + Send),
    rng: &'a mut DeterministicRng,
    trace_on: bool,
    sends: Vec<(ComponentId, SimTime, M)>,
    traces: Vec<TraceRecord>,
    /// Per-message boundaries into `sends`/`traces`, pushed by
    /// [`ShardContext::next_message`].
    cuts: Vec<(u32, u32)>,
}

impl<'a, W, M> ShardContext<'a, W, M> {
    /// Build a context for one shard's run over a window partition.
    pub fn new(
        now: SimTime,
        self_id: ComponentId,
        world: &'a W,
        shard: &'a mut (dyn Any + Send),
        rng: &'a mut DeterministicRng,
        trace_on: bool,
    ) -> Self {
        ShardContext {
            now,
            self_id,
            world,
            shard,
            rng,
            trace_on,
            sends: Vec::new(),
            traces: Vec::new(),
            cuts: Vec::new(),
        }
    }

    /// Current simulated time (constant across the window).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the component handling this partition.
    pub fn self_id(&self) -> ComponentId {
        self.self_id
    }

    /// Immutable snapshot of the shared world.
    pub fn world(&self) -> &W {
        self.world
    }

    /// The component's private shard, downcast to its concrete type.
    /// Panics when `T` is not the world's shard type — a wiring bug,
    /// never a runtime condition.
    pub fn shard<T: Any>(&self) -> &T {
        (*self.shard).downcast_ref().expect("shard type mismatch")
    }

    /// Mutable access to the private shard (see [`ShardContext::shard`]).
    pub fn shard_mut<T: Any>(&mut self) -> &mut T {
        (*self.shard).downcast_mut().expect("shard type mismatch")
    }

    /// The component's own deterministic RNG stream — the same stream
    /// serial delivery draws from, so draw sequences are identical.
    pub fn rng(&mut self) -> &mut DeterministicRng {
        self.rng
    }

    /// Mark the start of the next message's output bucket. Must be called
    /// once per message, *before* handling it.
    pub fn next_message(&mut self) {
        self.cuts.push((
            u32::try_from(self.sends.len()).expect("shard send overflow"),
            u32::try_from(self.traces.len()).expect("shard trace overflow"),
        ));
    }

    /// Buffer `msg` for `target` at absolute instant `at` (clamped to
    /// *now*, like `Context::send_at`). The engine performs the real
    /// queue push at merge time, in serial order.
    pub fn send_at(&mut self, target: ComponentId, at: SimTime, msg: M) {
        let at = at.max(self.now);
        self.sends.push((target, at, msg));
    }

    /// Buffer `msg` for `target` after `delay` (no clamp, like
    /// `Context::send`).
    pub fn send(&mut self, target: ComponentId, delay: SimSpan, msg: M) {
        let at = self.now + delay;
        self.sends.push((target, at, msg));
    }

    /// Buffer `msg` to self after `delay` (a timer).
    pub fn send_self(&mut self, delay: SimSpan, msg: M) {
        let id = self.self_id;
        self.send(id, delay, msg);
    }

    /// Buffer `msg` to self at absolute instant `at`.
    pub fn send_self_at(&mut self, at: SimTime, msg: M) {
        let id = self.self_id;
        self.send_at(id, at, msg);
    }

    /// Buffer a trace record (no-op unless tracing is enabled). The
    /// engine appends it through the real tracer at merge time, so
    /// bounded-capacity drop accounting matches serial runs.
    pub fn trace(&mut self, label: &'static str, detail: impl FnOnce() -> String) {
        if self.trace_on {
            self.traces.push(TraceRecord {
                time: self.now,
                component: self.self_id,
                label,
                detail: detail(),
            });
        }
    }

    /// Tear down into the flat buffers plus the per-message cut offsets.
    /// Panics unless [`ShardContext::next_message`] was called exactly
    /// `expected` times.
    #[allow(clippy::type_complexity)]
    fn into_raw(
        self,
        expected: usize,
    ) -> (
        Vec<(ComponentId, SimTime, M)>,
        Vec<TraceRecord>,
        Vec<(u32, u32)>,
    ) {
        assert_eq!(
            self.cuts.len(),
            expected,
            "handle_shard must call next_message() once per message"
        );
        (self.sends, self.traces, self.cuts)
    }
}

/// One shard job's buffered output, consumed sequentially at merge time.
/// Events within a job appear in window pop order, so draining cursors
/// (rather than per-event `Vec`s) reproduce per-event buckets with zero
/// per-event allocation.
struct JobOutput<M> {
    sends: std::vec::IntoIter<(ComponentId, SimTime, M)>,
    traces: std::vec::IntoIter<TraceRecord>,
}

/// A whole window's worth of worker output: one [`JobOutput`] per target
/// (ascending) and, per window position in pop order, the producing job
/// plus how many sends/traces that event emitted.
pub(crate) struct WindowOutput<M> {
    jobs: Vec<JobOutput<M>>,
    /// Per window position: (job index, send count, trace count).
    per_event: Vec<(u32, u32, u32)>,
}

impl<M> WindowOutput<M> {
    /// Replay window position `w`'s buffered sends and traces through
    /// `send` / `trace`, in emission order. Positions must be visited in
    /// increasing order exactly once — the per-job cursors only move
    /// forward.
    pub(crate) fn emit(
        &mut self,
        w: usize,
        mut send: impl FnMut(ComponentId, SimTime, M),
        mut trace: impl FnMut(TraceRecord),
    ) {
        let (j, n_sends, n_traces) = self.per_event[w];
        let job = &mut self.jobs[j as usize];
        for _ in 0..n_sends {
            let (to, at, msg) = job.sends.next().expect("send cursor exhausted");
            send(to, at, msg);
        }
        for _ in 0..n_traces {
            trace(job.traces.next().expect("trace cursor exhausted"));
        }
    }

    /// Number of window positions covered (one per window event).
    pub(crate) fn len(&self) -> usize {
        self.per_event.len()
    }
}

/// Type-erased window executor stored by the engine. A single
/// monomorphized implementation ([`ParallelExec`]) exists; the erasure
/// keeps `Simulation::step` free of `ShardWorld`/`Send` bounds for
/// worlds that never enable threads.
pub(crate) trait WindowExec<W, M> {
    /// Execute `window` (target, message clones in pop order) across up
    /// to `threads` workers. Returns the window's buffered output (one
    /// bucket per window event, consumed through [`WindowOutput::emit`]),
    /// or `None` when the world refused shard extraction (the engine
    /// falls back to serial execution; the world is left unchanged).
    #[allow(clippy::too_many_arguments)]
    fn run(
        &self,
        threads: usize,
        now: SimTime,
        trace_on: bool,
        world: &mut W,
        components: &mut [Box<dyn Component<W, M> + Send>],
        streams: &mut [DeterministicRng],
        window: &[(u32, M)],
    ) -> Option<WindowOutput<M>>;
}

/// The scoped-thread window executor (see module docs).
pub(crate) struct ParallelExec<W, M>(std::marker::PhantomData<fn() -> (W, M)>);

impl<W, M> Default for ParallelExec<W, M> {
    fn default() -> Self {
        ParallelExec(std::marker::PhantomData)
    }
}

/// One target's slice of the window, with everything its worker needs.
struct ShardJob<'s, W: ShardWorld, M> {
    target: u32,
    comp: &'s mut (dyn Component<W, M> + Send),
    stream: &'s mut DeterministicRng,
    shard: W::Shard,
    msgs: Vec<M>,
}

/// One finished job's raw output: its shard back, plus flat send/trace
/// buffers and the per-event cut offsets into them.
#[allow(clippy::type_complexity)]
type ChunkResult<W, M> = Vec<(
    <W as ShardWorld>::Shard,
    Vec<(ComponentId, SimTime, M)>,
    Vec<TraceRecord>,
    Vec<(u32, u32)>,
)>;

/// Run one worker's contiguous chunk of jobs, returning each job's shard
/// and raw output buffers in job order.
fn run_chunk<W, M>(
    world: &W,
    now: SimTime,
    trace_on: bool,
    chunk: Vec<ShardJob<'_, W, M>>,
) -> ChunkResult<W, M>
where
    W: ShardWorld,
{
    chunk
        .into_iter()
        .map(|mut job| {
            let n = job.msgs.len();
            let mut ctx = ShardContext::new(
                now,
                ComponentId::from_index(job.target),
                world,
                &mut job.shard as &mut (dyn Any + Send),
                job.stream,
                trace_on,
            );
            ctx.cuts.reserve_exact(n);
            ctx.sends.reserve(n);
            job.comp.handle_shard(&mut job.msgs, &mut ctx);
            debug_assert!(job.msgs.is_empty(), "handle_shard must drain its input");
            let (sends, traces, cuts) = ctx.into_raw(n);
            (job.shard, sends, traces, cuts)
        })
        .collect()
}

impl<W, M> WindowExec<W, M> for ParallelExec<W, M>
where
    W: ShardWorld + Sync,
    M: Clone + Send,
{
    fn run(
        &self,
        threads: usize,
        now: SimTime,
        trace_on: bool,
        world: &mut W,
        components: &mut [Box<dyn Component<W, M> + Send>],
        streams: &mut [DeterministicRng],
        window: &[(u32, M)],
    ) -> Option<WindowOutput<M>> {
        // Distinct targets, ascending — the shard partition. Fan-out
        // windows usually arrive in ascending target order (a broadcast
        // loop pushes targets in id order, and same-instant pops keep
        // push order), so detect sortedness on the way in and skip the
        // sort plus every later binary search.
        let mut targets: Vec<u32> = window.iter().map(|&(t, _)| t).collect();
        let presorted = targets.windows(2).all(|w| w[0] <= w[1]);
        if !presorted {
            targets.sort_unstable();
        }
        targets.dedup();

        // Carve out per-target shards; any refusal rolls the rest back
        // and reports the whole window unshardable.
        let mut shards: Vec<W::Shard> = Vec::with_capacity(targets.len());
        for (i, &t) in targets.iter().enumerate() {
            match world.extract_shard(ComponentId::from_index(t)) {
                Some(s) => shards.push(s),
                None => {
                    for (&u, s) in targets[..i].iter().zip(shards.drain(..)) {
                        world.restore_shard(ComponentId::from_index(u), s);
                    }
                    return None;
                }
            }
        }

        // Partition the window per target (counting pass first, so every
        // per-target buffer is one exact allocation), remembering each
        // event's job so outputs merge back in pop order. On a presorted
        // window the job index just advances with the target walk.
        let mut counts: Vec<usize> = vec![0; targets.len()];
        let mut job_of: Vec<u32> = Vec::with_capacity(window.len());
        let mut walk = 0usize;
        for (t, _) in window {
            let j = if presorted {
                while targets[walk] != *t {
                    walk += 1;
                }
                walk
            } else {
                targets.binary_search(t).expect("window target missing")
            };
            counts[j] += 1;
            job_of.push(u32::try_from(j).expect("window too large"));
        }
        let mut per_msgs: Vec<Vec<M>> = counts.iter().map(|&c| Vec::with_capacity(c)).collect();
        for (&j, (_, msg)) in job_of.iter().zip(window) {
            per_msgs[j as usize].push(msg.clone());
        }

        // Disjoint `&mut` borrows of each target's component and stream,
        // via a split walk over the ascending target list.
        let mut comps: Vec<&mut (dyn Component<W, M> + Send)> = Vec::with_capacity(targets.len());
        let mut comp_rest = components;
        let mut rngs: Vec<&mut DeterministicRng> = Vec::with_capacity(targets.len());
        let mut rng_rest = streams;
        let mut base = 0usize;
        for &t in &targets {
            let at = t as usize - base;
            let (_, tail) = comp_rest.split_at_mut(at);
            let (hit, tail) = tail.split_at_mut(1);
            comps.push(hit[0].as_mut());
            comp_rest = tail;
            let (_, tail) = rng_rest.split_at_mut(at);
            let (hit, tail) = tail.split_at_mut(1);
            rngs.push(&mut hit[0]);
            rng_rest = tail;
            base = t as usize + 1;
        }

        // Assemble jobs in target order, then slice them into contiguous
        // chunks balanced by event count.
        let mut jobs: Vec<ShardJob<'_, W, M>> = Vec::with_capacity(targets.len());
        for (((&target, comp), stream), (shard, msgs)) in targets
            .iter()
            .zip(comps)
            .zip(rngs)
            .zip(shards.into_iter().zip(per_msgs))
        {
            jobs.push(ShardJob {
                target,
                comp,
                stream,
                shard,
                msgs,
            });
        }
        let workers = threads.min(jobs.len()).max(1);
        let quota = window.len().div_ceil(workers);
        let mut chunks: Vec<Vec<ShardJob<'_, W, M>>> = Vec::with_capacity(workers);
        let mut chunk: Vec<ShardJob<'_, W, M>> = Vec::new();
        let mut events = 0usize;
        for job in jobs {
            events += job.msgs.len();
            chunk.push(job);
            if events >= quota && chunks.len() + 1 < workers {
                chunks.push(std::mem::take(&mut chunk));
                events = 0;
            }
        }
        if !chunk.is_empty() {
            chunks.push(chunk);
        }

        // Scoped fan-out: the first chunk runs on the calling thread,
        // the rest on spawned workers; results keep chunk order.
        let world_ref: &W = world;
        let results: Vec<ChunkResult<W, M>> = std::thread::scope(|scope| {
            let mut rest = chunks.into_iter();
            let mine = rest.next();
            let handles: Vec<_> = rest
                .map(|c| scope.spawn(move || run_chunk(world_ref, now, trace_on, c)))
                .collect();
            let mut out = Vec::with_capacity(handles.len() + 1);
            if let Some(c) = mine {
                out.push(run_chunk(world_ref, now, trace_on, c));
            }
            for h in handles {
                out.push(h.join().expect("shard worker panicked"));
            }
            out
        });

        // Restore shards (ascending target order) and keep each job's
        // flat buffers plus per-event cuts; chunks are contiguous in
        // target order, so flattening restores job order.
        let mut jobs: Vec<JobOutput<M>> = Vec::with_capacity(targets.len());
        let mut cuts: Vec<Vec<(u32, u32)>> = Vec::with_capacity(targets.len());
        let mut ends: Vec<(u32, u32)> = Vec::with_capacity(targets.len());
        let flat = results.into_iter().flatten();
        for (&t, (shard, sends, traces, job_cuts)) in targets.iter().zip(flat) {
            world.restore_shard(ComponentId::from_index(t), shard);
            ends.push((
                u32::try_from(sends.len()).expect("shard send overflow"),
                u32::try_from(traces.len()).expect("shard trace overflow"),
            ));
            jobs.push(JobOutput {
                sends: sends.into_iter(),
                traces: traces.into_iter(),
            });
            cuts.push(job_cuts);
        }

        // Per window position, how much of its job's buffers it emitted:
        // the distance between consecutive cuts (or to the buffer end).
        let mut cursor: Vec<usize> = vec![0; targets.len()];
        let mut per_event: Vec<(u32, u32, u32)> = Vec::with_capacity(window.len());
        for &j in &job_of {
            let k = cursor[j as usize];
            cursor[j as usize] = k + 1;
            let (s0, t0) = cuts[j as usize][k];
            let (s1, t1) = cuts[j as usize]
                .get(k + 1)
                .copied()
                .unwrap_or(ends[j as usize]);
            per_event.push((j, s1 - s0, t1 - t0));
        }
        Some(WindowOutput { jobs, per_event })
    }
}
