//! Steady-state allocation audit for the hot delivery paths.
//!
//! A counting global allocator wraps the system allocator; after a warm-up
//! phase (arena slots claimed, wheel buckets and the batch scratch buffer
//! at capacity) the periodic multicast + batched-delivery loop must run
//! **allocation-free**: group expansion moves the payload to the last
//! member and clones it for the rest (no boxing), `GroupTargets` is either
//! a `Copy` stride or an `Arc` list (clone is a refcount bump), and the
//! engine's batch buffer is take-and-restored rather than reallocated.
//!
//! This file holds exactly one `#[test]` — the counter is process-global,
//! so a sibling test running on another thread would pollute the audit.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use storm_sim::{Component, Context, GroupSchedule, GroupTargets, SimSpan, Simulation};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The world: one delivery counter per leaf (index 0 is unused — it
/// belongs to the hub).
type Counts = [u64; 9];

/// Drives the loop: every millisecond, multicast a payload to the leaves.
struct Hub {
    targets: GroupTargets,
    rounds: u64,
}

impl Component<Counts, u64> for Hub {
    fn handle(&mut self, msg: u64, ctx: &mut Context<'_, Counts, u64>) {
        assert_eq!(msg, 0, "hub only receives its own driver message");
        self.rounds += 1;
        ctx.multicast(
            &self.targets,
            ctx.now() + SimSpan::from_micros(10),
            GroupSchedule::Simultaneous,
            self.rounds,
        );
        ctx.send_self_at(ctx.now() + SimSpan::from_millis(1), 0);
    }
}

/// Receives the fan-out; batchable so the run also exercises the engine's
/// batch drain (all leaf deliveries land at the same instant).
struct Leaf {
    index: usize,
}

impl Component<Counts, u64> for Leaf {
    fn handle(&mut self, _msg: u64, ctx: &mut Context<'_, Counts, u64>) {
        ctx.world()[self.index] += 1;
    }

    fn batchable(&self, _msg: &u64) -> bool {
        true
    }
}

#[test]
fn steady_state_multicast_and_batching_allocate_nothing() {
    let mut sim: Simulation<Counts, u64> = Simulation::new([0; 9], 7);
    let hub = sim.add_component(Hub {
        targets: GroupTargets::Strided {
            first: storm_sim::ComponentId::from_index(1),
            stride: 1,
            len: 8,
        },
        rounds: 0,
    });
    for index in 1..=8 {
        sim.add_component(Leaf { index });
    }
    sim.post(storm_sim::SimTime::ZERO, hub, 0);

    // Warm-up: several full wheel revolutions' worth of rounds, so every
    // bucket, arena slot, and the batch scratch buffer reach capacity.
    for _ in 0..200_000 {
        if !sim.step() {
            panic!("driver loop must be self-sustaining");
        }
    }

    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..20_000 {
        sim.step();
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state group expansion + batched delivery must not allocate"
    );

    // Sanity: the loop really did fan out to the leaves the whole time.
    let seen: u64 = sim.world()[1..].iter().sum();
    assert!(seen > 30_000, "leaves saw the fan-out: {seen}");
}
