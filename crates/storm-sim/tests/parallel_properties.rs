//! Property-based zero-perturbation check for parallel window execution
//! (DESIGN.md §18): for *any* event schedule and *any* shard partition
//! (including components whose world refuses shard extraction), running
//! with a worker pool must reproduce the serial engine's delivery order
//! — the (time, tie, seq) pop order observed through the trace — and
//! every other observable, under both queue backends.

use proptest::prelude::*;
use storm_sim::{
    Component, ComponentId, Context, QueueBackend, ShardContext, ShardWorld, SimSpan, SimTime,
    Simulation,
};

/// One cell per component; `refuse[i]` vetoes shard extraction for
/// component `i`, exercising the partial-partition fallback.
#[derive(Debug)]
struct PGrid {
    cells: Vec<u64>,
    refuse: Vec<bool>,
}

impl ShardWorld for PGrid {
    type Shard = u64;

    fn extract_shard(&mut self, c: ComponentId) -> Option<u64> {
        if self.refuse[c.index()] {
            return None;
        }
        Some(std::mem::take(&mut self.cells[c.index()]))
    }

    fn restore_shard(&mut self, c: ComponentId, s: u64) {
        self.cells[c.index()] = s;
    }
}

#[derive(Clone, Debug)]
enum PMsg {
    /// Shardable + batchable data message.
    Hop { hops: u32, salt: u8 },
    /// Serial-only world mutation (breaks windows as a carry).
    Mark,
}

struct PCell {
    id: u32,
    n: u32,
}

impl PCell {
    /// Shared body for the serial and shard paths: identical RNG draws,
    /// cell arithmetic, fan-out, and trace, with the sinks abstracted.
    #[allow(clippy::too_many_arguments)]
    fn hop<S, T>(
        &self,
        hops: u32,
        salt: u8,
        now: SimTime,
        jitter: f64,
        cell: &mut u64,
        mut send_at: S,
        mut trace: T,
    ) where
        S: FnMut(ComponentId, SimTime, PMsg),
        T: FnMut(&'static str, String),
    {
        *cell = cell.wrapping_add(u64::from(salt) + 1 + (jitter * 7.0) as u64);
        if hops > 0 {
            let to = ComponentId::from_index((self.id + 1 + u32::from(salt)) % self.n);
            let at = if jitter < 0.5 {
                now
            } else {
                now + SimSpan::from_micros(1 + (jitter * 2.0) as u64)
            };
            send_at(
                to,
                at,
                PMsg::Hop {
                    hops: hops - 1,
                    salt: salt.wrapping_mul(31).wrapping_add(7),
                },
            );
        }
        trace("hop", format!("h={hops} s={salt}"));
    }
}

impl Component<PGrid, PMsg> for PCell {
    fn handle(&mut self, msg: PMsg, ctx: &mut Context<'_, PGrid, PMsg>) {
        match msg {
            PMsg::Hop { hops, salt } => {
                let now = ctx.now();
                let jitter = ctx.rng().uniform();
                let id = self.id as usize;
                let mut cell = std::mem::take(&mut ctx.world().cells[id]);
                let mut sends = Vec::new();
                let mut traces = Vec::new();
                self.hop(
                    hops,
                    salt,
                    now,
                    jitter,
                    &mut cell,
                    |to, at, m| sends.push((to, at, m)),
                    |l, d| traces.push((l, d)),
                );
                ctx.world().cells[id] = cell;
                for (to, at, m) in sends {
                    ctx.send_at(to, at, m);
                }
                for (l, d) in traces {
                    ctx.trace(l, || d);
                }
            }
            PMsg::Mark => {
                for c in &mut ctx.world().cells {
                    *c = c.wrapping_add(1);
                }
            }
        }
    }

    fn batchable(&self, msg: &PMsg) -> bool {
        matches!(msg, PMsg::Hop { .. })
    }

    fn handle_batch(&mut self, msgs: &mut Vec<PMsg>, ctx: &mut Context<'_, PGrid, PMsg>) {
        for msg in msgs.drain(..) {
            ctx.next_batch_message();
            self.handle(msg, ctx);
        }
    }

    fn shardable(&self, msg: &PMsg) -> bool {
        matches!(msg, PMsg::Hop { .. })
    }

    fn handle_shard(&mut self, msgs: &mut Vec<PMsg>, sctx: &mut ShardContext<'_, PGrid, PMsg>) {
        for msg in msgs.drain(..) {
            sctx.next_message();
            let PMsg::Hop { hops, salt } = msg else {
                unreachable!("Mark is not shardable");
            };
            let now = sctx.now();
            let jitter = sctx.rng().uniform();
            let mut cell = std::mem::take(sctx.shard_mut::<u64>());
            let mut sends = Vec::new();
            let mut traces = Vec::new();
            self.hop(
                hops,
                salt,
                now,
                jitter,
                &mut cell,
                |to, at, m| sends.push((to, at, m)),
                |l, d| traces.push((l, d)),
            );
            *sctx.shard_mut::<u64>() = cell;
            for (to, at, m) in sends {
                sctx.send_at(to, at, m);
            }
            for (l, d) in traces {
                sctx.trace(l, || d);
            }
        }
    }

    fn name(&self) -> &str {
        "pcell"
    }
}

/// A randomly generated posting: (target, µs offset, hops, salt, mark?).
type Post = (u32, u64, u32, u8, bool);

fn run_case(
    backend: QueueBackend,
    threads: usize,
    n: u32,
    refuse: &[bool],
    posts: &[Post],
) -> (String, u64) {
    let world = PGrid {
        cells: vec![0; n as usize],
        refuse: refuse.to_vec(),
    };
    let mut sim = Simulation::new_with_backend(world, 0x51EE7, backend, SimSpan::from_micros(10));
    for i in 0..n {
        sim.add_component(PCell { id: i, n });
    }
    sim.set_threads(threads);
    sim.set_parallel_window_min(3);
    sim.enable_tracing();
    // A guaranteed same-instant multi-target burst at t=0, so the
    // parallel path is exercised whenever no component refuses...
    for i in 0..n {
        sim.post(
            SimTime::ZERO,
            ComponentId::from_index(i),
            PMsg::Hop {
                hops: 3,
                salt: i as u8,
            },
        );
    }
    // ...plus the random schedule.
    for &(target, us, hops, salt, mark) in posts {
        let t = SimTime::from_micros(us);
        let to = ComponentId::from_index(target % n);
        let msg = if mark {
            PMsg::Mark
        } else {
            PMsg::Hop { hops, salt }
        };
        sim.post(t, to, msg);
    }
    sim.run_to_completion();
    let fp = format!(
        "now={:?} delivered={} handled={} queue={:?} arena={:?} cells={:?} traces={:?}",
        sim.now(),
        sim.events_delivered(),
        sim.messages_handled(),
        sim.queue_stats(),
        sim.arena_stats(),
        sim.world().cells,
        sim.tracer().records(),
    );
    (fp, sim.parallel_windows())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For any schedule and any shard partition, the parallel merge
    /// reproduces the serial (time, tie, seq) pop order byte for byte.
    #[test]
    fn parallel_merge_equals_serial_pop_order(
        n in 4u32..9,
        refuse in prop::collection::vec((0u32..10).prop_map(|v| v < 2), 8..9),
        posts in prop::collection::vec(
            (0u32..16, 0u64..20, 0u32..4, any::<u8>(), (0u32..100).prop_map(|v| v < 15)),
            0..48,
        ),
        threads in 2usize..6,
    ) {
        let refuse = &refuse[..n as usize];
        for backend in [QueueBackend::Heap, QueueBackend::Wheel] {
            let (serial, w0) = run_case(backend, 1, n, refuse, &posts);
            prop_assert_eq!(w0, 0, "threads=1 must stay serial");
            let (par, wn) = run_case(backend, threads, n, refuse, &posts);
            if !refuse.iter().any(|&r| r) {
                // The t=0 burst spans every component, so a refusal-free
                // partition must actually take the parallel path.
                prop_assert!(wn > 0, "{:?}: parallel path never ran", backend);
            }
            prop_assert_eq!(&serial, &par, "{:?} threads={} diverged", backend, threads);
        }
    }

    /// Both backends agree with each other under parallel execution for
    /// any schedule — the digest is a property of the schedule, not the
    /// queue implementation or the worker count.
    #[test]
    fn backends_agree_for_any_schedule(
        n in 4u32..9,
        posts in prop::collection::vec(
            (0u32..16, 0u64..20, 0u32..4, any::<u8>(), (0u32..100).prop_map(|v| v < 15)),
            0..32,
        ),
    ) {
        let refuse = vec![false; n as usize];
        let (heap, _) = run_case(QueueBackend::Heap, 4, n, &refuse, &posts);
        let (wheel, _) = run_case(QueueBackend::Wheel, 4, n, &refuse, &posts);
        prop_assert_eq!(heap, wheel);
    }
}
