//! Lock-step byte-identity for parallel intra-timeslice window execution
//! (DESIGN.md §18): a thread count of N must reproduce the serial run's
//! trace, stats, queue/arena accounting, and world state bit for bit —
//! under both queue backends — while actually exercising the parallel
//! path (asserted via the engine's window counter).

use storm_sim::{
    Component, ComponentId, Context, DeliveryOrder, QueueBackend, ShardContext, ShardWorld,
    SimSpan, SimTime, Simulation,
};

/// Per-component cells; cell `i` is component `i`'s shard. `refuse`
/// simulates a world-side veto (like the CAW audit in storm-core).
#[derive(Debug)]
struct Grid {
    cells: Vec<u64>,
    refuse: bool,
    serial_hits: u64,
}

impl ShardWorld for Grid {
    type Shard = u64;

    fn extract_shard(&mut self, c: ComponentId) -> Option<u64> {
        if self.refuse {
            return None;
        }
        Some(std::mem::take(&mut self.cells[c.index()]))
    }

    fn restore_shard(&mut self, c: ComponentId, s: u64) {
        self.cells[c.index()] = s;
    }
}

#[derive(Clone, Debug)]
enum TMsg {
    /// Batchable + shardable data path: bumps the cell, fans out.
    Work { hops: u32 },
    /// Shardable but NOT batchable (exercises the single-delivery lane
    /// of the serial replay / merge state machine).
    Probe,
    /// Neither: mutates shared world state, so it breaks a window (the
    /// carry) and always runs serially.
    Global,
}

struct Cell {
    id: u32,
    n: u32,
}

impl Cell {
    /// One `Work` message's effect, written once so the serial and shard
    /// paths cannot drift: same RNG draws, same cell bump, same sends,
    /// same trace — only the sinks differ.
    fn work<S, T>(
        &mut self,
        hops: u32,
        now: SimTime,
        jitter: f64,
        cell: &mut u64,
        mut send_at: S,
        mut trace: T,
    ) where
        S: FnMut(ComponentId, SimTime, TMsg),
        T: FnMut(&'static str, String),
    {
        *cell += 1 + (jitter * 4.0) as u64;
        if hops > 0 {
            let to = ComponentId::from_index((self.id + 1 + hops) % self.n);
            // Half the fan-out stays same-instant (growing the window),
            // half advances the clock.
            let at = if jitter < 0.5 {
                now
            } else {
                now + SimSpan::from_micros(1 + (jitter * 3.0) as u64)
            };
            send_at(to, at, TMsg::Work { hops: hops - 1 });
        }
        trace("work", format!("hops={hops}"));
    }
}

impl Component<Grid, TMsg> for Cell {
    fn handle(&mut self, msg: TMsg, ctx: &mut Context<'_, Grid, TMsg>) {
        match msg {
            TMsg::Work { hops } => {
                let now = ctx.now();
                let jitter = ctx.rng().uniform();
                let id = self.id as usize;
                let mut cell = std::mem::take(&mut ctx.world().cells[id]);
                let mut sends = Vec::new();
                let mut traces = Vec::new();
                self.work(
                    hops,
                    now,
                    jitter,
                    &mut cell,
                    |to, at, m| sends.push((to, at, m)),
                    |l, d| traces.push((l, d)),
                );
                ctx.world().cells[id] = cell;
                for (to, at, m) in sends {
                    ctx.send_at(to, at, m);
                }
                for (l, d) in traces {
                    ctx.trace(l, || d);
                }
            }
            TMsg::Probe => {
                ctx.world().cells[self.id as usize] += 100;
            }
            TMsg::Global => {
                let w = ctx.world();
                w.serial_hits += 1;
                for c in &mut w.cells {
                    *c += 1;
                }
            }
        }
    }

    fn batchable(&self, msg: &TMsg) -> bool {
        matches!(msg, TMsg::Work { .. })
    }

    fn handle_batch(&mut self, msgs: &mut Vec<TMsg>, ctx: &mut Context<'_, Grid, TMsg>) {
        for msg in msgs.drain(..) {
            ctx.next_batch_message();
            self.handle(msg, ctx);
        }
    }

    fn shardable(&self, msg: &TMsg) -> bool {
        matches!(msg, TMsg::Work { .. } | TMsg::Probe)
    }

    fn handle_shard(&mut self, msgs: &mut Vec<TMsg>, sctx: &mut ShardContext<'_, Grid, TMsg>) {
        for msg in msgs.drain(..) {
            sctx.next_message();
            match msg {
                TMsg::Work { hops } => {
                    let now = sctx.now();
                    let jitter = sctx.rng().uniform();
                    let mut cell = std::mem::take(sctx.shard_mut::<u64>());
                    let mut sends = Vec::new();
                    let mut traces = Vec::new();
                    self.work(
                        hops,
                        now,
                        jitter,
                        &mut cell,
                        |to, at, m| sends.push((to, at, m)),
                        |l, d| traces.push((l, d)),
                    );
                    *sctx.shard_mut::<u64>() = cell;
                    for (to, at, m) in sends {
                        sctx.send_at(to, at, m);
                    }
                    for (l, d) in traces {
                        sctx.trace(l, || d);
                    }
                }
                TMsg::Probe => {
                    *sctx.shard_mut::<u64>() += 100;
                }
                TMsg::Global => unreachable!("Global is not shardable"),
            }
        }
    }

    fn name(&self) -> &str {
        "cell"
    }
}

const N: u32 = 12;

fn build(
    backend: QueueBackend,
    threads: usize,
    par_min: usize,
    refuse: bool,
) -> Simulation<Grid, TMsg> {
    let world = Grid {
        cells: vec![0; N as usize],
        refuse,
        serial_hits: 0,
    };
    let mut sim = Simulation::new_with_backend(world, 0xC0FFEE, backend, SimSpan::from_micros(10));
    for i in 0..N {
        sim.add_component(Cell { id: i, n: N });
    }
    sim.set_threads(threads);
    sim.set_parallel_window_min(par_min);
    sim.enable_tracing();
    // Same-instant storm at t=0 across every target (forms windows), a
    // Probe per component (non-batchable singles inside windows), and
    // Globals that land mid-instant as window carries.
    for i in 0..N {
        sim.post(
            SimTime::ZERO,
            ComponentId::from_index(i),
            TMsg::Work { hops: 6 },
        );
        sim.post(SimTime::ZERO, ComponentId::from_index(i), TMsg::Probe);
    }
    sim.post(SimTime::ZERO, ComponentId::from_index(0), TMsg::Global);
    sim.post(
        SimTime::from_micros(2),
        ComponentId::from_index(3),
        TMsg::Global,
    );
    sim
}

/// Every observable the zero-perturbation contract covers, in one string.
fn fingerprint(sim: &Simulation<Grid, TMsg>) -> String {
    format!(
        "now={:?} delivered={} handled={} queue={:?} arena={:?} cells={:?} serial={} traces={:?}",
        sim.now(),
        sim.events_delivered(),
        sim.messages_handled(),
        sim.queue_stats(),
        sim.arena_stats(),
        sim.world().cells,
        sim.world().serial_hits,
        sim.tracer().records(),
    )
}

fn run(backend: QueueBackend, threads: usize, par_min: usize, refuse: bool) -> (String, u64) {
    let mut sim = build(backend, threads, par_min, refuse);
    sim.run_to_completion();
    (fingerprint(&sim), sim.parallel_windows())
}

#[test]
fn parallel_matches_serial_byte_for_byte_both_backends() {
    for backend in [QueueBackend::Heap, QueueBackend::Wheel] {
        let (serial, w0) = run(backend, 1, 4, false);
        assert_eq!(w0, 0, "threads=1 must never take the parallel path");
        for threads in [2, 4, 8] {
            let (par, wn) = run(backend, threads, 4, false);
            assert!(
                wn > 0,
                "parallel path must actually run ({backend:?} t={threads})"
            );
            assert_eq!(serial, par, "{backend:?} threads={threads} diverged");
        }
    }
}

#[test]
fn backends_agree_under_parallel_execution() {
    let (heap, _) = run(QueueBackend::Heap, 4, 4, false);
    let (wheel, _) = run(QueueBackend::Wheel, 4, 4, false);
    assert_eq!(heap, wheel);
}

#[test]
fn delivery_order_hook_suspends_parallel_execution() {
    let go = |threads: usize| {
        let mut sim = build(QueueBackend::Wheel, threads, 4, false);
        sim.set_delivery_order(Some(DeliveryOrder::seeded(7, 3)));
        sim.run_to_completion();
        (
            fingerprint(&sim),
            sim.parallel_windows(),
            sim.interleaving_digest(),
        )
    };
    let (a, w1, d1) = go(1);
    let (b, w4, d4) = go(4);
    assert_eq!(w1, 0);
    assert_eq!(w4, 0, "a DST order hook must auto-suspend parallel windows");
    assert_eq!(a, b);
    assert_eq!(d1, d4, "interleaving digests must match");
}

#[test]
fn shard_refusal_falls_back_to_serial_replay() {
    let (serial, _) = run(QueueBackend::Wheel, 1, 4, true);
    let (par, wn) = run(QueueBackend::Wheel, 4, 4, true);
    assert_eq!(wn, 0, "a refusing world must force the serial fallback");
    assert_eq!(serial, par);
}

#[test]
fn subthreshold_windows_replay_serially_and_identically() {
    // Threads on, but the window floor is far above anything this run
    // forms: every window takes the exact-serial replay lane.
    let (serial, _) = run(QueueBackend::Wheel, 1, 4, false);
    let (par, wn) = run(QueueBackend::Wheel, 4, 10_000, false);
    assert_eq!(wn, 0);
    assert_eq!(serial, par);
}

#[test]
fn engine_state_round_trips_per_component_streams() {
    let mut sim = build(QueueBackend::Wheel, 4, 4, false);
    // Run partway, snapshot, and let the original finish.
    for _ in 0..40 {
        if !sim.step() {
            break;
        }
    }
    let state = sim.export_engine_state();
    assert_eq!(state.streams.len(), N as usize);
    let cells_mid = sim.world().cells.clone();
    let serial_mid = sim.world().serial_hits;
    sim.run_to_completion();

    // Rebuild from the snapshot (engine state + the world the caller
    // checkpoints separately) and finish; the restored run must land on
    // the same final world — per-component stream positions included.
    let mut sim2 = build(QueueBackend::Wheel, 4, 4, false);
    sim2.import_engine_state(state);
    sim2.world_mut().cells = cells_mid;
    sim2.world_mut().serial_hits = serial_mid;
    sim2.run_to_completion();
    assert_eq!(sim2.world().cells, sim.world().cells);
    assert_eq!(sim2.world().serial_hits, sim.world().serial_hits);
    assert_eq!(sim2.now(), sim.now());
}
