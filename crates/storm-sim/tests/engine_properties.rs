//! Property-based tests of the engine's foundational invariants.

use proptest::prelude::*;
use storm_sim::{Component, Context, EventQueue, QueueBackend, SimSpan, SimTime, Simulation};

proptest! {
    /// The event queue pops in (time, insertion) order for any input.
    #[test]
    fn queue_pops_sorted(times in prop::collection::vec(0u64..1_000_000, 1..500)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t > lt || (t == lt && i > li),
                    "order violated: ({lt:?},{li}) then ({t:?},{i})");
            }
            last = Some((t, i));
        }
        prop_assert_eq!(q.total_popped(), times.len() as u64);
    }

    /// next_boundary is the unique strictly-later multiple of the period.
    #[test]
    fn next_boundary_properties(t in 0u64..u64::MAX / 4, period in 1u64..1_000_000_000) {
        let time = SimTime::from_nanos(t);
        let p = SimSpan::from_nanos(period);
        let b = time.next_boundary(p);
        prop_assert!(b > time);
        prop_assert_eq!(b.as_nanos() % period, 0);
        prop_assert!(b.as_nanos() - t <= period);
        // prev_boundary is at or before, and within one period.
        let v = time.prev_boundary(p);
        prop_assert!(v <= time);
        prop_assert_eq!(v.as_nanos() % period, 0);
        prop_assert!(t - v.as_nanos() < period);
    }

    /// The timing wheel is observably indistinguishable from the reference
    /// heap under arbitrary schedules: same-instant bursts, far-future
    /// pushes that land in the overflow level and cascade back on wrap,
    /// and pushes interleaved with pops (including at or before the wheel
    /// cursor). Every peek, pop, length and counter must agree.
    #[test]
    fn wheel_matches_heap_on_random_schedules(
        ops in prop::collection::vec((0u64..1u64 << 36, 1usize..4, 0usize..4), 1..200)
    ) {
        let mut wheel = EventQueue::<usize>::with_backend(QueueBackend::Wheel);
        let mut heap = EventQueue::<usize>::with_backend(QueueBackend::Heap);
        let mut next = 0usize;
        for &(t, burst, pops) in &ops {
            for _ in 0..burst {
                wheel.push(SimTime::from_nanos(t), next);
                heap.push(SimTime::from_nanos(t), next);
                next += 1;
            }
            for _ in 0..pops {
                prop_assert_eq!(wheel.peek_time(), heap.peek_time());
                prop_assert_eq!(wheel.pop(), heap.pop());
            }
            prop_assert_eq!(wheel.len(), heap.len());
        }
        while let Some(e) = heap.pop() {
            prop_assert_eq!(wheel.pop(), Some(e));
        }
        prop_assert!(wheel.pop().is_none());
        prop_assert_eq!(wheel.stats(), heap.stats());
    }

    /// Span arithmetic: for_bytes is inverse-proportional to bandwidth.
    #[test]
    fn bandwidth_span_scales(bytes in 1u64..1_000_000_000, bw_mb in 1u64..10_000) {
        let bw = bw_mb as f64 * 1e6;
        let s1 = SimSpan::for_bytes(bytes, bw);
        let s2 = SimSpan::for_bytes(bytes, bw * 2.0);
        // Halved bandwidth doubles the time (±1 ns rounding).
        let diff = s1.as_nanos() as i128 - 2 * s2.as_nanos() as i128;
        prop_assert!(diff.abs() <= 2, "{s1} vs 2x{s2}");
    }
}

#[derive(Clone, Debug)]
struct Relay {
    hops: Vec<(u32, u64)>, // (target component index, delay ns)
}

struct Node;

impl Component<Vec<(u32, SimTime)>, Relay> for Node {
    fn handle(&mut self, msg: Relay, ctx: &mut Context<'_, Vec<(u32, SimTime)>, Relay>) {
        let me = ctx.self_id();
        let now = ctx.now();
        ctx.world().push((me.index() as u32, now));
        let mut rest = msg.hops;
        if !rest.is_empty() {
            let (next, delay) = rest.remove(0);
            let target = storm_sim_target(next);
            ctx.send_at(
                target,
                now + SimSpan::from_nanos(delay),
                Relay { hops: rest },
            );
        }
    }
}

/// Component ids are dense indices in creation order; rebuild one.
fn storm_sim_target(idx: u32) -> storm_sim::ComponentId {
    // ComponentId has no public constructor; route through a lookup table
    // established at setup time instead.
    TARGETS.with(|t| t.borrow()[idx as usize])
}

thread_local! {
    static TARGETS: std::cell::RefCell<Vec<storm_sim::ComponentId>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// An arbitrary relay chain across components is replayed identically
    /// by two separately-constructed simulations (global determinism).
    #[test]
    fn arbitrary_relays_are_deterministic(
        hops in prop::collection::vec((0u32..8, 1u64..1_000_000), 1..100),
        seed in 0u64..1000,
    ) {
        let run = || {
            let mut sim = Simulation::new(Vec::new(), seed);
            let ids: Vec<_> = (0..8).map(|_| sim.add_component(Node)).collect();
            TARGETS.with(|t| *t.borrow_mut() = ids.clone());
            sim.post(SimTime::ZERO, ids[0], Relay { hops: hops.clone() });
            sim.run_to_completion();
            (sim.now(), sim.into_world())
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1.len(), hops.len() + 1);
        prop_assert_eq!(a.1, b.1);
        // Final time equals the sum of delays.
        let total: u64 = hops.iter().map(|&(_, d)| d).sum();
        prop_assert_eq!(a.0, SimTime::from_nanos(total));
    }

    /// The same seeded workload replayed on the wheel and heap backends
    /// (and on wheels of different granularity) is byte-identical in every
    /// observable: final time, arrival log, and queue accounting.
    #[test]
    fn relays_are_backend_independent(
        hops in prop::collection::vec((0u32..8, 1u64..1_000_000), 1..100),
        seed in 0u64..1000,
        granularity_us in 1u64..2000,
    ) {
        let run = |backend, gran: SimSpan| {
            let mut sim = Simulation::new_with_backend(Vec::new(), seed, backend, gran);
            let ids: Vec<_> = (0..8).map(|_| sim.add_component(Node)).collect();
            TARGETS.with(|t| *t.borrow_mut() = ids.clone());
            sim.post(SimTime::ZERO, ids[0], Relay { hops: hops.clone() });
            sim.run_to_completion();
            (sim.now(), sim.queue_stats(), sim.into_world())
        };
        let heap = run(QueueBackend::Heap, SimSpan::from_micros(50));
        let wheel = run(QueueBackend::Wheel, SimSpan::from_micros(50));
        let coarse = run(QueueBackend::Wheel, SimSpan::from_micros(granularity_us));
        prop_assert_eq!(heap.0, wheel.0);
        prop_assert_eq!(heap.1, wheel.1);
        prop_assert_eq!(&heap.2, &wheel.2);
        prop_assert_eq!(wheel.0, coarse.0);
        prop_assert_eq!(wheel.1, coarse.1);
        prop_assert_eq!(&wheel.2, &coarse.2);
    }
}
