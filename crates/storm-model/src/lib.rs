//! # storm-model — the paper's analytic scalability models
//!
//! §3.3.2 of the paper derives closed-form models used to argue that STORM
//! scales to thousands of nodes; this crate implements them exactly:
//!
//! * **Eq. 2** — the floor-plan diameter: `⌊sqrt(2 × nodes)⌋` metres.
//! * **Table 4** — asymptotic hardware-broadcast bandwidth as a function of
//!   fat-tree stage count and cable length (the circuit-switched ACK-token
//!   bubble model, implemented in `storm-net` and surfaced here).
//! * **Eq. 1** — the pipeline bound
//!   `BW_launch ≤ min(BW_read, BW_broadcast, BW_write)`.
//! * **Eq. 3–5** — the launch-time model
//!   `T_launch(n) = 12 MB / BW_transfer(n) + T_exec`, with the ES40
//!   (131 MB/s I/O-bus-limited) and ideal-I/O-bus variants, out to 16 384
//!   nodes (Fig. 10).
//! * The **barrier-latency** curve of Fig. 9.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use storm_net::{BufferPlacement, QsNetModel, Topology};
use storm_sim::SimSpan;

/// The observed end-to-end file-transfer-protocol bandwidth on the ES40
/// cluster: 131 MB/s (§3.3.1 — the host helper process keeps the pipeline
/// below its 175 MB/s bound).
pub const ES40_PROTOCOL_BW: f64 = 131.0e6;

/// The binary size the launch model is stated for (12 MB).
pub const MODEL_BINARY_BYTES: u64 = 12_000_000;

/// Eq. 2: conservative machine diameter in metres for `nodes` nodes.
pub fn diameter_m(nodes: u32) -> f64 {
    Topology::new(nodes.max(1)).diameter_m()
}

/// Table 4 cell: asymptotic broadcast bandwidth (bytes/s) for an explicit
/// `(nodes, cable length)` pair, NIC-resident buffers.
pub fn broadcast_bw_at(nodes: u32, cable_m: f64) -> f64 {
    QsNetModel::for_nodes(nodes.max(1)).broadcast_bw_at(nodes.max(1), cable_m)
}

/// The broadcast bandwidth at the Eq. 2 diameter for `nodes` — the
/// "worst-case bandwidth … shown in boldface" diagonal of Table 4.
pub fn broadcast_bw(nodes: u32) -> f64 {
    broadcast_bw_at(nodes, diameter_m(nodes))
}

/// Eq. 1: the pipeline bound for a given read bandwidth and node count
/// (writes are never the bottleneck, §3.3.1).
pub fn pipeline_bound(read_bw: f64, nodes: u32, placement: BufferPlacement) -> f64 {
    let model = QsNetModel::for_nodes(nodes.max(1));
    read_bw.min(model.broadcast_bw(placement))
}

/// Eq. 4: transfer bandwidth of the real ES40 cluster — the I/O bus and
/// helper process cap it at 131 MB/s regardless of network size.
pub fn bw_transfer_es40(nodes: u32) -> f64 {
    ES40_PROTOCOL_BW.min(broadcast_bw(nodes))
}

/// Eq. 5: transfer bandwidth of an idealised machine whose I/O bus is
/// faster than the network broadcast.
pub fn bw_transfer_ideal(nodes: u32) -> f64 {
    broadcast_bw(nodes)
}

/// The execute-time tail of the launch model: local execution, termination
/// notification and timeslice waits. The paper's measurements put this at
/// ≈ 14 ms on 256 PEs; it grows only with OS skew, which we fold into the
/// constant as the model does.
pub const MODEL_T_EXEC: SimSpan = SimSpan::from_millis(14);

/// Eq. 3: modelled launch time for a 12 MB binary on `nodes` nodes of the
/// ES40 cluster.
pub fn t_launch_es40(nodes: u32) -> SimSpan {
    SimSpan::for_bytes(MODEL_BINARY_BYTES, bw_transfer_es40(nodes)) + MODEL_T_EXEC
}

/// Eq. 3 on the ideal-I/O-bus machine.
pub fn t_launch_ideal(nodes: u32) -> SimSpan {
    SimSpan::for_bytes(MODEL_BINARY_BYTES, bw_transfer_ideal(nodes)) + MODEL_T_EXEC
}

/// Fig. 9: hardware barrier-synchronisation latency for `nodes` nodes.
pub fn barrier_latency(nodes: u32) -> SimSpan {
    QsNetModel::for_nodes(nodes.max(1)).barrier_latency()
}

/// One row of Table 4.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4Row {
    /// Node count.
    pub nodes: u32,
    /// Processors (4 per node).
    pub processors: u32,
    /// Fat-tree stages.
    pub stages: u32,
    /// Worst-case switches crossed.
    pub switches: u32,
    /// Bandwidth (bytes/s) at each cable length of
    /// [`TABLE4_CABLE_LENGTHS`].
    pub bw: Vec<f64>,
}

/// The cable lengths (metres) of Table 4's columns.
pub const TABLE4_CABLE_LENGTHS: [f64; 7] = [10.0, 20.0, 30.0, 40.0, 60.0, 80.0, 100.0];

/// The node counts of Table 4's rows.
pub const TABLE4_NODES: [u32; 6] = [4, 16, 64, 256, 1024, 4096];

/// Regenerate Table 4.
pub fn table4() -> Vec<Table4Row> {
    TABLE4_NODES
        .iter()
        .map(|&nodes| {
            let t = Topology::new(nodes);
            Table4Row {
                nodes,
                processors: nodes * 4,
                stages: t.stages(),
                switches: t.switches_crossed(),
                bw: TABLE4_CABLE_LENGTHS
                    .iter()
                    .map(|&d| broadcast_bw_at(nodes, d))
                    .collect(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diameter_values() {
        assert_eq!(diameter_m(64), 11.0);
        assert_eq!(diameter_m(16_384), 181.0);
    }

    #[test]
    fn es40_transfer_bw_is_io_bus_limited_until_huge_machines() {
        // Eq. 4: 131 MB/s until the network broadcast itself drops below
        // that, which Table 4 says does not happen even at 4 096 nodes /
        // 100 m (147 MB/s).
        for n in [4u32, 64, 1024, 4096] {
            assert!(
                (bw_transfer_es40(n) - ES40_PROTOCOL_BW).abs() < 1.0,
                "ES40 bw at {n}"
            );
        }
        // The ideal machine sees the full broadcast bandwidth.
        assert!(bw_transfer_ideal(64) > 250.0e6);
    }

    #[test]
    fn launch_model_matches_fig10() {
        // Fig. 10: a 12 MB binary launches in ≈ 105 ms on small clusters and
        // ≈ 135 ms even on 16 384 nodes (ES40 model).
        let small = t_launch_es40(64).as_millis_f64();
        assert!((small - 105.6).abs() < 3.0, "64-node model {small:.1} ms");
        let huge = t_launch_es40(16_384).as_millis_f64();
        assert!(huge < 140.0, "16 384-node model {huge:.1} ms");
        assert!(huge >= small);
        // The ideal machine is faster while the network outruns the bus…
        assert!(t_launch_ideal(64) < t_launch_es40(64));
        // …and both models converge beyond ≈ 4 096 nodes (§3.3.2).
        let gap = t_launch_es40(16_384).as_millis_f64() - t_launch_ideal(16_384).as_millis_f64();
        assert!(gap.abs() < 12.0, "models converge, gap {gap:.1} ms");
    }

    #[test]
    fn launch_model_is_monotone_in_nodes() {
        let mut last = SimSpan::ZERO;
        let mut n = 1u32;
        while n <= 16_384 {
            let t = t_launch_es40(n);
            assert!(t >= last);
            last = t;
            n *= 2;
        }
    }

    #[test]
    fn table4_structure() {
        let rows = table4();
        assert_eq!(rows.len(), 6);
        let r64 = &rows[2];
        assert_eq!(
            (r64.nodes, r64.processors, r64.stages, r64.switches),
            (64, 256, 3, 5)
        );
        assert_eq!(r64.bw.len(), 7);
        // Worst case of the 4 096-node row: 147 MB/s at 100 m.
        let worst = rows[5].bw[6] / 1e6;
        assert!((worst - 147.0).abs() < 3.0, "worst-case bw {worst:.0}");
    }

    #[test]
    fn pipeline_bound_picks_main_memory() {
        // §3.3.1's arithmetic: main memory min(218, 175) = 175 beats
        // NIC memory min(120, 312) = 120.
        let main = pipeline_bound(218.0e6, 64, BufferPlacement::MainMemory);
        let nic = pipeline_bound(120.0e6, 64, BufferPlacement::NicMemory);
        assert!((main / 1e6 - 175.0).abs() < 1.0);
        assert!((nic / 1e6 - 120.0).abs() < 1.0);
        assert!(main > nic);
    }

    #[test]
    fn barrier_latency_scales_like_fig9() {
        let l1 = barrier_latency(1).as_micros_f64();
        let l1024 = barrier_latency(1024).as_micros_f64();
        assert!(l1 > 4.0 && l1 < 5.0);
        assert!(l1024 - l1 > 1.0 && l1024 - l1 < 3.0);
    }
}
