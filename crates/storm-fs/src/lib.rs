//! # storm-fs — filesystem models
//!
//! The launch pipeline's first and last stages read the application binary
//! on the management node and write it on every compute node. The paper
//! measures three filesystems (Fig. 6) and shows the pipeline bandwidth
//! bound `BW_launch ≤ min(BW_read, BW_broadcast, BW_write)` (Eq. 1), with
//! the write stage never the bottleneck on the paper's cluster.
//!
//! * [`FsKind::RamDisk`] — STORM's choice: DRAM configured as a filesystem,
//!   read at 218 MB/s into main memory (120 MB/s into NIC memory).
//! * [`FsKind::LocalExt2`] — a local mechanical disk, ≈ 31 MB/s.
//! * [`FsKind::Nfs`] — the traditional shared filesystem, ≈ 11 MB/s to a
//!   *single* client, collapsing (and eventually timing out) when many
//!   clients demand-page the same binary — the non-scalable baseline of §5.1.
//!
//! [`NfsServer`] models that collapse for the baseline launchers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use storm_net::BufferPlacement;
use storm_sim::{SimSpan, SimTime};

/// Which filesystem holds the application binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FsKind {
    /// RAM-disk (ext2 on a DRAM block device) — STORM's configuration.
    #[default]
    RamDisk,
    /// Local mechanical disk with ext2.
    LocalExt2,
    /// NFS over the cluster's service network.
    Nfs,
}

impl FsKind {
    /// All kinds, in Fig. 6 order.
    pub const ALL: [FsKind; 3] = [FsKind::Nfs, FsKind::LocalExt2, FsKind::RamDisk];

    /// Display name matching Fig. 6.
    pub fn name(&self) -> &'static str {
        match self {
            FsKind::Nfs => "NFS",
            FsKind::LocalExt2 => "Local (ext2)",
            FsKind::RamDisk => "RAM (ext2)",
        }
    }

    /// Sequential read bandwidth in bytes/s when the NIC (with help from a
    /// lightweight host process) reads a file into buffers at `placement` —
    /// the six bars of Fig. 6.
    pub fn read_bw(&self, placement: BufferPlacement) -> f64 {
        match (self, placement) {
            (FsKind::Nfs, BufferPlacement::NicMemory) => 11.4e6,
            (FsKind::Nfs, BufferPlacement::MainMemory) => 11.2e6,
            (FsKind::LocalExt2, BufferPlacement::NicMemory) => 31.5e6,
            (FsKind::LocalExt2, BufferPlacement::MainMemory) => 30.5e6,
            (FsKind::RamDisk, BufferPlacement::NicMemory) => 120.0e6,
            (FsKind::RamDisk, BufferPlacement::MainMemory) => 218.0e6,
        }
    }

    /// Write bandwidth in bytes/s. §3.3.1: "the read bandwidth is
    /// consistently lower than the write bandwidth. Thus the write bandwidth
    /// is not the bottleneck of the file-transfer protocol." We model writes
    /// at 1.4× the corresponding read bandwidth (the destination write may
    /// also land in the buffer cache, which only makes it faster).
    pub fn write_bw(&self, placement: BufferPlacement) -> f64 {
        1.4 * self.read_bw(placement)
    }

    /// Time to read `bytes` sequentially.
    pub fn read_span(&self, bytes: u64, placement: BufferPlacement) -> SimSpan {
        SimSpan::for_bytes(bytes, self.read_bw(placement))
    }

    /// Time to write `bytes` sequentially.
    pub fn write_span(&self, bytes: u64, placement: BufferPlacement) -> SimSpan {
        SimSpan::for_bytes(bytes, self.write_bw(placement))
    }
}

/// Outcome of one client's demand-paged read against a shared [`NfsServer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NfsOutcome {
    /// The read completed at the given instant.
    Done(SimTime),
    /// The server was overloaded past its timeout and the client failed —
    /// the launch failure mode §5.1 attributes to shared-filesystem
    /// distribution.
    TimedOut,
}

/// A single shared NFS server being demand-paged by many clients at once.
///
/// The server delivers an aggregate `server_bw`, split evenly among
/// concurrently-active clients; per-client protocol overhead also grows
/// with the client count (request queueing, retransmissions). When a
/// client's projected completion exceeds `timeout`, the mount times out —
/// the paper: file servers "are frequently unable to handle extreme loads
/// and tend to fail with timeout errors".
#[derive(Debug, Clone)]
pub struct NfsServer {
    /// Aggregate server bandwidth, bytes/s (a single client sees ≈ 11 MB/s,
    /// and a handful of clients saturate the server's disk + wire).
    pub server_bw: f64,
    /// Per-client fixed protocol overhead per concurrent client (lookup,
    /// queueing, retransmission) — makes the collapse super-linear.
    pub per_client_overhead: SimSpan,
    /// Client-side mount timeout.
    pub timeout: SimSpan,
}

impl Default for NfsServer {
    fn default() -> Self {
        NfsServer {
            server_bw: 33.0e6, // ~3 clients' worth before it saturates
            per_client_overhead: SimSpan::from_millis(15),
            timeout: SimSpan::from_secs(120),
        }
    }
}

impl NfsServer {
    /// Time for each of `clients` nodes, all starting at `now`, to
    /// demand-page a `bytes`-byte binary simultaneously.
    pub fn concurrent_read(&self, now: SimTime, clients: u32, bytes: u64) -> Vec<NfsOutcome> {
        assert!(clients > 0);
        let single_client_bw = FsKind::Nfs.read_bw(BufferPlacement::MainMemory);
        let per_client_bw = (self.server_bw / f64::from(clients)).min(single_client_bw);
        let transfer = SimSpan::for_bytes(bytes, per_client_bw);
        let overhead = self.per_client_overhead * u64::from(clients);
        let total = transfer + overhead;
        let outcome = if total > self.timeout {
            NfsOutcome::TimedOut
        } else {
            NfsOutcome::Done(now + total)
        };
        vec![outcome; clients as usize]
    }

    /// The span a *successful* concurrent read takes (panics on timeout) —
    /// convenience for the baseline launcher models.
    pub fn concurrent_read_span(&self, clients: u32, bytes: u64) -> Option<SimSpan> {
        match self.concurrent_read(SimTime::ZERO, clients, bytes)[0] {
            NfsOutcome::Done(t) => Some(t - SimTime::ZERO),
            NfsOutcome::TimedOut => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_read_bandwidths() {
        // The six bars of Fig. 6, MB/s.
        let cases = [
            (FsKind::Nfs, BufferPlacement::NicMemory, 11.4),
            (FsKind::Nfs, BufferPlacement::MainMemory, 11.2),
            (FsKind::LocalExt2, BufferPlacement::NicMemory, 31.5),
            (FsKind::LocalExt2, BufferPlacement::MainMemory, 30.5),
            (FsKind::RamDisk, BufferPlacement::NicMemory, 120.0),
            (FsKind::RamDisk, BufferPlacement::MainMemory, 218.0),
        ];
        for (fs, place, want) in cases {
            assert_eq!(fs.read_bw(place) / 1e6, want, "{} {:?}", fs.name(), place);
        }
    }

    #[test]
    fn ram_disk_prefers_main_memory_nfs_does_not_care() {
        // Fig. 6's key observation: only for the fast RAM disk does buffer
        // placement matter much.
        let ram_ratio = FsKind::RamDisk.read_bw(BufferPlacement::MainMemory)
            / FsKind::RamDisk.read_bw(BufferPlacement::NicMemory);
        let nfs_ratio = FsKind::Nfs.read_bw(BufferPlacement::MainMemory)
            / FsKind::Nfs.read_bw(BufferPlacement::NicMemory);
        assert!(ram_ratio > 1.5);
        assert!((nfs_ratio - 1.0).abs() < 0.05);
    }

    #[test]
    fn writes_never_bottleneck_reads() {
        for fs in FsKind::ALL {
            for p in [BufferPlacement::MainMemory, BufferPlacement::NicMemory] {
                assert!(fs.write_bw(p) > fs.read_bw(p), "{}", fs.name());
            }
        }
    }

    #[test]
    fn read_span_of_12mb_ram_disk() {
        // 12 MB at 218 MB/s ≈ 55 ms — the read stage of the launch pipeline.
        let s = FsKind::RamDisk.read_span(12_000_000, BufferPlacement::MainMemory);
        assert!((s.as_millis_f64() - 55.0).abs() < 1.0, "{s}");
    }

    #[test]
    fn nfs_single_client_is_fine() {
        let srv = NfsServer::default();
        let span = srv.concurrent_read_span(1, 12_000_000).unwrap();
        // ~1.07 s transfer + 15 ms overhead.
        assert!(
            span.as_secs_f64() > 1.0 && span.as_secs_f64() < 1.2,
            "{span}"
        );
    }

    #[test]
    fn nfs_collapses_under_many_clients() {
        let srv = NfsServer::default();
        let few = srv.concurrent_read_span(4, 12_000_000).unwrap();
        let many = srv.concurrent_read_span(256, 12_000_000).unwrap();
        // Sub-linear per-client bandwidth → super-linear completion time.
        assert!(many.as_secs_f64() > 40.0 * few.as_secs_f64());
        // And at some point it times out entirely.
        assert!(srv.concurrent_read_span(2048, 12_000_000).is_none());
        let outcomes = srv.concurrent_read(SimTime::ZERO, 2048, 12_000_000);
        assert!(outcomes.iter().all(|o| *o == NfsOutcome::TimedOut));
    }

    #[test]
    fn nfs_outcomes_share_completion_time() {
        let srv = NfsServer::default();
        let outcomes = srv.concurrent_read(SimTime::from_secs(1), 16, 1_000_000);
        assert_eq!(outcomes.len(), 16);
        let first = outcomes[0];
        assert!(outcomes.iter().all(|o| *o == first));
        match first {
            NfsOutcome::Done(t) => assert!(t > SimTime::from_secs(1)),
            NfsOutcome::TimedOut => panic!("should not time out with 16 clients"),
        }
    }
}
