//! The DST runner: build a [`Cluster`] from a [`Scenario`], step it one
//! timeslice boundary at a time, check the oracle suite at every boundary,
//! and fold the run's trace into a digest so distinct interleavings can be
//! counted and replays compared bit for bit.

use crate::oracle::{check_all, standard_suite, Violation};
use crate::scenario::{AppKind, FaultKind, InjectionKind, OrderSpec, Scenario};
use std::panic::{catch_unwind, AssertUnwindSafe};
use storm_apps::AppSpec;
use storm_core::prelude::*;
use storm_core::Cluster;
use storm_core::MmRole;
use storm_mech::{CmpOp, NodeId, NodeSet};
use storm_sim::DeliveryOrder;

/// What one scenario run produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// The first oracle violation, if any.
    pub violation: Option<Violation>,
    /// FNV-1a digest of the run's full event trace plus headline stats —
    /// two runs with the same digest executed the same interleaving.
    pub digest: u64,
    /// Total events pushed onto the queue (the tie-draw count a seeded
    /// order needs to be regenerated as an explicit script).
    pub pushed: u64,
    /// `completed_jobs` at the end of the run.
    pub completed: u64,
    /// The instant the run stopped (the violation boundary or the horizon).
    pub end: SimTime,
}

impl RunOutcome {
    /// Did the run violate an invariant (or panic)?
    pub fn failed(&self) -> bool {
        self.violation.is_some()
    }
}

/// FNV-1a over a byte stream.
fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

fn delivery_order(order: &OrderSpec) -> Option<DeliveryOrder> {
    match order {
        OrderSpec::Default => None,
        OrderSpec::Seeded {
            seed,
            amplitude,
            delay_us,
        } => {
            let order = DeliveryOrder::seeded(*seed, *amplitude);
            Some(if *delay_us > 0 {
                order.with_max_delay(SimSpan::from_micros(*delay_us))
            } else {
                order
            })
        }
        OrderSpec::Script { ties } => Some(DeliveryOrder::script(ties.clone())),
    }
}

fn build_cluster(s: &Scenario) -> Cluster {
    let mut cfg = ClusterConfig::paper_cluster()
        .with_nodes(s.nodes)
        .with_seed(s.seed);
    cfg.cpus_per_node = s.cpus_per_node;
    cfg.mpl_max = s.mpl_max;
    cfg.queue_backend = s.backend.or(cfg.queue_backend);
    cfg.delivery_order = delivery_order(&s.order);
    cfg = cfg.with_mm_standbys(s.mm_standbys);
    if s.heartbeat_every > 0 {
        cfg = cfg
            .with_fault_detection(s.heartbeat_every)
            .with_failure_policy(FailurePolicy::requeue());
    }
    let mut c = Cluster::new(cfg);
    c.enable_tracing();
    // The CAW audit trail is what gives `CawVisibility` state to check.
    c.with_world_mut(|w| w.mech.memory.enable_caw_audit());
    for j in &s.jobs {
        let app = match j.app {
            AppKind::Binary { mb } => AppSpec::do_nothing_mb(mb),
            AppKind::Compute { ms } => AppSpec::Synthetic {
                compute: SimSpan::from_millis(ms),
            },
        };
        c.submit_at(SimTime::from_millis(j.at_ms), JobSpec::new(app, j.ranks));
    }
    for f in &s.faults {
        let at = SimTime::from_millis(f.at_ms);
        match f.kind {
            FaultKind::Fail => c.fail_node_at(at, f.node),
            FaultKind::Rejoin => c.rejoin_node_at(at, f.node),
            FaultKind::Stall { until_ms } => {
                c.stall_node(f.node, at, SimTime::from_millis(until_ms))
            }
            // For MM kills the spec's `node` is the replica rank.
            FaultKind::MmKill => c.fail_mm_at(at, f.node),
        }
    }
    c
}

fn apply_injection(c: &mut Cluster, kind: &InjectionKind) {
    let now = c.now();
    c.with_world_mut(|w| match *kind {
        InjectionKind::CompletedSkew => w.stats.completed_jobs += 1,
        InjectionKind::QuarantineDesync { node } => {
            w.nodes.toggle_quarantined(node);
        }
        InjectionKind::HbRegress => w.hb_round -= 1,
        InjectionKind::MatrixTear => w.slot_jobs_add(0, JobId(u32::MAX)),
        InjectionKind::CawTear { node } => {
            let nodes = w.cfg.nodes;
            let var = w.mech.memory.alloc_var(0);
            w.mech.compare_and_write(
                now,
                &NodeSet::All(nodes),
                var,
                CmpOp::Ge,
                0,
                Some((var, 1)),
                storm_net::BackgroundLoad::NONE,
            );
            w.mech.memory.poke(NodeId(node), var, 0);
        }
        InjectionKind::JobVanish => {
            w.queue.pop_front();
        }
        InjectionKind::ReplicaSkew { rank } => {
            let core = w.mm_core.clone();
            let r = &mut w.mm_replicas[rank as usize];
            r.applied = core.log_len;
            r.state = core;
            r.state.queue.push(JobId(u32::MAX));
        }
        InjectionKind::DualActive => {
            w.mm_roles[1] = MmRole::Active;
        }
    });
}

/// Execute `scenario` to its horizon (or its first violation), checking
/// the standard oracle suite at every timeslice boundary.
pub fn run_scenario(scenario: &Scenario) -> RunOutcome {
    let mut c = build_cluster(scenario);
    let mut suite = standard_suite();
    let step = c.world().cfg.collect_period();
    let horizon = SimTime::from_millis(scenario.horizon_ms);
    let mut injected = false;
    let mut violation = None;
    let mut t = SimTime::ZERO;
    loop {
        c.run_until(t);
        if let Some(inj) = &scenario.injection {
            if !injected && t >= SimTime::from_millis(inj.at_ms) {
                apply_injection(&mut c, &inj.kind);
                injected = true;
            }
        }
        if let Some(v) = check_all(&mut suite, c.world(), c.now()) {
            violation = Some(v);
            break;
        }
        if t >= horizon {
            break;
        }
        t = horizon.min(t + step);
    }
    let trace = c.trace();
    let stats = c.queue_stats();
    let w = c.world();
    let mut digest = fnv1a(trace.as_bytes(), 0xCBF2_9CE4_8422_2325);
    digest = fnv1a(
        format!(
            "interleaving={:#018x} pushed={} completed={} strobes={} fragments={} requeues={}",
            c.interleaving_digest(),
            stats.pushed,
            w.stats.completed_jobs,
            w.stats.strobes,
            w.stats.fragments,
            w.stats.requeues
        )
        .as_bytes(),
        digest,
    );
    RunOutcome {
        violation,
        digest,
        pushed: stats.pushed,
        completed: w.stats.completed_jobs,
        end: c.now(),
    }
}

/// [`run_scenario`] with panics converted into `"panic"` violations — a
/// reordering that trips a `debug_assert!` deep in a protocol handler is a
/// finding, not a harness crash.
pub fn run_scenario_caught(scenario: &Scenario) -> RunOutcome {
    let s = scenario.clone();
    match catch_unwind(AssertUnwindSafe(move || run_scenario(&s))) {
        Ok(outcome) => outcome,
        Err(payload) => {
            let detail = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("opaque panic payload")
                .to_string();
            RunOutcome {
                violation: Some(Violation {
                    oracle: "panic".into(),
                    at: SimTime::ZERO,
                    detail,
                }),
                digest: 0,
                pushed: 0,
                completed: 0,
                end: SimTime::ZERO,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Injection;

    #[test]
    fn clean_scenarios_pass_and_are_deterministic() {
        let s = Scenario::two_node_launch();
        let a = run_scenario(&s);
        let b = run_scenario(&s);
        assert!(!a.failed(), "violation: {:?}", a.violation);
        assert_eq!(a, b, "same scenario, same digest");
        assert_eq!(a.completed, 1);
    }

    #[test]
    fn chaos_scenario_passes_all_oracles() {
        let out = run_scenario(&Scenario::small_chaos());
        assert!(!out.failed(), "violation: {:?}", out.violation);
    }

    #[test]
    fn failover_scenario_passes_all_oracles_and_replays() {
        let s = Scenario::mm_failover();
        let a = run_scenario(&s);
        assert!(!a.failed(), "violation: {:?}", a.violation);
        assert_eq!(a.completed, 2, "both jobs survive the failover");
        let b = run_scenario(&s);
        assert_eq!(a, b, "failover run must replay bit-identically");
    }

    #[test]
    fn every_injection_kind_is_caught_by_its_oracle() {
        let cases = [
            (InjectionKind::CompletedSkew, "job_accounting"),
            (
                InjectionKind::QuarantineDesync { node: 1 },
                "quarantine_safety",
            ),
            (InjectionKind::MatrixTear, "matrix_consistency"),
            (InjectionKind::CawTear { node: 0 }, "caw_visibility"),
        ];
        for (kind, oracle) in cases {
            let s = Scenario::two_node_launch().with_injection(Injection {
                at_ms: 10,
                kind: kind.clone(),
            });
            let out = run_scenario(&s);
            let v = out
                .violation
                .unwrap_or_else(|| panic!("{kind:?} not caught"));
            assert_eq!(v.oracle, oracle, "for {kind:?}");
        }
        // HbRegress needs a heartbeat loop to have advanced the round.
        let s = Scenario::small_chaos().with_injection(Injection {
            at_ms: 40,
            kind: InjectionKind::HbRegress,
        });
        let v = run_scenario(&s).violation.expect("hb regress not caught");
        assert_eq!(v.oracle, "heartbeat_monotonic");
        // JobVanish needs a job still sitting in the queue at injection
        // time: inject right at the submission boundary.
        let s = Scenario::two_node_launch().with_injection(Injection {
            at_ms: 0,
            kind: InjectionKind::JobVanish,
        });
        let v = run_scenario(&s).violation.expect("job vanish not caught");
        assert_eq!(v.oracle, "no_job_lost");
        // The replication injections need a replicated-MM scenario.
        for (kind, oracle) in [
            (InjectionKind::ReplicaSkew { rank: 1 }, "repl_consistency"),
            (InjectionKind::DualActive, "single_active_mm"),
        ] {
            let mut s = Scenario::mm_failover().with_injection(Injection {
                at_ms: 20,
                kind: kind.clone(),
            });
            s.faults.clear(); // corrupt a healthy replicated cluster
            let v = run_scenario(&s)
                .violation
                .unwrap_or_else(|| panic!("{kind:?} not caught"));
            assert_eq!(v.oracle, oracle, "for {kind:?}");
        }
    }

    #[test]
    fn caught_runner_reports_panics_as_violations() {
        // An invalid scenario (job larger than the cluster) trips the
        // submit-time assertion; the caught runner turns that into a
        // violation instead of unwinding through the explorer.
        let mut s = Scenario::two_node_launch();
        s.jobs[0].ranks = 4096;
        let out = run_scenario_caught(&s);
        let v = out.violation.expect("panic must surface");
        assert_eq!(v.oracle, "panic");
        assert!(v.detail.contains("nodes"), "detail: {}", v.detail);
    }
}
