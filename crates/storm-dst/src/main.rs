//! `storm-dst` — the DST command-line harness.
//!
//! ```text
//! storm-dst explore  [--scenario two-node-launch|small-chaos] [--amplitude A]
//!                    [--prefix P] [--seeds N] [--delay-us D] [--out DIR]
//!                    [--backend heap|wheel]
//! storm-dst replay   <DST_repro_*.json | CKPT_*.json>
//! storm-dst selftest [--out DIR]
//! ```
//!
//! `explore` runs the bounded-exhaustive tier then a seeded swarm; on the
//! first oracle violation it shrinks the failure and writes a
//! `DST_repro_*.json` artifact, exiting 1. `replay` re-executes an
//! artifact twice and verifies oracle, instant and digest; its exit code
//! distinguishes the outcomes so CI can triage without parsing output:
//! 10 = the artifact's oracle violation reproduced faithfully (the oracle
//! name is printed), 11 = the artifact could not be read or parsed,
//! 12 = the replay ran but diverged from the artifact. `replay` also
//! accepts a cluster checkpoint (`CKPT_*.json`, written by
//! `Cluster::checkpoint()`): the checkpoint is restored twice, both runs
//! resume over the same horizon, and exit 0 means they agreed
//! byte-for-byte (11/12 keep their meanings). `selftest`
//! seeds a deliberate violation, shrinks it, writes the artifact, replays
//! it, and checks the repro is ≤ 10 events — the full pipeline in one
//! command.

use std::process::ExitCode;
use storm_dst::prelude::*;

/// `replay`: the artifact's violation reproduced faithfully.
const EXIT_VIOLATION_REPRODUCED: u8 = 10;
/// `replay`: the artifact could not be read or parsed.
const EXIT_ARTIFACT_UNREADABLE: u8 = 11;
/// `replay`: the replay executed but diverged from the artifact.
const EXIT_REPLAY_DIVERGED: u8 = 12;

fn usage() -> ExitCode {
    eprintln!(
        "usage: storm-dst explore [--scenario NAME] [--amplitude A] [--prefix P] \
         [--seeds N] [--delay-us D] [--out DIR] [--backend heap|wheel]\n       \
         storm-dst replay <DST_repro_*.json | CKPT_*.json>  \
         (exit 10: violation reproduced, 0: checkpoint replayed, 11: bad artifact, 12: diverged)\n       \
         storm-dst selftest [--out DIR]\n\
scenarios: two-node-launch, small-chaos, mm-failover"
    );
    ExitCode::from(2)
}

struct Flags {
    scenario: String,
    amplitude: u64,
    prefix: u32,
    seeds: u64,
    delay_us: u64,
    out: String,
    backend: Option<QueueBackend>,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags {
        scenario: "two-node-launch".into(),
        amplitude: 3,
        prefix: 4,
        seeds: 64,
        delay_us: 20,
        out: ".".into(),
        backend: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--scenario" => flags.scenario = value("--scenario")?,
            "--amplitude" => {
                flags.amplitude = value("--amplitude")?.parse().map_err(|e| format!("{e}"))?
            }
            "--prefix" => flags.prefix = value("--prefix")?.parse().map_err(|e| format!("{e}"))?,
            "--seeds" => flags.seeds = value("--seeds")?.parse().map_err(|e| format!("{e}"))?,
            "--delay-us" => {
                flags.delay_us = value("--delay-us")?.parse().map_err(|e| format!("{e}"))?
            }
            "--out" => flags.out = value("--out")?,
            "--backend" => {
                flags.backend = Some(match value("--backend")?.as_str() {
                    "heap" => QueueBackend::Heap,
                    "wheel" => QueueBackend::Wheel,
                    other => return Err(format!("unknown backend {other:?}")),
                })
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(flags)
}

fn base_scenario(flags: &Flags) -> Result<Scenario, String> {
    let mut s = match flags.scenario.as_str() {
        "two-node-launch" => Scenario::two_node_launch(),
        "small-chaos" => Scenario::small_chaos(),
        "mm-failover" => Scenario::mm_failover(),
        other => return Err(format!("unknown scenario {other:?}")),
    };
    if let Some(b) = flags.backend {
        s = s.with_backend(b);
    }
    Ok(s)
}

/// Shrink a failure, write its artifact under `out`, and report.
fn write_artifact(out_dir: &str, scenario: &Scenario, outcome: &RunOutcome) -> Repro {
    let (minimal, min_out) = shrink(scenario, outcome);
    let repro = Repro::from_run(&minimal, &min_out);
    let path = format!("{}/{}", out_dir, repro.file_name());
    std::fs::write(&path, repro.to_json_string()).expect("write artifact");
    let v = &repro.violation;
    println!(
        "violation: {} at {} — {}\nshrunk to {} events; artifact: {path}",
        v.oracle, v.at, v.detail, repro.event_count
    );
    repro
}

fn cmd_explore(flags: &Flags) -> Result<ExitCode, String> {
    let base = base_scenario(flags)?;
    base.validate()?;
    // Tier 1: bounded-exhaustive over a small window (cap the product).
    let mut amp = flags.amplitude.min(3);
    while (amp + 1).pow(flags.prefix) > 4096 {
        amp -= 1;
    }
    let exhaustive = explore_exhaustive(&base, amp, flags.prefix);
    println!(
        "exhaustive: {} runs, {} distinct interleavings (amplitude {amp}, prefix {})",
        exhaustive.runs, exhaustive.distinct, flags.prefix
    );
    if let Some((scenario, outcome)) = &exhaustive.failure {
        write_artifact(&flags.out, scenario, outcome);
        return Ok(ExitCode::FAILURE);
    }
    // Tier 2: seeded swarm, with bounded delivery delay widening the
    // reachable schedule space.
    let swarm = explore_swarm(&base, flags.amplitude, flags.delay_us, 0..flags.seeds);
    println!(
        "swarm: {} runs, {} distinct interleavings (amplitude {}, delay {} µs)",
        swarm.runs, swarm.distinct, flags.amplitude, flags.delay_us
    );
    if let Some((scenario, outcome)) = &swarm.failure {
        write_artifact(&flags.out, scenario, outcome);
        return Ok(ExitCode::FAILURE);
    }
    println!(
        "all oracles held across {} runs",
        exhaustive.runs + swarm.runs
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_replay(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("storm-dst: cannot read artifact: {path}: {e}");
            return ExitCode::from(EXIT_ARTIFACT_UNREADABLE);
        }
    };
    // A cluster checkpoint (`CKPT_*.json`) is also a replayable starting
    // state: restore it twice, resume both runs over the same horizon,
    // and verify they agree byte-for-byte. Exit codes keep their repro
    // meanings (11 = unreadable, 12 = diverged, 0 = replayed cleanly).
    if let Ok(doc) = storm_dst::json::parse(&text) {
        if doc.get("kind").and_then(|k| k.as_str()) == Some("storm-checkpoint") {
            return replay_checkpoint(path, &text);
        }
    }
    let repro = match Repro::from_json_str(&text) {
        Ok(repro) => repro,
        Err(e) => {
            eprintln!("storm-dst: cannot parse artifact: {path}: {e}");
            return ExitCode::from(EXIT_ARTIFACT_UNREADABLE);
        }
    };
    let report = replay(&repro);
    if report.faithful() {
        let v = &repro.violation;
        println!(
            "violation reproduced: {} at {} — {} (digest {:#018x}, {} events)",
            v.oracle, v.at, v.detail, repro.digest, repro.event_count
        );
        ExitCode::from(EXIT_VIOLATION_REPRODUCED)
    } else {
        for m in &report.mismatches {
            eprintln!("mismatch: {m}");
        }
        eprintln!(
            "storm-dst: replay diverged from artifact (expected {} at {})",
            repro.violation.oracle, repro.violation.at
        );
        ExitCode::from(EXIT_REPLAY_DIVERGED)
    }
}

/// Resume a cluster checkpoint twice over the same horizon and verify
/// the runs agree exactly: same delivered-event count, same final
/// checkpoint bytes. Divergence means the artifact (or the build
/// replaying it) is not deterministic — the same triage signal a repro
/// divergence gives, so it shares exit code 12.
fn replay_checkpoint(path: &str, text: &str) -> ExitCode {
    use storm_core::cluster::Cluster;
    use storm_sim::SimSpan;
    let mut runs = Vec::new();
    for _ in 0..2 {
        let mut c = match Cluster::restore(text) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("storm-dst: cannot restore checkpoint: {path}: {e}");
                return ExitCode::from(EXIT_ARTIFACT_UNREADABLE);
            }
        };
        let from = c.now();
        let horizon = from + SimSpan::from_millis(2_000);
        c.run_until(horizon);
        runs.push((from, c.now(), c.events_delivered(), c.checkpoint()));
    }
    let (from, until, events, ref final_ckpt) = runs[0];
    if runs[1].2 == events && &runs[1].3 == final_ckpt {
        println!(
            "checkpoint replayed: resumed at {from}, ran to {until} \
             ({events} events delivered, final state {} bytes, both runs \
             byte-identical)",
            final_ckpt.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "storm-dst: checkpoint replay diverged: {} vs {} events \
             delivered, final states {}",
            events,
            runs[1].2,
            if runs[1].3 == *final_ckpt {
                "equal"
            } else {
                "differ"
            }
        );
        ExitCode::from(EXIT_REPLAY_DIVERGED)
    }
}

fn cmd_selftest(out_dir: &str) -> Result<ExitCode, String> {
    // Seed a known violation into a noisy scenario, then prove the whole
    // pipeline: detect → shrink → write → parse → replay.
    let seeded = Scenario::small_chaos()
        .with_order(OrderSpec::Seeded {
            seed: 0xDE57,
            amplitude: 2,
            delay_us: 0,
        })
        .with_injection(Injection {
            at_ms: 30,
            kind: InjectionKind::CompletedSkew,
        });
    let outcome = run_scenario_caught(&seeded);
    if !outcome.failed() {
        return Err("seeded violation was not detected".into());
    }
    let repro = write_artifact(out_dir, &seeded, &outcome);
    if repro.event_count > 10 {
        return Err(format!(
            "shrunk repro still has {} events (> 10)",
            repro.event_count
        ));
    }
    let path = format!("{}/{}", out_dir, repro.file_name());
    let back = Repro::from_json_str(&std::fs::read_to_string(&path).map_err(|e| e.to_string())?)?;
    let report = replay(&back);
    if !report.faithful() {
        return Err(format!("replay mismatches: {:?}", report.mismatches));
    }
    println!("selftest passed: detect → shrink → write → replay");
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("explore") => parse_flags(&args[1..]).and_then(|f| cmd_explore(&f)),
        Some("replay") => match args.get(1) {
            Some(path) => return cmd_replay(path),
            None => return usage(),
        },
        Some("selftest") => parse_flags(&args[1..]).and_then(|f| cmd_selftest(&f.out)),
        _ => return usage(),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("storm-dst: {msg}");
            ExitCode::FAILURE
        }
    }
}
