//! # storm-dst — deterministic simulation testing for STORM
//!
//! FoundationDB-style schedule-space exploration over the simulated
//! cluster (see DESIGN.md §14):
//!
//! * **Interleaving control** — [`storm_sim::DeliveryOrder`] permutes
//!   same-timestamp event delivery under its own seeded stream; the
//!   engine's total order becomes `(time, tie, seq)`. Disabled (the
//!   default everywhere else), runs are bit-identical to the classic
//!   `(time, seq)` order.
//! * **Invariant oracles** — [`oracle`]: job accounting, buddy-allocator
//!   conservation, Ousterhout-matrix consistency, COMPARE-AND-WRITE
//!   all-or-nothing visibility, heartbeat monotonicity and quarantine
//!   safety, checked at every timeslice boundary.
//! * **Exploration** — [`explore`]: bounded-exhaustive tie-script
//!   enumeration for tiny clusters, seeded swarm search at scale, both
//!   crossed with the scenario's fault schedule.
//! * **Shrinking & replay** — [`shrink`] delta-debugs a failure to a
//!   minimal scenario; [`repro`] writes it as a self-contained
//!   `DST_repro_*.json` that replays byte-identically.
//!
//! ```
//! use storm_dst::prelude::*;
//!
//! // Explore 8 seeded interleavings of a 2-node launch; all oracles hold.
//! let report = explore_swarm(&Scenario::two_node_launch(), 3, 0, 0..8);
//! assert!(report.failure.is_none());
//! assert!(report.distinct > 1, "reordering actually happened");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explore;
pub mod json;
pub mod oracle;
pub mod repro;
pub mod runner;
pub mod scenario;
pub mod shrink;

pub use explore::{explore_exhaustive, explore_swarm, ExploreReport};
pub use oracle::{check_all, standard_suite, Oracle, Violation};
pub use repro::{replay, ReplayReport, Repro};
pub use runner::{run_scenario, run_scenario_caught, RunOutcome};
pub use scenario::{
    AppKind, FaultKind, FaultSpec, Injection, InjectionKind, JobEvent, OrderSpec, Scenario,
};
pub use shrink::{minimize_ties, shrink};

/// Everything a DST harness or test needs.
pub mod prelude {
    pub use crate::explore::{explore_exhaustive, explore_swarm, ExploreReport};
    pub use crate::oracle::{check_all, standard_suite, Oracle, Violation};
    pub use crate::repro::{replay, ReplayReport, Repro};
    pub use crate::runner::{run_scenario, run_scenario_caught, RunOutcome};
    pub use crate::scenario::{
        AppKind, FaultKind, FaultSpec, Injection, InjectionKind, JobEvent, OrderSpec, Scenario,
    };
    pub use crate::shrink::{minimize_ties, shrink};
    pub use storm_sim::{DeliveryOrder, QueueBackend};
}
