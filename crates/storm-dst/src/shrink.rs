//! Delta-debugging shrinker: reduce a failing scenario to a minimal
//! failing repro. The pipeline is
//!
//! 1. convert a seeded order into an explicit tie script (tie `i` is a
//!    pure function of `(seed, i)`, so the script is regenerated from the
//!    failing run's push count — nothing was recorded);
//! 2. truncate the horizon to just past the violation;
//! 3. cut the script to the minimal failing prefix, then zero every tie
//!    that does not contribute (ddmin over positions);
//! 4. drop jobs and faults one at a time, keeping each removal only if
//!    the violation survives.
//!
//! Every candidate is re-executed with the caught runner, so "still
//! failing" means *the same oracle still fires* — shrinking never trades
//! one bug for a different one.

use crate::runner::{run_scenario_caught, RunOutcome};
use crate::scenario::{OrderSpec, Scenario};
use storm_sim::DeliveryOrder;

/// Cut `ties` to its minimal failing prefix, then zero every remaining
/// position that the failure does not depend on. `fails` re-runs the
/// candidate; the input is assumed failing. Pure helper, unit-tested with
/// synthetic predicates.
pub fn minimize_ties(ties: &[u64], mut fails: impl FnMut(&[u64]) -> bool) -> Vec<u64> {
    // Binary-search the shortest failing prefix: ties past the script end
    // are zero, so a prefix is a legal script.
    let (mut lo, mut hi) = (0usize, ties.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if fails(&ties[..mid]) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let mut out = ties[..hi].to_vec();
    // Zero pass: a tie the failure does not depend on becomes 0 (identity
    // order for that insertion), shrinking the repro's event count.
    for i in 0..out.len() {
        if out[i] == 0 {
            continue;
        }
        let saved = out[i];
        out[i] = 0;
        if !fails(&out) {
            out[i] = saved;
        }
    }
    while out.last() == Some(&0) {
        out.pop();
    }
    out
}

/// The full shrink pipeline. Returns the minimal scenario and its (still
/// failing) outcome.
pub fn shrink(scenario: &Scenario, outcome: &RunOutcome) -> (Scenario, RunOutcome) {
    let original = outcome
        .violation
        .as_ref()
        .expect("shrink needs a failing outcome");
    let same_bug = |candidate: &Scenario| -> Option<RunOutcome> {
        let out = run_scenario_caught(candidate);
        match &out.violation {
            Some(v) if v.oracle == original.oracle => Some(out),
            _ => None,
        }
    };

    let mut best = scenario.clone();
    let mut best_out = outcome.clone();

    // 1. Seeded → script: regenerate the tie stream from the seed and the
    //    failing run's push count, and verify the script reproduces. A
    //    *delayed* seeded order is not regenerable (delays perturb event
    //    times, which a script cannot express) — it stays seeded and the
    //    later passes still shrink the scenario's inputs.
    if let OrderSpec::Seeded {
        seed,
        amplitude,
        delay_us: 0,
    } = best.order
    {
        let ties = DeliveryOrder::regenerate_ties(seed, amplitude, best_out.pushed);
        let candidate = best.clone().with_order(OrderSpec::Script { ties });
        if let Some(out) = same_bug(&candidate) {
            best = candidate;
            best_out = out;
        }
    }

    // 2. Horizon truncation: nothing after the violation matters.
    let violation_ms = best_out
        .violation
        .as_ref()
        .expect("still failing")
        .at
        .as_nanos()
        .div_ceil(1_000_000);
    if violation_ms + 1 < best.horizon_ms {
        let mut candidate = best.clone();
        candidate.horizon_ms = violation_ms + 1;
        if let Some(out) = same_bug(&candidate) {
            best = candidate;
            best_out = out;
        }
    }

    // 3. Tie minimisation (only meaningful for script orders).
    if let OrderSpec::Script { ties } = &best.order {
        let template = best.clone();
        let minimal = minimize_ties(ties, |candidate| {
            same_bug(&template.clone().with_order(OrderSpec::Script {
                ties: candidate.to_vec(),
            }))
            .is_some()
        });
        let candidate = template.with_order(OrderSpec::Script { ties: minimal });
        if let Some(out) = same_bug(&candidate) {
            best = candidate;
            best_out = out;
        }
    }

    // 4. Input minimisation: drop jobs, then faults, one at a time.
    let mut i = 0;
    while i < best.jobs.len() {
        let mut candidate = best.clone();
        candidate.jobs.remove(i);
        if let Some(out) = same_bug(&candidate) {
            best = candidate;
            best_out = out;
        } else {
            i += 1;
        }
    }
    let mut i = 0;
    while i < best.faults.len() {
        let mut candidate = best.clone();
        candidate.faults.remove(i);
        if let Some(out) = same_bug(&candidate) {
            best = candidate;
            best_out = out;
        } else {
            i += 1;
        }
    }

    (best, best_out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Injection, InjectionKind};

    #[test]
    fn minimize_ties_finds_the_two_load_bearing_positions() {
        // Synthetic bug: fails iff ties[3] > 0 and ties[7] > 0.
        let fails =
            |t: &[u64]| t.get(3).copied().unwrap_or(0) > 0 && t.get(7).copied().unwrap_or(0) > 0;
        let noisy: Vec<u64> = vec![2, 0, 1, 3, 2, 1, 0, 2, 1, 2, 3, 1];
        assert!(fails(&noisy));
        let minimal = minimize_ties(&noisy, |t| fails(t));
        assert_eq!(minimal.len(), 8, "prefix ends at the last load-bearing tie");
        assert_eq!(minimal.iter().filter(|&&t| t != 0).count(), 2);
        assert!(minimal[3] > 0 && minimal[7] > 0);
        assert!(fails(&minimal));
    }

    #[test]
    fn minimize_ties_handles_always_failing_input() {
        // A failure independent of every tie shrinks to the empty script.
        let minimal = minimize_ties(&[3, 1, 2], |_| true);
        assert!(minimal.is_empty());
    }

    #[test]
    fn shrinks_an_injected_failure_to_a_tiny_repro() {
        // A chaos scenario under a seeded order, with a deliberate
        // counter skew: the shrinker must strip the order, the second job
        // and both faults — the injection alone reproduces.
        let s = Scenario::small_chaos()
            .with_order(OrderSpec::Seeded {
                seed: 7,
                amplitude: 2,
                delay_us: 0,
            })
            .with_injection(Injection {
                at_ms: 30,
                kind: InjectionKind::CompletedSkew,
            });
        let out = run_scenario_caught(&s);
        assert!(out.failed());
        let (minimal, min_out) = shrink(&s, &out);
        assert!(min_out.failed());
        assert_eq!(
            min_out.violation.as_ref().unwrap().oracle,
            out.violation.as_ref().unwrap().oracle
        );
        assert!(
            minimal.event_count() <= 2,
            "repro still carries {} events: {minimal:?}",
            minimal.event_count()
        );
        assert!(minimal.horizon_ms <= 31);
    }
}
