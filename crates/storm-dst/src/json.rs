//! A minimal JSON value model, parser and writer — just enough for the
//! self-contained repro artifacts (`DST_repro_*.json`) this crate emits
//! and replays. No external dependency; numbers keep their source token so
//! 64-bit seeds round-trip without `f64` precision loss.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number, kept as its source token (integer-exact round-trips).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source key order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is an integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Required-member helpers for artifact decoding: error out with the
    /// member path instead of panicking on malformed input.
    pub fn req(&self, key: &str) -> Result<&Value, String> {
        self.get(key)
            .ok_or_else(|| format!("missing member {key:?}"))
    }

    /// Required `u64` member.
    pub fn req_u64(&self, key: &str) -> Result<u64, String> {
        self.req(key)?
            .as_u64()
            .ok_or_else(|| format!("member {key:?} is not a u64"))
    }

    /// Required string member.
    pub fn req_str(&self, key: &str) -> Result<&str, String> {
        self.req(key)?
            .as_str()
            .ok_or_else(|| format!("member {key:?} is not a string"))
    }
}

/// Parse a JSON document. Recursive descent over the full value grammar
/// (escapes decoded, whitespace tolerated); errors carry a byte offset.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {pos}", char::from(byte)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(bytes, pos),
        _ => Err(format!("unexpected input at byte {pos}")),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    if *pos == start {
        return Err(format!("empty number at byte {start}"));
    }
    Ok(Value::Num(
        std::str::from_utf8(&bytes[start..*pos])
            .map_err(|_| "non-utf8 number".to_string())?
            .to_string(),
    ))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one UTF-8 scalar (possibly multi-byte).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "non-utf8 string")?;
                let ch = rest.chars().next().expect("non-empty");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':')?;
        members.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

/// Escape and quote a string for JSON output.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render a [`Value`] as compact JSON (deterministic: member order is the
/// order held in the value).
pub fn render(value: &Value) -> String {
    let mut out = String::new();
    render_into(value, &mut out);
    out
}

fn render_into(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(tok) => out.push_str(tok),
        Value::Str(s) => out.push_str(&quote(s)),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_into(item, out);
            }
            out.push(']');
        }
        Value::Obj(members) => {
            out.push('{');
            for (i, (k, v)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&quote(k));
                out.push(':');
                render_into(v, out);
            }
            out.push('}');
        }
    }
}

/// Convenience constructors for building artifact documents.
pub fn num(n: impl std::fmt::Display) -> Value {
    Value::Num(n.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_document() {
        let doc = Value::Obj(vec![
            ("name".into(), Value::Str("two-node \"launch\"".into())),
            ("seed".into(), num(u64::MAX)),
            ("delta".into(), num(-42)),
            (
                "ties".into(),
                Value::Arr(vec![num(0), num(3), Value::Null, Value::Bool(true)]),
            ),
            ("empty".into(), Value::Obj(vec![])),
        ]);
        let text = render(&doc);
        let back = parse(&text).unwrap();
        assert_eq!(back, doc);
        // 64-bit integers survive exactly (no f64 round-trip).
        assert_eq!(back.req_u64("seed").unwrap(), u64::MAX);
        assert_eq!(back.get("delta").unwrap().as_i64(), Some(-42));
        assert_eq!(back.req_str("name").unwrap(), "two-node \"launch\"");
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = parse(" { \"a\" : [ 1 , \"x\\n\\u0041\" ] , \"b\" : null } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1].as_str(),
            Some("x\nA")
        );
        assert_eq!(v.get("b"), Some(&Value::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
        let missing = Value::Obj(vec![]);
        assert!(missing.req_u64("absent").is_err());
    }
}
