//! A minimal JSON value model, parser and writer — just enough for the
//! self-contained repro artifacts (`DST_repro_*.json`) this crate emits
//! and replays. The implementation lives in `storm-telemetry` (shared
//! with the cluster checkpoint format); this module re-exports it under
//! the crate-local path the repro codec uses.

pub use storm_core::telemetry::json::{num, parse, quote, render, Value};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_document() {
        let doc = Value::Obj(vec![
            ("name".into(), Value::Str("two-node \"launch\"".into())),
            ("seed".into(), num(u64::MAX)),
            ("delta".into(), num(-42)),
            (
                "ties".into(),
                Value::Arr(vec![num(0), num(3), Value::Null, Value::Bool(true)]),
            ),
            ("empty".into(), Value::Obj(vec![])),
        ]);
        let text = render(&doc);
        let back = parse(&text).unwrap();
        assert_eq!(back, doc);
        // 64-bit integers survive exactly (no f64 round-trip).
        assert_eq!(back.req_u64("seed").unwrap(), u64::MAX);
        assert_eq!(back.get("delta").unwrap().as_i64(), Some(-42));
        assert_eq!(back.req_str("name").unwrap(), "two-node \"launch\"");
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = parse(" { \"a\" : [ 1 , \"x\\n\\u0041\" ] , \"b\" : null } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1].as_str(),
            Some("x\nA")
        );
        assert_eq!(v.get("b"), Some(&Value::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
        let missing = Value::Obj(vec![]);
        assert!(missing.req_u64("absent").is_err());
    }
}
