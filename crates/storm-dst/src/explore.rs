//! Schedule-space exploration: bounded-exhaustive enumeration of tie
//! scripts for tiny clusters, and seeded swarm search for everything else.
//! Both tiers cross the delivery-order dimension with whatever fault
//! schedule the base scenario carries.

use crate::runner::{run_scenario_caught, RunOutcome};
use crate::scenario::{OrderSpec, Scenario};
use std::collections::BTreeSet;

/// What an exploration pass covered and found.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Scenario runs executed.
    pub runs: u64,
    /// Distinct trace digests observed — distinct *interleavings actually
    /// exercised*, the coverage number that matters.
    pub distinct: u64,
    /// The first failing `(scenario, outcome)`, if any run failed.
    pub failure: Option<(Scenario, RunOutcome)>,
}

/// Bounded-exhaustive tier: enumerate **every** tie script over the first
/// `prefix_len` insertions with values `0..=amplitude` — `(amplitude+1) ^
/// prefix_len` runs, so keep both small (the driver caps the product at
/// 4096). Ties beyond the prefix are zero (insertion order), so the
/// enumeration is exhaustive over a bounded window of the schedule space.
pub fn explore_exhaustive(base: &Scenario, amplitude: u64, prefix_len: u32) -> ExploreReport {
    let total = (amplitude + 1).pow(prefix_len);
    assert!(total <= 4096, "bounded-exhaustive tier capped at 4096 runs");
    let mut digests = BTreeSet::new();
    let mut runs = 0;
    for index in 0..total {
        // Decode `index` as a base-(amplitude+1) numeral: one digit per
        // scripted insertion.
        let mut ties = Vec::with_capacity(prefix_len as usize);
        let mut rest = index;
        for _ in 0..prefix_len {
            ties.push(rest % (amplitude + 1));
            rest /= amplitude + 1;
        }
        let scenario = base.clone().with_order(OrderSpec::Script { ties });
        let outcome = run_scenario_caught(&scenario);
        runs += 1;
        digests.insert(outcome.digest);
        if outcome.failed() {
            return ExploreReport {
                runs,
                distinct: digests.len() as u64,
                failure: Some((scenario, outcome)),
            };
        }
    }
    ExploreReport {
        runs,
        distinct: digests.len() as u64,
        failure: None,
    }
}

/// Swarm tier: one seeded run per seed in `seeds`, each permuting every
/// same-instant tie in `0..=amplitude`. Linear cost, probabilistic
/// coverage — the tier that scales to big clusters and long horizons.
/// `delay_us > 0` additionally perturbs every event by a bounded random
/// delay, which multiplies the reachable schedule space far beyond what
/// same-instant permutation alone can reach on workloads whose event
/// times are mostly unique.
pub fn explore_swarm(
    base: &Scenario,
    amplitude: u64,
    delay_us: u64,
    seeds: impl IntoIterator<Item = u64>,
) -> ExploreReport {
    let mut digests = BTreeSet::new();
    let mut runs = 0;
    for seed in seeds {
        let scenario = base.clone().with_order(OrderSpec::Seeded {
            seed,
            amplitude,
            delay_us,
        });
        let outcome = run_scenario_caught(&scenario);
        runs += 1;
        digests.insert(outcome.digest);
        if outcome.failed() {
            return ExploreReport {
                runs,
                distinct: digests.len() as u64,
                failure: Some((scenario, outcome)),
            };
        }
    }
    ExploreReport {
        runs,
        distinct: digests.len() as u64,
        failure: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_tier_covers_the_whole_window() {
        // 2^3 = 8 scripts over the first 3 insertions of the tiny launch.
        let report = explore_exhaustive(&Scenario::two_node_launch(), 1, 3);
        assert_eq!(report.runs, 8);
        assert!(report.failure.is_none(), "{:?}", report.failure);
        assert!(report.distinct >= 1);
    }

    #[test]
    fn swarm_tier_finds_many_distinct_interleavings() {
        let report = explore_swarm(&Scenario::two_node_launch(), 3, 0, 0..16);
        assert_eq!(report.runs, 16);
        assert!(report.failure.is_none(), "{:?}", report.failure);
        assert!(
            report.distinct >= 8,
            "only {} distinct interleavings in 16 seeded runs",
            report.distinct
        );
    }

    #[test]
    fn bounded_delay_multiplies_the_reachable_schedule_space() {
        let plain = explore_swarm(&Scenario::two_node_launch(), 3, 0, 0..12);
        let delayed = explore_swarm(&Scenario::two_node_launch(), 3, 20, 0..12);
        assert!(plain.failure.is_none() && delayed.failure.is_none());
        assert!(
            delayed.distinct >= plain.distinct,
            "delay cannot shrink the space: {} < {}",
            delayed.distinct,
            plain.distinct
        );
        assert_eq!(delayed.distinct, 12, "every delayed seed is distinct");
    }
}
