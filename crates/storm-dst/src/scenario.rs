//! Scenarios: the self-contained description of one DST run — cluster
//! shape, workload, fault schedule, delivery order and (optionally) a
//! deliberate state injection. A scenario serialises to/from JSON so a
//! repro artifact carries everything needed to re-execute a failure
//! byte-identically on another machine.

use crate::json::{self, num, Value};
use storm_sim::QueueBackend;

/// Which application a scenario job runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppKind {
    /// `do-nothing` with an `mb`-megabyte binary (the launch experiment).
    Binary {
        /// Binary image size in MiB.
        mb: u64,
    },
    /// A pure-compute synthetic job running `ms` milliseconds per rank.
    Compute {
        /// Single-rank compute time in milliseconds.
        ms: u64,
    },
}

/// One job submission in a scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobEvent {
    /// Submission instant, in milliseconds of simulated time.
    pub at_ms: u64,
    /// Rank count.
    pub ranks: u32,
    /// What the job runs.
    pub app: AppKind,
}

/// One timed fault in a scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// Injection instant, milliseconds.
    pub at_ms: u64,
    /// Target node.
    pub node: u32,
    /// What happens to it.
    pub kind: FaultKind,
}

/// The kind of a timed fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// The node's dæmon dies (stops responding to everything).
    Fail,
    /// A previously failed node comes back.
    Rejoin,
    /// The dæmon stalls (messages deferred) until `until_ms`.
    Stall {
        /// End of the stall window, milliseconds.
        until_ms: u64,
    },
    /// An MM replica dies. For this kind the spec's `node` field is the
    /// replica *rank* (0 = primary); killing the active replica exercises
    /// the regroup/failover protocol.
    MmKill,
}

/// The delivery order a scenario runs under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrderSpec {
    /// The engine's classic `(time, seq)` order (no hook installed).
    Default,
    /// Seeded same-instant permutation: tie `i` uniform over
    /// `0..=amplitude` from SplitMix64 over `seed`, optionally with a
    /// bounded random delivery delay.
    Seeded {
        /// The hook's own seed (independent of the simulation seed).
        seed: u64,
        /// Inclusive tie range bound; 0 is the identity order.
        amplitude: u64,
        /// Upper bound (µs) on the per-event random delivery delay; 0
        /// disables delay. Delays only ever push deliveries later, so
        /// time-order legality holds — but a delayed run perturbs event
        /// *times* and is not regenerable as a tie script, so the
        /// shrinker leaves delayed orders seeded.
        delay_us: u64,
    },
    /// An explicit tie script (insertion `i` gets `ties[i]`, 0 after
    /// exhaustion) — what the shrinker reduces a seeded failure to.
    Script {
        /// The per-insertion tie values.
        ties: Vec<u64>,
    },
}

/// A deliberate state corruption applied mid-run — used to prove each
/// oracle actually fires, and to seed shrinker/replay self-tests with a
/// known minimal bug.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Injection {
    /// Timeslice boundary (milliseconds) at which to corrupt state.
    pub at_ms: u64,
    /// What to corrupt.
    pub kind: InjectionKind,
}

/// The kinds of deliberate corruption the harness knows how to apply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InjectionKind {
    /// Bump `stats.completed_jobs` without completing anything — a
    /// double-completion, caught by `JobAccounting`.
    CompletedSkew,
    /// Flip one node's `World::quarantined` flag without touching the
    /// matrix — caught by `QuarantineSafety`.
    QuarantineDesync {
        /// The node whose flag is flipped.
        node: u32,
    },
    /// Regress the MM's heartbeat round counter — caught by
    /// `HeartbeatMonotonic`.
    HbRegress,
    /// Add a phantom job id to a slot's mirror list — caught by
    /// `MatrixConsistency`.
    MatrixTear,
    /// Apply a COMPARE-AND-WRITE set write, then tamper one node's copy
    /// behind the audit's back (a torn write) — caught by `CawVisibility`.
    CawTear {
        /// The node whose copy is torn.
        node: u32,
    },
    /// Pop a live job out of the MM queue without completing it — a lost
    /// job, caught by `NoJobLost`.
    JobVanish,
    /// Make a standby claim it applied the full decision log while holding
    /// a diverged queue mirror — caught by `ReplConsistency`.
    ReplicaSkew {
        /// The standby rank to skew (≥ 1).
        rank: u32,
    },
    /// Flip a standby to the Active role without a promotion — a split
    /// brain, caught by `SingleActiveMm`.
    DualActive,
}

/// A complete DST scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Human-readable scenario name (becomes part of the artifact name).
    pub name: String,
    /// Cluster node count.
    pub nodes: u32,
    /// CPUs (PEs) per node.
    pub cpus_per_node: u32,
    /// Ousterhout-matrix depth.
    pub mpl_max: usize,
    /// Simulation RNG seed.
    pub seed: u64,
    /// Heartbeat fault round every `k` ticks; 0 disables fault detection.
    pub heartbeat_every: u32,
    /// Standby MM replicas (0 = classic single-MM cluster).
    pub mm_standbys: u32,
    /// Run deadline, milliseconds.
    pub horizon_ms: u64,
    /// Pinned event-queue backend; `None` follows the environment default.
    pub backend: Option<QueueBackend>,
    /// Job submissions.
    pub jobs: Vec<JobEvent>,
    /// Timed faults.
    pub faults: Vec<FaultSpec>,
    /// Delivery order under test.
    pub order: OrderSpec,
    /// Optional deliberate corruption.
    pub injection: Option<Injection>,
}

impl Scenario {
    /// The smallest interesting scenario: a two-node cluster launching one
    /// tiny binary — the schedule-space-exploration benchmark workload.
    pub fn two_node_launch() -> Self {
        Scenario {
            name: "two-node-launch".into(),
            nodes: 2,
            cpus_per_node: 2,
            mpl_max: 2,
            seed: 0x5702_2002,
            heartbeat_every: 0,
            mm_standbys: 0,
            horizon_ms: 40,
            backend: None,
            jobs: vec![JobEvent {
                at_ms: 0,
                ranks: 4,
                app: AppKind::Binary { mb: 1 },
            }],
            faults: Vec::new(),
            order: OrderSpec::Default,
            injection: None,
        }
    }

    /// A small mixed scenario: 4 nodes, two overlapping jobs, one
    /// fail/rejoin cycle under heartbeat detection — the swarm-tier
    /// workload crossed with fault schedules.
    pub fn small_chaos() -> Self {
        Scenario {
            name: "small-chaos".into(),
            nodes: 4,
            cpus_per_node: 2,
            mpl_max: 2,
            seed: 0xD15C,
            heartbeat_every: 4,
            mm_standbys: 0,
            horizon_ms: 120,
            backend: None,
            jobs: vec![
                JobEvent {
                    at_ms: 0,
                    ranks: 4,
                    app: AppKind::Binary { mb: 1 },
                },
                JobEvent {
                    at_ms: 5,
                    ranks: 2,
                    app: AppKind::Compute { ms: 30 },
                },
            ],
            faults: vec![
                FaultSpec {
                    at_ms: 20,
                    node: 3,
                    kind: FaultKind::Fail,
                },
                FaultSpec {
                    at_ms: 60,
                    node: 3,
                    kind: FaultKind::Rejoin,
                },
            ],
            order: OrderSpec::Default,
            injection: None,
        }
    }

    /// The failover scenario: a replicated-MM cluster that loses its
    /// active MM mid-run, with one job in flight and one arriving after
    /// the kill — the regroup protocol under the full oracle suite.
    pub fn mm_failover() -> Self {
        Scenario {
            name: "mm-failover".into(),
            nodes: 4,
            cpus_per_node: 2,
            mpl_max: 2,
            seed: 0xFA11,
            heartbeat_every: 4,
            mm_standbys: 2,
            horizon_ms: 200,
            backend: None,
            jobs: vec![
                JobEvent {
                    at_ms: 0,
                    ranks: 4,
                    app: AppKind::Binary { mb: 1 },
                },
                JobEvent {
                    at_ms: 5,
                    ranks: 2,
                    app: AppKind::Compute { ms: 30 },
                },
            ],
            faults: vec![FaultSpec {
                at_ms: 40,
                node: 0,
                kind: FaultKind::MmKill,
            }],
            order: OrderSpec::Default,
            injection: None,
        }
    }

    /// Builder: replace the delivery order.
    pub fn with_order(mut self, order: OrderSpec) -> Self {
        self.order = order;
        self
    }

    /// Builder: install a deliberate corruption.
    pub fn with_injection(mut self, injection: Injection) -> Self {
        self.injection = Some(injection);
        self
    }

    /// Builder: pin the queue backend.
    pub fn with_backend(mut self, backend: QueueBackend) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Sanity-check ranges (mirrors what `ClusterConfig::validate` and the
    /// submit-time assertions would reject, but as an `Err`).
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 || self.cpus_per_node == 0 || self.mpl_max == 0 {
            return Err("cluster dimensions must be ≥ 1".into());
        }
        for j in &self.jobs {
            let nodes_needed = j.ranks.div_ceil(self.cpus_per_node);
            if j.ranks == 0 || nodes_needed > self.nodes {
                return Err(format!("job with {} ranks does not fit", j.ranks));
            }
        }
        for f in &self.faults {
            if matches!(f.kind, FaultKind::MmKill) {
                if f.node > self.mm_standbys {
                    return Err(format!(
                        "MM kill targets rank {} of {} replicas",
                        f.node,
                        self.mm_standbys + 1
                    ));
                }
            } else if f.node >= self.nodes {
                return Err(format!("fault targets node {} of {}", f.node, self.nodes));
            }
        }
        if self.horizon_ms == 0 {
            return Err("horizon must be positive".into());
        }
        Ok(())
    }

    /// Number of "events" a repro is counted in: scenario inputs (jobs,
    /// faults, injection) plus the nonzero ties of a script order. This is
    /// the quantity the shrinker minimises.
    pub fn event_count(&self) -> usize {
        let ties = match &self.order {
            OrderSpec::Script { ties } => ties.iter().filter(|&&t| t != 0).count(),
            _ => 0,
        };
        ties + self.jobs.len() + self.faults.len() + usize::from(self.injection.is_some())
    }

    // ------------------------------------------------------------- JSON —

    /// Serialise to a JSON [`Value`].
    pub fn to_json(&self) -> Value {
        let app = |a: &AppKind| match a {
            AppKind::Binary { mb } => Value::Obj(vec![
                ("kind".into(), Value::Str("binary".into())),
                ("mb".into(), num(mb)),
            ]),
            AppKind::Compute { ms } => Value::Obj(vec![
                ("kind".into(), Value::Str("compute".into())),
                ("ms".into(), num(ms)),
            ]),
        };
        let jobs = self
            .jobs
            .iter()
            .map(|j| {
                Value::Obj(vec![
                    ("at_ms".into(), num(j.at_ms)),
                    ("ranks".into(), num(j.ranks)),
                    ("app".into(), app(&j.app)),
                ])
            })
            .collect();
        let faults = self
            .faults
            .iter()
            .map(|f| {
                let mut members =
                    vec![("at_ms".into(), num(f.at_ms)), ("node".into(), num(f.node))];
                match f.kind {
                    FaultKind::Fail => members.push(("kind".into(), Value::Str("fail".into()))),
                    FaultKind::Rejoin => members.push(("kind".into(), Value::Str("rejoin".into()))),
                    FaultKind::Stall { until_ms } => {
                        members.push(("kind".into(), Value::Str("stall".into())));
                        members.push(("until_ms".into(), num(until_ms)));
                    }
                    FaultKind::MmKill => {
                        members.push(("kind".into(), Value::Str("mm_kill".into())))
                    }
                }
                Value::Obj(members)
            })
            .collect();
        let order = match &self.order {
            OrderSpec::Default => Value::Obj(vec![("kind".into(), Value::Str("default".into()))]),
            OrderSpec::Seeded {
                seed,
                amplitude,
                delay_us,
            } => Value::Obj(vec![
                ("kind".into(), Value::Str("seeded".into())),
                ("seed".into(), num(seed)),
                ("amplitude".into(), num(amplitude)),
                ("delay_us".into(), num(delay_us)),
            ]),
            OrderSpec::Script { ties } => Value::Obj(vec![
                ("kind".into(), Value::Str("script".into())),
                ("ties".into(), Value::Arr(ties.iter().map(num).collect())),
            ]),
        };
        let injection = match &self.injection {
            None => Value::Null,
            Some(inj) => {
                let mut members = vec![("at_ms".into(), num(inj.at_ms))];
                match inj.kind {
                    InjectionKind::CompletedSkew => {
                        members.push(("kind".into(), Value::Str("completed_skew".into())))
                    }
                    InjectionKind::QuarantineDesync { node } => {
                        members.push(("kind".into(), Value::Str("quarantine_desync".into())));
                        members.push(("node".into(), num(node)));
                    }
                    InjectionKind::HbRegress => {
                        members.push(("kind".into(), Value::Str("hb_regress".into())))
                    }
                    InjectionKind::MatrixTear => {
                        members.push(("kind".into(), Value::Str("matrix_tear".into())))
                    }
                    InjectionKind::CawTear { node } => {
                        members.push(("kind".into(), Value::Str("caw_tear".into())));
                        members.push(("node".into(), num(node)));
                    }
                    InjectionKind::JobVanish => {
                        members.push(("kind".into(), Value::Str("job_vanish".into())))
                    }
                    InjectionKind::ReplicaSkew { rank } => {
                        members.push(("kind".into(), Value::Str("replica_skew".into())));
                        members.push(("rank".into(), num(rank)));
                    }
                    InjectionKind::DualActive => {
                        members.push(("kind".into(), Value::Str("dual_active".into())))
                    }
                }
                Value::Obj(members)
            }
        };
        Value::Obj(vec![
            ("name".into(), Value::Str(self.name.clone())),
            ("nodes".into(), num(self.nodes)),
            ("cpus_per_node".into(), num(self.cpus_per_node)),
            ("mpl_max".into(), num(self.mpl_max)),
            ("seed".into(), num(self.seed)),
            ("heartbeat_every".into(), num(self.heartbeat_every)),
            ("mm_standbys".into(), num(self.mm_standbys)),
            ("horizon_ms".into(), num(self.horizon_ms)),
            (
                "backend".into(),
                match self.backend {
                    None => Value::Null,
                    Some(QueueBackend::Heap) => Value::Str("heap".into()),
                    Some(QueueBackend::Wheel) => Value::Str("wheel".into()),
                },
            ),
            ("jobs".into(), Value::Arr(jobs)),
            ("faults".into(), Value::Arr(faults)),
            ("order".into(), order),
            ("injection".into(), injection),
        ])
    }

    /// Deserialise from a JSON [`Value`].
    pub fn from_json(v: &Value) -> Result<Self, String> {
        let jobs = v
            .req("jobs")?
            .as_arr()
            .ok_or("jobs is not an array")?
            .iter()
            .map(|j| {
                let app = j.req("app")?;
                let kind = match app.req_str("kind")? {
                    "binary" => AppKind::Binary {
                        mb: app.req_u64("mb")?,
                    },
                    "compute" => AppKind::Compute {
                        ms: app.req_u64("ms")?,
                    },
                    other => return Err(format!("unknown app kind {other:?}")),
                };
                Ok(JobEvent {
                    at_ms: j.req_u64("at_ms")?,
                    ranks: j.req_u64("ranks")? as u32,
                    app: kind,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let faults = v
            .req("faults")?
            .as_arr()
            .ok_or("faults is not an array")?
            .iter()
            .map(|f| {
                let kind = match f.req_str("kind")? {
                    "fail" => FaultKind::Fail,
                    "rejoin" => FaultKind::Rejoin,
                    "stall" => FaultKind::Stall {
                        until_ms: f.req_u64("until_ms")?,
                    },
                    "mm_kill" => FaultKind::MmKill,
                    other => return Err(format!("unknown fault kind {other:?}")),
                };
                Ok(FaultSpec {
                    at_ms: f.req_u64("at_ms")?,
                    node: f.req_u64("node")? as u32,
                    kind,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let o = v.req("order")?;
        let order = match o.req_str("kind")? {
            "default" => OrderSpec::Default,
            "seeded" => OrderSpec::Seeded {
                seed: o.req_u64("seed")?,
                amplitude: o.req_u64("amplitude")?,
                delay_us: o.get("delay_us").and_then(Value::as_u64).unwrap_or(0),
            },
            "script" => OrderSpec::Script {
                ties: o
                    .req("ties")?
                    .as_arr()
                    .ok_or("ties is not an array")?
                    .iter()
                    .map(|t| t.as_u64().ok_or_else(|| "tie is not a u64".to_string()))
                    .collect::<Result<Vec<_>, String>>()?,
            },
            other => return Err(format!("unknown order kind {other:?}")),
        };
        let injection = match v.req("injection")? {
            Value::Null => None,
            inj => {
                let kind = match inj.req_str("kind")? {
                    "completed_skew" => InjectionKind::CompletedSkew,
                    "quarantine_desync" => InjectionKind::QuarantineDesync {
                        node: inj.req_u64("node")? as u32,
                    },
                    "hb_regress" => InjectionKind::HbRegress,
                    "matrix_tear" => InjectionKind::MatrixTear,
                    "caw_tear" => InjectionKind::CawTear {
                        node: inj.req_u64("node")? as u32,
                    },
                    "job_vanish" => InjectionKind::JobVanish,
                    "replica_skew" => InjectionKind::ReplicaSkew {
                        rank: inj.req_u64("rank")? as u32,
                    },
                    "dual_active" => InjectionKind::DualActive,
                    other => return Err(format!("unknown injection kind {other:?}")),
                };
                Some(Injection {
                    at_ms: inj.req_u64("at_ms")?,
                    kind,
                })
            }
        };
        Ok(Scenario {
            name: v.req_str("name")?.to_string(),
            nodes: v.req_u64("nodes")? as u32,
            cpus_per_node: v.req_u64("cpus_per_node")? as u32,
            mpl_max: v.req_u64("mpl_max")? as usize,
            seed: v.req_u64("seed")?,
            heartbeat_every: v.req_u64("heartbeat_every")? as u32,
            // Optional for backward compatibility with pre-replication
            // artifacts.
            mm_standbys: v.get("mm_standbys").and_then(Value::as_u64).unwrap_or(0) as u32,
            horizon_ms: v.req_u64("horizon_ms")?,
            backend: match v.req("backend")? {
                Value::Null => None,
                b => match b.as_str() {
                    Some("heap") => Some(QueueBackend::Heap),
                    Some("wheel") => Some(QueueBackend::Wheel),
                    _ => return Err("backend must be \"heap\", \"wheel\" or null".into()),
                },
            },
            jobs,
            faults,
            order,
            injection,
        })
    }

    /// Serialise to a compact JSON string.
    pub fn to_json_string(&self) -> String {
        json::render(&self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_scenarios_validate() {
        assert!(Scenario::two_node_launch().validate().is_ok());
        assert!(Scenario::small_chaos().validate().is_ok());
        assert!(Scenario::mm_failover().validate().is_ok());
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let s = Scenario::small_chaos()
            .with_order(OrderSpec::Script {
                ties: vec![0, 3, 0, 1],
            })
            .with_backend(QueueBackend::Heap)
            .with_injection(Injection {
                at_ms: 30,
                kind: InjectionKind::CawTear { node: 1 },
            });
        let text = s.to_json_string();
        let back = Scenario::from_json(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, s);
        // Every injection kind survives the trip.
        // The failover scenario (standbys + MM kill) round-trips too.
        let s = Scenario::mm_failover();
        let back = Scenario::from_json(&json::parse(&s.to_json_string()).unwrap()).unwrap();
        assert_eq!(back, s);
        for kind in [
            InjectionKind::CompletedSkew,
            InjectionKind::QuarantineDesync { node: 2 },
            InjectionKind::HbRegress,
            InjectionKind::MatrixTear,
            InjectionKind::JobVanish,
            InjectionKind::ReplicaSkew { rank: 1 },
            InjectionKind::DualActive,
        ] {
            let s = Scenario::two_node_launch().with_injection(Injection { at_ms: 5, kind });
            let back = Scenario::from_json(&json::parse(&s.to_json_string()).unwrap()).unwrap();
            assert_eq!(back, s);
        }
    }

    #[test]
    fn validation_rejects_misfits() {
        let mut s = Scenario::two_node_launch();
        s.jobs[0].ranks = 999;
        assert!(s.validate().is_err());
        let mut s = Scenario::small_chaos();
        s.faults[0].node = 99;
        assert!(s.validate().is_err());
        let mut s = Scenario::two_node_launch();
        s.horizon_ms = 0;
        assert!(s.validate().is_err());
        // An MM kill aimed past the replica set is rejected.
        let mut s = Scenario::mm_failover();
        s.faults[0].node = 3; // ranks 0..=2 exist
        assert!(s.validate().is_err());
    }

    #[test]
    fn event_count_counts_only_meaningful_inputs() {
        let s = Scenario::two_node_launch(); // 1 job
        assert_eq!(s.event_count(), 1);
        let s = s
            .with_order(OrderSpec::Script {
                ties: vec![0, 0, 2, 0, 1],
            })
            .with_injection(Injection {
                at_ms: 5,
                kind: InjectionKind::CompletedSkew,
            });
        // 1 job + 2 nonzero ties + 1 injection.
        assert_eq!(s.event_count(), 4);
    }
}
