//! Invariant oracles: predicates over the [`World`] checked at every
//! timeslice boundary of a DST run. Each oracle is a safety property the
//! STORM protocols must uphold under *any* legal event interleaving — the
//! whole point of schedule-space exploration is that these stay true no
//! matter how same-instant deliveries are permuted.
//!
//! Oracles may be stateful (snapshots across boundaries catch *regressions*
//! such as a terminal job coming back to life), so a fresh suite is built
//! per run via [`standard_suite`].

use std::collections::BTreeMap;
use storm_core::job::JobState;
use storm_core::{MmRole, World};
use storm_sim::SimTime;

/// A violated invariant: which oracle fired, when, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The oracle's [`Oracle::name`] (or `"panic"` for a caught panic).
    pub oracle: String,
    /// The boundary at which the check failed.
    pub at: SimTime,
    /// Human-readable explanation.
    pub detail: String,
}

/// One invariant, checked at every timeslice boundary.
pub trait Oracle {
    /// Stable identifier (appears in violations and repro artifacts).
    fn name(&self) -> &'static str;
    /// Check the invariant; `Err` carries the explanation.
    fn check(&mut self, world: &World, now: SimTime) -> Result<(), String>;
}

/// The full standard oracle catalog (see DESIGN.md §14).
pub fn standard_suite() -> Vec<Box<dyn Oracle>> {
    vec![
        Box::new(JobAccounting::default()),
        Box::new(BuddyConservation),
        Box::new(MatrixConsistency),
        Box::new(CawVisibility),
        Box::new(HeartbeatMonotonic::default()),
        Box::new(QuarantineSafety),
        Box::new(SingleActiveMm::default()),
        Box::new(NoJobLost),
        Box::new(ReplConsistency),
    ]
}

/// Run every oracle in `suite` against `world`, returning the first
/// violation.
pub fn check_all(suite: &mut [Box<dyn Oracle>], world: &World, now: SimTime) -> Option<Violation> {
    for oracle in suite.iter_mut() {
        if let Err(detail) = oracle.check(world, now) {
            return Some(Violation {
                oracle: oracle.name().to_string(),
                at: now,
                detail,
            });
        }
    }
    None
}

// ------------------------------------------------------- job accounting —

/// No job is lost or double-completed: the `completed_jobs` counter equals
/// the number of jobs in a terminal state, terminal jobs never leave their
/// terminal state, and terminal jobs hold no matrix slot.
#[derive(Default)]
pub struct JobAccounting {
    terminal: BTreeMap<u32, JobState>,
}

impl Oracle for JobAccounting {
    fn name(&self) -> &'static str {
        "job_accounting"
    }

    fn check(&mut self, world: &World, _now: SimTime) -> Result<(), String> {
        let terminal_count = world.jobs.iter().filter(|r| r.state.is_terminal()).count() as u64;
        if world.stats.completed_jobs != terminal_count {
            return Err(format!(
                "completed_jobs = {} but {} jobs are terminal (lost or double-completed job)",
                world.stats.completed_jobs, terminal_count
            ));
        }
        for rec in &world.jobs {
            if let Some(prev) = self.terminal.get(&rec.id.0) {
                if rec.state != *prev {
                    return Err(format!(
                        "{} left terminal state {prev:?} for {:?}",
                        rec.id, rec.state
                    ));
                }
            }
            if rec.state.is_terminal() {
                self.terminal.insert(rec.id.0, rec.state);
                if let Some(slot) = world.matrix.slot_of(rec.id) {
                    return Err(format!(
                        "terminal {} still occupies matrix slot {slot}",
                        rec.id
                    ));
                }
            }
        }
        Ok(())
    }
}

// ------------------------------------------------- buddy conservation —

/// Per-slot buddy-allocator conservation: free + allocated + quarantined
/// node counts sum to the usable total, and the live allocations are
/// disjoint, power-of-two sized and size-aligned.
pub struct BuddyConservation;

impl Oracle for BuddyConservation {
    fn name(&self) -> &'static str {
        "buddy_conservation"
    }

    fn check(&mut self, world: &World, _now: SimTime) -> Result<(), String> {
        for slot in 0..world.matrix.slot_count() {
            let buddy = world.matrix.slot_buddy(slot).expect("slot in range");
            let allocs = buddy.allocations();
            let allocated: u32 = allocs.iter().map(|r| r.len() as u32).sum();
            let quarantined = buddy.quarantined_nodes().count() as u32;
            let total = buddy.free_nodes() + allocated + quarantined;
            if total != buddy.usable() {
                return Err(format!(
                    "slot {slot}: free {} + allocated {allocated} + quarantined {quarantined} \
                     = {total} ≠ usable {}",
                    buddy.free_nodes(),
                    buddy.usable()
                ));
            }
            let mut prev_end = 0u32;
            for r in &allocs {
                let len = r.len() as u32;
                if !len.is_power_of_two() {
                    return Err(format!("slot {slot}: allocation {r:?} is not a power of 2"));
                }
                if r.start % len != 0 {
                    return Err(format!("slot {slot}: allocation {r:?} is misaligned"));
                }
                if r.start < prev_end {
                    return Err(format!(
                        "slot {slot}: allocation {r:?} overlaps its neighbour"
                    ));
                }
                prev_end = r.end;
            }
        }
        Ok(())
    }
}

// ------------------------------------------------ matrix consistency —

/// Ousterhout-matrix consistency: every placed job sits in exactly one
/// slot; the world's `slot_jobs` mirror, the matrix's placements, the
/// buddy's allocations and the job records' own `allocation` fields all
/// tell the same story; and no placed job is terminal.
pub struct MatrixConsistency;

impl Oracle for MatrixConsistency {
    fn name(&self) -> &'static str {
        "matrix_consistency"
    }

    fn check(&mut self, world: &World, _now: SimTime) -> Result<(), String> {
        let mut seen: BTreeMap<u32, usize> = BTreeMap::new();
        for slot in 0..world.matrix.slot_count() {
            let placements = world.matrix.jobs_in_slot(slot);
            for (job, range) in placements {
                if let Some(prev) = seen.insert(job.0, slot) {
                    return Err(format!("{job} placed in slots {prev} and {slot}"));
                }
                let rec = world
                    .jobs
                    .iter()
                    .find(|r| r.id == *job)
                    .ok_or_else(|| format!("matrix slot {slot} holds unknown {job}"))?;
                if rec.state.is_terminal() {
                    return Err(format!("{job} is {:?} but still placed", rec.state));
                }
                match &rec.allocation {
                    Some(alloc) if alloc.slot == slot && alloc.nodes == *range => {}
                    other => {
                        return Err(format!(
                            "{job}: matrix says slot {slot} {range:?}, record says {other:?}"
                        ))
                    }
                }
            }
            // The world's per-slot mirror and the matrix must agree as sets.
            let mut mirror: Vec<u32> = world.jobs_in_slot(slot).iter().map(|j| j.0).collect();
            let mut placed: Vec<u32> = placements.iter().map(|(j, _)| j.0).collect();
            mirror.sort_unstable();
            placed.sort_unstable();
            if mirror != placed {
                return Err(format!(
                    "slot {slot}: mirror {mirror:?} ≠ matrix placements {placed:?}"
                ));
            }
            // The matrix's ranges and the buddy's live allocations must
            // agree as sets too.
            let buddy = world.matrix.slot_buddy(slot).expect("slot in range");
            let mut buddy_allocs: Vec<(u32, u32)> = buddy
                .allocations()
                .iter()
                .map(|r| (r.start, r.end))
                .collect();
            let mut matrix_allocs: Vec<(u32, u32)> =
                placements.iter().map(|(_, r)| (r.start, r.end)).collect();
            buddy_allocs.sort_unstable();
            matrix_allocs.sort_unstable();
            if buddy_allocs != matrix_allocs {
                return Err(format!(
                    "slot {slot}: buddy {buddy_allocs:?} ≠ matrix {matrix_allocs:?}"
                ));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------- CAW visibility —

/// COMPARE-AND-WRITE sequential consistency: while a set-wide write is the
/// most recent write of a variable, *every* node of its set reads exactly
/// the written value — all-or-nothing visibility, no torn writes. Only
/// meaningful when the run enabled the audit trail (the runner does).
pub struct CawVisibility;

impl Oracle for CawVisibility {
    fn name(&self) -> &'static str {
        "caw_visibility"
    }

    fn check(&mut self, world: &World, _now: SimTime) -> Result<(), String> {
        for (var, audit) in world.mech.memory.caw_audits() {
            for node in audit.set.iter() {
                let got = world.mech.memory.read(node, var);
                if got != audit.value {
                    return Err(format!(
                        "torn CAW write: {node} reads {got} for {var:?}, set wrote {}",
                        audit.value
                    ));
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------- heartbeat monotonicity —

/// Heartbeat-round monotonicity: the MM's round counter never goes
/// backwards, and no node's heartbeat value ever exceeds the last round
/// the MM actually multicast.
#[derive(Default)]
pub struct HeartbeatMonotonic {
    last_round: Option<i64>,
}

impl Oracle for HeartbeatMonotonic {
    fn name(&self) -> &'static str {
        "heartbeat_monotonic"
    }

    fn check(&mut self, world: &World, _now: SimTime) -> Result<(), String> {
        let round = world.hb_round;
        if let Some(prev) = self.last_round {
            if round < prev {
                return Err(format!("heartbeat round regressed: {prev} -> {round}"));
            }
        }
        self.last_round = Some(round);
        if let Some(hb_var) = world.hb_var {
            for node in 0..world.cfg.nodes {
                let v = world.mech.memory.read(storm_mech::NodeId(node), hb_var);
                if v > round {
                    return Err(format!(
                        "node {node} heartbeat {v} is ahead of the MM round {round}"
                    ));
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------- quarantine safety —

/// Quarantine/rejoin safety: the world's per-node quarantine flags, the
/// matrix's quarantine set and every slot buddy's quarantine set agree —
/// and no quarantined node sits inside a live allocation.
pub struct QuarantineSafety;

impl Oracle for QuarantineSafety {
    fn name(&self) -> &'static str {
        "quarantine_safety"
    }

    fn check(&mut self, world: &World, _now: SimTime) -> Result<(), String> {
        for node in 0..world.cfg.nodes {
            let flag = world.nodes.is_quarantined(node);
            let in_matrix = world.matrix.is_quarantined(node);
            if flag != in_matrix {
                return Err(format!(
                    "node {node}: world quarantine flag {flag} ≠ matrix {in_matrix}"
                ));
            }
            for slot in 0..world.matrix.slot_count() {
                let buddy = world.matrix.slot_buddy(slot).expect("slot in range");
                if buddy.is_quarantined(node) != in_matrix {
                    return Err(format!(
                        "node {node}: slot {slot} buddy disagrees with matrix quarantine"
                    ));
                }
                if in_matrix {
                    for r in buddy.allocations() {
                        if r.contains(&node) {
                            return Err(format!(
                                "quarantined node {node} inside live allocation {r:?} (slot {slot})"
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------- single active MM —

/// Membership safety for the replicated MM: the epoch never regresses, at
/// most one live replica plays the Active role at any boundary, and the
/// cluster's command path (`wiring.mm`) always points at the replica the
/// membership believes is active. Holds trivially for standby-free runs.
#[derive(Default)]
pub struct SingleActiveMm {
    last_epoch: Option<u64>,
}

impl Oracle for SingleActiveMm {
    fn name(&self) -> &'static str {
        "single_active_mm"
    }

    fn check(&mut self, world: &World, _now: SimTime) -> Result<(), String> {
        if let Some(prev) = self.last_epoch {
            if world.mm_epoch < prev {
                return Err(format!("MM epoch regressed: {prev} -> {}", world.mm_epoch));
            }
        }
        self.last_epoch = Some(world.mm_epoch);
        let active: Vec<u32> = (0..world.mm_roles.len() as u32)
            .filter(|&r| {
                world.mm_roles[r as usize] == MmRole::Active && !world.mm_failed[r as usize]
            })
            .collect();
        if active.len() > 1 {
            return Err(format!(
                "{} live MM replicas are Active in epoch {}: ranks {active:?}",
                active.len(),
                world.mm_epoch
            ));
        }
        if let Some(&rank) = active.first() {
            if rank != world.mm_active_rank {
                return Err(format!(
                    "active role held by rank {rank} but membership says {}",
                    world.mm_active_rank
                ));
            }
        }
        if !world.wiring.mms.is_empty() {
            let expected = world.wiring.mms[world.mm_active_rank as usize];
            if world.wiring.mm != Some(expected) {
                return Err(format!(
                    "command path {:?} does not point at active rank {}",
                    world.wiring.mm, world.mm_active_rank
                ));
            }
        }
        Ok(())
    }
}

// -------------------------------------------------------- no job lost —

/// No job falls through the cracks across a failover: every submitted,
/// non-terminal job either holds a matrix allocation, sits in the MM's
/// queue, or has a pending requeue timer. A job in none of those places
/// has been lost — nothing will ever run it again.
pub struct NoJobLost;

impl Oracle for NoJobLost {
    fn name(&self) -> &'static str {
        "no_job_lost"
    }

    fn check(&mut self, world: &World, _now: SimTime) -> Result<(), String> {
        for rec in &world.jobs {
            if rec.metrics.submitted.is_none()
                || rec.state.is_terminal()
                || rec.allocation.is_some()
            {
                continue;
            }
            let queued = world.queue.contains(&rec.id);
            let pending = world.requeue_pending.iter().any(|&(j, _)| j == rec.id);
            if !queued && !pending {
                return Err(format!(
                    "{} ({:?}) is submitted and live but held by nothing: \
                     not allocated, not queued, no requeue timer",
                    rec.id, rec.state
                ));
            }
        }
        Ok(())
    }
}

// ------------------------------------------------- replica consistency —

/// Decision-log / checkpoint consistency: a standby never runs ahead of
/// the active mirror, and a standby that has applied the full log holds
/// *exactly* the active's state — same digest, queue, quarantine set,
/// heartbeat round and active slot. This is the determinism contract that
/// makes promotion safe from any prefix of the log.
pub struct ReplConsistency;

impl Oracle for ReplConsistency {
    fn name(&self) -> &'static str {
        "repl_consistency"
    }

    fn check(&mut self, world: &World, _now: SimTime) -> Result<(), String> {
        let core = &world.mm_core;
        for (rank, replica) in world.mm_replicas.iter().enumerate().skip(1) {
            if world.mm_roles[rank] != MmRole::Standby || world.mm_failed[rank] {
                continue;
            }
            let s = &replica.state;
            if replica.applied > core.log_len {
                return Err(format!(
                    "standby {rank} applied {} records, active only logged {}",
                    replica.applied, core.log_len
                ));
            }
            if s.ticks > core.ticks {
                return Err(format!(
                    "standby {rank} tick mirror {} ahead of active {}",
                    s.ticks, core.ticks
                ));
            }
            if replica.applied == core.log_len {
                if s.digest != core.digest {
                    return Err(format!(
                        "standby {rank} applied the full log ({}) but digests differ: \
                         {:#x} ≠ {:#x}",
                        core.log_len, s.digest, core.digest
                    ));
                }
                if s.queue != core.queue
                    || s.detected_failed != core.detected_failed
                    || s.hb_round != core.hb_round
                    || s.active_slot != core.active_slot
                {
                    return Err(format!(
                        "standby {rank} digest matches but state diverged: \
                         queue {:?}/{:?} quarantine {:?}/{:?} round {}/{} slot {}/{}",
                        s.queue,
                        core.queue,
                        s.detected_failed,
                        core.detected_failed,
                        s.hb_round,
                        core.hb_round,
                        s.active_slot,
                        core.active_slot
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storm_core::prelude::*;
    use storm_core::Cluster;

    fn tiny() -> Cluster {
        Cluster::new(
            ClusterConfig::paper_cluster()
                .with_nodes(4)
                .with_seed(0xDE57),
        )
    }

    #[test]
    fn all_oracles_pass_on_a_clean_run() {
        let mut c = tiny();
        c.submit(JobSpec::new(AppSpec::do_nothing_mb(1), 4));
        let mut suite = standard_suite();
        for ms in [0u64, 5, 10, 20, 40] {
            c.run_until(SimTime::from_millis(ms));
            assert_eq!(check_all(&mut suite, c.world(), c.now()), None);
        }
    }

    #[test]
    fn job_accounting_catches_counter_skew() {
        let mut c = tiny();
        c.submit(JobSpec::new(AppSpec::do_nothing_mb(1), 4));
        c.run_until(SimTime::from_millis(40));
        c.with_world_mut(|w| w.stats.completed_jobs += 1);
        let mut suite = standard_suite();
        let v = check_all(&mut suite, c.world(), c.now()).expect("must fire");
        assert_eq!(v.oracle, "job_accounting");
    }

    #[test]
    fn matrix_consistency_catches_a_phantom_placement() {
        let mut c = tiny();
        c.submit(JobSpec::new(AppSpec::do_nothing_mb(1), 4));
        c.run_until(SimTime::from_millis(2));
        c.with_world_mut(|w| w.slot_jobs_add(0, JobId(999)));
        let mut suite = standard_suite();
        let v = check_all(&mut suite, c.world(), c.now()).expect("must fire");
        assert_eq!(v.oracle, "matrix_consistency");
    }

    #[test]
    fn quarantine_safety_catches_a_desynced_flag() {
        let mut c = tiny();
        c.with_world_mut(|w| w.nodes.set_quarantined(2, true));
        let mut suite = standard_suite();
        let v = check_all(&mut suite, c.world(), c.now()).expect("must fire");
        assert_eq!(v.oracle, "quarantine_safety");
    }

    #[test]
    fn caw_visibility_catches_a_torn_write() {
        use storm_mech::{CmpOp, NodeId, NodeSet};
        use storm_net::BackgroundLoad;
        let mut c = tiny();
        c.with_world_mut(|w| {
            w.mech.memory.enable_caw_audit();
            let var = w.mech.memory.alloc_var(0);
            w.mech.compare_and_write(
                SimTime::ZERO,
                &NodeSet::All(4),
                var,
                CmpOp::Ge,
                0,
                Some((var, 1)),
                BackgroundLoad::NONE,
            );
            w.mech.memory.poke(NodeId(2), var, 0);
        });
        let mut suite = standard_suite();
        let v = check_all(&mut suite, c.world(), c.now()).expect("must fire");
        assert_eq!(v.oracle, "caw_visibility");
    }

    #[test]
    fn single_active_mm_catches_a_dual_active() {
        let mut c = Cluster::new(
            ClusterConfig::paper_cluster()
                .with_nodes(4)
                .with_mm_standbys(1)
                .with_seed(0xDE57),
        );
        let mut suite = standard_suite();
        assert_eq!(check_all(&mut suite, c.world(), c.now()), None);
        c.with_world_mut(|w| w.mm_roles[1] = MmRole::Active);
        let v = check_all(&mut suite, c.world(), c.now()).expect("must fire");
        assert_eq!(v.oracle, "single_active_mm");
    }

    #[test]
    fn single_active_mm_catches_an_epoch_regression() {
        let mut c = Cluster::new(
            ClusterConfig::paper_cluster()
                .with_nodes(4)
                .with_mm_standbys(1),
        );
        let mut suite = standard_suite();
        c.with_world_mut(|w| w.mm_epoch = 3);
        assert_eq!(check_all(&mut suite, c.world(), c.now()), None);
        c.with_world_mut(|w| w.mm_epoch = 2);
        let v = check_all(&mut suite, c.world(), c.now()).expect("must fire");
        assert_eq!(v.oracle, "single_active_mm");
    }

    #[test]
    fn no_job_lost_catches_a_vanished_queue_entry() {
        let mut c = tiny();
        let mpl = c.world().cfg.mpl_max;
        let full = c.world().cfg.nodes * c.world().cfg.cpus_per_node;
        for _ in 0..=mpl {
            c.submit(JobSpec::new(AppSpec::SpinLoop, full));
        }
        c.run_until(SimTime::from_millis(5));
        assert!(
            !c.world().queue.is_empty(),
            "setup: a job must be waiting in the queue"
        );
        let mut suite = standard_suite();
        assert_eq!(check_all(&mut suite, c.world(), c.now()), None);
        c.with_world_mut(|w| w.queue.clear());
        let v = check_all(&mut suite, c.world(), c.now()).expect("must fire");
        assert_eq!(v.oracle, "no_job_lost");
    }

    #[test]
    fn repl_consistency_catches_a_skewed_replica() {
        let mut c = Cluster::new(
            ClusterConfig::paper_cluster()
                .with_nodes(4)
                .with_mm_standbys(1)
                .with_fault_detection(2),
        );
        c.submit(JobSpec::new(AppSpec::do_nothing_mb(1), 4));
        c.run_until(SimTime::from_millis(20));
        let mut suite = standard_suite();
        assert_eq!(check_all(&mut suite, c.world(), c.now()), None);
        // A replica that claims to be caught up but mirrors a different
        // queue is exactly the divergence the digest contract forbids.
        c.with_world_mut(|w| {
            let core = w.mm_core.clone();
            let r = &mut w.mm_replicas[1];
            r.applied = core.log_len;
            r.state = core;
            r.state.queue.push(JobId(999));
        });
        let v = check_all(&mut suite, c.world(), c.now()).expect("must fire");
        assert_eq!(v.oracle, "repl_consistency");
    }

    #[test]
    fn heartbeat_monotonic_catches_a_regression() {
        let mut c = Cluster::new(
            ClusterConfig::paper_cluster()
                .with_nodes(4)
                .with_fault_detection(2),
        );
        let mut suite = standard_suite();
        c.run_until(SimTime::from_millis(10));
        assert_eq!(check_all(&mut suite, c.world(), c.now()), None);
        c.with_world_mut(|w| w.hb_round -= 1);
        let v = check_all(&mut suite, c.world(), c.now()).expect("must fire");
        assert_eq!(v.oracle, "heartbeat_monotonic");
    }
}
