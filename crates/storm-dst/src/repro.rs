//! Repro artifacts: a failing (ideally shrunk) scenario, the violation it
//! produces, and the run digest — serialised as one self-contained JSON
//! document (`DST_repro_<name>.json`) that [`replay`] re-executes and
//! verifies byte-identically.

use crate::json::{self, num, Value};
use crate::oracle::Violation;
use crate::runner::{run_scenario_caught, RunOutcome};
use crate::scenario::Scenario;
use storm_sim::SimTime;

/// A parsed (or about-to-be-written) repro artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct Repro {
    /// The (shrunk) failing scenario.
    pub scenario: Scenario,
    /// The violation the scenario produces.
    pub violation: Violation,
    /// The failing run's trace digest.
    pub digest: u64,
    /// The scenario's [`Scenario::event_count`] at write time.
    pub event_count: usize,
}

impl Repro {
    /// Build an artifact from a failing run.
    pub fn from_run(scenario: &Scenario, outcome: &RunOutcome) -> Self {
        Repro {
            scenario: scenario.clone(),
            violation: outcome
                .violation
                .clone()
                .expect("repro needs a failing outcome"),
            digest: outcome.digest,
            event_count: scenario.event_count(),
        }
    }

    /// The artifact's conventional file name.
    pub fn file_name(&self) -> String {
        format!("DST_repro_{}.json", self.scenario.name)
    }

    /// Serialise to the self-contained JSON document.
    pub fn to_json_string(&self) -> String {
        json::render(&Value::Obj(vec![
            ("version".into(), num(1)),
            ("scenario".into(), self.scenario.to_json()),
            (
                "violation".into(),
                Value::Obj(vec![
                    ("oracle".into(), Value::Str(self.violation.oracle.clone())),
                    ("at_ns".into(), num(self.violation.at.as_nanos())),
                    ("detail".into(), Value::Str(self.violation.detail.clone())),
                ]),
            ),
            ("digest".into(), num(self.digest)),
            ("event_count".into(), num(self.event_count)),
        ]))
    }

    /// Parse an artifact document.
    pub fn from_json_str(text: &str) -> Result<Self, String> {
        let doc = json::parse(text)?;
        let version = doc.req_u64("version")?;
        if version != 1 {
            return Err(format!("unsupported artifact version {version}"));
        }
        let v = doc.req("violation")?;
        Ok(Repro {
            scenario: Scenario::from_json(doc.req("scenario")?)?,
            violation: Violation {
                oracle: v.req_str("oracle")?.to_string(),
                at: SimTime::from_nanos(v.req_u64("at_ns")?),
                detail: v.req_str("detail")?.to_string(),
            },
            digest: doc.req_u64("digest")?,
            event_count: doc.req_u64("event_count")? as usize,
        })
    }
}

/// What a replay established.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayReport {
    /// The replayed run's outcome.
    pub outcome: RunOutcome,
    /// Mismatches against the artifact (empty = faithful replay).
    pub mismatches: Vec<String>,
}

impl ReplayReport {
    /// Did the replay reproduce the artifact exactly?
    pub fn faithful(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Re-execute an artifact's scenario **twice** and verify both runs fire
/// the same oracle at the same instant with the same digest as recorded —
/// deterministic, byte-identical reproduction.
pub fn replay(repro: &Repro) -> ReplayReport {
    let first = run_scenario_caught(&repro.scenario);
    let second = run_scenario_caught(&repro.scenario);
    let mut mismatches = Vec::new();
    if first != second {
        mismatches.push(format!(
            "replay is not deterministic: {first:?} vs {second:?}"
        ));
    }
    match &first.violation {
        None => mismatches.push("replay produced no violation".into()),
        Some(v) => {
            if v.oracle != repro.violation.oracle {
                mismatches.push(format!(
                    "oracle mismatch: recorded {}, replayed {}",
                    repro.violation.oracle, v.oracle
                ));
            }
            if v.at != repro.violation.at {
                mismatches.push(format!(
                    "violation instant mismatch: recorded {}, replayed {}",
                    repro.violation.at, v.at
                ));
            }
        }
    }
    if first.digest != repro.digest {
        mismatches.push(format!(
            "digest mismatch: recorded {:#018x}, replayed {:#018x}",
            repro.digest, first.digest
        ));
    }
    ReplayReport {
        outcome: first,
        mismatches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Injection, InjectionKind};

    fn failing_repro() -> Repro {
        let s = Scenario::two_node_launch().with_injection(Injection {
            at_ms: 10,
            kind: InjectionKind::MatrixTear,
        });
        let out = run_scenario_caught(&s);
        assert!(out.failed());
        Repro::from_run(&s, &out)
    }

    #[test]
    fn artifact_round_trips_and_replays() {
        let repro = failing_repro();
        let text = repro.to_json_string();
        let back = Repro::from_json_str(&text).unwrap();
        assert_eq!(back, repro);
        assert_eq!(back.file_name(), "DST_repro_two-node-launch.json");
        let report = replay(&back);
        assert!(report.faithful(), "mismatches: {:?}", report.mismatches);
    }

    #[test]
    fn replay_detects_a_tampered_artifact() {
        let mut repro = failing_repro();
        repro.digest ^= 1;
        let report = replay(&repro);
        assert!(!report.faithful());
        assert!(report.mismatches[0].contains("digest"));
        let mut repro = failing_repro();
        repro.violation.oracle = "job_accounting".into();
        assert!(!replay(&repro).faithful());
    }

    #[test]
    fn rejects_unknown_versions() {
        let repro = failing_repro();
        let text = repro
            .to_json_string()
            .replacen("\"version\":1", "\"version\":9", 1);
        assert!(Repro::from_json_str(&text).is_err());
    }
}
