//! A minimal in-memory relational layer: [`Datum`] cells, [`Table`]s
//! with named columns, and the operators the monitoring surface needs —
//! filter, project, sort, limit, inner join, and count/sum/min/max
//! aggregates with optional grouping. No external dependencies, no
//! indices: tables are small point-in-time snapshots of cluster state,
//! so every operator is a straightforward scan with deterministic
//! (stable) ordering.

use std::cmp::Ordering;
use std::fmt;

use storm_sim::SimTime;

/// A single table cell.
#[derive(Debug, Clone, PartialEq)]
pub enum Datum {
    /// Absent value (e.g. a job that has not started yet).
    Null,
    /// Boolean flag.
    Bool(bool),
    /// Unsigned integer (ids, counts, sizes).
    U64(u64),
    /// Signed integer (gauges).
    I64(i64),
    /// Floating-point value.
    F64(f64),
    /// Text (names, states, roles).
    Str(String),
    /// A simulated instant; displayed in microseconds.
    Time(SimTime),
}

impl Datum {
    /// The cell as an unsigned integer, when it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Datum::U64(n) => Some(n),
            Datum::I64(n) => u64::try_from(n).ok(),
            _ => None,
        }
    }

    /// The cell as text, when it is text.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Datum::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The cell as an instant, when it is one.
    pub fn as_time(&self) -> Option<SimTime> {
        match *self {
            Datum::Time(t) => Some(t),
            _ => None,
        }
    }

    /// Numeric view for aggregation (integers widen to `i128`).
    fn as_int(&self) -> Option<i128> {
        match *self {
            Datum::U64(n) => Some(i128::from(n)),
            Datum::I64(n) => Some(i128::from(n)),
            Datum::Time(t) => Some(i128::from(t.as_nanos())),
            _ => None,
        }
    }

    /// Total order across all variants: Null < Bool < numbers < Str.
    /// Numbers (U64/I64/F64/Time) compare by value; instants compare in
    /// nanoseconds against integers.
    pub fn total_cmp(&self, other: &Datum) -> Ordering {
        fn rank(d: &Datum) -> u8 {
            match d {
                Datum::Null => 0,
                Datum::Bool(_) => 1,
                Datum::U64(_) | Datum::I64(_) | Datum::F64(_) | Datum::Time(_) => 2,
                Datum::Str(_) => 3,
            }
        }
        match (self, other) {
            (Datum::Bool(a), Datum::Bool(b)) => a.cmp(b),
            (Datum::Str(a), Datum::Str(b)) => a.cmp(b),
            (Datum::F64(a), b) => match b {
                Datum::F64(bf) => a.total_cmp(bf),
                _ => match b.as_int() {
                    Some(bi) => a.total_cmp(&(bi as f64)),
                    None => rank(self).cmp(&rank(other)),
                },
            },
            (a, Datum::F64(bf)) => match a.as_int() {
                Some(ai) => (ai as f64).total_cmp(bf),
                None => rank(self).cmp(&rank(other)),
            },
            (a, b) => match (a.as_int(), b.as_int()) {
                (Some(ai), Some(bi)) => ai.cmp(&bi),
                _ => rank(self).cmp(&rank(other)),
            },
        }
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Null => write!(f, "-"),
            Datum::Bool(b) => write!(f, "{b}"),
            Datum::U64(n) => write!(f, "{n}"),
            Datum::I64(n) => write!(f, "{n}"),
            Datum::F64(x) => write!(f, "{x:.3}"),
            Datum::Str(s) => write!(f, "{s}"),
            Datum::Time(t) => write!(f, "{}us", t.as_nanos() / 1_000),
        }
    }
}

/// An aggregate function over one column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Agg {
    /// Number of rows (ignores the column's values, counts non-`Null`).
    Count,
    /// Sum of integer values (`Null` cells skipped).
    Sum,
    /// Minimum by [`Datum::total_cmp`] (`Null` cells skipped).
    Min,
    /// Maximum by [`Datum::total_cmp`] (`Null` cells skipped).
    Max,
}

impl Agg {
    fn label(self, col: &str) -> String {
        match self {
            Agg::Count => format!("count({col})"),
            Agg::Sum => format!("sum({col})"),
            Agg::Min => format!("min({col})"),
            Agg::Max => format!("max({col})"),
        }
    }

    fn apply(self, cells: &[&Datum]) -> Datum {
        let present: Vec<&&Datum> = cells.iter().filter(|d| !matches!(d, Datum::Null)).collect();
        match self {
            Agg::Count => Datum::U64(present.len() as u64),
            Agg::Sum => {
                let mut total: i128 = 0;
                for d in &present {
                    match d.as_int() {
                        Some(n) => total += n,
                        None => return Datum::Null,
                    }
                }
                if total >= 0 {
                    match u64::try_from(total) {
                        Ok(n) => Datum::U64(n),
                        Err(_) => Datum::F64(total as f64),
                    }
                } else {
                    match i64::try_from(total) {
                        Ok(n) => Datum::I64(n),
                        Err(_) => Datum::F64(total as f64),
                    }
                }
            }
            Agg::Min => present
                .iter()
                .min_by(|a, b| a.total_cmp(b))
                .map(|d| (**d).clone())
                .unwrap_or(Datum::Null),
            Agg::Max => present
                .iter()
                .max_by(|a, b| a.total_cmp(b))
                .map(|d| (**d).clone())
                .unwrap_or(Datum::Null),
        }
    }
}

/// A borrowed row with named-column access, handed to filter predicates.
#[derive(Debug, Clone, Copy)]
pub struct Row<'a> {
    cols: &'a [String],
    cells: &'a [Datum],
}

impl<'a> Row<'a> {
    /// The cell under `col`; [`Datum::Null`] for unknown columns (so
    /// predicates stay infallible).
    pub fn get(&self, col: &str) -> &'a Datum {
        static NULL: Datum = Datum::Null;
        match self.cols.iter().position(|c| c == col) {
            Some(ix) => &self.cells[ix],
            None => &NULL,
        }
    }

    /// Shorthand: the cell under `col` as a `u64` (0 when absent).
    pub fn u64(&self, col: &str) -> u64 {
        self.get(col).as_u64().unwrap_or(0)
    }

    /// Shorthand: the cell under `col` as text ("" when absent).
    pub fn str(&self, col: &str) -> &'a str {
        self.get(col).as_str().unwrap_or("")
    }
}

/// A named table: a column list plus rows of [`Datum`] cells, all rows
/// the same width. Operators return new tables (snapshots are cheap).
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    name: String,
    cols: Vec<String>,
    rows: Vec<Vec<Datum>>,
}

impl Table {
    /// An empty table with the given column names.
    pub fn new(name: impl Into<String>, cols: &[&str]) -> Self {
        Table {
            name: name.into(),
            cols: cols.iter().map(|c| (*c).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row. Panics if the width does not match the schema —
    /// extractors are the only writers, and a mismatch is a bug.
    pub fn push(&mut self, row: Vec<Datum>) {
        assert_eq!(row.len(), self.cols.len(), "row width != column count");
        self.rows.push(row);
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Column names, in order.
    pub fn columns(&self) -> &[String] {
        &self.cols
    }

    /// The rows, in order.
    pub fn rows(&self) -> impl Iterator<Item = Row<'_>> {
        self.rows.iter().map(|cells| Row {
            cols: &self.cols,
            cells,
        })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn col_ix(&self, col: &str) -> Result<usize, String> {
        self.cols
            .iter()
            .position(|c| c == col)
            .ok_or_else(|| format!("table {:?} has no column {col:?}", self.name))
    }

    /// Rows satisfying the predicate, in the original order.
    pub fn filter(&self, pred: impl Fn(Row<'_>) -> bool) -> Table {
        Table {
            name: self.name.clone(),
            cols: self.cols.clone(),
            rows: self
                .rows
                .iter()
                .filter(|cells| {
                    pred(Row {
                        cols: &self.cols,
                        cells,
                    })
                })
                .cloned()
                .collect(),
        }
    }

    /// Projection: keep only the named columns, in the given order.
    pub fn select(&self, cols: &[&str]) -> Result<Table, String> {
        let ixs: Vec<usize> = cols
            .iter()
            .map(|c| self.col_ix(c))
            .collect::<Result<_, _>>()?;
        Ok(Table {
            name: self.name.clone(),
            cols: cols.iter().map(|c| (*c).to_string()).collect(),
            rows: self
                .rows
                .iter()
                .map(|r| ixs.iter().map(|&ix| r[ix].clone()).collect())
                .collect(),
        })
    }

    /// Stable sort by one column ([`Datum::total_cmp`]); `descending`
    /// flips the order. Equal keys keep their original relative order,
    /// so sorted output is deterministic.
    pub fn sort_by(&self, col: &str, descending: bool) -> Result<Table, String> {
        let ix = self.col_ix(col)?;
        let mut rows = self.rows.clone();
        rows.sort_by(|a, b| {
            let ord = a[ix].total_cmp(&b[ix]);
            if descending {
                ord.reverse()
            } else {
                ord
            }
        });
        Ok(Table {
            name: self.name.clone(),
            cols: self.cols.clone(),
            rows,
        })
    }

    /// The first `n` rows.
    pub fn limit(&self, n: usize) -> Table {
        Table {
            name: self.name.clone(),
            cols: self.cols.clone(),
            rows: self.rows.iter().take(n).cloned().collect(),
        }
    }

    /// Inner join on `self.left_col == other.right_col` (nested-loop;
    /// tables are snapshots, not databases). Output columns are
    /// `left.name.col` / `right.name.col` prefixed to stay unambiguous,
    /// rows in left-major original order.
    pub fn join(&self, other: &Table, left_col: &str, right_col: &str) -> Result<Table, String> {
        let lix = self.col_ix(left_col)?;
        let rix = other.col_ix(right_col)?;
        let mut cols: Vec<String> = self
            .cols
            .iter()
            .map(|c| format!("{}.{}", self.name, c))
            .collect();
        cols.extend(other.cols.iter().map(|c| format!("{}.{}", other.name, c)));
        let mut rows = Vec::new();
        for l in &self.rows {
            for r in &other.rows {
                if l[lix] == r[rix] {
                    let mut row = l.clone();
                    row.extend(r.iter().cloned());
                    rows.push(row);
                }
            }
        }
        Ok(Table {
            name: format!("{}x{}", self.name, other.name),
            cols,
            rows,
        })
    }

    /// A whole-table aggregate over one column.
    pub fn aggregate(&self, agg: Agg, col: &str) -> Result<Datum, String> {
        let ix = self.col_ix(col)?;
        let cells: Vec<&Datum> = self.rows.iter().map(|r| &r[ix]).collect();
        Ok(agg.apply(&cells))
    }

    /// Group rows by `key_col` and compute each `(agg, col)` pair per
    /// group. Output: one row per distinct key (sorted ascending by
    /// [`Datum::total_cmp`], so output is deterministic), columns
    /// `[key_col, "agg(col)", ...]`.
    pub fn group_by(&self, key_col: &str, aggs: &[(Agg, &str)]) -> Result<Table, String> {
        let kix = self.col_ix(key_col)?;
        let aixs: Vec<usize> = aggs
            .iter()
            .map(|(_, c)| self.col_ix(c))
            .collect::<Result<_, _>>()?;
        let mut keys: Vec<&Datum> = Vec::new();
        for r in &self.rows {
            if !keys.contains(&&r[kix]) {
                keys.push(&r[kix]);
            }
        }
        keys.sort_by(|a, b| a.total_cmp(b));
        let mut cols = vec![key_col.to_string()];
        cols.extend(aggs.iter().map(|(a, c)| a.label(c)));
        let mut rows = Vec::new();
        for key in keys {
            let members: Vec<&Vec<Datum>> = self.rows.iter().filter(|r| &r[kix] == key).collect();
            let mut row = vec![key.clone()];
            for ((agg, _), &aix) in aggs.iter().zip(&aixs) {
                let cells: Vec<&Datum> = members.iter().map(|r| &r[aix]).collect();
                row.push(agg.apply(&cells));
            }
            rows.push(row);
        }
        Ok(Table {
            name: format!("{}_by_{key_col}", self.name),
            cols,
            rows,
        })
    }

    /// A fixed-width text rendering (header, rule, rows) for terminal
    /// display.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.cols.iter().map(|c| c.len()).collect();
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|d| d.to_string()).collect())
            .collect();
        for row in &cells {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let header: Vec<String> = self
            .cols
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&rule.join("  "));
        out.push('\n');
        for row in &cells {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> Table {
        let mut t = Table::new("t", &["id", "group", "v"]);
        t.push(vec![Datum::U64(1), Datum::Str("a".into()), Datum::U64(10)]);
        t.push(vec![Datum::U64(2), Datum::Str("b".into()), Datum::U64(30)]);
        t.push(vec![Datum::U64(3), Datum::Str("a".into()), Datum::U64(20)]);
        t.push(vec![Datum::U64(4), Datum::Str("b".into()), Datum::Null]);
        t
    }

    #[test]
    fn filter_select_sort_limit() {
        let t = fixture();
        let f = t.filter(|r| r.u64("v") >= 20);
        assert_eq!(f.len(), 2);
        let s = t.sort_by("v", true).unwrap();
        let top: Vec<u64> = s.limit(2).rows().map(|r| r.u64("id")).collect();
        assert_eq!(top, vec![2, 3]);
        let p = t.select(&["v", "id"]).unwrap();
        assert_eq!(p.columns(), &["v".to_string(), "id".to_string()]);
        assert!(t.select(&["nope"]).is_err());
        assert!(t.sort_by("nope", false).is_err());
    }

    #[test]
    fn aggregates_and_grouping() {
        let t = fixture();
        assert_eq!(t.aggregate(Agg::Sum, "v").unwrap(), Datum::U64(60));
        assert_eq!(t.aggregate(Agg::Count, "v").unwrap(), Datum::U64(3));
        assert_eq!(t.aggregate(Agg::Min, "v").unwrap(), Datum::U64(10));
        assert_eq!(t.aggregate(Agg::Max, "v").unwrap(), Datum::U64(30));
        let g = t
            .group_by("group", &[(Agg::Count, "id"), (Agg::Sum, "v")])
            .unwrap();
        assert_eq!(g.len(), 2);
        let a: Vec<(String, u64, u64)> = g
            .rows()
            .map(|r| {
                (
                    r.str("group").to_string(),
                    r.u64("count(id)"),
                    r.u64("sum(v)"),
                )
            })
            .collect();
        assert_eq!(a, vec![("a".to_string(), 2, 30), ("b".to_string(), 2, 30)]);
    }

    #[test]
    fn join_prefixes_columns() {
        let t = fixture();
        let mut names = Table::new("names", &["id", "label"]);
        names.push(vec![Datum::U64(1), Datum::Str("one".into())]);
        names.push(vec![Datum::U64(3), Datum::Str("three".into())]);
        let j = t.join(&names, "id", "id").unwrap();
        assert_eq!(j.len(), 2);
        assert_eq!(
            j.rows()
                .map(|r| r.str("names.label").to_string())
                .collect::<Vec<_>>(),
            vec!["one".to_string(), "three".to_string()]
        );
        assert_eq!(j.rows().next().unwrap().u64("t.id"), 1);
    }

    #[test]
    fn render_is_aligned() {
        let t = fixture();
        let r = t.render();
        assert!(r.lines().count() == 2 + t.len());
        assert!(r.contains("group"));
    }
}
