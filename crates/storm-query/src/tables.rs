//! Extractors: point-in-time relational views over a running
//! [`Cluster`]. Each function scans the world once and returns a
//! [`Table`]; rows are ordered by primary id so two snapshots of the
//! same state are identical.

use storm_core::cluster::Cluster;
use storm_core::replica::MmRole;

use crate::table::{Datum, Table};

fn t(v: Option<storm_sim::SimTime>) -> Datum {
    match v {
        Some(x) => Datum::Time(x),
        None => Datum::Null,
    }
}

/// The `jobs` table: one row per job ever submitted.
///
/// Columns: `job`, `name`, `app`, `state`, `ranks`, `attempt`, `retries`,
/// `slot`, `node_start`, `node_end` (allocation, `Null` while queued),
/// `submitted`, `started`, `completed` (instants, `Null` until reached),
/// and `wait_us` (queue wait: transfer start − submission, the paper's
/// time-to-first-resource).
pub fn jobs(c: &Cluster) -> Table {
    let mut out = Table::new(
        "jobs",
        &[
            "job",
            "name",
            "app",
            "state",
            "ranks",
            "attempt",
            "retries",
            "slot",
            "node_start",
            "node_end",
            "submitted",
            "started",
            "completed",
            "wait_us",
        ],
    );
    for j in &c.world().jobs {
        let (slot, start, end) = match &j.allocation {
            Some(a) => (
                Datum::U64(a.slot as u64),
                Datum::U64(u64::from(a.nodes.start)),
                Datum::U64(u64::from(a.nodes.end)),
            ),
            None => (Datum::Null, Datum::Null, Datum::Null),
        };
        let wait = match (j.metrics.submitted, j.metrics.transfer_start) {
            (Some(sub), Some(ts)) => Datum::U64(ts.since(sub).as_nanos() / 1_000),
            _ => Datum::Null,
        };
        out.push(vec![
            Datum::U64(u64::from(j.id.0)),
            Datum::Str(j.spec.name.clone()),
            Datum::Str(j.spec.app.name().to_string()),
            Datum::Str(format!("{:?}", j.state)),
            Datum::U64(u64::from(j.spec.ranks)),
            Datum::U64(u64::from(j.attempt)),
            Datum::U64(u64::from(j.retries)),
            slot,
            start,
            end,
            t(j.metrics.submitted),
            t(j.metrics.started),
            t(j.metrics.completed),
            wait,
        ]);
    }
    out
}

/// The `nodes` table: one row per node.
///
/// Columns: `node`, `failed`, `failed_at` (`Null` while healthy),
/// `quarantined`.
pub fn nodes(c: &Cluster) -> Table {
    let w = c.world();
    let mut out = Table::new("nodes", &["node", "failed", "failed_at", "quarantined"]);
    for n in 0..w.cfg.nodes {
        out.push(vec![
            Datum::U64(u64::from(n)),
            Datum::Bool(w.nodes.is_failed(n)),
            t(w.nodes.failed_since(n)),
            Datum::Bool(w.nodes.is_quarantined(n)),
        ]);
    }
    out
}

/// The `slots` table: one row per Ousterhout-matrix time slot.
///
/// Columns: `slot`, `active` (the currently scheduled slot), `jobs`,
/// `used_nodes` (node-columns occupied by allocations), `usable_nodes`
/// (nodes the slot's buddy allocator can still place on).
pub fn slots(c: &Cluster) -> Table {
    let w = c.world();
    let m = w.matrix.export_state();
    let mut out = Table::new(
        "slots",
        &["slot", "active", "jobs", "used_nodes", "usable_nodes"],
    );
    for (ix, slot) in m.slots.iter().enumerate() {
        let jobs_here = w.matrix.jobs_in_slot(ix);
        let used: u64 = jobs_here
            .iter()
            .map(|(_, r)| u64::from(r.end - r.start))
            .sum();
        out.push(vec![
            Datum::U64(ix as u64),
            Datum::Bool(ix == w.active_slot),
            Datum::U64(jobs_here.len() as u64),
            Datum::U64(used),
            Datum::U64(u64::from(slot.buddy.usable)),
        ]);
    }
    out
}

/// The `allocs` table: one row per live allocation (a job's buddy block
/// in a slot).
///
/// Columns: `slot`, `job`, `node_start`, `node_end`, `width`.
pub fn allocs(c: &Cluster) -> Table {
    let w = c.world();
    let mut out = Table::new(
        "allocs",
        &["slot", "job", "node_start", "node_end", "width"],
    );
    for slot in 0..w.matrix.slot_count() {
        for (job, range) in w.matrix.jobs_in_slot(slot) {
            out.push(vec![
                Datum::U64(slot as u64),
                Datum::U64(u64::from(job.0)),
                Datum::U64(u64::from(range.start)),
                Datum::U64(u64::from(range.end)),
                Datum::U64(u64::from(range.end - range.start)),
            ]);
        }
    }
    out
}

/// The `replicas` table: one row per Machine Manager replica.
///
/// Columns: `rank`, `role` (`active`/`standby`/`failed`), `active` (is
/// this the rank the cluster currently routes to), `epoch`, `applied`
/// (log records applied by a standby), `failed_at`.
pub fn replicas(c: &Cluster) -> Table {
    let w = c.world();
    let mut out = Table::new(
        "replicas",
        &["rank", "role", "active", "epoch", "applied", "failed_at"],
    );
    for (rank, role) in w.mm_roles.iter().enumerate() {
        let role_str = match role {
            MmRole::Active => "active",
            MmRole::Standby => "standby",
            MmRole::Failed => "failed",
        };
        out.push(vec![
            Datum::U64(rank as u64),
            Datum::Str(role_str.to_string()),
            Datum::Bool(rank as u32 == w.mm_active_rank),
            Datum::U64(w.mm_epoch),
            Datum::U64(w.mm_replicas.get(rank).map_or(0, |r| r.applied)),
            t(w.mm_failed_at.get(rank).copied().flatten()),
        ]);
    }
    out
}
