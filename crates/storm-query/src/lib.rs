//! Queryable cluster state for STORM (the paper's §4 "cluster
//! monitoring" use case, made first-class).
//!
//! Two surfaces:
//!
//! - **Relational views** ([`tables`]): point-in-time [`Table`]s over a
//!   running [`Cluster`](storm_core::cluster::Cluster) — `jobs`,
//!   `nodes`, `slots`, `allocs`, `replicas` — with filters, projections,
//!   stable sorts, inner joins on job/node ids, and
//!   count/sum/min/max/group-by aggregates ([`table`]). No external
//!   dependencies; every operator is a deterministic scan.
//! - **Continuous queries** (re-exported from
//!   [`storm_core::cq`]): named [`Condition`]s registered on the
//!   cluster and evaluated by the active Machine Manager at every
//!   timeslice boundary, firing bounded [`Alert`] records and labelled
//!   `cq.alerts` telemetry counters. Registration lives in the core
//!   (the MM hook needs it); this crate re-exports the types so
//!   monitoring code has one import surface.
//!
//! Snapshots read simulation state but never mutate it; taking a table
//! between runs cannot perturb a deterministic run. Checkpoints
//! ([`storm_core::checkpoint`]) serialize the continuous-query registry,
//! so a restored run raises exactly the alerts the original would have.
//!
//! (See `examples/cluster_monitoring.rs` at the workspace root for a
//! full live-query walkthrough: top-N jobs by wait time, per-state
//! aggregates, a jobs×allocs join, and alert-driven quarantine
//! monitoring.)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod table;
pub mod tables;

pub use storm_core::cq::{
    Alert, ClusterSample, Condition, ContinuousQueries, ContinuousQuery, DEFAULT_ALERT_CAP,
};
pub use table::{Agg, Datum, Row, Table};
pub use tables::{allocs, jobs, nodes, replicas, slots};
