//! The relational views against a real running cluster: extractor
//! schemas, join/aggregate behaviour over live state, and the
//! continuous-query surface end to end (registration → boundary
//! evaluation → bounded alert log → telemetry counter), including the
//! zero-perturbation guarantee: registering queries must not change the
//! simulation's interleaving, trace, or results.

use storm_apps::AppSpec;
use storm_core::cluster::Cluster;
use storm_core::config::ClusterConfig;
use storm_core::job::JobSpec;
use storm_query::{allocs, jobs, nodes, replicas, slots, Agg, Condition, Datum};
use storm_sim::SimTime;

fn busy_cluster() -> Cluster {
    let cfg = ClusterConfig::paper_cluster()
        .with_seed(11)
        .with_telemetry(true);
    let mut c = Cluster::new(cfg);
    c.submit(JobSpec::new(AppSpec::do_nothing_mb(4), 64).named("alpha"));
    c.submit_at(
        SimTime::from_millis(5),
        JobSpec::new(AppSpec::do_nothing_mb(2), 32).named("beta"),
    );
    c.submit_at(
        SimTime::from_millis(8),
        JobSpec::new(AppSpec::do_nothing_mb(1), 16).named("gamma"),
    );
    c.run_until(SimTime::from_millis(60));
    c
}

#[test]
fn jobs_table_tracks_submissions_and_waits() {
    let c = busy_cluster();
    let j = jobs(&c);
    assert_eq!(j.len(), 3);
    let names: Vec<String> = j.rows().map(|r| r.str("name").to_string()).collect();
    assert_eq!(names, vec!["alpha", "beta", "gamma"]);
    // Top jobs by queue wait: later submissions waited behind the first
    // transfer, so every wait is defined once transfer started.
    let by_wait = j.sort_by("wait_us", true).unwrap().limit(2);
    assert_eq!(by_wait.len(), 2);
    // Aggregates over live state.
    let total_ranks = j.aggregate(Agg::Sum, "ranks").unwrap();
    assert_eq!(total_ranks, Datum::U64(64 + 32 + 16));
    let per_state = j.group_by("state", &[(Agg::Count, "job")]).unwrap();
    let counted: u64 = per_state.rows().map(|r| r.u64("count(job)")).sum();
    assert_eq!(counted, 3);
}

#[test]
fn nodes_and_replicas_reflect_layout_and_health() {
    let mut c = busy_cluster();
    let n = nodes(&c);
    assert_eq!(n.len(), c.world().cfg.nodes as usize);
    assert!(n.rows().all(|r| r.get("failed") == &Datum::Bool(false)));
    c.fail_node_at(SimTime::from_millis(61), 3);
    c.run_until(SimTime::from_millis(70));
    let n = nodes(&c);
    let failed = n.filter(|r| r.get("failed") == &Datum::Bool(true));
    assert_eq!(failed.len(), 1);
    assert_eq!(failed.rows().next().unwrap().u64("node"), 3);
    let reps = replicas(&c);
    assert_eq!(reps.len(), 1);
    let active = reps.rows().next().unwrap();
    assert_eq!(active.str("role"), "active");
    assert_eq!(active.get("active"), &Datum::Bool(true));
}

#[test]
fn allocs_join_jobs_on_job_id() {
    let c = busy_cluster();
    let a = allocs(&c);
    assert!(!a.is_empty(), "mid-run cluster must have live allocations");
    let joined = a.join(&jobs(&c), "job", "job").unwrap();
    assert_eq!(joined.len(), a.len(), "every allocation joins its job");
    for r in joined.rows() {
        // The matrix block and the job record agree on placement.
        assert_eq!(r.u64("allocs.node_start"), r.u64("jobs.node_start"));
        assert_eq!(r.u64("allocs.node_end"), r.u64("jobs.node_end"));
    }
    let s = slots(&c);
    assert!(!s.is_empty());
    let active: Vec<bool> = s
        .rows()
        .map(|r| r.get("active") == &Datum::Bool(true))
        .collect();
    assert_eq!(active.iter().filter(|&&x| x).count(), 1);
    // Slot occupancy from the slots table matches the allocs table.
    let widths = a.group_by("slot", &[(Agg::Sum, "width")]).unwrap();
    for g in widths.rows() {
        let slot = g.u64("slot");
        let from_slots = s
            .filter(|r| r.u64("slot") == slot)
            .rows()
            .next()
            .unwrap()
            .u64("used_nodes");
        assert_eq!(g.u64("sum(width)"), from_slots);
    }
}

#[test]
fn continuous_queries_fire_alerts_without_perturbing_the_run() {
    let run = |with_queries: bool| {
        let cfg = ClusterConfig::paper_cluster()
            .with_seed(23)
            .with_telemetry(true)
            .with_fault_detection(4);
        let mut c = Cluster::new(cfg);
        c.enable_tracing();
        if with_queries {
            c.register_query("node-health", Condition::QuarantinedAbove(0));
            c.register_query("backlog", Condition::QueueDepthGrowingFor(2));
        }
        c.submit(JobSpec::new(AppSpec::do_nothing_mb(4), 64));
        c.fail_node_at(SimTime::from_millis(30), 7);
        c.run_until(SimTime::from_millis(400));
        c
    };
    let plain = run(false);
    let watched = run(true);
    // Alerts are observations: the simulation itself is untouched.
    assert_eq!(
        plain.interleaving_digest(),
        watched.interleaving_digest(),
        "registering queries must not perturb the interleaving"
    );
    assert_eq!(plain.trace(), watched.trace());
    assert!(plain.alerts().is_empty());
    // The failed node is quarantined at detection, so the health query
    // fired; the alert log and firing counters recorded it.
    let alerts = watched.alerts();
    assert!(!alerts.is_empty(), "quarantine must raise alerts");
    assert!(alerts.iter().all(|a| a.query == "node-health"));
    assert!(alerts.iter().all(|a| a.observed >= 1));
    let q = &watched.continuous_queries().queries()[0];
    assert_eq!(q.firings, alerts.len() as u64);
    // ... and the labelled telemetry counter matches the log.
    let snap = watched.metrics_snapshot();
    let fired: u64 = snap
        .entries()
        .iter()
        .filter(|(k, _)| k.name == "cq.alerts")
        .map(|(_, v)| match v {
            storm_telemetry::MetricValue::Counter(n) => *n,
            _ => 0,
        })
        .sum();
    assert_eq!(fired, alerts.len() as u64);
    // Same-seed replays agree alert-for-alert.
    let replay = run(true);
    assert_eq!(replay.alerts(), watched.alerts());
}
