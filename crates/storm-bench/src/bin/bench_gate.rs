//! Bench-regression gate: compare a freshly produced `BENCH_simcore.json`
//! against a committed baseline and fail (exit 1) when simulator-core
//! throughput regresses.
//!
//! Usage: `bench_gate <baseline.json> <current.json>`
//!
//! For every `(nodes, group_delivery)` row present in both files the gate
//! compares `events_per_sec`; the pass bar is applied at the **largest
//! common node count** (4096 on a full run, 256 under
//! `STORM_BENCH_SMOKE=1`), where per-event cost dominates and wall-clock
//! noise is smallest relative to the run length. A row fails when current
//! throughput drops more than the tolerance below baseline
//! (`STORM_BENCH_GATE_TOLERANCE`, default `0.15`). Smaller rows are
//! reported but advisory — sub-second runs on shared CI runners are too
//! noisy to gate on.
//!
//! The artifacts are the hand-rolled JSON the benches emit (the repo
//! vendors no serde); rows are one object per line, which is what this
//! parser leans on.

#![forbid(unsafe_code)]

use std::process::ExitCode;

/// One parsed throughput row.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Row {
    nodes: u64,
    group: bool,
    events_per_sec: f64,
}

/// Pull `"key": <number>` out of a row line.
fn field_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Pull `"key": true|false` out of a row line.
fn field_bool(line: &str, key: &str) -> Option<bool> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

fn parse_rows(contents: &str) -> Vec<Row> {
    contents
        .lines()
        .filter_map(|line| {
            Some(Row {
                nodes: field_num(line, "nodes")? as u64,
                group: field_bool(line, "group_delivery")?,
                events_per_sec: field_num(line, "events_per_sec")?,
            })
        })
        .collect()
}

fn load_rows(path: &str) -> Vec<Row> {
    let contents =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("bench_gate: read {path}: {e}"));
    let rows = parse_rows(&contents);
    assert!(!rows.is_empty(), "bench_gate: no throughput rows in {path}");
    rows
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.len() != 3 {
        eprintln!("usage: bench_gate <baseline.json> <current.json>");
        return ExitCode::FAILURE;
    }
    let tolerance: f64 = std::env::var("STORM_BENCH_GATE_TOLERANCE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.15);
    let baseline = load_rows(&args[1]);
    let current = load_rows(&args[2]);

    let gate_nodes = baseline
        .iter()
        .filter(|b| current.iter().any(|c| c.nodes == b.nodes))
        .map(|b| b.nodes)
        .max()
        .expect("bench_gate: no common node count between baseline and current");

    println!(
        "bench_gate: tolerance {:.0}% | gating at {} nodes",
        tolerance * 100.0,
        gate_nodes
    );
    println!(
        "{:>6} {:>8} {:>14} {:>14} {:>8}  verdict",
        "nodes", "mode", "baseline ev/s", "current ev/s", "ratio"
    );
    let mut failed = false;
    for b in &baseline {
        let Some(c) = current
            .iter()
            .find(|c| c.nodes == b.nodes && c.group == b.group)
        else {
            continue;
        };
        let ratio = c.events_per_sec / b.events_per_sec;
        let gated = b.nodes == gate_nodes;
        let ok = ratio >= 1.0 - tolerance;
        let verdict = match (gated, ok) {
            (true, true) => "ok",
            (true, false) => {
                failed = true;
                "REGRESSION"
            }
            (false, true) => "ok (advisory)",
            (false, false) => "slow (advisory)",
        };
        println!(
            "{:>6} {:>8} {:>14.0} {:>14.0} {:>7.2}x  {}",
            b.nodes,
            if b.group { "group" } else { "unicast" },
            b.events_per_sec,
            c.events_per_sec,
            ratio,
            verdict
        );
    }
    if failed {
        println!("bench_gate: FAIL — events/sec regressed beyond tolerance");
        ExitCode::FAILURE
    } else {
        println!("bench_gate: pass");
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "bench": "simcore",
  "rows": [
    {"nodes": 64, "group_delivery": false, "events_per_sec": 1000000.0, "events_per_timeslice": 9.1},
    {"nodes": 64, "group_delivery": true, "events_per_sec": 2000000.0, "events_per_timeslice": 4.2},
    {"nodes": 4096, "group_delivery": false, "events_per_sec": 4235481.0, "events_per_timeslice": 700.0}
  ]
}"#;

    #[test]
    fn rows_parse_from_the_bench_artifact_shape() {
        let rows = parse_rows(SAMPLE);
        assert_eq!(rows.len(), 3);
        assert_eq!(
            rows[0],
            Row {
                nodes: 64,
                group: false,
                events_per_sec: 1_000_000.0
            }
        );
        assert!(rows[1].group);
        assert_eq!(rows[2].nodes, 4096);
        assert!((rows[2].events_per_sec - 4_235_481.0).abs() < 1e-9);
    }

    #[test]
    fn non_row_lines_are_ignored() {
        assert!(parse_rows("{\n  \"bench\": \"simcore\",\n  \"rows\": []\n}").is_empty());
    }
}
