//! # storm-bench — the experiment harness
//!
//! One bench target per table and figure of the paper's evaluation (run
//! with `cargo bench -p storm-bench`, or a single one with e.g.
//! `cargo bench -p storm-bench --bench fig2_launch_unloaded`). Each target
//! prints the same rows/series the paper reports, next to the paper's own
//! numbers where the paper states them, and exits non-zero if the
//! reproduced *shape* deviates (who wins, by roughly what factor, where
//! crossovers fall).
//!
//! This crate's library half holds the shared harness: repetition/statistic
//! helpers matching the paper's methodology (mean of 3–20 repetitions;
//! minimum for the §3.2 application runs), a parallel sweep driver, and
//! paper-vs-measured comparison rendering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use storm_sim::stats::Summary;

/// One paper-vs-measured comparison line.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Row label (e.g. "12 MB, 256 PEs, send").
    pub label: String,
    /// The paper's reported value (None when the paper gives no number).
    pub paper: Option<f64>,
    /// Our measured/modelled value.
    pub measured: f64,
    /// Unit for display.
    pub unit: &'static str,
}

impl Comparison {
    /// Build a comparison row.
    pub fn new(
        label: impl Into<String>,
        paper: Option<f64>,
        measured: f64,
        unit: &'static str,
    ) -> Self {
        Comparison {
            label: label.into(),
            paper,
            measured,
            unit,
        }
    }

    /// measured / paper, when the paper states a value.
    pub fn ratio(&self) -> Option<f64> {
        self.paper.map(|p| self.measured / p)
    }
}

/// Render a block of comparisons as an aligned table.
pub fn render_comparisons(title: &str, rows: &[Comparison]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "== {title}");
    let _ = writeln!(
        out,
        "{:<44} {:>12} {:>12} {:>8}",
        "quantity", "paper", "measured", "ratio"
    );
    for r in rows {
        let paper = match r.paper {
            Some(p) => format!("{p:.3} {}", r.unit),
            None => "-".to_string(),
        };
        let ratio = match r.ratio() {
            Some(x) => format!("{x:.2}x"),
            None => "-".to_string(),
        };
        let _ = writeln!(
            out,
            "{:<44} {:>12} {:>12} {:>8}",
            r.label,
            paper,
            format!("{:.3} {}", r.measured, r.unit),
            ratio
        );
    }
    out
}

/// Run `reps` repetitions of an experiment with distinct seeds, returning
/// the summary (the paper runs each experiment 3–20 times, §3).
pub fn repeat(reps: u64, base_seed: u64, mut f: impl FnMut(u64) -> f64) -> Summary {
    let mut s = Summary::new();
    for i in 0..reps {
        s.push(f(base_seed.wrapping_add(i).wrapping_mul(0x9E37_79B9)));
    }
    s
}

/// Derive an independent seed for sweep configuration `index` from a base
/// seed (a splitmix64 finalising step). Every configuration gets its own
/// stream regardless of which worker thread runs it or in what order, so
/// parallel sweeps reproduce serial ones bit for bit.
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The exact worker count [`parallel_sweep`] uses for `n_configs`
/// configurations: `available_parallelism` capped by the configuration
/// count, falling back to **1** (a serial sweep) when the runtime cannot
/// report core counts. Benches must report this value instead of
/// re-deriving `available_parallelism` themselves — the two used to
/// disagree on fallback, so an artifact could claim a parallel sweep
/// (or silently record `1`) while the driver did the opposite.
pub fn sweep_workers(n_configs: usize) -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n_configs.max(1))
}

/// Run independent experiment configurations in parallel across threads
/// (each simulation is single-threaded and deterministic; the sweep across
/// configurations is embarrassingly parallel). The worker count is exactly
/// [`sweep_workers`]`(configs.len())`.
pub fn parallel_sweep<C, R>(configs: Vec<C>, f: impl Fn(&C) -> R + Sync) -> Vec<R>
where
    C: Send + Sync,
    R: Send,
{
    let n = configs.len();
    let threads = sweep_workers(n);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let done = std::sync::Mutex::new(Vec::<(usize, R)>::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&configs[i]);
                done.lock().expect("sweep lock").push((i, r));
            });
        }
    });
    let mut pairs = done.into_inner().expect("sweep lock");
    pairs.sort_by_key(|&(i, _)| i);
    assert_eq!(pairs.len(), n, "every config produced a result");
    pairs.into_iter().map(|(_, r)| r).collect()
}

/// Assert a shape property, printing a clear message and failing the bench
/// process (exit code) when violated.
pub fn check(ok: bool, what: &str) {
    if ok {
        println!("   [shape ok] {what}");
    } else {
        println!("   [SHAPE VIOLATION] {what}");
        std::process::exit(1);
    }
}

/// Write a bench artifact (metrics snapshot, trace dump) to `default_path`,
/// overridable through the environment variable `env_var` — the pattern CI
/// uses to collect `BENCH_*.json` / `METRICS_*.json` uploads.
pub fn write_artifact(env_var: &str, default_path: &str, contents: &str) {
    let path = std::env::var(env_var).unwrap_or_else(|_| default_path.to_string());
    std::fs::write(&path, contents).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("   [artifact] {path} ({} bytes)", contents.len());
}

/// [`write_artifact`] for JSON payloads: the contents are validated with
/// the telemetry crate's [`validate_json`] first, so a bench emitting a
/// malformed hand-rolled document fails its own process instead of
/// poisoning the CI artifact corpus (and the regression gate that parses
/// it downstream).
///
/// [`validate_json`]: storm_core::prelude::validate_json
pub fn write_json_artifact(env_var: &str, default_path: &str, json: &str) {
    if let Err(e) = storm_core::prelude::validate_json(json) {
        println!("   [SHAPE VIOLATION] artifact {default_path} is not valid JSON: {e}");
        std::process::exit(1);
    }
    write_artifact(env_var, default_path, json);
}

/// Geometric x-axis helper: powers of two from `lo` to `hi` inclusive.
pub fn pow2_range(lo: u32, hi: u32) -> Vec<u32> {
    let mut v = Vec::new();
    let mut x = lo.max(1);
    while x <= hi {
        v.push(x);
        x *= 2;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_ratio() {
        let c = Comparison::new("x", Some(100.0), 110.0, "ms");
        assert!((c.ratio().unwrap() - 1.1).abs() < 1e-12);
        assert!(Comparison::new("y", None, 5.0, "s").ratio().is_none());
        let text = render_comparisons("t", &[c]);
        assert!(text.contains("1.10x"));
    }

    #[test]
    fn repeat_uses_distinct_seeds() {
        let mut seeds = Vec::new();
        let s = repeat(5, 7, |seed| {
            seeds.push(seed);
            seed as f64
        });
        assert_eq!(s.count(), 5);
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 5);
    }

    #[test]
    fn parallel_sweep_preserves_order() {
        let configs: Vec<u64> = (0..50).collect();
        let results = parallel_sweep(configs, |&c| c * 2);
        assert_eq!(results, (0..50).map(|c| c * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sweep_workers_is_capped_by_config_count() {
        assert_eq!(sweep_workers(1), 1);
        assert_eq!(sweep_workers(0), 1);
        let hw = std::thread::available_parallelism().map_or(1, |p| p.get());
        assert_eq!(sweep_workers(1_000_000), hw);
        assert!(sweep_workers(2) <= 2);
    }

    #[test]
    fn derived_seeds_are_distinct_and_stable() {
        let seeds: Vec<u64> = (0..100).map(|i| derive_seed(7, i)).collect();
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 100);
        assert_eq!(
            seeds,
            (0..100).map(|i| derive_seed(7, i)).collect::<Vec<_>>()
        );
        assert_ne!(derive_seed(7, 0), derive_seed(8, 0));
    }

    #[test]
    fn json_artifact_roundtrips_through_validation() {
        let path = std::env::temp_dir().join("storm_bench_artifact_test.json");
        std::env::set_var("STORM_BENCH_TEST_OUT", &path);
        write_json_artifact(
            "STORM_BENCH_TEST_OUT",
            "unused-default.json",
            "{\"rows\": [1, 2, 3]}",
        );
        let back = std::fs::read_to_string(&path).expect("artifact written");
        assert_eq!(back, "{\"rows\": [1, 2, 3]}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn pow2_range_inclusive() {
        assert_eq!(pow2_range(1, 8), vec![1, 2, 4, 8]);
        assert_eq!(pow2_range(4, 5), vec![4]);
        assert_eq!(pow2_range(3, 24), vec![3, 6, 12, 24]);
    }
}
