//! Table 4 — "Bandwidth scalability (MB/s)": asymptotic hardware-broadcast
//! bandwidth for 4–4 096 nodes and 10–100 m cables, from the validated
//! QsNET flow-control model (§3.3.2). The paper's own table entries are
//! embedded for the comparison; the model must reproduce all 42 of them
//! within 2%.

use storm_bench::check;
use storm_model::{table4, TABLE4_CABLE_LENGTHS};

/// The paper's Table 4, row-major (MB/s).
const PAPER: [[f64; 7]; 6] = [
    [319.0, 319.0, 319.0, 319.0, 284.0, 249.0, 222.0],
    [319.0, 319.0, 309.0, 287.0, 251.0, 224.0, 202.0],
    [312.0, 290.0, 270.0, 254.0, 225.0, 203.0, 185.0],
    [273.0, 256.0, 241.0, 227.0, 204.0, 186.0, 170.0],
    [243.0, 229.0, 217.0, 206.0, 187.0, 171.0, 158.0],
    [218.0, 207.0, 197.0, 188.0, 172.0, 159.0, 147.0],
];

fn main() {
    println!("Table 4: broadcast bandwidth scalability (MB/s), model vs paper");
    print!(
        "{:>6} {:>6} {:>7} {:>9}",
        "nodes", "procs", "stages", "switches"
    );
    for d in TABLE4_CABLE_LENGTHS {
        print!(" {:>11}", format!("{d:.0} m"));
    }
    println!();

    let rows = table4();
    let mut max_err: f64 = 0.0;
    for (ri, row) in rows.iter().enumerate() {
        print!(
            "{:>6} {:>6} {:>7} {:>9}",
            row.nodes, row.processors, row.stages, row.switches
        );
        for (ci, bw) in row.bw.iter().enumerate() {
            let model = bw / 1e6;
            let paper = PAPER[ri][ci];
            let err = (model - paper).abs() / paper;
            max_err = max_err.max(err);
            print!(" {:>5.0}/{:<5.0}", model, paper);
        }
        println!();
    }
    println!("(each cell: model/paper; worst-case per row is the rightmost column)");
    println!(
        "max relative error across all 42 cells: {:.2}%",
        max_err * 100.0
    );

    check(max_err < 0.02, "every Table 4 cell reproduced within 2%");
    // Structural checks the paper calls out.
    for row in &rows {
        check(
            row.bw.windows(2).all(|w| w[1] <= w[0]),
            &format!("{} nodes: bandwidth falls with cable length", row.nodes),
        );
    }
    for pair in rows.windows(2) {
        check(
            pair[1].bw[0] <= pair[0].bw[0],
            &format!(
                "bandwidth falls with machine size ({} -> {} nodes)",
                pair[0].nodes, pair[1].nodes
            ),
        );
    }
    let worst = rows.last().unwrap().bw.last().unwrap() / 1e6;
    check(
        worst > 140.0,
        "even 4 096 nodes x 100 m sustains >140 MB/s (launch stays fast)",
    );
    println!("table4: all shape checks passed");
}
