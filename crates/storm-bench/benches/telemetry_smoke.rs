//! Telemetry smoke — the CI gate for the observability layer.
//!
//! Runs one fully-instrumented 512-node scenario (chunked launch, gang
//! rotation, a node crash + revival under the Requeue policy) with
//! telemetry and bounded tracing enabled, then asserts the whole
//! observability surface is healthy: the key counters are non-zero, the
//! lifecycle spans were collected, and every exported document — metrics
//! snapshot, span JSONL, Chrome trace — parses as JSON. The snapshot is
//! written to `METRICS_snapshot.json` (override with `METRICS_OUT`) for CI
//! artifact upload.

use storm_bench::{check, write_artifact};
use storm_core::prelude::*;

fn main() {
    println!("Telemetry smoke: instrumented 512-node launch + gang + fault scenario");
    let cfg = ClusterConfig::paper_cluster()
        .with_nodes(512)
        .with_seed(0x7E1E)
        .with_failure_policy(FailurePolicy::requeue())
        .with_fault_detection(4)
        .with_telemetry(true);
    let mut c = Cluster::new(cfg);
    c.enable_tracing_with_capacity(50_000);

    c.submit(JobSpec::new(AppSpec::do_nothing_mb(12), 256));
    c.submit_at(
        SimTime::from_millis(10),
        JobSpec::new(
            AppSpec::Synthetic {
                compute: SimSpan::from_millis(120),
            },
            64,
        ),
    );
    c.submit_at(
        SimTime::from_millis(20),
        JobSpec::new(
            AppSpec::Synthetic {
                compute: SimSpan::from_millis(120),
            },
            128,
        ),
    );
    c.fail_node_at(SimTime::from_millis(40), 9);
    c.rejoin_node_at(SimTime::from_millis(120), 9);
    c.run_until(SimTime::from_millis(400));

    let snap = c.metrics_snapshot();
    println!("{}", snap.render());

    // Key metrics must be live.
    let nonzero_counters = [
        "jobs.submitted",
        "jobs.completed",
        "mm.ticks",
        "mm.strobes",
        "mm.fragments",
        "mm.reports",
        "pl.forks",
        "fault.detections",
        "fault.rejoins",
    ];
    for name in nonzero_counters {
        check(
            snap.counter(name).unwrap_or(0) > 0,
            &format!("counter {name} is non-zero"),
        );
    }
    check(
        snap.gauge("nodes.alive").unwrap_or(0) == 512,
        "all nodes alive again at the end",
    );
    for name in ["hb.round_latency_us", "engine.pending_messages_per_tick"] {
        check(
            snap.histogram(name).is_some_and(|h| h.count() > 0),
            &format!("histogram {name} has observations"),
        );
    }
    check(
        !c.job_spans().is_empty(),
        "job lifecycle spans were collected",
    );

    // Every exported document must parse.
    let json = snap.to_json();
    check(validate_json(&json).is_ok(), "metrics snapshot JSON parses");
    let jsonl = spans_jsonl(c.job_spans());
    check(
        jsonl.lines().all(|l| validate_json(l).is_ok()),
        "span JSONL parses line by line",
    );
    let trace = c.chrome_trace();
    check(
        validate_json(&trace).is_ok(),
        "chrome trace-event JSON parses",
    );
    check(
        c.world().telemetry.metrics.is_enabled(),
        "registry reports enabled",
    );

    write_artifact("METRICS_OUT", "METRICS_snapshot.json", &json);
    println!("telemetry smoke: all checks passed");
}
