//! Criterion microbenches of the simulator itself — the "is the substrate
//! fast enough to run the paper's experiments" question. Wall-clock
//! measurements of: the event loop, the mechanism layer, the buddy
//! allocator, and a complete 12 MB / 64-node launch simulation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use storm_core::prelude::*;
use storm_core::BuddyAllocator;
use storm_mech::{CmpOp, Mechanisms, NodeId, NodeSet};
use storm_sim::{Component, Context, Simulation};

#[derive(Clone, Debug)]
enum Msg {
    Tick(u32),
}

struct Ticker;

impl Component<(), Msg> for Ticker {
    fn handle(&mut self, Msg::Tick(n): Msg, ctx: &mut Context<'_, (), Msg>) {
        if n > 0 {
            ctx.send_self(storm_sim::SimSpan::from_nanos(10), Msg::Tick(n - 1));
        }
    }
}

fn bench_engine(c: &mut Criterion) {
    c.bench_function("engine: deliver 100k self-messages", |b| {
        b.iter(|| {
            let mut sim = Simulation::new((), 1);
            let t = sim.add_component(Ticker);
            sim.post(storm_sim::SimTime::ZERO, t, Msg::Tick(100_000));
            sim.run_to_completion();
            black_box(sim.events_delivered())
        })
    });
}

fn bench_mechanisms(c: &mut Criterion) {
    c.bench_function("mechanisms: CAW over 1024 nodes", |b| {
        let mut mech = Mechanisms::qsnet(1024);
        let var = mech.memory.alloc_var(0);
        let all = NodeSet::All(1024);
        b.iter(|| {
            black_box(mech.compare_and_write(
                storm_sim::SimTime::ZERO,
                &all,
                var,
                CmpOp::Ge,
                0,
                None,
                BackgroundLoad::NONE,
            ))
        })
    });
    c.bench_function("mechanisms: X&S multicast to 1024 nodes", |b| {
        let mut mech = Mechanisms::qsnet(1024);
        let all = NodeSet::All(1024);
        let mut rng = storm_sim::DeterministicRng::new(3);
        b.iter(|| {
            black_box(
                mech.xfer_and_signal(
                    storm_sim::SimTime::ZERO,
                    NodeId(0),
                    &all,
                    4096,
                    BufferPlacement::MainMemory,
                    None,
                    None,
                    BackgroundLoad::NONE,
                    &mut rng,
                )
                .unwrap(),
            )
        })
    });
}

fn bench_buddy(c: &mut Criterion) {
    c.bench_function("buddy: alloc/free cycle on 1024 nodes", |b| {
        b.iter_batched(
            || BuddyAllocator::new(1024),
            |mut buddy| {
                let mut starts = Vec::new();
                for _ in 0..64 {
                    if let Some(r) = buddy.alloc(16) {
                        starts.push(r.start);
                    }
                }
                for s in starts {
                    buddy.free(s);
                }
                black_box(buddy.free_nodes())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_full_launch(c: &mut Criterion) {
    c.bench_function("end-to-end: simulate 12 MB launch on 64 nodes", |b| {
        b.iter(|| {
            let mut cluster = Cluster::new(ClusterConfig::paper_cluster());
            let j = cluster.submit(JobSpec::new(AppSpec::do_nothing_mb(12), 256));
            cluster.run_until_idle();
            black_box(cluster.job(j).metrics.total_launch_span())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_engine, bench_mechanisms, bench_buddy, bench_full_launch
}
criterion_main!(benches);
