//! Figure 2 — "Send and execute times for a 4 MB, 8 MB, and 12 MB file on
//! an unloaded system", 1–256 processors.
//!
//! Methodology (§3.1): a do-nothing program padded to the given size is
//! launched with a 1 ms timeslice; launch time is split into the *send*
//! (read + broadcast + write + notify MM) and *execute* (launch command +
//! fork + termination wait + report) components. We repeat each point with
//! distinct seeds and report the mean, as the paper does.

use storm_bench::{
    check, parallel_sweep, pow2_range, render_comparisons, repeat, write_artifact, Comparison,
};
use storm_core::prelude::*;

const REPS: u64 = 5;

fn launch(pes: u32, mb: u64, seed: u64) -> (f64, f64) {
    let mut c = Cluster::new(ClusterConfig::paper_cluster().with_seed(seed));
    let j = c.submit(JobSpec::new(AppSpec::do_nothing_mb(mb), pes));
    c.run_until_idle();
    let m = &c.job(j).metrics;
    (
        m.send_span().expect("send").as_millis_f64(),
        m.execute_span().expect("execute").as_millis_f64(),
    )
}

fn main() {
    println!("Figure 2: send and execute times on an unloaded system (ms, mean of {REPS} runs)");
    let pes_axis = pow2_range(1, 256);
    let sizes = [4u64, 8, 12];

    let configs: Vec<(u32, u64)> = pes_axis
        .iter()
        .flat_map(|&p| sizes.iter().map(move |&s| (p, s)))
        .collect();
    let results = parallel_sweep(configs.clone(), |&(pes, mb)| {
        let send = repeat(REPS, ((pes as u64) << 8) | mb, |seed| {
            launch(pes, mb, seed).0
        });
        let exec = repeat(REPS, ((pes as u64) << 16) | mb, |seed| {
            launch(pes, mb, seed).1
        });
        (send.mean(), exec.mean())
    });

    println!(
        "{:>6} | {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9}",
        "PEs", "send4", "exec4", "send8", "exec8", "send12", "exec12"
    );
    let mut table = std::collections::HashMap::new();
    for ((pes, mb), r) in configs.iter().zip(&results) {
        table.insert((*pes, *mb), *r);
    }
    for &pes in &pes_axis {
        let g = |mb: u64| table[&(pes, mb)];
        println!(
            "{:>6} | {:>9.1} {:>9.1} | {:>9.1} {:>9.1} | {:>9.1} {:>9.1}",
            pes,
            g(4).0,
            g(4).1,
            g(8).0,
            g(8).1,
            g(12).0,
            g(12).1
        );
    }

    // Paper-stated anchors.
    let (send12_256, exec12_256) = table[&(256, 12)];
    let total = send12_256 + exec12_256;
    let rows = vec![
        Comparison::new("send, 12 MB, 256 PEs", Some(96.0), send12_256, "ms"),
        Comparison::new("total launch, 12 MB, 256 PEs", Some(110.0), total, "ms"),
        Comparison::new(
            "protocol bandwidth (12 MB / send)",
            Some(131.0),
            12_000.0 / send12_256,
            "MB/s",
        ),
    ];
    println!("\n{}", render_comparisons("Fig. 2 anchors", &rows));

    // Shape checks.
    let (s4, _) = table[&(256, 4)];
    let (s8, _) = table[&(256, 8)];
    check(
        s4 < s8 && s8 < send12_256,
        "send time proportional to binary size",
    );
    let ratio_sz = send12_256 / s4;
    check(
        (2.2..=3.8).contains(&ratio_sz),
        "12 MB send ≈ 3× the 4 MB send",
    );
    let (s12_1, e12_1) = table[&(1, 12)];
    check(
        send12_256 / s12_1 < 1.25,
        "send grows very slowly with node count",
    );
    check(
        exec12_256 > e12_1,
        "execute time grows with the number of PEs (OS skew)",
    );
    check(
        (total - 110.0).abs() / 110.0 < 0.15,
        "headline: 12 MB launched in ~110 ms on 256 PEs",
    );

    // One instrumented run of the headline point: telemetry + tracing on,
    // emitting the lifecycle breakdown, the metrics snapshot and a Chrome
    // trace-event timeline of the whole launch pipeline.
    let mut c = Cluster::new(
        ClusterConfig::paper_cluster()
            .with_seed(42)
            .with_telemetry(true),
    );
    c.enable_tracing_with_capacity(200_000);
    c.submit(JobSpec::new(AppSpec::do_nothing_mb(12), 256));
    c.run_until_idle();
    println!("\ninstrumented 12 MB / 256 PEs launch:");
    for span in c.job_spans() {
        println!("{}", span.render());
    }
    let snap = c.metrics_snapshot();
    if let Some(h) = snap.histogram_with("job.phase_us", &[("phase", "send_pipeline")]) {
        println!(
            "send pipeline: p50 <= {} µs over {} launches",
            h.percentile(50.0),
            h.count()
        );
    }
    check(
        snap.counter("mm.fragments").unwrap_or(0) > 0,
        "instrumented launch recorded broadcast fragments",
    );
    check(!c.job_spans().is_empty(), "lifecycle span was collected");
    write_artifact("METRICS_OUT", "METRICS_fig2.json", &snap.to_json());
    write_artifact("TRACE_OUT", "TRACE_fig2.json", &c.chrome_trace());
    println!("fig2: all shape checks passed");
}
