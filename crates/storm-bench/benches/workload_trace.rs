//! Workload-trace policy comparison — the §5.2 programme: use STORM as a
//! common substrate to compare scheduling algorithms "on a common set of
//! workloads".
//!
//! A Feitelson-style synthetic trace (Poisson arrivals, log-uniform
//! power-of-two widths, log-normal runtimes, inflated user estimates) is
//! replayed under batch FCFS, EASY backfilling, and gang scheduling
//! (MPL 2); we report the standard metrics: mean wait, mean bounded
//! slowdown, utilisation, makespan.
//!
//! Expected shape (the classic results this harness lets one reproduce):
//! backfilling beats strict FCFS on every metric; gang scheduling further
//! cuts wait/slowdown by timesharing instead of queueing.

use storm_apps::{stream_metrics, CompletedJob, StreamConfig};
use storm_bench::{check, parallel_sweep};
use storm_core::prelude::*;
use storm_sim::DeterministicRng;

fn replay(policy: SchedulerKind, mpl: usize) -> storm_apps::StreamMetrics {
    let cfg = ClusterConfig::paper_cluster()
        .with_scheduler(policy)
        .with_timeslice(SimSpan::from_millis(50))
        .with_seed(4242);
    let mut cluster = Cluster::new(ClusterConfig {
        mpl_max: mpl,
        ..cfg
    });
    let stream = StreamConfig {
        jobs: 60,
        mean_interarrival: SimSpan::from_secs(1),
        min_ranks: 8,
        max_ranks: 256,
        median_runtime: SimSpan::from_secs(6),
        runtime_sigma: 1.0,
        estimate_factor: 2.0,
    }
    .generate(&mut DeterministicRng::new(1));
    let mut ids = Vec::new();
    for j in &stream {
        ids.push(cluster.submit_at(
            j.arrival,
            JobSpec::new(j.app.clone(), j.ranks).with_estimate(j.estimate),
        ));
    }
    cluster.run_until_idle();
    let completed: Vec<CompletedJob> = ids
        .iter()
        .zip(&stream)
        .map(|(&id, j)| {
            let m = &cluster.job(id).metrics;
            CompletedJob {
                arrival: j.arrival,
                started: m.started.expect("started"),
                completed: m.completed.expect("completed"),
                ranks: j.ranks,
                work: j.runtime,
            }
        })
        .collect();
    stream_metrics(&completed, cluster.world().cfg.total_pes())
}

fn main() {
    println!("Workload-trace policy comparison: 60 jobs, 64-node machine");
    let policies = vec![
        ("batch FCFS", SchedulerKind::Batch, 1usize),
        ("EASY backfill", SchedulerKind::Backfill, 1),
        ("gang (MPL 2)", SchedulerKind::Gang, 2),
    ];
    let results = parallel_sweep(policies.clone(), |&(_, p, mpl)| replay(p, mpl));

    println!(
        "{:<16} {:>10} {:>12} {:>14} {:>12}",
        "policy", "makespan", "mean wait", "bounded slowdn", "utilisation"
    );
    for ((name, _, _), m) in policies.iter().zip(&results) {
        println!(
            "{:<16} {:>8.1} s {:>10.1} s {:>14.2} {:>11.1}%",
            name,
            m.makespan.as_secs_f64(),
            m.mean_wait.as_secs_f64(),
            m.mean_bounded_slowdown,
            m.utilization * 100.0
        );
    }

    let batch = &results[0];
    let backfill = &results[1];
    let gang = &results[2];
    check(
        backfill.mean_wait < batch.mean_wait,
        "backfilling cuts mean wait vs strict FCFS",
    );
    check(
        backfill.mean_bounded_slowdown < batch.mean_bounded_slowdown,
        "backfilling cuts bounded slowdown",
    );
    check(
        backfill.makespan <= batch.makespan,
        "backfilling never stretches the makespan",
    );
    check(
        gang.mean_wait < batch.mean_wait,
        "gang scheduling cuts waiting by timesharing",
    );
    check(
        gang.utilization >= batch.utilization * 0.95,
        "gang scheduling keeps utilisation competitive",
    );
    println!("workload_trace: all shape checks passed");
}
