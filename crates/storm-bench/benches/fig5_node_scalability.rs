//! Figure 5 — "Effect of node scalability, varying the number of nodes in
//! the range 1–64 for MPL values of 1 and 2".
//!
//! §3.2.2: SWEEP3D and the synthetic computation, 2 ranks per node, 50 ms
//! quantum. The claim: "there is no increase in runtime or overhead with
//! the increase in the number of nodes beyond that caused by the
//! job-launch" — the gang scheduler coscheduled a 64-node machine as
//! rapidly as a 1-node one.
//!
//! The paper measured 1–64 nodes (its machine's size) and §6 argues the
//! design scales to thousands; with the engine's group delivery keeping
//! the event queue O(jobs) per timeslice and the timing-wheel core, we
//! run the same sweep out to 16384 nodes and hold the flatness claim
//! across the extrapolated range. The sweep runs through
//! [`parallel_sweep`]: one independent cluster and seed per
//! configuration, results merged in configuration order, so the numbers
//! are bit-identical to a serial run.

use std::time::Instant;
use storm_bench::{check, parallel_sweep, pow2_range, write_artifact};
use storm_core::prelude::*;

/// Returns (simulated runtime / MPL in seconds, wall-clock seconds).
fn run(app: &AppSpec, nodes: u32, mpl: u32, seed: u64) -> (f64, f64) {
    let t0 = Instant::now();
    let cfg = ClusterConfig::gang_cluster()
        .with_nodes(nodes)
        .with_seed(seed);
    let mut c = Cluster::new(cfg);
    let jobs: Vec<_> = (0..mpl)
        .map(|_| c.submit(JobSpec::new(app.clone(), nodes * 2).with_ranks_per_node(2)))
        .collect();
    c.run_until_idle();
    let last = jobs
        .iter()
        .map(|&j| c.job(j).metrics.completed.expect("done"))
        .max()
        .expect("jobs");
    (
        last.as_secs_f64() / f64::from(mpl),
        t0.elapsed().as_secs_f64(),
    )
}

fn main() {
    println!("Figure 5: total runtime / MPL vs node count (50 ms quantum, 2 ranks/node)");
    let nodes_axis = pow2_range(1, 16384);
    let series: Vec<(&str, AppSpec, u32)> = vec![
        ("SWEEP3D MPL=1", AppSpec::sweep3d_default(), 1),
        ("SWEEP3D MPL=2", AppSpec::sweep3d_default(), 2),
        ("synthetic MPL=1", AppSpec::synthetic_default(), 1),
        ("synthetic MPL=2", AppSpec::synthetic_default(), 2),
    ];
    let configs: Vec<(usize, u32)> = series
        .iter()
        .enumerate()
        .flat_map(|(si, _)| nodes_axis.iter().map(move |&n| (si, n)))
        .collect();
    let sweep_start = Instant::now();
    let results = parallel_sweep(configs.clone(), |&(si, n)| {
        let (_, app, mpl) = &series[si];
        run(app, n, *mpl, 0xF1_65 ^ u64::from(n))
    });
    let sweep_wall = sweep_start.elapsed().as_secs_f64();
    let serial_estimate: f64 = results.iter().map(|&(_, w)| w).sum();
    let mut table = std::collections::HashMap::new();
    for (cfg, r) in configs.iter().zip(&results) {
        table.insert(*cfg, *r);
    }

    print!("{:>6}", "nodes");
    for (name, _, _) in &series {
        print!(" {name:>16}");
    }
    println!(" {:>10}", "wall");
    for &n in &nodes_axis {
        print!("{n:>6}");
        let mut wall = 0.0;
        for si in 0..series.len() {
            let (sim_s, wall_s) = table[&(si, n)];
            print!(" {sim_s:>14.2} s");
            wall += wall_s;
        }
        println!(" {wall:>8.3} s");
    }
    println!(
        "sweep wall-clock: {sweep_wall:.2} s across {} configs \
         (serial estimate {serial_estimate:.2} s, {:.1}x)",
        configs.len(),
        serial_estimate / sweep_wall.max(1e-9)
    );

    // Shape checks: each series is flat in node count (≤ 10% spread — the
    // workload itself adds a few percent of skew/comm growth).
    for (si, (name, _, _)) in series.iter().enumerate() {
        let vals: Vec<f64> = nodes_axis.iter().map(|&n| table[&(si, n)].0).collect();
        let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        check(
            hi / lo < 1.10,
            &format!("{name}: runtime flat from 1 to 16384 nodes ({lo:.1}-{hi:.1} s)"),
        );
    }
    // MPL=2 normalised ≈ MPL=1 at every size.
    for &n in &nodes_axis {
        let r = (table[&(1usize, n)].0 - table[&(0usize, n)].0).abs() / table[&(0usize, n)].0;
        check(
            r < 0.06,
            &format!(
                "SWEEP3D MPL=2/2 matches MPL=1 at {n} nodes ({:.1}% off)",
                r * 100.0
            ),
        );
    }
    check(
        (table[&(0usize, 32)].0 - 49.0).abs() < 3.0,
        "SWEEP3D at 32 nodes is the paper's ~49 s",
    );

    // Instrumented spot-check at a large size: the gang scheduler's health
    // gauges and matrix-utilization histogram for SWEEP3D MPL=2 on 512
    // nodes, exported for offline inspection.
    let mut c = Cluster::new(
        ClusterConfig::gang_cluster()
            .with_nodes(512)
            .with_seed(0xF1_65)
            .with_telemetry(true),
    );
    for _ in 0..2 {
        c.submit(JobSpec::new(AppSpec::sweep3d_default(), 1024).with_ranks_per_node(2));
    }
    c.run_until_idle();
    let snap = c.metrics_snapshot();
    check(
        snap.counter("mm.strobes").unwrap_or(0) > 0,
        "instrumented gang run recorded strobes",
    );
    if let Some(h) = snap.histogram("sched.matrix_utilization_pct") {
        println!(
            "matrix utilization at 512 nodes: p50 <= {}%, max {}% over {} ticks",
            h.percentile(50.0),
            h.max(),
            h.count()
        );
    }
    write_artifact("METRICS_OUT", "METRICS_fig5.json", &snap.to_json());
    println!("fig5: all shape checks passed");
}
