//! Event-queue microbench: the hierarchical timing wheel against the
//! reference binary heap, push/pop at 1 k / 100 k / 1 M pending events.
//!
//! Two access patterns:
//!
//! * **hold** — the classic steady-state discrete-event pattern: pop the
//!   minimum, reschedule it a random span ahead, keeping the pending count
//!   constant. This is what the simulator's inner loop does and where the
//!   heap pays O(log n) per op against the wheel's amortised O(1).
//! * **burst** — push `n` events, then drain them all, modelling fan-out
//!   spikes (launch broadcasts, strobes) layered over a quiet queue.
//!
//! Emits `BENCH_queue.json` (override with `BENCH_QUEUE_OUT`); set
//! `STORM_BENCH_SMOKE=1` for fewer timed ops per configuration. The shape
//! gate: the wheel must beat the heap on the hold pattern at ≥ 100 k
//! pending.

use criterion::{criterion_group, criterion_main, Criterion};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;
use storm_bench::{check, derive_seed, write_json_artifact};
use storm_sim::{EventQueue, QueueBackend, SimTime};

/// Reschedule horizon for the hold pattern: up to ~10 ms ahead, spanning
/// hundreds of L0 buckets and forcing periodic L1/overflow cascades.
const HORIZON_NS: u64 = 10_000_000;

/// splitmix-style stream of deltas; deterministic so both backends see
/// the exact same schedule.
struct Deltas(u64);

impl Deltas {
    fn next(&mut self) -> u64 {
        self.0 = derive_seed(self.0, 1);
        self.0 % HORIZON_NS
    }
}

fn prefill(backend: QueueBackend, pending: usize) -> (EventQueue<u64>, Deltas) {
    let mut q = EventQueue::with_backend(backend);
    let mut d = Deltas(derive_seed(0x9_0E5, pending as u64));
    for i in 0..pending {
        q.push(SimTime::from_nanos(d.next()), i as u64);
    }
    (q, d)
}

/// Steady-state ns/op: pop the minimum, push it back a random span ahead.
fn hold_ns_per_op(backend: QueueBackend, pending: usize, ops: u64) -> f64 {
    let (mut q, mut d) = prefill(backend, pending);
    // Warm-up: let the wheel reach its steady-state bucket spread.
    for _ in 0..pending as u64 {
        let (t, e) = q.pop().expect("pending");
        q.push(t + storm_sim::SimSpan::from_nanos(d.next()), e);
    }
    let start = Instant::now();
    for _ in 0..ops {
        let (t, e) = q.pop().expect("pending");
        q.push(t + storm_sim::SimSpan::from_nanos(d.next()), e);
    }
    let wall = start.elapsed();
    black_box(q.len());
    wall.as_nanos() as f64 / ops as f64
}

/// Fan-out spike ns/op: push `pending` events, then drain them all.
fn burst_ns_per_op(backend: QueueBackend, pending: usize) -> f64 {
    let start = Instant::now();
    let (mut q, _) = prefill(backend, pending);
    while q.pop().is_some() {}
    let wall = start.elapsed();
    black_box(q.total_popped());
    wall.as_nanos() as f64 / (2 * pending) as f64
}

fn label(b: QueueBackend) -> &'static str {
    match b {
        QueueBackend::Heap => "heap",
        QueueBackend::Wheel => "wheel",
    }
}

fn queue_ops(c: &mut Criterion) {
    let smoke = std::env::var("STORM_BENCH_SMOKE").is_ok();
    let sizes: &[usize] = &[1_000, 100_000, 1_000_000];
    let timed_ops: u64 = if smoke { 100_000 } else { 1_000_000 };

    // Criterion console view of the headline pattern.
    for &pending in sizes {
        for backend in [QueueBackend::Heap, QueueBackend::Wheel] {
            let (mut q, mut d) = prefill(backend, pending);
            c.bench_function(
                &format!("queue_ops/hold/{}/{}", label(backend), pending),
                |b| {
                    b.iter(|| {
                        for _ in 0..1_000 {
                            let (t, e) = q.pop().expect("pending");
                            q.push(t + storm_sim::SimSpan::from_nanos(d.next()), e);
                        }
                    })
                },
            );
        }
    }

    // Single long measurements for the JSON artifact and the shape gate
    // (medians over 3 runs; the vendored criterion exposes no samples).
    let mut rows = Vec::new();
    println!(
        "{:>8} {:>9} {:>8} {:>12} {:>12}",
        "pattern", "pending", "backend", "ns/op", "ops"
    );
    for &pending in sizes {
        for backend in [QueueBackend::Heap, QueueBackend::Wheel] {
            let median = |mut v: Vec<f64>| {
                v.sort_by(f64::total_cmp);
                v[v.len() / 2]
            };
            let hold = median(
                (0..3)
                    .map(|_| hold_ns_per_op(backend, pending, timed_ops))
                    .collect(),
            );
            let burst = median((0..3).map(|_| burst_ns_per_op(backend, pending)).collect());
            for (pattern, ns) in [("hold", hold), ("burst", burst)] {
                println!(
                    "{:>8} {:>9} {:>8} {:>12.1} {:>12}",
                    pattern,
                    pending,
                    label(backend),
                    ns,
                    timed_ops
                );
                rows.push((pattern, pending, backend, ns));
            }
        }
    }

    // The acceptance bar: wheel beats heap on the steady-state pattern at
    // large pending counts (it may tie or lose in the noise at 1 k, where
    // both are a handful of nanoseconds).
    let ns_of = |pattern: &str, pending: usize, backend: QueueBackend| {
        rows.iter()
            .find(|&&(p, n, b, _)| p == pattern && n == pending && b == backend)
            .map(|&(_, _, _, ns)| ns)
            .expect("row")
    };
    for &pending in &sizes[1..] {
        let h = ns_of("hold", pending, QueueBackend::Heap);
        let w = ns_of("hold", pending, QueueBackend::Wheel);
        check(
            w < h,
            &format!("wheel beats heap on hold at {pending} pending ({w:.1} vs {h:.1} ns/op)"),
        );
    }

    let mut json = String::from("{\n  \"bench\": \"queue_ops\",\n  \"rows\": [\n");
    for (i, &(pattern, pending, backend, ns)) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"pattern\": \"{}\", \"pending\": {}, \"backend\": \"{}\", \
             \"ns_per_op\": {:.2}}}{}",
            pattern,
            pending,
            label(backend),
            ns,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    let _ = writeln!(json, "  ]\n}}");
    write_json_artifact("BENCH_QUEUE_OUT", "BENCH_queue.json", &json);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = queue_ops
}
criterion_main!(benches);
