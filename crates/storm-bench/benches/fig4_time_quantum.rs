//! Figure 4 — "Effect of time quantum with an MPL of 2, on 32 nodes".
//!
//! §3.2.1: SWEEP3D (MPL 1 and 2) and a synthetic computation (MPL 2) run on
//! 32 nodes / 64 PEs while the gang-scheduling quantum sweeps from 300 µs
//! to 8 s. MPL-2 results are normalised by dividing the makespan by 2. The
//! paper's findings this bench must reproduce:
//!
//! * quanta below ≈ 300 µs are infeasible (NM control-message meltdown);
//! * from 300 µs up, runtime is essentially flat — (2 ms, 49 s) is the
//!   annotated point, i.e. no observable slowdown at a quantum an order of
//!   magnitude below typical OS quanta;
//! * a slight increase (< 1 s out of 50) toward multi-second quanta from
//!   event-collection quantisation.

use storm_bench::{check, parallel_sweep, render_comparisons, Comparison};
use storm_core::prelude::*;

fn run(app: &AppSpec, mpl: u32, quantum_us: u64, seed: u64) -> Option<f64> {
    let cfg = ClusterConfig::gang_cluster()
        .with_timeslice(SimSpan::from_micros(quantum_us))
        .with_seed(seed);
    if cfg.quantum_infeasible() {
        return None; // §3.2.1: the NM cannot keep up below ~300 µs
    }
    let mut c = Cluster::new(cfg);
    let jobs: Vec<_> = (0..mpl)
        .map(|_| c.submit(JobSpec::new(app.clone(), 64).with_ranks_per_node(2)))
        .collect();
    c.run_until_idle();
    let last_done = jobs
        .iter()
        .map(|&j| c.job(j).metrics.completed.expect("completed"))
        .max()
        .expect("jobs");
    Some(last_done.as_secs_f64() / f64::from(mpl))
}

fn main() {
    println!("Figure 4: total runtime / MPL vs gang-scheduling quantum (32 nodes / 64 PEs)");
    let quanta_us: Vec<u64> = vec![
        100, 200, 300, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000, 200_000, 500_000,
        1_000_000, 2_000_000, 4_000_000, 8_000_000,
    ];
    let series: Vec<(&str, AppSpec, u32)> = vec![
        ("SWEEP3D MPL=1", AppSpec::sweep3d_default(), 1),
        ("SWEEP3D MPL=2", AppSpec::sweep3d_default(), 2),
        ("synthetic MPL=2", AppSpec::synthetic_default(), 2),
    ];

    let configs: Vec<(usize, u64)> = series
        .iter()
        .enumerate()
        .flat_map(|(si, _)| quanta_us.iter().map(move |&q| (si, q)))
        .collect();
    let results = parallel_sweep(configs.clone(), |&(si, q)| {
        let (_, app, mpl) = &series[si];
        run(app, *mpl, q, 0xF164 ^ q)
    });
    let mut table = std::collections::HashMap::new();
    for (cfg, r) in configs.iter().zip(&results) {
        table.insert(*cfg, *r);
    }

    println!(
        "{:>12} | {:>16} {:>16} {:>16}",
        "quantum", series[0].0, series[1].0, series[2].0
    );
    for &q in &quanta_us {
        let cell = |si: usize| match table[&(si, q)] {
            Some(t) => format!("{t:.2} s"),
            None => "infeasible".to_string(),
        };
        println!(
            "{:>12} | {:>16} {:>16} {:>16}",
            format!("{}", SimSpan::from_micros(q)),
            cell(0),
            cell(1),
            cell(2)
        );
    }

    // Anchors and shape checks.
    let s2_at = |q: u64| table[&(1usize, q)].expect("feasible");
    let rows = vec![
        Comparison::new(
            "SWEEP3D MPL=2 normalised @ 2 ms",
            Some(49.0),
            s2_at(2_000),
            "s",
        ),
        Comparison::new(
            "SWEEP3D MPL=2 normalised @ 8 s",
            Some(50.0),
            s2_at(8_000_000),
            "s",
        ),
    ];
    println!("\n{}", render_comparisons("Fig. 4 anchors", &rows));

    check(
        table[&(1usize, 100)].is_none() && table[&(1usize, 200)].is_none(),
        "quanta below ~300 us are infeasible (NM meltdown)",
    );
    check(
        table[&(1usize, 300)].is_some(),
        "300 us is the smallest feasible quantum",
    );
    check(
        (s2_at(2_000) - 49.0).abs() < 2.5,
        "the paper's annotated point: (2 ms, 49 s)",
    );
    // Flatness across the feasible range.
    let feasible: Vec<f64> = quanta_us
        .iter()
        .filter_map(|&q| table[&(1usize, q)])
        .collect();
    let lo = feasible.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = feasible.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    check(
        hi / lo < 1.06,
        "runtime practically unchanged by the choice of quantum",
    );
    check(
        s2_at(8_000_000) >= s2_at(50_000) - 0.2 && s2_at(8_000_000) - s2_at(50_000) < 1.5,
        "slight increase (<~1 s of 50) toward multi-second quanta",
    );
    // MPL=2 normalised tracks MPL=1 (no observable gang-scheduling overhead).
    let m1 = table[&(0usize, 2_000)].unwrap();
    check(
        (s2_at(2_000) - m1).abs() / m1 < 0.05,
        "MPL=2 normalised matches MPL=1 at a 2 ms quantum",
    );
    println!("fig4: all shape checks passed");
}
