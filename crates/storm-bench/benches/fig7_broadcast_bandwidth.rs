//! Figure 7 — "Broadcast bandwidth from NIC- vs host-resident buffers"
//! (64 nodes, 100 KB–1 MB messages).
//!
//! The QsNET hardware broadcast delivers 312 MB/s from NIC memory but only
//! 175 MB/s from main memory (PCI-bus limited); bandwidth rises with
//! message size as the fixed DMA-setup cost amortises.

use storm_bench::{check, render_comparisons, Comparison};
use storm_net::{BufferPlacement, QsNetModel};

fn main() {
    println!("Figure 7: broadcast bandwidth on 64 nodes vs message size (MB/s)");
    let model = QsNetModel::for_nodes(64);
    let sizes_kb: Vec<u64> = (1..=10).map(|k| k * 100).collect();
    println!(
        "{:>10} {:>14} {:>14}",
        "size (KB)", "NIC memory", "main memory"
    );
    let mut nic_series = Vec::new();
    let mut main_series = Vec::new();
    for &kb in &sizes_kb {
        let nic = model.broadcast_bw_for_size(kb * 1000, BufferPlacement::NicMemory) / 1e6;
        let main = model.broadcast_bw_for_size(kb * 1000, BufferPlacement::MainMemory) / 1e6;
        println!("{kb:>10} {nic:>14.1} {main:>14.1}");
        nic_series.push(nic);
        main_series.push(main);
    }

    let rows = vec![
        Comparison::new(
            "asymptotic NIC-memory broadcast",
            Some(312.0),
            model.broadcast_bw(BufferPlacement::NicMemory) / 1e6,
            "MB/s",
        ),
        Comparison::new(
            "asymptotic main-memory broadcast",
            Some(175.0),
            model.broadcast_bw(BufferPlacement::MainMemory) / 1e6,
            "MB/s",
        ),
    ];
    println!("\n{}", render_comparisons("Fig. 7 asymptotes", &rows));

    check(
        nic_series.windows(2).all(|w| w[1] >= w[0]),
        "NIC-memory bandwidth rises monotonically with message size",
    );
    check(
        main_series.windows(2).all(|w| w[1] >= w[0]),
        "main-memory bandwidth rises monotonically with message size",
    );
    check(
        nic_series.iter().zip(&main_series).all(|(n, m)| n > m),
        "NIC-resident buffers beat main memory at every size (PCI bypass)",
    );
    let nic_asym = model.broadcast_bw(BufferPlacement::NicMemory) / 1e6;
    let main_asym = model.broadcast_bw(BufferPlacement::MainMemory) / 1e6;
    check((nic_asym - 312.0).abs() < 8.0, "NIC asymptote ~312 MB/s");
    check(
        (main_asym - 175.0).abs() < 2.0,
        "main-memory asymptote ~175 MB/s",
    );
    check(
        nic_series.last().unwrap() / nic_asym > 0.95,
        "1 MB messages reach >95% of the asymptote",
    );
    println!("fig7: all shape checks passed");
}
