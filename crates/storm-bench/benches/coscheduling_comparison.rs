//! Coscheduling-algorithm comparison — the experiment §5.2 motivates:
//! "STORM's flexibility positions STORM as a suitable vessel for in vivo
//! experimentation with alternate scheduling algorithms."
//!
//! Gang scheduling vs implicit coscheduling (both plugged into the same MM
//! / NM / mechanism substrate) on two MPL-2 workloads:
//!
//! * a **coarse-grained** application (SWEEP3D-like, ~200 ms between
//!   exchanges) — ICS should be nearly as good as gang scheduling;
//! * a **fine-grained** application (~2 ms between exchanges) — without
//!   coordinated switches every exchange risks a descheduled peer, and ICS
//!   should fall badly behind.

use storm_bench::{check, parallel_sweep};
use storm_core::prelude::*;

fn app(grain_ms: u64, total_secs: u64) -> AppSpec {
    let iters = (total_secs * 1000 / grain_ms) as u32;
    AppSpec::Sweep3d {
        iterations: iters,
        compute_per_iter: SimSpan::from_millis(grain_ms),
        comm_bytes_per_iter: 200_000,
    }
}

fn normalised(app: AppSpec, scheduler: SchedulerKind) -> f64 {
    let cfg = ClusterConfig::gang_cluster()
        .with_timeslice(SimSpan::from_millis(10))
        .with_scheduler(scheduler)
        .with_seed(99);
    let mut c = Cluster::new(cfg);
    let a = c.submit(JobSpec::new(app.clone(), 64).with_ranks_per_node(2));
    let b = c.submit(JobSpec::new(app, 64).with_ranks_per_node(2));
    c.run_until_idle();
    let done = c
        .job(a)
        .metrics
        .completed
        .unwrap()
        .max(c.job(b).metrics.completed.unwrap());
    done.as_secs_f64() / 2.0
}

fn main() {
    println!("Gang scheduling vs implicit coscheduling, MPL = 2, 32 nodes / 64 PEs");
    let workloads = [
        ("coarse (200 ms grain)", app(200, 20)),
        ("medium (20 ms grain)", app(20, 20)),
        ("fine (2 ms grain)", app(2, 20)),
    ];
    let configs: Vec<(usize, SchedulerKind)> = (0..workloads.len())
        .flat_map(|i| {
            [SchedulerKind::Gang, SchedulerKind::ImplicitCosched]
                .into_iter()
                .map(move |s| (i, s))
        })
        .collect();
    let results = parallel_sweep(configs.clone(), |&(i, s)| {
        normalised(workloads[i].1.clone(), s)
    });
    let mut table = std::collections::HashMap::new();
    for (cfg, r) in configs.iter().zip(&results) {
        table.insert(*cfg, *r);
    }

    println!(
        "{:<24} {:>12} {:>12} {:>12}",
        "workload", "gang", "ICS", "ICS/gang"
    );
    let mut ratios = Vec::new();
    for (i, (name, _)) in workloads.iter().enumerate() {
        let g = table[&(i, SchedulerKind::Gang)];
        let ics = table[&(i, SchedulerKind::ImplicitCosched)];
        println!(
            "{:<24} {:>10.2} s {:>10.2} s {:>11.2}x",
            name,
            g,
            ics,
            ics / g
        );
        ratios.push(ics / g);
    }

    check(
        ratios[0] < 1.10,
        "coarse-grained: ICS within 10% of gang scheduling",
    );
    check(
        ratios.windows(2).all(|w| w[1] > w[0]),
        "the ICS penalty grows as the communication grain shrinks",
    );
    check(
        ratios[2] > 1.5,
        "fine-grained: implicit coscheduling falls far behind gang scheduling",
    );
    println!("coscheduling_comparison: all shape checks passed");
}
