//! Table 8 — "A selection of scheduling quanta found in the literature":
//! the minimal feasible scheduling quantum (slowdown ≤ 2%) for RMS,
//! SCore-D and STORM.
//!
//! The RMS and SCore-D entries come from their published overhead models;
//! STORM's is *measured* here by gang-scheduling two SWEEP3D instances and
//! comparing against an effectively-unsliced baseline.

use storm_baselines::{min_feasible_quantum, slowdown, SchedulerModel};
use storm_bench::{check, parallel_sweep, render_comparisons, Comparison};
use storm_core::prelude::*;

fn sweep_runtime(quantum: SimSpan, seed: u64) -> Option<f64> {
    let cfg = ClusterConfig::gang_cluster()
        .with_timeslice(quantum)
        .with_seed(seed);
    if cfg.quantum_infeasible() {
        return None;
    }
    let mut c = Cluster::new(cfg);
    let a = c.submit(JobSpec::new(AppSpec::sweep3d_default(), 64).with_ranks_per_node(2));
    let b = c.submit(JobSpec::new(AppSpec::sweep3d_default(), 64).with_ranks_per_node(2));
    c.run_until_idle();
    let done = c
        .job(a)
        .metrics
        .completed
        .unwrap()
        .max(c.job(b).metrics.completed.unwrap());
    Some(done.as_secs_f64() / 2.0)
}

fn main() {
    println!("Table 8: minimal feasible scheduling quantum (slowdown <= 2%)");
    println!(
        "{:<10} {:>22} {:>10}",
        "system", "min feasible quantum", "nodes"
    );
    for m in SchedulerModel::ALL {
        let q = min_feasible_quantum(m, 0.02);
        println!(
            "{:<10} {:>20} {:>10}",
            m.name(),
            format!("{q}"),
            m.reference_nodes()
        );
    }

    // Published slowdowns at the published quanta.
    let rows = vec![
        Comparison::new(
            "RMS slowdown @ 30 s",
            Some(1.8),
            slowdown(SchedulerModel::Rms, SimSpan::from_secs(30)).unwrap() * 100.0,
            "%",
        ),
        Comparison::new(
            "SCore-D slowdown @ 100 ms",
            Some(2.0),
            slowdown(SchedulerModel::ScoreD, SimSpan::from_millis(100)).unwrap() * 100.0,
            "%",
        ),
    ];
    println!("\n{}", render_comparisons("published anchors", &rows));

    // Measure STORM's slowdown-vs-quantum curve in the simulator.
    println!("STORM measured (gang-scheduled SWEEP3D x2, 32 nodes / 64 PEs):");
    let quanta = vec![
        SimSpan::from_micros(100),
        SimSpan::from_micros(300),
        SimSpan::from_millis(2),
        SimSpan::from_millis(50),
        SimSpan::from_secs(2),
    ];
    let results = parallel_sweep(quanta.clone(), |&q| sweep_runtime(q, 88));
    let baseline = results.last().unwrap().expect("2 s quantum baseline");
    let mut at_2ms = f64::NAN;
    for (q, r) in quanta.iter().zip(&results) {
        match r {
            Some(t) => {
                let slow = (t - baseline) / baseline * 100.0;
                println!(
                    "  quantum {:>10}: {:.2} s ({:+.2}% vs 2 s quantum)",
                    format!("{q}"),
                    t,
                    slow
                );
                if *q == SimSpan::from_millis(2) {
                    at_2ms = slow;
                }
            }
            None => println!(
                "  quantum {:>10}: infeasible (NM control-message meltdown)",
                format!("{q}")
            ),
        }
    }

    check(
        results[0].is_none(),
        "100 us quantum is below STORM's hard floor",
    );
    check(results[1].is_some(), "300 us quantum is feasible");
    check(
        at_2ms.abs() < 2.0,
        "no observable slowdown (<2%) at a 2 ms quantum — the Table 8 row",
    );
    let storm_q = min_feasible_quantum(SchedulerModel::Storm, 0.02);
    let scored_q = min_feasible_quantum(SchedulerModel::ScoreD, 0.02);
    let rms_q = min_feasible_quantum(SchedulerModel::Rms, 0.02);
    check(
        scored_q.as_nanos() >= 50 * storm_q.as_nanos(),
        "STORM is about two orders of magnitude below SCore-D",
    );
    check(
        rms_q.as_nanos() > 100 * scored_q.as_nanos(),
        "SCore-D in turn sits far below RMS",
    );
    println!("table8: all shape checks passed");
}
