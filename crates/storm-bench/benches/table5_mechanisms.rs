//! Table 5 — "Measured/expected performance of the STORM mechanisms" on
//! Gigabit Ethernet, Myrinet, InfiniBand, QsNET and BlueGene/L:
//! COMPARE-AND-WRITE latency and XFER-AND-SIGNAL aggregate bandwidth.
//!
//! Besides printing the modelled table, this bench *executes* both the
//! hardware and the software-emulated mechanism implementations from
//! `storm-mech` and checks the orders-of-magnitude gap the paper's
//! portability argument rests on.

use storm_bench::{check, render_comparisons, Comparison};
use storm_mech::{CmpOp, MechanismImpl, Mechanisms, NodeId, NodeSet};
use storm_net::{BackgroundLoad, BufferPlacement, NetworkKind};
use storm_sim::{DeterministicRng, SimTime};

fn main() {
    println!("Table 5: expected mechanism performance per network");
    println!(
        "{:<18} {:>24} {:>26}",
        "network", "COMPARE-AND-WRITE (us)", "XFER-AND-SIGNAL (MB/s)"
    );
    let n = 4096u32;
    for kind in NetworkKind::ALL {
        let perf = kind.mechanism_perf(n);
        let caw = format!("{:.1}", perf.caw_latency.as_micros_f64());
        let xfer = perf
            .xfer_aggregate_bw
            .map(|b| format!("{:.0} (~{:.0}/node)", b / 1e6, b / 1e6 / f64::from(n)))
            .unwrap_or_else(|| "not available".to_string());
        println!("{:<18} {:>24} {:>26}", kind.name(), caw, xfer);
    }

    // Paper's formulas evaluated at n = 4 096 (lg n = 12).
    let rows = vec![
        Comparison::new(
            "GigE CAW (46 lg n)",
            Some(46.0 * 12.0),
            NetworkKind::GigabitEthernet
                .mechanism_perf(n)
                .caw_latency
                .as_micros_f64(),
            "us",
        ),
        Comparison::new(
            "Myrinet CAW (20 lg n)",
            Some(20.0 * 12.0),
            NetworkKind::Myrinet
                .mechanism_perf(n)
                .caw_latency
                .as_micros_f64(),
            "us",
        ),
        Comparison::new(
            "QsNET CAW (<10)",
            Some(10.0),
            NetworkKind::QsNet
                .mechanism_perf(n)
                .caw_latency
                .as_micros_f64(),
            "us",
        ),
        Comparison::new(
            "BlueGene/L CAW (<2)",
            Some(2.0),
            NetworkKind::BlueGeneL
                .mechanism_perf(n)
                .caw_latency
                .as_micros_f64(),
            "us",
        ),
        Comparison::new(
            "Myrinet X&S (15n MB/s)",
            Some(15.0 * f64::from(n)),
            NetworkKind::Myrinet
                .mechanism_perf(n)
                .xfer_aggregate_bw
                .unwrap()
                / 1e6,
            "MB/s",
        ),
        Comparison::new(
            "BlueGene/L X&S (700n MB/s)",
            Some(700.0 * f64::from(n)),
            NetworkKind::BlueGeneL
                .mechanism_perf(n)
                .xfer_aggregate_bw
                .unwrap()
                / 1e6,
            "MB/s",
        ),
    ];
    println!(
        "\n{}",
        render_comparisons("Table 5 vs paper formulas", &rows)
    );

    // Execute the mechanisms for real on 1 024 nodes.
    println!("Executed mechanism timings on 1 024 nodes:");
    let nodes = 1024u32;
    let all = NodeSet::All(nodes);
    let mut rng = DeterministicRng::new(55);
    let mut executed = Vec::new();
    for kind in NetworkKind::ALL {
        let mut mech = match kind {
            NetworkKind::QsNet => Mechanisms::qsnet(nodes),
            other => Mechanisms::new(MechanismImpl::emulated(other), nodes),
        };
        let var = mech.memory.alloc_var(0);
        let caw = mech.compare_and_write(
            SimTime::ZERO,
            &all,
            var,
            CmpOp::Ge,
            0,
            None,
            BackgroundLoad::NONE,
        );
        let xfer = mech
            .xfer_and_signal(
                SimTime::ZERO,
                NodeId(0),
                &all,
                1_000_000,
                BufferPlacement::NicMemory,
                None,
                None,
                BackgroundLoad::NONE,
                &mut rng,
            )
            .unwrap();
        let caw_us = caw.complete.as_micros_f64();
        let xfer_ms = xfer.all_arrived().as_millis_f64();
        println!(
            "  {:<18} CAW {:>10.1} us   1 MB multicast delivered in {:>10.2} ms",
            kind.name(),
            caw_us,
            xfer_ms
        );
        executed.push((kind, caw_us, xfer_ms));
    }

    let caw_of = |k: NetworkKind| executed.iter().find(|e| e.0 == k).unwrap().1;
    let xfer_of = |k: NetworkKind| executed.iter().find(|e| e.0 == k).unwrap().2;
    check(
        caw_of(NetworkKind::QsNet) < 10.0,
        "executed QsNET CAW stays under 10 us at 1 024 nodes",
    );
    check(
        caw_of(NetworkKind::GigabitEthernet) / caw_of(NetworkKind::QsNet) > 50.0,
        "hardware conditionals beat emulated trees by >50x",
    );
    check(
        caw_of(NetworkKind::BlueGeneL) < caw_of(NetworkKind::QsNet),
        "BlueGene/L's global tree is the fastest CAW",
    );
    check(
        xfer_of(NetworkKind::QsNet) < xfer_of(NetworkKind::Myrinet),
        "hardware multicast delivers faster than store-and-forward trees",
    );
    println!("table5: all shape checks passed");
}
