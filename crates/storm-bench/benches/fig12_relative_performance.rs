//! Figure 12 — "Relative performance of Cplant, BProc, and STORM": the two
//! launchers that, like STORM, scale logarithmically, renormalised to the
//! extrapolated STORM launch time (STORM ≡ 1.0), out to 4 096 nodes.

use storm_baselines::Launcher;
use storm_bench::{check, pow2_range};

fn main() {
    println!("Figure 12: launch time as a factor of STORM's (12 MB binary)");
    let axis = pow2_range(1, 4096);
    println!(
        "{:>8} {:>10} {:>10} {:>8}",
        "nodes", "Cplant", "BProc", "STORM"
    );
    let mut cplant_factors = Vec::new();
    let mut bproc_factors = Vec::new();
    for &n in &axis {
        let storm = Launcher::Storm.fitted_time_secs(n);
        let cplant = Launcher::Cplant.fitted_time_secs(n) / storm;
        let bproc = Launcher::BProc.fitted_time_secs(n) / storm;
        println!("{n:>8} {cplant:>10.1} {bproc:>10.1} {:>8.1}", 1.0);
        cplant_factors.push(cplant);
        bproc_factors.push(bproc);
    }

    let cplant_4k = *cplant_factors.last().unwrap();
    let bproc_4k = *bproc_factors.last().unwrap();
    println!("\nAt 4 096 nodes: Cplant = {cplant_4k:.0}x STORM, BProc = {bproc_4k:.0}x STORM");

    check(
        (150.0..=250.0).contains(&cplant_4k),
        "Cplant lands around 200x STORM at 4 096 nodes",
    );
    check(
        (30.0..=60.0).contains(&bproc_4k),
        "BProc lands around 45x STORM at 4 096 nodes",
    );
    check(
        cplant_factors.windows(2).all(|w| w[1] >= w[0] * 0.98),
        "the Cplant factor grows (or holds) with cluster size",
    );
    check(
        bproc_factors
            .iter()
            .zip(&cplant_factors)
            .all(|(b, c)| b < c),
        "BProc stays below Cplant at every size",
    );
    check(
        axis.iter()
            .zip(&bproc_factors)
            .filter(|&(&n, _)| n >= 4)
            .all(|(_, &b)| b > 1.0),
        "STORM is the fastest at every non-trivial size",
    );
    println!("fig12: all shape checks passed");
}
