//! Figure 6 — "Read bandwidth for a 12 MB binary image from NFS, a local
//! hard disk, and a local RAM disk, with buffers placed in NIC and main
//! memory".
//!
//! These are the six filesystem-model bars that feed the launch pipeline's
//! read stage; the bench measures them end-to-end by timing a 12 MB read
//! through `storm-fs` and also exercises the NFS server model's collapse.

use storm_bench::{check, render_comparisons, Comparison};
use storm_fs::FsKind;
use storm_net::BufferPlacement;

fn measured_bw(fs: FsKind, placement: BufferPlacement) -> f64 {
    let bytes = 12_000_000u64;
    let span = fs.read_span(bytes, placement);
    bytes as f64 / span.as_secs_f64() / 1e6
}

fn main() {
    println!("Figure 6: read bandwidth for a 12 MB binary (MB/s)");
    // The paper's six bars.
    let paper: &[(FsKind, f64, f64)] = &[
        (FsKind::Nfs, 11.4, 11.2),
        (FsKind::LocalExt2, 31.5, 30.5),
        (FsKind::RamDisk, 120.0, 218.0),
    ];
    let mut rows = Vec::new();
    println!(
        "{:>14} {:>14} {:>14}",
        "filesystem", "NIC memory", "main memory"
    );
    for &(fs, p_nic, p_main) in paper {
        let nic = measured_bw(fs, BufferPlacement::NicMemory);
        let main = measured_bw(fs, BufferPlacement::MainMemory);
        println!("{:>14} {:>14.1} {:>14.1}", fs.name(), nic, main);
        rows.push(Comparison::new(
            format!("{} read, NIC buffers", fs.name()),
            Some(p_nic),
            nic,
            "MB/s",
        ));
        rows.push(Comparison::new(
            format!("{} read, main-memory buffers", fs.name()),
            Some(p_main),
            main,
            "MB/s",
        ));
    }
    println!("\n{}", render_comparisons("Fig. 6 vs paper", &rows));

    for r in &rows {
        let ratio = r.ratio().expect("paper value");
        check(
            (0.98..=1.02).contains(&ratio),
            &format!("{} within 2% of the paper", r.label),
        );
    }
    // The figure's qualitative point: buffer placement only matters for the
    // fast RAM disk, where main memory wins big.
    let ram_gain = measured_bw(FsKind::RamDisk, BufferPlacement::MainMemory)
        / measured_bw(FsKind::RamDisk, BufferPlacement::NicMemory);
    let nfs_gain = measured_bw(FsKind::Nfs, BufferPlacement::MainMemory)
        / measured_bw(FsKind::Nfs, BufferPlacement::NicMemory);
    check(
        ram_gain > 1.5,
        "RAM disk reads much faster into main memory",
    );
    check(
        (0.95..=1.05).contains(&nfs_gain),
        "for slow filesystems buffer placement makes little difference",
    );
    println!("fig6: all shape checks passed");
}
