//! Figure 8 — "Send time as a function of chunk size and slot count"
//! (12 MB binary, 64 nodes, cross-product of {2,4,8,16} receive-queue
//! slots and {32..1024} KB chunks).
//!
//! §3.3.1's findings: the protocol is almost insensitive to the slot
//! count; best performance at 4 slots × 512 KB; small chunks pay per-
//! fragment overhead; very deep queues pay NIC-TLB misses.

use storm_bench::{check, parallel_sweep, render_comparisons, repeat, Comparison};
use storm_core::prelude::*;

const REPS: u64 = 3;

fn send_time(chunk_kb: u64, slots: u32, seed: u64) -> f64 {
    let cfg = ClusterConfig::paper_cluster()
        .with_transfer_protocol(chunk_kb * 1024, slots)
        .with_seed(seed);
    let mut c = Cluster::new(cfg);
    let j = c.submit(JobSpec::new(AppSpec::do_nothing_mb(12), 256));
    c.run_until_idle();
    c.job(j).metrics.send_span().expect("send").as_millis_f64()
}

fn main() {
    println!("Figure 8: 12 MB send time vs chunk size and slot count (ms, mean of {REPS})");
    let chunks_kb = [32u64, 64, 128, 256, 512, 1024];
    let slot_counts = [2u32, 4, 8, 16];

    let configs: Vec<(u64, u32)> = chunks_kb
        .iter()
        .flat_map(|&c| slot_counts.iter().map(move |&s| (c, s)))
        .collect();
    let results = parallel_sweep(configs.clone(), |&(c, s)| {
        repeat(REPS, c * 131 + u64::from(s), |seed| send_time(c, s, seed)).mean()
    });
    let mut table = std::collections::HashMap::new();
    for (cfg, r) in configs.iter().zip(&results) {
        table.insert(*cfg, *r);
    }

    print!("{:>10}", "chunk KB");
    for &s in &slot_counts {
        print!(" {s:>9} slots"); // column headers
    }
    println!();
    for &ckb in &chunks_kb {
        print!("{ckb:>10}");
        for &s in &slot_counts {
            print!(" {:>13.1}  ", table[&(ckb, s)]);
        }
        println!();
    }

    let best_cfg = configs
        .iter()
        .min_by(|a, b| table[a].partial_cmp(&table[b]).unwrap())
        .copied()
        .unwrap();
    let best = table[&best_cfg];
    let paper_best = table[&(512, 4)];
    let rows = vec![
        Comparison::new("send @ 512 KB x 4 slots", Some(96.0), paper_best, "ms"),
        Comparison::new("worst (32 KB chunks)", Some(145.0), table[&(32, 2)], "ms"),
    ];
    println!("\n{}", render_comparisons("Fig. 8 anchors", &rows));
    println!(
        "best configuration measured: {} KB x {} slots = {best:.1} ms",
        best_cfg.0, best_cfg.1
    );

    check(
        paper_best <= best * 1.03,
        "4 slots x 512 KB is (within 3% of) the best configuration",
    );
    check(
        table[&(32, 4)] > paper_best * 1.2,
        "small 32 KB chunks pay >20% per-fragment overhead",
    );
    check(
        table[&(1024, 4)] >= paper_best * 0.99,
        "1 MB chunks are no better than 512 KB (pipeline fill cost)",
    );
    // Slot-count insensitivity at the preferred chunk size.
    let at512: Vec<f64> = slot_counts.iter().map(|&s| table[&(512, s)]).collect();
    let lo = at512.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = at512.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    check(
        hi / lo < 1.10,
        "protocol almost insensitive to the number of slots at 512 KB",
    );
    check(
        table[&(512, 16)] >= table[&(512, 4)],
        "16 slots are no faster than 4 (NIC TLB misses)",
    );
    println!("fig8: all shape checks passed");
}
