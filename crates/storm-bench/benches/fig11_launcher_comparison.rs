//! Figure 11 — "Measured and predicted performance of various job
//! launchers": rsh, RMS, GLUnix, Cplant, BProc and STORM, measured anchors
//! plus fitted curves extrapolated to 16 384 nodes (log-log in the paper).
//!
//! In addition to the fitted curves (Table 7), this bench runs the
//! *structural* launcher simulations (serial rsh, NFS demand paging, a
//! binary-distribution tree) over the same substrate, confirming the
//! linear / collapsing / logarithmic behaviours the fits encode.

use storm_baselines::{Launcher, SimulatedLauncher};
use storm_bench::{check, pow2_range, render_comparisons, Comparison};
use storm_sim::DeterministicRng;

fn main() {
    println!("Figure 11: job-launch time vs cluster size, all systems (seconds)");
    let axis = pow2_range(1, 16_384);
    print!("{:>8}", "nodes");
    for l in Launcher::ALL {
        print!(" {:>10}", l.name());
    }
    println!();
    for &n in &axis {
        print!("{n:>8}");
        for l in Launcher::ALL {
            print!(" {:>10.3}", l.fitted_time_secs(n));
        }
        println!();
    }

    println!("\nMeasured anchors from the literature (Table 6):");
    let mut rows = Vec::new();
    for l in Launcher::ALL {
        let m = l.measured();
        rows.push(Comparison::new(
            format!("{} ({} nodes, {} MB)", l.name(), m.nodes, m.binary_mb),
            Some(m.time.as_secs_f64()),
            l.fitted_time_secs(m.nodes),
            "s",
        ));
    }
    println!("{}", render_comparisons("fit vs measured anchor", &rows));

    // Structural simulations over the substrate.
    println!("Structural launcher simulations (12 MB):");
    let mut rng = DeterministicRng::new(11);
    println!(
        "{:>8} {:>12} {:>12} {:>12}",
        "nodes", "serial rsh", "NFS paging", "tree (f=2)"
    );
    let mut tree_prev = 0.0;
    for &n in &[16u32, 64, 256, 1024, 4096] {
        let rsh = SimulatedLauncher::SerialRsh
            .launch_time(n, 0, &mut rng)
            .unwrap()
            .as_secs_f64();
        let nfs = SimulatedLauncher::NfsDemandPaging
            .launch_time(n, 12_000_000, &mut rng)
            .map(|t| format!("{:.1}", t.as_secs_f64()))
            .unwrap_or_else(|| "TIMEOUT".to_string());
        let tree = SimulatedLauncher::DistributionTree { fanout: 2 }
            .launch_time(n, 12_000_000, &mut rng)
            .unwrap()
            .as_secs_f64();
        println!("{n:>8} {rsh:>12.1} {nfs:>12} {tree:>12.2}");
        tree_prev = tree;
    }

    // Shape checks straight from the paper's argument.
    for &n in &axis[3..] {
        let storm = Launcher::Storm.fitted_time_secs(n);
        for l in Launcher::ALL {
            if l != Launcher::Storm {
                check(
                    l.fitted_time_secs(n) > storm,
                    &format!("STORM beats {} at {n} nodes", l.name()),
                );
            }
        }
    }
    let storm64 = Launcher::Storm.fitted_time_secs(64);
    let rms64 = Launcher::Rms.fitted_time_secs(64);
    check(
        rms64 / storm64 > 30.0,
        "an order of magnitude (and more) faster than RMS on the same hardware",
    );
    check(
        Launcher::Rsh.fitted_time_secs(4096) > 3_000.0,
        "iterated rsh extrapolates to about an hour at 4 096 nodes",
    );
    check(
        tree_prev < 10.0,
        "log-scaling tree launchers stay within seconds at 4 096 nodes",
    );
    let mut rng2 = DeterministicRng::new(12);
    check(
        SimulatedLauncher::NfsDemandPaging
            .launch_time(2048, 12_000_000, &mut rng2)
            .is_none(),
        "shared-filesystem demand paging fails outright under extreme load",
    );
    println!("fig11: all shape checks passed");
}
