//! Simulator-core throughput: events/sec and events-per-timeslice across
//! cluster sizes, with engine-level group delivery on and off.
//!
//! This is the bench behind the 4096-node scalability claim: with group
//! delivery the event queue sees O(jobs) entries per timeslice, so the
//! pop count per strobe stays flat as the machine grows, while the legacy
//! per-NM encoding grows linearly. The acceptance bar is a ≥ 50× reduction
//! in delivered events per timeslice at the largest size.
//!
//! Emits `BENCH_simcore.json` (override the path with `BENCH_OUT`); set
//! `STORM_BENCH_SMOKE=1` for a small CI axis.

use std::fmt::Write as _;
use std::time::Instant;
use storm_bench::check;
use storm_core::prelude::*;

struct Row {
    nodes: u32,
    group: bool,
    events: u64,
    messages: u64,
    strobes: u64,
    wall_s: f64,
}

impl Row {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_s.max(1e-9)
    }

    fn events_per_timeslice(&self) -> f64 {
        self.events as f64 / (self.strobes as f64).max(1.0)
    }
}

/// A fixed-size MPL-2 workload (launch + transfer + gang rotation) on an
/// `nodes`-wide machine: the job-side work is constant, so any growth in
/// event counts is pure fan-out overhead.
fn run(nodes: u32, group: bool) -> Row {
    let cfg = ClusterConfig::paper_cluster()
        .with_nodes(nodes)
        .with_seed(0x51_C0DE)
        .with_group_delivery(group);
    let mut c = Cluster::new(cfg);
    for _ in 0..2 {
        c.submit(JobSpec::new(
            AppSpec::Synthetic {
                compute: SimSpan::from_millis(100),
            },
            64,
        ));
    }
    let t0 = Instant::now();
    c.run_until_idle();
    let wall_s = t0.elapsed().as_secs_f64();
    Row {
        nodes,
        group,
        events: c.events_delivered(),
        messages: c.messages_handled(),
        strobes: c.world().stats.strobes,
        wall_s,
    }
}

fn main() {
    let smoke = std::env::var("STORM_BENCH_SMOKE").is_ok();
    let axis: &[u32] = if smoke {
        &[64, 256]
    } else {
        &[64, 256, 1024, 4096]
    };
    println!("Simulator throughput: group delivery vs per-NM events");
    println!(
        "{:>6} {:>8} {:>12} {:>12} {:>9} {:>12} {:>11}",
        "nodes", "mode", "events", "messages", "ev/slice", "events/sec", "wall"
    );

    let mut rows = Vec::new();
    for &n in axis {
        for group in [false, true] {
            let row = run(n, group);
            println!(
                "{:>6} {:>8} {:>12} {:>12} {:>9.1} {:>12.0} {:>9.3} s",
                row.nodes,
                if group { "group" } else { "unicast" },
                row.events,
                row.messages,
                row.events_per_timeslice(),
                row.events_per_sec(),
                row.wall_s,
            );
            rows.push(row);
        }
    }

    // Either encoding must invoke every handler the same number of times.
    for pair in rows.chunks(2) {
        check(
            pair[0].messages == pair[1].messages,
            &format!(
                "{} nodes: handler invocations identical across modes",
                pair[0].nodes
            ),
        );
    }
    // The headline number: delivered events per timeslice at the largest
    // size, legacy vs grouped.
    let max_n = *axis.last().unwrap();
    let at_max = |group: bool| {
        rows.iter()
            .find(|r| r.nodes == max_n && r.group == group)
            .unwrap()
            .events_per_timeslice()
    };
    let ratio = at_max(false) / at_max(true);
    println!("events-per-timeslice reduction at {max_n} nodes: {ratio:.0}x");
    let bar = if smoke { 20.0 } else { 50.0 };
    check(
        ratio >= bar,
        &format!("group delivery cuts events/timeslice >= {bar:.0}x at {max_n} nodes"),
    );
    // Grouped queue load per timeslice is O(jobs): flat in machine size.
    let grouped: Vec<&Row> = rows.iter().filter(|r| r.group).collect();
    let lo = grouped
        .iter()
        .map(|r| r.events_per_timeslice())
        .fold(f64::INFINITY, f64::min);
    let hi = grouped
        .iter()
        .map(|r| r.events_per_timeslice())
        .fold(f64::NEG_INFINITY, f64::max);
    check(
        hi / lo < 2.0,
        &format!("grouped events/timeslice flat across sizes ({lo:.1}-{hi:.1})"),
    );

    // Hand-rolled JSON (the repo vendors no serde).
    let mut json = String::from("{\n  \"bench\": \"simcore\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"nodes\": {}, \"group_delivery\": {}, \"events_delivered\": {}, \
             \"messages_handled\": {}, \"strobes\": {}, \"wall_seconds\": {:.6}, \
             \"events_per_sec\": {:.1}, \"events_per_timeslice\": {:.2}}}{}",
            r.nodes,
            r.group,
            r.events,
            r.messages,
            r.strobes,
            r.wall_s,
            r.events_per_sec(),
            r.events_per_timeslice(),
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    let _ = writeln!(
        json,
        "  ],\n  \"events_per_timeslice_reduction_at_{max_n}\": {ratio:.1}\n}}"
    );
    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_simcore.json".into());
    std::fs::write(&out, json).expect("write bench json");
    println!("bench_sim_throughput: all checks passed; wrote {out}");
}
