//! Simulator-core throughput: events/sec, events-per-timeslice and queue
//! traffic across cluster sizes, group delivery on and off, out to 16384
//! nodes — the scalability bench behind the simulator-core claims.
//!
//! With group delivery the event queue sees O(jobs) entries per timeslice,
//! so the pop count per strobe stays flat as the machine grows while the
//! legacy per-NM encoding grows linearly (the acceptance bar: ≥ 50×
//! fewer delivered events per timeslice at the largest size). The sweep
//! itself runs through [`parallel_sweep`] — one independent `Cluster` and
//! derived seed per configuration, merged in configuration order.
//!
//! A second section reruns the Figure-5 gang workloads at 4096 nodes on
//! the *legacy* simulator core (binary-heap event queue, per-NM unicast
//! fan-out, no idle fast-forward) and on the current defaults
//! (timing wheel, group delivery, fast-forward), checking the cores agree
//! bit-for-bit on simulated results while the optimized core is ≥ 2×
//! faster in wall-clock; the parallel runner's speedup over the summed
//! serial estimate is recorded alongside.
//!
//! Emits `BENCH_simcore.json` (override the path with `BENCH_OUT`); set
//! `STORM_BENCH_SMOKE=1` for a small CI axis.

use std::fmt::Write as _;
use std::time::Instant;
use storm_bench::{check, derive_seed, parallel_sweep, sweep_workers, write_json_artifact};
use storm_core::prelude::*;

struct Row {
    nodes: u32,
    group: bool,
    threads: u32,
    events: u64,
    messages: u64,
    strobes: u64,
    queue_pushed: u64,
    queue_peak: usize,
    arena_peak: usize,
    arena_bytes: usize,
    wall_s: f64,
    digest: u64,
    par_windows: u64,
}

impl Row {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_s.max(1e-9)
    }

    fn events_per_timeslice(&self) -> f64 {
        self.events as f64 / (self.strobes as f64).max(1.0)
    }
}

/// FNV-1a over a run's full observable surface — queue/arena accounting,
/// cluster stats, and the telemetry snapshot. (The queue's own
/// `interleaving_digest` only accumulates under a DST hook, which
/// auto-suspends parallel windows, so it cannot distinguish these runs.)
fn observables_digest(c: &Cluster) -> u64 {
    let text = format!(
        "{:?}|{:?}|{}|{}|{:?}|{}",
        c.queue_stats(),
        c.arena_stats(),
        c.events_delivered(),
        c.messages_handled(),
        c.world().stats,
        c.metrics_snapshot().to_json(),
    );
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A fixed-size MPL-2 workload (launch + transfer + gang rotation) on an
/// `nodes`-wide machine: the job-side work is constant, so any growth in
/// event counts is pure fan-out overhead.
fn run(nodes: u32, group: bool, threads: u32) -> Row {
    let cfg = ClusterConfig::paper_cluster()
        .with_nodes(nodes)
        .with_seed(0x51_C0DE)
        .with_group_delivery(group)
        .with_threads(threads);
    let mut c = Cluster::new(cfg);
    for _ in 0..2 {
        c.submit(JobSpec::new(
            AppSpec::Synthetic {
                compute: SimSpan::from_millis(100),
            },
            64,
        ));
    }
    let t0 = Instant::now();
    c.run_until_idle();
    let wall_s = t0.elapsed().as_secs_f64();
    let qs = c.queue_stats();
    let ar = c.arena_stats();
    Row {
        nodes,
        group,
        threads,
        events: c.events_delivered(),
        messages: c.messages_handled(),
        strobes: c.world().stats.strobes,
        queue_pushed: qs.pushed,
        queue_peak: qs.peak,
        arena_peak: ar.peak,
        arena_bytes: ar.payload_bytes,
        wall_s,
        digest: observables_digest(&c),
        par_windows: c.parallel_windows(),
    }
}

/// One Figure-5 gang configuration (app × MPL) at a fixed node count,
/// on either the legacy or the optimized simulator core. Returns the
/// simulated per-MPL runtime (seconds) and the wall-clock spent.
fn fig5_config(app: &AppSpec, nodes: u32, mpl: u32, seed: u64, legacy: bool) -> (f64, f64) {
    let mut cfg = ClusterConfig::gang_cluster()
        .with_nodes(nodes)
        .with_seed(seed);
    if legacy {
        cfg = cfg
            .with_queue_backend(QueueBackend::Heap)
            .with_group_delivery(false)
            .with_fast_forward(false);
    }
    let t0 = Instant::now();
    let mut c = Cluster::new(cfg);
    let jobs: Vec<_> = (0..mpl)
        .map(|_| c.submit(JobSpec::new(app.clone(), nodes * 2).with_ranks_per_node(2)))
        .collect();
    c.run_until_idle();
    let last = jobs
        .iter()
        .map(|&j| c.job(j).metrics.completed.expect("done"))
        .max()
        .expect("jobs");
    (
        last.as_secs_f64() / f64::from(mpl),
        t0.elapsed().as_secs_f64(),
    )
}

fn main() {
    let smoke = std::env::var("STORM_BENCH_SMOKE").is_ok();
    let axis: &[u32] = if smoke {
        &[64, 256]
    } else {
        &[64, 256, 1024, 4096, 16384]
    };
    println!("Simulator throughput: group delivery vs per-NM events");
    println!(
        "{:>6} {:>8} {:>8} {:>12} {:>12} {:>9} {:>12} {:>12} {:>9} {:>10} {:>11}",
        "nodes",
        "mode",
        "threads",
        "events",
        "messages",
        "ev/slice",
        "q.pushed",
        "q.peak",
        "ar.peak",
        "events/sec",
        "wall"
    );

    let configs: Vec<(u32, bool)> = axis.iter().flat_map(|&n| [(n, false), (n, true)]).collect();
    let rows = parallel_sweep(configs, |&(n, group)| run(n, group, 1));
    for row in &rows {
        println!(
            "{:>6} {:>8} {:>8} {:>12} {:>12} {:>9.1} {:>12} {:>12} {:>9} {:>10.0} {:>9.3} s",
            row.nodes,
            if row.group { "group" } else { "unicast" },
            row.threads,
            row.events,
            row.messages,
            row.events_per_timeslice(),
            row.queue_pushed,
            row.queue_peak,
            row.arena_peak,
            row.events_per_sec(),
            row.wall_s,
        );
    }

    // Either encoding must invoke every handler the same number of times.
    for pair in rows.chunks(2) {
        check(
            pair[0].messages == pair[1].messages,
            &format!(
                "{} nodes: handler invocations identical across modes",
                pair[0].nodes
            ),
        );
    }
    // The headline number: delivered events per timeslice at the largest
    // size, legacy vs grouped.
    let max_n = *axis.last().unwrap();
    let at_max = |group: bool| {
        rows.iter()
            .find(|r| r.nodes == max_n && r.group == group)
            .unwrap()
            .events_per_timeslice()
    };
    let ratio = at_max(false) / at_max(true);
    println!("events-per-timeslice reduction at {max_n} nodes: {ratio:.0}x");
    let bar = if smoke { 20.0 } else { 50.0 };
    check(
        ratio >= bar,
        &format!("group delivery cuts events/timeslice >= {bar:.0}x at {max_n} nodes"),
    );
    // Grouped queue load per timeslice is O(jobs): flat in machine size.
    let grouped: Vec<&Row> = rows.iter().filter(|r| r.group).collect();
    let lo = grouped
        .iter()
        .map(|r| r.events_per_timeslice())
        .fold(f64::INFINITY, f64::min);
    let hi = grouped
        .iter()
        .map(|r| r.events_per_timeslice())
        .fold(f64::NEG_INFINITY, f64::max);
    check(
        hi / lo < 2.0,
        &format!("grouped events/timeslice flat across sizes ({lo:.1}-{hi:.1})"),
    );

    // Warning rows accumulated into the artifact: conditions that make a
    // recorded number unrepresentative rather than wrong.
    let mut warnings: Vec<String> = Vec::new();

    // --------------------------------------- parallel engine section —
    // Deterministic intra-timeslice parallelism on the unicast workload
    // at the largest size: the serial baseline and the 4-thread run must
    // produce the same interleaving digest and handler counts (the
    // zero-perturbation contract), and on multi-core hardware the
    // parallel run must be faster. Both runs are standalone (not inside
    // `parallel_sweep`) so neither wall-clock is polluted by sweep
    // neighbours.
    let par_threads: u32 = 4;
    let hw_threads = sweep_workers(usize::MAX);
    println!("parallel engine at {max_n} nodes, unicast: serial vs {par_threads} threads");
    let ser = run(max_n, false, 1);
    let par = run(max_n, false, par_threads);
    let speedup = par.events_per_sec() / ser.events_per_sec();
    println!(
        "  serial   {:>10.0} events/sec (digest {:#018x})",
        ser.events_per_sec(),
        ser.digest
    );
    println!(
        "  parallel {:>10.0} events/sec (digest {:#018x}, {} parallel windows, {speedup:.2}x)",
        par.events_per_sec(),
        par.digest,
        par.par_windows
    );
    check(
        ser.digest == par.digest,
        "serial and parallel runs produce identical observables digests",
    );
    check(
        ser.messages == par.messages && ser.events == par.events,
        "serial and parallel runs handle identical event counts",
    );
    check(
        par.par_windows > 0,
        "the parallel run actually exercised the parallel window path",
    );
    if hw_threads >= 2 {
        check(
            speedup >= 1.5,
            &format!("parallel engine >= 1.5x serial at {max_n} nodes ({speedup:.2}x)"),
        );
    } else {
        let w = format!(
            "parallel speedup unmeasurable: 1 hardware thread available; \
             {par_threads}-thread run recorded {speedup:.2}x (coordination \
             overhead only, no parallelism possible)"
        );
        println!("   [warning] {w}");
        warnings.push(w);
    }

    // ------------------------------------------------ fig5 sweep section —
    // The four Figure-5 series at one large size, legacy core vs current
    // defaults. Simulated results must agree exactly; wall-clock must not.
    let fig5_nodes: u32 = if smoke { 256 } else { 4096 };
    let series: Vec<(&str, AppSpec, u32)> = vec![
        ("SWEEP3D MPL=1", AppSpec::sweep3d_default(), 1),
        ("SWEEP3D MPL=2", AppSpec::sweep3d_default(), 2),
        ("synthetic MPL=1", AppSpec::synthetic_default(), 1),
        ("synthetic MPL=2", AppSpec::synthetic_default(), 2),
    ];
    println!("fig5 gang workloads at {fig5_nodes} nodes: legacy core vs optimized core");
    let legacy: Vec<(f64, f64)> = series
        .iter()
        .enumerate()
        .map(|(si, (_, app, mpl))| {
            fig5_config(app, fig5_nodes, *mpl, derive_seed(0xF1_65, si as u64), true)
        })
        .collect();
    let sweep_start = Instant::now();
    let optimized: Vec<(f64, f64)> = parallel_sweep(
        series.iter().enumerate().collect(),
        |&(si, (_, app, mpl))| {
            fig5_config(
                app,
                fig5_nodes,
                *mpl,
                derive_seed(0xF1_65, si as u64),
                false,
            )
        },
    );
    let parallel_wall = sweep_start.elapsed().as_secs_f64();
    for (i, (name, _, _)) in series.iter().enumerate() {
        println!(
            "  {name:<16} simulated {:>8.2} s   legacy wall {:>7.3} s   optimized wall {:>7.3} s",
            optimized[i].0, legacy[i].1, optimized[i].1
        );
        check(
            (legacy[i].0 - optimized[i].0).abs() < 1e-12,
            &format!("{name}: legacy and optimized cores agree on the simulated result"),
        );
    }
    let legacy_serial: f64 = legacy.iter().map(|r| r.1).sum();
    let optimized_serial: f64 = optimized.iter().map(|r| r.1).sum();
    let improvement = legacy_serial / optimized_serial;
    let sweep_speedup = optimized_serial / parallel_wall;
    // The worker count the sweep driver actually used — NOT a fresh
    // available_parallelism probe, whose fallback used to disagree with
    // the driver's and silently record 1 (or 4) for a sweep that ran
    // with the other.
    let threads = sweep_workers(series.len());
    println!(
        "fig5 sweep at {fig5_nodes} nodes: legacy {legacy_serial:.3} s, optimized \
         {optimized_serial:.3} s serial ({improvement:.1}x), parallel wall \
         {parallel_wall:.3} s ({sweep_speedup:.1}x over serial on {threads} threads)"
    );
    if threads == 1 {
        let w = format!(
            "parallel_sweep ran serially (1 worker for {} configs): \
             parallel_sweep_speedup {sweep_speedup:.2} is a no-op baseline, \
             not a parallelism measurement",
            series.len()
        );
        println!("   [warning] {w}");
        warnings.push(w);
    }
    check(
        improvement >= 2.0,
        &format!("optimized core >= 2x faster on the fig5 sweep at {fig5_nodes} nodes ({improvement:.1}x)"),
    );

    // Hand-rolled JSON (the repo vendors no serde).
    let mut json = String::from("{\n  \"bench\": \"simcore\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"nodes\": {}, \"group_delivery\": {}, \"threads\": {}, \
             \"events_delivered\": {}, \
             \"messages_handled\": {}, \"strobes\": {}, \"queue_pushed\": {}, \
             \"queue_peak\": {}, \"arena_peak\": {}, \"arena_payload_bytes\": {}, \
             \"wall_seconds\": {:.6}, \
             \"events_per_sec\": {:.1}, \"events_per_timeslice\": {:.2}}}{}",
            r.nodes,
            r.group,
            r.threads,
            r.events,
            r.messages,
            r.strobes,
            r.queue_pushed,
            r.queue_peak,
            r.arena_peak,
            r.arena_bytes,
            r.wall_s,
            r.events_per_sec(),
            r.events_per_timeslice(),
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    let _ = writeln!(
        json,
        "  ],\n  \"events_per_timeslice_reduction_at_{max_n}\": {ratio:.1},"
    );
    let _ = writeln!(json, "  \"parallel_engine\": {{");
    let _ = writeln!(json, "    \"nodes\": {max_n},");
    let _ = writeln!(json, "    \"threads\": {par_threads},");
    let _ = writeln!(json, "    \"hw_threads\": {hw_threads},");
    let _ = writeln!(
        json,
        "    \"serial_events_per_sec\": {:.1},",
        ser.events_per_sec()
    );
    let _ = writeln!(
        json,
        "    \"parallel_events_per_sec\": {:.1},",
        par.events_per_sec()
    );
    let _ = writeln!(json, "    \"parallel_windows\": {},", par.par_windows);
    let _ = writeln!(json, "    \"speedup\": {speedup:.3},");
    let _ = writeln!(
        json,
        "    \"digests_match\": {}\n  }},",
        ser.digest == par.digest
    );
    let _ = writeln!(json, "  \"fig5_sweep\": {{");
    let _ = writeln!(json, "    \"nodes\": {fig5_nodes},");
    let _ = writeln!(json, "    \"configs\": [");
    for (i, (name, _, _)) in series.iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{\"series\": \"{}\", \"simulated_seconds\": {:.6}, \
             \"legacy_wall_seconds\": {:.6}, \"optimized_wall_seconds\": {:.6}}}{}",
            name,
            optimized[i].0,
            legacy[i].1,
            optimized[i].1,
            if i + 1 == series.len() { "" } else { "," }
        );
    }
    let _ = writeln!(json, "    ],");
    let _ = writeln!(
        json,
        "    \"legacy_core\": \"heap queue + per-NM unicast + no fast-forward\","
    );
    let _ = writeln!(
        json,
        "    \"legacy_serial_wall_seconds\": {legacy_serial:.6},\n    \
         \"optimized_serial_wall_seconds\": {optimized_serial:.6},\n    \
         \"wall_clock_improvement\": {improvement:.2},\n    \
         \"parallel_sweep_wall_seconds\": {parallel_wall:.6},\n    \
         \"parallel_sweep_speedup\": {sweep_speedup:.2},\n    \
         \"parallel_sweep_threads\": {threads}\n  }},"
    );
    let _ = writeln!(json, "  \"warnings\": [");
    for (i, w) in warnings.iter().enumerate() {
        let _ = writeln!(
            json,
            "    \"{}\"{}",
            w.replace('\\', "\\\\").replace('"', "\\\""),
            if i + 1 == warnings.len() { "" } else { "," }
        );
    }
    let _ = writeln!(json, "  ]\n}}");
    write_json_artifact("BENCH_OUT", "BENCH_simcore.json", &json);
    println!("bench_sim_throughput: all checks passed");
}
