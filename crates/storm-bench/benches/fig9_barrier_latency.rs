//! Figure 9 — "Barrier synchronization latency as a function of the number
//! of nodes, Terascale Computing System, Pittsburgh Supercomputing Center".
//!
//! The paper uses the TCS (768 nodes / 3 072 processors, QsNET like the
//! LANL cluster) barrier data as evidence that COMPARE-AND-WRITE — built
//! on the same hardware mechanism — scales: latency grows only ≈ 2 µs
//! across a 384× increase in node count.

use storm_bench::{check, pow2_range, render_comparisons, Comparison};
use storm_net::QsNetModel;

fn main() {
    println!("Figure 9: hardware barrier latency vs node count (us)");
    let nodes_axis = pow2_range(1, 1024);
    let mut series = Vec::new();
    println!("{:>8} {:>12}", "nodes", "latency");
    for &n in &nodes_axis {
        let lat = QsNetModel::for_nodes(n).barrier_latency().as_micros_f64();
        println!("{n:>8} {lat:>12.2}");
        series.push((n, lat));
    }

    let at = |n: u32| series.iter().find(|&&(x, _)| x == n).unwrap().1;
    let rows = vec![
        Comparison::new("barrier latency, small cluster", Some(4.5), at(2), "us"),
        Comparison::new(
            "growth 2 -> 768-class (1024) nodes",
            Some(2.0),
            at(1024) - at(2),
            "us",
        ),
    ];
    println!("\n{}", render_comparisons("Fig. 9 anchors", &rows));

    check(
        series.windows(2).all(|w| w[1].1 >= w[0].1),
        "latency is monotone in node count",
    );
    check((at(2) - 4.5).abs() < 0.5, "~4.5 us on a couple of nodes");
    let growth = at(1024) - at(2);
    check(
        (1.0..=3.0).contains(&growth),
        "~2 us growth across a 384x-or-larger node-count increase",
    );
    check(
        QsNetModel::for_nodes(4096)
            .barrier_latency()
            .as_micros_f64()
            < 10.0,
        "Table 5's bound: QsNET COMPARE-AND-WRITE < 10 us even at 4 096 nodes",
    );
    println!("fig9: all shape checks passed");
}
