//! Ablations — design choices the paper argues for, isolated one at a time:
//!
//! 1. **Hardware multicast vs software tree** (the §4 portability
//!    argument): the same launch protocol over QsNET vs an emulated-tree
//!    Myrinet-class network.
//! 2. **Multi-buffering depth under filesystem variability** (§2.3: "we
//!    double-buffer (actually, multi-buffer) the fragments so a node that
//!    is slow to write one fragment does not immediately delay the
//!    transmission of subsequent fragments").
//! 3. **RAM disk vs local disk vs NFS** as the binary source (§2.3 / Fig 6).
//! 4. **Event-collection cap** with multi-second quanta (the §3.2.1
//!    quantisation effect).

use storm_bench::{check, repeat, Comparison};
use storm_core::prelude::*;
use storm_fs::FsKind;

fn launch_total(cfg: ClusterConfig, pes: u32, mb: u64) -> f64 {
    let mut c = Cluster::new(cfg);
    let j = c.submit(JobSpec::new(AppSpec::do_nothing_mb(mb), pes));
    c.run_until_idle();
    c.job(j)
        .metrics
        .total_launch_span()
        .expect("total")
        .as_millis_f64()
}

fn send_time(cfg: ClusterConfig, mb: u64) -> f64 {
    let mut c = Cluster::new(cfg);
    let j = c.submit(JobSpec::new(AppSpec::do_nothing_mb(mb), 256));
    c.run_until_idle();
    c.job(j).metrics.send_span().expect("send").as_millis_f64()
}

fn main() {
    // ------------------------------------------------ 1. hw vs sw multicast
    println!("Ablation 1: hardware multicast vs emulated software tree (12 MB, 64 nodes)");
    let hw = repeat(3, 1, |s| {
        launch_total(ClusterConfig::paper_cluster().with_seed(s), 256, 12)
    })
    .mean();
    let mut sw_cfg = ClusterConfig::paper_cluster();
    sw_cfg.network = NetworkKind::Myrinet;
    let sw = repeat(3, 2, |s| launch_total(sw_cfg.clone().with_seed(s), 256, 12)).mean();
    println!("  QsNET hardware multicast: {hw:>10.1} ms");
    println!("  Myrinet emulated tree:    {sw:>10.1} ms");
    check(
        sw / hw > 3.0,
        "hardware collectives speed the launch up by a large factor",
    );

    // ------------------------------------------ 2. multi-buffering depth
    println!("\nAblation 2: receive-queue depth under 5x write-time variability");
    let mut rows = Vec::new();
    let mut noisy_results = Vec::new();
    for slots in [2u32, 4, 8] {
        let mut cfg = ClusterConfig::paper_cluster().with_transfer_protocol(512 * 1024, slots);
        cfg.daemon.write_sigma = 0.5; // very noisy RAM-disk writes
        let t = repeat(3, u64::from(slots), |s| {
            send_time(cfg.clone().with_seed(s), 12)
        })
        .mean();
        println!("  {slots} slots: send {t:>8.1} ms");
        noisy_results.push((slots, t));
        rows.push(Comparison::new(
            format!("noisy send, {slots} slots"),
            None,
            t,
            "ms",
        ));
    }
    let two = noisy_results[0].1;
    let four = noisy_results[1].1;
    check(
        four <= two,
        "deeper buffering absorbs write variability (4 slots <= 2 slots)",
    );

    // ------------------------------------------------- 3. filesystem choice
    println!("\nAblation 3: binary source filesystem (12 MB, 64 nodes)");
    let mut fs_rows = Vec::new();
    for fs in FsKind::ALL {
        let mut cfg = ClusterConfig::paper_cluster();
        cfg.fs = fs;
        let t = repeat(3, 7, |s| send_time(cfg.clone().with_seed(s), 12)).mean();
        println!("  {:<12}: send {t:>9.1} ms", fs.name());
        fs_rows.push((fs, t));
    }
    let ram = fs_rows.iter().find(|r| r.0 == FsKind::RamDisk).unwrap().1;
    let nfs = fs_rows.iter().find(|r| r.0 == FsKind::Nfs).unwrap().1;
    let disk = fs_rows.iter().find(|r| r.0 == FsKind::LocalExt2).unwrap().1;
    check(ram < disk && disk < nfs, "RAM disk < local disk < NFS");
    check(
        nfs / ram > 5.0,
        "the RAM-disk choice is worth >5x on the send stage",
    );

    // --------------------------------------------- 4. event-collection cap
    println!("\nAblation 4: event-collection cap with an 8 s quantum (SWEEP3D x2)");
    let run = |cap: SimSpan| {
        let mut cfg = ClusterConfig::gang_cluster()
            .with_timeslice(SimSpan::from_secs(8))
            .with_seed(5);
        cfg.max_event_collect = cap;
        let mut c = Cluster::new(cfg);
        let a = c.submit(JobSpec::new(AppSpec::sweep3d_default(), 64).with_ranks_per_node(2));
        let b = c.submit(JobSpec::new(AppSpec::sweep3d_default(), 64).with_ranks_per_node(2));
        c.run_until_idle();
        c.job(a)
            .metrics
            .completed
            .unwrap()
            .max(c.job(b).metrics.completed.unwrap())
            .as_secs_f64()
            / 2.0
    };
    let capped = run(SimSpan::from_millis(100));
    let uncapped = run(SimSpan::from_secs(8));
    println!("  collection every 100 ms: {capped:>7.2} s");
    println!("  collection every 8 s:    {uncapped:>7.2} s");
    check(
        uncapped >= capped,
        "collecting events only at 8 s boundaries costs normalised runtime",
    );
    check(
        uncapped - capped > 0.5,
        "the bounded collection cadence is what keeps the penalty small",
    );
    check(
        uncapped - capped < 30.0,
        "even uncapped, quantisation costs at most a few quanta",
    );

    println!("\nablations: all shape checks passed");
}
