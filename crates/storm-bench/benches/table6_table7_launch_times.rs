//! Tables 6 & 7 — "A selection of job-launch times found in the
//! literature" and "Extrapolated job-launch times" (to 4 096 nodes).
//!
//! Table 6 lists the measured anchors; Table 7 applies each system's fitted
//! curve at 4 096 nodes. STORM's own entry comes from our measured
//! simulation at 64 nodes (Table 6) and the Eq. 3 model (Table 7).

use storm_baselines::Launcher;
use storm_bench::{check, render_comparisons, repeat, Comparison};
use storm_core::prelude::*;

fn storm_measured_secs(seed: u64) -> f64 {
    let mut c = Cluster::new(ClusterConfig::paper_cluster().with_seed(seed));
    let j = c.submit(JobSpec::new(AppSpec::do_nothing_mb(12), 256));
    c.run_until_idle();
    c.job(j)
        .metrics
        .total_launch_span()
        .expect("total")
        .as_secs_f64()
}

fn main() {
    println!("Table 6: job-launch times found in the literature");
    println!(
        "{:<10} {:>8} {:>10} {:>14}",
        "system", "nodes", "binary", "launch time"
    );
    for l in Launcher::ALL {
        let m = l.measured();
        let binary = if m.binary_mb == 0 {
            "minimal".to_string()
        } else {
            format!("{} MB", m.binary_mb)
        };
        println!(
            "{:<10} {:>8} {:>10} {:>12.2} s",
            l.name(),
            m.nodes,
            binary,
            m.time.as_secs_f64()
        );
    }

    println!("\nTable 7: extrapolated to 4 096 nodes");
    println!("{:<10} {:>16} {:<34}", "system", "time @ 4096", "fit");
    let fits = [
        (Launcher::Rsh, "t = 0.934 n + 1.266"),
        (Launcher::Rms, "t = 0.077 n + 1.092"),
        (Launcher::GLUnix, "t = 0.012 n + 0.228"),
        (Launcher::Cplant, "t = 1.379 lg n + 6.177"),
        (Launcher::BProc, "t = 0.413 lg n - 0.084"),
        (Launcher::Storm, "Eq. 3 (see Section 3.3)"),
    ];
    for (l, fit) in fits {
        println!(
            "{:<10} {:>14.2} s {:<34}",
            l.name(),
            l.fitted_time_secs(4096),
            fit
        );
    }

    // Our own STORM measurement for the Table 6 row.
    let ours = repeat(5, 2002, storm_measured_secs).mean();
    let rows = vec![
        Comparison::new(
            "STORM: 12 MB on 64 nodes (measured here)",
            Some(0.11),
            ours,
            "s",
        ),
        Comparison::new(
            "rsh extrapolated to 4 096 nodes",
            Some(3_827.10),
            Launcher::Rsh.fitted_time_secs(4096),
            "s",
        ),
        Comparison::new(
            "BProc extrapolated to 4 096 nodes",
            Some(4.88),
            Launcher::BProc.fitted_time_secs(4096),
            "s",
        ),
    ];
    println!("\n{}", render_comparisons("Tables 6/7 anchors", &rows));

    check(
        (ours - 0.11).abs() / 0.11 < 0.15,
        "our 64-node 12 MB launch lands on 0.11 s",
    );
    check(
        Launcher::Storm.fitted_time_secs(4096) < 0.15,
        "STORM stays ~0.11 s even extrapolated to 4 096 nodes",
    );
    // Ranking at 4 096 nodes: rsh > RMS > GLUnix > Cplant > BProc > STORM.
    let order: Vec<f64> = Launcher::ALL
        .iter()
        .map(|l| l.fitted_time_secs(4096))
        .collect();
    check(
        order.windows(2).all(|w| w[0] > w[1]),
        "Table 7 preserves the paper's ranking (rsh slowest ... STORM fastest)",
    );
    check(
        Launcher::BProc.fitted_time_secs(4096) / Launcher::Storm.fitted_time_secs(4096) > 30.0,
        "STORM an order of magnitude (and more) below the best prior result",
    );
    println!("table6/7: all shape checks passed");
}
