//! Figure 3 — "Send and execute times for a 12 MB file under various types
//! of load", 1–256 processors.
//!
//! §3.1.2: the same launch experiment as Fig. 2, but with either a
//! spin-loop program (CPU contention) or a pairwise message program
//! (network contention) running on all 256 processors. The hog job is
//! actually submitted and gang-scheduled alongside the launch; its
//! contention effect on the protocol is applied through the calibrated
//! [`BackgroundLoad`] factors (see DESIGN.md's substitution table).

use storm_bench::{check, parallel_sweep, pow2_range, render_comparisons, repeat, Comparison};
use storm_core::prelude::*;

const REPS: u64 = 3;

#[derive(Clone, Copy, PartialEq)]
enum Scenario {
    Unloaded,
    CpuLoaded,
    NetLoaded,
}

impl Scenario {
    fn name(self) -> &'static str {
        match self {
            Scenario::Unloaded => "unloaded",
            Scenario::CpuLoaded => "CPU loaded",
            Scenario::NetLoaded => "network loaded",
        }
    }
    fn load(self) -> BackgroundLoad {
        match self {
            Scenario::Unloaded => BackgroundLoad::NONE,
            Scenario::CpuLoaded => BackgroundLoad::cpu_loaded(),
            Scenario::NetLoaded => BackgroundLoad::network_loaded(),
        }
    }
    fn hog(self) -> Option<AppSpec> {
        match self {
            Scenario::Unloaded => None,
            Scenario::CpuLoaded => Some(AppSpec::SpinLoop),
            Scenario::NetLoaded => Some(AppSpec::NetLoad { msg_bytes: 65536 }),
        }
    }
}

fn launch(pes: u32, scenario: Scenario, seed: u64) -> (f64, f64) {
    let cfg = ClusterConfig::paper_cluster()
        .with_seed(seed)
        .with_load(scenario.load());
    let mut c = Cluster::new(cfg);
    // The hog occupies one matrix slot on every PE of the machine.
    let hog = scenario.hog().map(|app| c.submit(JobSpec::new(app, 256)));
    let j = c.submit(JobSpec::new(AppSpec::do_nothing_mb(12), pes));
    let done = c.run_until_done(j);
    if let Some(h) = hog {
        c.kill_at(done, h);
        c.run_until_idle();
    }
    let m = &c.job(j).metrics;
    (
        m.send_span().expect("send").as_millis_f64(),
        m.execute_span().expect("execute").as_millis_f64(),
    )
}

fn main() {
    println!("Figure 3: 12 MB launch under load (ms, mean of {REPS} runs)");
    let pes_axis = pow2_range(1, 256);
    let scenarios = [Scenario::Unloaded, Scenario::CpuLoaded, Scenario::NetLoaded];

    let configs: Vec<(u32, Scenario)> = pes_axis
        .iter()
        .flat_map(|&p| scenarios.iter().map(move |&s| (p, s)))
        .collect();
    let results = parallel_sweep(configs.clone(), |&(pes, sc)| {
        let send = repeat(REPS, (pes as u64) * 31, |seed| launch(pes, sc, seed).0);
        let exec = repeat(REPS, (pes as u64) * 37, |seed| launch(pes, sc, seed).1);
        (send.mean(), exec.mean())
    });
    let mut table = std::collections::HashMap::new();
    for ((pes, sc), r) in configs.iter().zip(&results) {
        table.insert((*pes, sc.name()), *r);
    }

    println!(
        "{:>6} | {:>10} {:>10} | {:>10} {:>10} | {:>10} {:>10}",
        "PEs", "sendU", "execU", "sendC", "execC", "sendN", "execN"
    );
    for &pes in &pes_axis {
        let g = |s: Scenario| table[&(pes, s.name())];
        let u = g(Scenario::Unloaded);
        let c = g(Scenario::CpuLoaded);
        let n = g(Scenario::NetLoaded);
        println!(
            "{:>6} | {:>10.1} {:>10.1} | {:>10.1} {:>10.1} | {:>10.1} {:>10.1}",
            pes, u.0, u.1, c.0, c.1, n.0, n.1
        );
    }

    let u = table[&(256, "unloaded")];
    let c = table[&(256, "CPU loaded")];
    let n = table[&(256, "network loaded")];
    let rows = vec![
        Comparison::new("unloaded total, 256 PEs", Some(110.0), u.0 + u.1, "ms"),
        Comparison::new(
            "network-loaded total, 256 PEs",
            Some(1500.0),
            n.0 + n.1,
            "ms",
        ),
    ];
    println!("\n{}", render_comparisons("Fig. 3 anchors", &rows));

    check(u.0 + u.1 < c.0 + c.1, "CPU load slows the launch");
    check(c.0 + c.1 < n.0 + n.1, "network load is the worst case");
    let worst = n.0 + n.1;
    check(
        (1000.0..=2000.0).contains(&worst),
        "worst case ~1.5 s to launch 12 MB on 256 processors",
    );
    check(
        n.0 / u.0 > 5.0,
        "network contention hits the broadcast stage hardest",
    );
    check(
        c.1 / u.1 > 1.5,
        "CPU contention hits the execute (fork/daemon) stage",
    );
    println!("fig3: all shape checks passed");
}
